//! Property-based tests: randomly generated RMA programs checked against
//! sequential oracles.
//!
//! Two families:
//!
//! 1. **Single-origin programs** — one rank issues a random sequence of
//!    epochs (fence / GATS / lock / lock_all) each containing random puts
//!    and accumulates. With reorder flags off, epochs execute in order, so
//!    replaying the operations sequentially on a local model of every
//!    target's memory must match the final window contents byte for byte.
//! 2. **Multi-origin commutative programs** — every rank fires random
//!    `Sum` accumulates at random targets through nonblocking, out-of-order
//!    (`A_A_A_R`) epochs. Addition commutes, so the final contents must
//!    equal the sum of all operands regardless of completion order.

use nonblocking_rma::{
    run_job, Datatype, Group, JobConfig, LockKind, Rank, ReduceOp, SimTime,
};
use proptest::prelude::*;

const WIN_BYTES: usize = 64;

/// One operation inside an epoch.
#[derive(Clone, Debug)]
enum Op {
    Put { target: usize, disp: usize, val: u8, len: usize },
    AccSum { target: usize, slot: usize, operand: u64 },
    Get { target: usize, disp: usize, len: usize },
}

/// One epoch of a generated program.
#[derive(Clone, Debug)]
enum Epoch {
    Fence(Vec<Op>),
    Gats(Vec<Op>),
    Lock { target: usize, ops: Vec<Op> },
    LockAll(Vec<Op>),
}

fn op_strategy(n_ranks: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (1..n_ranks, 0..WIN_BYTES - 8, any::<u8>(), 1..8usize).prop_map(
            |(target, disp, val, len)| Op::Put {
                target,
                disp: disp.min(WIN_BYTES - len),
                val,
                len,
            }
        ),
        (1..n_ranks, 0..WIN_BYTES / 8, any::<u64>()).prop_map(|(target, slot, operand)| {
            Op::AccSum {
                target,
                slot,
                operand,
            }
        }),
        (1..n_ranks, 0..WIN_BYTES - 8, 1..8usize).prop_map(|(target, disp, len)| Op::Get {
            target,
            disp: disp.min(WIN_BYTES - len),
            len,
        }),
    ]
}

fn ops_strategy(n_ranks: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(op_strategy(n_ranks), 0..5)
}

fn epoch_strategy(n_ranks: usize) -> impl Strategy<Value = Epoch> {
    prop_oneof![
        ops_strategy(n_ranks).prop_map(Epoch::Fence),
        ops_strategy(n_ranks).prop_map(Epoch::Gats),
        (1..n_ranks, ops_strategy(n_ranks)).prop_map(|(target, ops)| {
            // Lock epochs address a single target: retarget every op.
            let ops = ops
                .into_iter()
                .map(|op| match op {
                    Op::Put { disp, val, len, .. } => Op::Put { target, disp, val, len },
                    Op::AccSum { slot, operand, .. } => Op::AccSum { target, slot, operand },
                    Op::Get { disp, len, .. } => Op::Get { target, disp, len },
                })
                .collect();
            Epoch::Lock { target, ops }
        }),
        ops_strategy(n_ranks).prop_map(Epoch::LockAll),
    ]
}

/// Apply the program to a local memory model; returns (final memories,
/// expected get results in program order).
fn oracle(n_ranks: usize, program: &[Epoch]) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    let mut mem = vec![vec![0u8; WIN_BYTES]; n_ranks];
    let mut gets = Vec::new();
    let mut apply = |op: &Op, gets: &mut Vec<Vec<u8>>| match op {
        Op::Put { target, disp, val, len } => {
            mem[*target][*disp..disp + len].fill(*val);
        }
        Op::AccSum { target, slot, operand } => {
            let d = slot * 8;
            let cur = u64::from_le_bytes(mem[*target][d..d + 8].try_into().unwrap());
            mem[*target][d..d + 8].copy_from_slice(&cur.wrapping_add(*operand).to_le_bytes());
        }
        Op::Get { target, disp, len } => {
            gets.push(mem[*target][*disp..disp + len].to_vec());
        }
    };
    for e in program {
        let ops = match e {
            Epoch::Fence(o) | Epoch::Gats(o) | Epoch::LockAll(o) => o,
            Epoch::Lock { ops, .. } => ops,
        };
        for op in ops {
            apply(op, &mut gets);
        }
    }
    (mem, gets)
}

/// Drive the generated program through the real runtime. Rank 0 is the
/// only origin; targets cooperate (posting exposures / fencing as needed).
fn execute(
    n_ranks: usize,
    program: Vec<Epoch>,
    nonblocking: bool,
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    execute_with(n_ranks, program, nonblocking, nonblocking_rma::SyncStrategy::Redesigned)
}

fn execute_with(
    n_ranks: usize,
    program: Vec<Epoch>,
    nonblocking: bool,
    strategy: nonblocking_rma::SyncStrategy,
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>) {
    use std::sync::Mutex;
    let result = std::sync::Arc::new(Mutex::new(vec![Vec::new(); n_ranks]));
    let got_gets = std::sync::Arc::new(Mutex::new(Vec::new()));
    let g2 = got_gets.clone();
    let r2 = result.clone();
    // Targets must know how many epochs of each participation they join.
    let fence_count = program
        .iter()
        .filter(|e| matches!(e, Epoch::Fence(_)))
        .count();
    let gats_count = program.iter().filter(|e| matches!(e, Epoch::Gats(_))).count();
    let program = std::sync::Arc::new(program);

    run_job(JobConfig::new(n_ranks).with_seed(7).with_strategy(strategy), move |env| {
        let me = env.rank().idx();
        let win = env.win_allocate(WIN_BYTES).unwrap();
        env.barrier().unwrap();
        if me == 0 {
            let mut pending = Vec::new();
            let mut get_reqs = Vec::new();
            for e in program.iter() {
                match e {
                    Epoch::Fence(ops) => {
                        env.fence(win).unwrap();
                        issue(env, win, ops, &mut get_reqs);
                        if nonblocking {
                            pending.push(env.ifence(win).unwrap());
                        } else {
                            env.fence(win).unwrap();
                        }
                    }
                    Epoch::Gats(ops) => {
                        env.start(win, Group::new(1..n_ranks)).unwrap();
                        issue(env, win, ops, &mut get_reqs);
                        if nonblocking {
                            pending.push(env.icomplete(win).unwrap());
                        } else {
                            env.complete(win).unwrap();
                        }
                    }
                    Epoch::Lock { target, ops } => {
                        env.lock(win, Rank(*target), LockKind::Exclusive).unwrap();
                        issue(env, win, ops, &mut get_reqs);
                        if nonblocking {
                            pending.push(env.iunlock(win, Rank(*target)).unwrap());
                        } else {
                            env.unlock(win, Rank(*target)).unwrap();
                        }
                    }
                    Epoch::LockAll(ops) => {
                        env.lock_all(win).unwrap();
                        issue(env, win, ops, &mut get_reqs);
                        if nonblocking {
                            pending.push(env.iunlock_all(win).unwrap());
                        } else {
                            env.unlock_all(win).unwrap();
                        }
                    }
                }
            }
            env.wait_all(pending).unwrap();
            let mut out = Vec::new();
            for r in get_reqs {
                out.push(env.wait_data(r).unwrap().to_vec());
            }
            *g2.lock().unwrap() = out;
        } else {
            // Targets: join every fence, expose for every GATS epoch.
            // Epochs are activated serially at the origin (flags off), so
            // target-side participation in program order is correct.
            for e in program.iter() {
                match e {
                    Epoch::Fence(_) => {
                        env.fence(win).unwrap();
                        env.fence(win).unwrap();
                    }
                    Epoch::Gats(_) => {
                        env.post(win, Group::single(Rank(0))).unwrap();
                        env.wait_epoch(win).unwrap();
                    }
                    _ => {}
                }
            }
            let _ = (fence_count, gats_count);
        }
        env.barrier().unwrap();
        r2.lock().unwrap()[me] = env.read_local(win, 0, WIN_BYTES).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let mems = result.lock().unwrap().clone();
    let gets = got_gets.lock().unwrap().clone();
    (mems, gets)
}

fn issue(
    env: &nonblocking_rma::RankEnv,
    win: nonblocking_rma::WinId,
    ops: &[Op],
    gets: &mut Vec<nonblocking_rma::Req>,
) {
    for op in ops {
        match op {
            Op::Put { target, disp, val, len } => {
                env.put(win, Rank(*target), *disp, &vec![*val; *len]).unwrap();
            }
            Op::AccSum { target, slot, operand } => {
                env.accumulate(
                    win,
                    Rank(*target),
                    slot * 8,
                    Datatype::U64,
                    ReduceOp::Sum,
                    &operand.to_le_bytes(),
                )
                .unwrap();
            }
            Op::Get { target, disp, len } => {
                gets.push(env.get(win, Rank(*target), *disp, *len).unwrap());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Single-origin random programs match the sequential oracle exactly —
    /// blocking flavour.
    #[test]
    fn single_origin_blocking_matches_oracle(
        program in proptest::collection::vec(epoch_strategy(3), 1..6)
    ) {
        let (expected, expected_gets) = oracle(3, &program);
        let (got, got_gets) = execute(3, program, false);
        for t in 1..3 {
            prop_assert_eq!(&got[t], &expected[t], "target {} memory diverged", t);
        }
        prop_assert_eq!(got_gets, expected_gets, "get results diverged");
    }

    /// Same, nonblocking flavour: closing every epoch with `i`-routines and
    /// waiting at the end must not change the outcome (epochs are still
    /// activated serially with flags off).
    #[test]
    fn single_origin_nonblocking_matches_oracle(
        program in proptest::collection::vec(epoch_strategy(3), 1..6)
    ) {
        let (expected, expected_gets) = oracle(3, &program);
        let (got, got_gets) = execute(3, program, true);
        for t in 1..3 {
            prop_assert_eq!(&got[t], &expected[t], "target {} memory diverged", t);
        }
        prop_assert_eq!(got_gets, expected_gets, "get results diverged");
    }

    /// Strategy equivalence: the lazy MVAPICH-like baseline and the
    /// redesigned engine must compute identical memory and get results for
    /// any program — only timing may differ.
    #[test]
    fn lazy_baseline_computes_identical_results(
        program in proptest::collection::vec(epoch_strategy(3), 1..5)
    ) {
        let (expected, expected_gets) = oracle(3, &program);
        let (got, got_gets) = execute_with(
            3,
            program,
            false,
            nonblocking_rma::SyncStrategy::LazyBaseline,
        );
        for t in 1..3 {
            prop_assert_eq!(&got[t], &expected[t], "target {} memory diverged", t);
        }
        prop_assert_eq!(got_gets, expected_gets, "get results diverged");
    }

    /// Multi-origin commutative accumulates survive out-of-order epochs.
    #[test]
    fn multi_origin_sums_exact_under_aaar(
        plan in proptest::collection::vec(
            proptest::collection::vec((0..4usize, 0..4usize, 0..1000u64), 1..12),
            4..=4
        )
    ) {
        let mut expected = vec![vec![0u64; 4]; 4];
        for (origin, txs) in plan.iter().enumerate() {
            let _ = origin;
            for (target, slot, v) in txs {
                expected[*target][*slot] = expected[*target][*slot].wrapping_add(*v);
            }
        }
        let plan2 = std::sync::Arc::new(plan);
        let result = std::sync::Arc::new(std::sync::Mutex::new(vec![vec![0u64; 4]; 4]));
        let r2 = result.clone();
        run_job(JobConfig::new(4), move |env| {
            let me = env.rank().idx();
            let win = env
                .win_allocate_with(32, nonblocking_rma::WinInfo::aaar())
                .unwrap();
            env.barrier().unwrap();
            let mut pend = Vec::new();
            for (target, slot, v) in &plan2[me] {
                let _ = env.ilock(win, Rank(*target), LockKind::Exclusive).unwrap();
                env.accumulate(
                    win, Rank(*target), slot * 8, Datatype::U64, ReduceOp::Sum,
                    &v.to_le_bytes(),
                ).unwrap();
                pend.push(env.iunlock(win, Rank(*target)).unwrap());
                env.compute(SimTime::from_nanos(((me as u64) * 97 + 13) % 500));
            }
            env.wait_all(pend).unwrap();
            env.barrier().unwrap();
            let bytes = env.read_local(win, 0, 32).unwrap();
            r2.lock().unwrap()[me] = nonblocking_rma::core::datatype::bytes_to_u64s(&bytes);
            env.win_free(win).unwrap();
        })
        .unwrap();
        let got = result.lock().unwrap().clone();
        prop_assert_eq!(got, expected);
    }
}
