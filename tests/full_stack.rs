//! Cross-crate integration tests exercising the full stack through the
//! `nonblocking-rma` facade: mixed epoch kinds in one program, application
//! kernels across engine strategies, and whole-job determinism.

use nonblocking_rma::apps::{
    run_halo, run_lu, run_transactions, HaloConfig, HaloSync, LuConfig, LuSync, TxConfig, TxMode,
};
use nonblocking_rma::{
    run_job, Datatype, Group, JobConfig, LockKind, Rank, ReduceOp, SimTime, SyncStrategy,
};

#[test]
fn one_program_uses_every_epoch_kind() {
    run_job(JobConfig::new(4), |env| {
        let me = env.rank().idx();
        let n = env.n_ranks();
        let win = env.win_allocate(64).unwrap();

        // Fence phase.
        env.fence(win).unwrap();
        env.put(win, Rank((me + 1) % n), 0, &[me as u8; 4]).unwrap();
        env.fence(win).unwrap();
        assert_eq!(
            env.read_local(win, 0, 4).unwrap(),
            vec![((me + n - 1) % n) as u8; 4]
        );

        // GATS phase.
        if me == 0 {
            env.start(win, Group::new(1..n)).unwrap();
            for t in 1..n {
                env.put(win, Rank(t), 8, &[0xAA; 4]).unwrap();
            }
            env.complete(win).unwrap();
        } else {
            env.post(win, Group::single(Rank(0))).unwrap();
            env.wait_epoch(win).unwrap();
            assert_eq!(env.read_local(win, 8, 4).unwrap(), vec![0xAA; 4]);
        }
        env.barrier().unwrap();

        // Passive phase: everyone atomically increments rank 0's counter.
        env.lock_all(win).unwrap();
        let r = env
            .fetch_and_op(win, Rank(0), 16, Datatype::U64, ReduceOp::Sum, &1u64.to_le_bytes())
            .unwrap();
        env.unlock_all(win).unwrap();
        let _ = env.wait_data(r).unwrap();
        env.barrier().unwrap();
        if me == 0 {
            let v = u64::from_le_bytes(env.read_local(win, 16, 8).unwrap().try_into().unwrap());
            assert_eq!(v, n as u64);
        }

        // Two-sided epilogue.
        if me == 0 {
            for t in 1..n {
                env.send(Rank(t), 5, b"bye").unwrap();
            }
        } else {
            assert_eq!(env.recv(Rank(0), 5).unwrap().as_ref(), b"bye");
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn lu_results_identical_across_strategies_and_sync() {
    // The factorization result must not depend on engine strategy or on
    // blocking vs nonblocking synchronization — only timing may change.
    let combos = [
        (SyncStrategy::LazyBaseline, LuSync::Blocking),
        (SyncStrategy::Redesigned, LuSync::Blocking),
        (SyncStrategy::Redesigned, LuSync::Nonblocking),
    ];
    for (strategy, sync) in combos {
        let r = run_lu(
            JobConfig::all_internode(4).with_strategy(strategy),
            LuConfig::small(20, sync),
        )
        .unwrap();
        assert_eq!(
            r.max_error,
            Some(0.0),
            "strategy {strategy:?} sync {sync:?} diverged from the oracle"
        );
    }
}

#[test]
fn halo_checksums_identical_across_strategies() {
    let mut sums = Vec::new();
    for strategy in [SyncStrategy::LazyBaseline, SyncStrategy::Redesigned] {
        for sync in [HaloSync::Fence, HaloSync::Gats] {
            let r = run_halo(
                JobConfig::all_internode(4).with_strategy(strategy),
                HaloConfig {
                    cells_per_rank: 32,
                    iters: 10,
                    sync,
                },
            )
            .unwrap();
            sums.push(r.checksum.to_bits());
        }
    }
    assert!(sums.windows(2).all(|w| w[0] == w[1]));
}

#[test]
fn transactions_preserve_every_update_under_contention() {
    // Hammer a small set of slots from many ranks with deep pipelines and
    // out-of-order completion: the global sum must be exact.
    let cfg = TxConfig {
        txs_per_rank: 60,
        payload: 8,
        slots: 4, // heavy slot contention
        mode: TxMode::Nonblocking { max_inflight: 24 },
        aaar: true,
        think_time: SimTime::ZERO,
        dist: nonblocking_rma::apps::TargetDist::Uniform,
    };
    let r = run_transactions(JobConfig::new(8), cfg.clone()).unwrap();
    assert_eq!(
        r.checksum,
        nonblocking_rma::apps::expected_checksum(8, &cfg)
    );
}

#[test]
fn whole_application_runs_are_deterministic() {
    fn run_once() -> (u64, u64, u64) {
        let cfg = TxConfig {
            txs_per_rank: 40,
            payload: 16,
            slots: 32,
            mode: TxMode::Nonblocking { max_inflight: 8 },
            aaar: true,
            think_time: SimTime::from_micros(3),
            dist: nonblocking_rma::apps::TargetDist::Uniform,
        };
        let r = run_transactions(JobConfig::new(6).with_seed(99), cfg).unwrap();
        (r.elapsed.as_nanos(), r.checksum, r.total_txs)
    }
    assert_eq!(run_once(), run_once());
}

#[test]
fn mixed_intranode_and_internode_topology() {
    // 8 ranks on 2 nodes: sync traffic crosses both the 64-bit FIFOs and
    // the wire.
    let mut cfg = JobConfig::new(8);
    cfg.cores_per_node = 4;
    run_job(cfg, |env| {
        let me = env.rank().idx();
        let n = env.n_ranks();
        let win = env.win_allocate(8 * n).unwrap();
        env.barrier().unwrap();
        // Every rank locks every other rank in turn and deposits a marker.
        for off in 1..n {
            let t = Rank((me + off) % n);
            env.lock(win, t, LockKind::Exclusive).unwrap();
            env.put(win, t, 8 * me, &(me as u64 + 1).to_le_bytes()).unwrap();
            env.unlock(win, t).unwrap();
        }
        env.barrier().unwrap();
        for s in 0..n {
            if s != me {
                let v = u64::from_le_bytes(
                    env.read_local(win, 8 * s, 8).unwrap().try_into().unwrap(),
                );
                assert_eq!(v, s as u64 + 1, "marker from {s} missing at {me}");
            }
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn report_surfaces_network_and_rank_stats() {
    let report = run_job(JobConfig::new(4), |env| {
        let win = env.win_allocate(64).unwrap();
        env.fence(win).unwrap();
        env.put(win, Rank(0), 0, &[1u8; 32]).unwrap();
        env.fence(win).unwrap();
        env.compute(SimTime::from_micros(50));
        env.win_free(win).unwrap();
    })
    .unwrap();
    assert!(report.net.msgs_delivered > 0);
    assert!(report.net.bytes_sent > 0);
    assert_eq!(report.ranks.len(), 4);
    assert!(report.ranks.iter().all(|r| r.calls > 4));
    assert!(report.mean_comm_fraction() > 0.0);
    assert!(report.mean_comm_fraction() < 1.0);
}
