//! Bounded smoke test of the conformance harness itself.
//!
//! The full sweep lives behind `cargo run -p mpisim-check` so its cost is
//! opt-in; this test pins down the three properties CI must never lose:
//! a small clean sweep stays green, each injected fault is caught, and the
//! minimizer shrinks a caught failure to something that still fails.

use mpisim_check::program::{Family, Program};
use mpisim_check::run::RunSpec;
use mpisim_check::{
    generate, reproducer, shrink, spec_for_seed, sweep_family, verify, FailureKind, SyncStrategy,
};

#[test]
fn bounded_clean_sweep_is_green() {
    for family in Family::ALL {
        let report = sweep_family(family, 2, 3, &Some(String::new()));
        assert!(
            report.failures.is_empty(),
            "{}: {} failures, first: {}",
            family.label(),
            report.failures.len(),
            report.failures[0].failure
        );
        // 2 programs × 4 matrix points × 3 seeds.
        assert_eq!(report.runs, 24);
    }
}

#[test]
fn skip_grant_fault_deadlocks_and_shrinks() {
    // Freezing the exposure-grant stream starves the second GATS epoch of
    // its grant, so any program with two GATS epochs toward one target
    // deadlocks. Inject via RunSpec (not the env var) to stay hermetic.
    let program = Program::SingleOrigin {
        n_ranks: 3,
        reorder: true,
        epochs: vec![
            mpisim_check::program::Epoch::Gats(vec![]),
            mpisim_check::program::Epoch::Gats(vec![]),
        ],
    };
    let mut spec = spec_for_seed(SyncStrategy::Redesigned, true, 3, &None);
    spec.fault = Some("skip-grant".into());
    let failure = verify(&program, &spec).expect_err("skip-grant must deadlock");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock(_)),
        "expected deadlock, got {failure}"
    );

    let (min_prog, min_spec) = shrink(&program, &spec);
    // Shrinking must preserve failure and reset the perturbation knobs.
    verify(&min_prog, &min_spec).expect_err("shrunk case no longer fails");
    assert!(min_prog.weight() <= program.weight());
    assert_eq!(min_spec.net_profile, 0);
    assert_eq!(min_spec.tiebreak_seed, None);

    let repro = reproducer(&min_prog, &min_spec);
    assert!(repro.contains("#[test]"), "not a pasteable test:\n{repro}");
    assert!(repro.contains("skip-grant"), "fault injection lost:\n{repro}");
    assert!(repro.contains("verify"), "missing the verify call:\n{repro}");
}

#[test]
fn double_acc_fault_diverges_from_oracle() {
    // Applying an eager accumulate twice breaks the Sum totals, which the
    // differential check against the sequential oracle must flag.
    let mut spec = RunSpec::baseline(SyncStrategy::Redesigned, false);
    spec.fault = Some("double-acc".into());
    let mut caught = None;
    for i in 0..4 {
        let program = generate(Family::MultiOriginSum, i);
        if let Err(failure) = verify(&program, &spec) {
            caught = Some((program, failure));
            break;
        }
    }
    let (program, failure) = caught.expect("double-acc never diverged");
    assert!(
        matches!(failure.kind, FailureKind::Divergence(_)),
        "expected divergence, got {failure}"
    );

    let (min_prog, min_spec) = shrink(&program, &spec);
    verify(&min_prog, &min_spec).expect_err("shrunk case no longer fails");
    assert!(
        min_prog.weight() <= 2,
        "double-acc should shrink to a single accumulate, got weight {}",
        min_prog.weight()
    );
}
