//! Dormant trailing fences (DESIGN.md deviation 4).
//!
//! Every `fence` call closes the previous fence epoch and opens a new one,
//! so the last call of any fence sequence leaves an open, empty fence
//! epoch behind. The engine retires these at `win_free` instead of
//! completing them — `EngineStats::dormant_retired` counts them, and the
//! deferred-queue balance `epochs_opened == epochs_completed +
//! dormant_retired` must hold so nothing leaks.

use mpisim_check::audit;
use nonblocking_rma::{run_job, JobConfig, Rank};

fn traced(n: usize) -> JobConfig {
    let mut cfg = JobConfig::new(n);
    cfg.trace = true;
    cfg
}

#[test]
fn trailing_fence_is_retired_at_win_free() {
    let n = 3;
    let report = run_job(traced(n), move |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        env.fence(win).unwrap();
        if env.rank().idx() == 0 {
            env.put(win, Rank(1), 0, b"x").unwrap();
        }
        env.fence(win).unwrap(); // closes the data phase, opens a trailing fence
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    // One dormant trailing fence per rank, and the books balance.
    assert_eq!(report.engine.dormant_retired, n as u64);
    assert_eq!(
        report.engine.epochs_opened,
        report.engine.epochs_completed + report.engine.dormant_retired,
        "deferred-queue leak: {:?}",
        report.engine
    );
    assert_eq!(report.live_requests, 0);
    let violations = audit(&report);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn back_to_back_fence_phases_leave_one_dormant_epoch() {
    // Two consecutive data phases share the middle fence; only the very
    // last fence of the sequence goes dormant.
    let n = 3;
    let report = run_job(traced(n), move |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        env.fence(win).unwrap();
        if env.rank().idx() == 0 {
            env.put(win, Rank(1), 0, b"phase1").unwrap();
        }
        env.fence(win).unwrap();
        if env.rank().idx() == 0 {
            env.put(win, Rank(2), 0, b"phase2").unwrap();
        }
        env.fence(win).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            assert_eq!(env.read_local(win, 0, 6).unwrap(), b"phase1");
        }
        if env.rank().idx() == 2 {
            assert_eq!(env.read_local(win, 0, 6).unwrap(), b"phase2");
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
    assert_eq!(report.engine.dormant_retired, n as u64, "exactly the trailing fences");
    assert_eq!(
        report.engine.epochs_opened,
        report.engine.epochs_completed + report.engine.dormant_retired
    );
    let violations = audit(&report);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn nonblocking_fence_closes_leave_no_leak() {
    // ifence-closed phases plus the dormant trailing fence: the request
    // table and deferred queue must both drain.
    let n = 3;
    let report = run_job(traced(n), move |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        env.fence(win).unwrap();
        if env.rank().idx() == 0 {
            env.put(win, Rank(1), 0, b"nb").unwrap();
        }
        let f = env.ifence(win).unwrap();
        env.wait(f).unwrap();
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    assert_eq!(report.engine.dormant_retired, n as u64);
    assert_eq!(
        report.engine.epochs_opened,
        report.engine.epochs_completed + report.engine.dormant_retired
    );
    assert_eq!(report.live_requests, 0, "ifence request leaked");
    let violations = audit(&report);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn fence_only_window_is_all_dormant() {
    // A window that only ever opens one fence epoch and frees: the single
    // epoch per rank is dormant; nothing completes, nothing leaks.
    let n = 2;
    let report = run_job(traced(n), move |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        env.fence(win).unwrap();
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    assert_eq!(report.engine.dormant_retired, n as u64);
    assert_eq!(
        report.engine.epochs_opened,
        report.engine.epochs_completed + report.engine.dormant_retired
    );
    let violations = audit(&report);
    assert!(violations.is_empty(), "{violations:?}");
}
