//! Regression cases promoted from `random_programs.proptest-regressions`
//! into named deterministic tests.
//!
//! The proptest shim replays the seed file's cases opportunistically, but a
//! named test documents *why* the case once failed and runs it under every
//! strategy × API combination rather than only the flavour that originally
//! tripped. Both programs distilled to epoch-transition bugs around empty
//! epochs:
//!
//! * `fence_lock_fence` — an empty exclusive-lock epoch sandwiched between
//!   two fence phases: exercises the passive-plane hand-off in the middle
//!   of the active-target fence sequence (an empty lock still runs the
//!   full grant/release protocol).
//! * `lock_then_gats` — an empty lock epoch directly followed by a GATS
//!   epoch: exercises the split matching planes (`⟨a,e,g⟩` vs
//!   `⟨a_lock,g_lock⟩`) switching with no data operations to pace them.
//!
//! The programs run through the conformance harness, so on top of the
//! original "terminates and matches the oracle" property each run is also
//! audited against the ω-triple trace invariants.

use mpisim_check::program::{Epoch, Program};
use mpisim_check::run::RunSpec;
use mpisim_check::{verify, SyncStrategy, MATRIX};

fn check_everywhere(epochs: Vec<Epoch>) {
    let program = Program::SingleOrigin { n_ranks: 3, reorder: false, epochs };
    for (strategy, nonblocking) in MATRIX {
        verify(&program, &RunSpec::baseline(strategy, nonblocking)).unwrap_or_else(|e| {
            panic!("{strategy:?} nonblocking={nonblocking}: {e}");
        });
    }
}

/// `cc 6d0110c4…`: shrank to `[Fence([]), Lock { target: 1, ops: [] },
/// Fence([])]`.
#[test]
fn fence_lock_fence_empty_epochs() {
    check_everywhere(vec![
        Epoch::Fence(vec![]),
        Epoch::Lock { target: 1, ops: vec![] },
        Epoch::Fence(vec![]),
    ]);
}

/// `cc 93e38354…`: shrank to `[Lock { target: 1, ops: [] }, Gats([])]`.
#[test]
fn empty_lock_then_empty_gats() {
    check_everywhere(vec![Epoch::Lock { target: 1, ops: vec![] }, Epoch::Gats(vec![])]);
}

/// The same two shapes under schedule perturbation: a handful of tie-break
/// seeds and network profiles must not resurrect either bug.
#[test]
fn promoted_cases_survive_perturbation() {
    for epochs in [
        vec![
            Epoch::Fence(vec![]),
            Epoch::Lock { target: 1, ops: vec![] },
            Epoch::Fence(vec![]),
        ],
        vec![Epoch::Lock { target: 1, ops: vec![] }, Epoch::Gats(vec![])],
    ] {
        let program = Program::SingleOrigin { n_ranks: 3, reorder: false, epochs };
        for s in 0..4 {
            let spec = mpisim_check::spec_for_seed(SyncStrategy::Redesigned, true, s, &None);
            verify(&program, &spec).unwrap_or_else(|e| panic!("seed {s}: {e}"));
        }
    }
}
