//! Age-stamping edge cases of the flush family (§VII.C).
//!
//! A nonblocking flush request is stamped with the age of the RMA call
//! that immediately precedes it and counts only the covered, not-yet
//! complete operations of the epochs it was created over. Two boundaries
//! matter and are easy to get wrong:
//!
//! * **mid-epoch**: a flush created between two operations covers only the
//!   older one — it must complete without waiting for the younger, and a
//!   flush created *after* both must not be satisfied by the older
//!   completion alone;
//! * **across lock/unlock on the same target**: a flush belongs to the
//!   epoch(s) open at creation time — completions from the *previous*
//!   epoch on the same target must not decrement it, and ops of the
//!   previous epoch must not keep it pending.

use nonblocking_rma::{run_job, JobConfig, LockKind, Rank};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const WIN: usize = 1 << 17; // room for the large payloads below

/// Small payload completes fast; large one is bandwidth-bound and slow.
const SMALL: usize = 8;
const LARGE: usize = 1 << 16;

#[test]
fn mid_epoch_flush_covers_only_older_ops() {
    // lock; put A (small); f1; put B (large); f2 — f1 must complete
    // without waiting for B, and f2 must wait for B even though A (an
    // older op) completed long before.
    let t1_ns = Arc::new(AtomicU64::new(0));
    let t2_ns = Arc::new(AtomicU64::new(0));
    let (t1c, t2c) = (t1_ns.clone(), t2_ns.clone());
    let report = run_job(JobConfig::all_internode(2), move |env| {
        let win = env.win_allocate(WIN).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, &[0xAA; SMALL]).unwrap();
            let f1 = env.iflush(win, Rank(1)).unwrap();
            env.put(win, Rank(1), SMALL, &[0xBB; LARGE]).unwrap();
            let f2 = env.iflush(win, Rank(1)).unwrap();
            env.wait(f1).unwrap();
            t1c.store(env.now().as_nanos(), Ordering::Relaxed);
            // A is done (f1 says so) but f2 — stamped after B — must not
            // have been completed by A's completion.
            assert!(!env.test(f2).unwrap(), "flush completed by an op older than its stamp");
            env.wait(f2).unwrap();
            t2c.store(env.now().as_nanos(), Ordering::Relaxed);
            env.unlock(win, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            assert_eq!(env.read_local(win, 0, SMALL).unwrap(), vec![0xAA; SMALL]);
            assert_eq!(env.read_local(win, SMALL, LARGE).unwrap(), vec![0xBB; LARGE]);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
    let (t1, t2) = (t1_ns.load(Ordering::Relaxed), t2_ns.load(Ordering::Relaxed));
    assert!(
        t1 < t2,
        "f1 (covers only the small put) completed at {t1} ns, \
         f2 (covers the large put too) at {t2} ns"
    );
    assert_eq!(report.live_requests, 0);
}

#[test]
fn flush_in_new_epoch_ignores_previous_epoch_ops() {
    // Epoch 1 has a large put in flight when epoch 2 opens (deferred
    // behind the exclusive lock) on the SAME target. A flush created in
    // epoch 2 before any epoch-2 op covers nothing — it must be complete
    // at creation, not held hostage by (or satisfied by) epoch 1's ops.
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(WIN).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, &[0x11; LARGE]).unwrap();
            let f1 = env.iflush(win, Rank(1)).unwrap();
            assert!(!env.test(f1).unwrap(), "large put cannot be complete yet");
            let u1 = env.iunlock(win, Rank(1)).unwrap();
            // Epoch 2 on the same target, deferred until epoch 1 releases.
            let l2 = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
            let f2 = env.iflush(win, Rank(1)).unwrap();
            assert!(
                env.test(f2).unwrap(),
                "empty-epoch flush must complete at creation even while the previous \
                 epoch on this target still has ops in flight"
            );
            env.put(win, Rank(1), LARGE, &[0x22; SMALL]).unwrap();
            let u2 = env.iunlock(win, Rank(1)).unwrap();
            env.wait_all([u1, l2, u2]).unwrap();
            // f1 covered epoch 1's put; the epoch is closed and complete,
            // so f1 must be too.
            assert!(env.test(f1).unwrap(), "flush of a completed epoch still pending");
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            assert_eq!(env.read_local(win, 0, LARGE).unwrap(), vec![0x11; LARGE]);
            assert_eq!(env.read_local(win, LARGE, SMALL).unwrap(), vec![0x22; SMALL]);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn blocking_flush_orders_data_before_epoch_close() {
    // flush(t) inside a held lock: after it returns, the target must
    // observe the data even though the epoch is still open.
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = seen.clone();
    run_job(JobConfig::all_internode(2), move |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, &7u64.to_le_bytes()).unwrap();
            env.flush(win, Rank(1)).unwrap();
            env.barrier().unwrap(); // epoch still open; data must be there
            env.barrier().unwrap(); // target read happens between these
            env.unlock(win, Rank(1)).unwrap();
        } else {
            env.barrier().unwrap();
            let bytes = env.read_local(win, 0, 8).unwrap();
            seen2.store(u64::from_le_bytes(bytes.try_into().unwrap()), Ordering::Relaxed);
            env.barrier().unwrap();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    assert_eq!(seen.load(Ordering::Relaxed), 7, "flushed put not visible mid-epoch");
}

#[test]
fn flush_without_passive_epoch_is_an_error() {
    run_job(JobConfig::new(2), |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            assert!(env.iflush(win, Rank(1)).is_err(), "flush outside any passive epoch");
            // A fence (active-target) epoch does not make flush legal either.
            env.fence(win).unwrap();
            assert!(env.iflush(win, Rank(1)).is_err());
            env.fence(win).unwrap();
        } else {
            env.fence(win).unwrap();
            env.fence(win).unwrap();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn flush_age_edge_cases_hold_under_perturbation() {
    // The f1-before-f2 age ordering must hold on perturbed schedules too.
    for seed in 0..4u64 {
        let ok = Arc::new(AtomicU64::new(0));
        let ok2 = ok.clone();
        let mut cfg = JobConfig::all_internode(2).with_seed(11 + seed);
        cfg.tiebreak_seed = if seed == 0 { None } else { Some(seed) };
        cfg.net = nonblocking_rma::net::NetParams::perturbation_profile(seed);
        run_job(cfg, move |env| {
            let win = env.win_allocate(WIN).unwrap();
            env.barrier().unwrap();
            if env.rank().idx() == 0 {
                env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
                env.put(win, Rank(1), 0, &[1; SMALL]).unwrap();
                let f1 = env.iflush(win, Rank(1)).unwrap();
                env.put(win, Rank(1), SMALL, &[2; LARGE]).unwrap();
                let f2 = env.iflush(win, Rank(1)).unwrap();
                env.wait(f1).unwrap();
                let t1 = env.now();
                env.wait(f2).unwrap();
                let t2 = env.now();
                if t1 < t2 {
                    ok2.fetch_add(1, Ordering::Relaxed);
                }
                env.unlock(win, Rank(1)).unwrap();
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        assert_eq!(ok.load(Ordering::Relaxed), 1, "age ordering broke under seed {seed}");
    }
}
