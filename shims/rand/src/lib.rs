//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides exactly the API surface this workspace uses: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`], and
//! [`rngs::SmallRng`] implemented as xoshiro256** seeded from 32 bytes.
//! Determinism is the only contract that matters here — every simulation
//! result is keyed by seed, and this generator is stable across platforms
//! and builds.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed;

    /// Build the generator from a seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single word (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to u64 (order-preserving for the unsigned range actually used).
    fn to_u64(self) -> u64;
    /// Narrow back.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 { self as u64 }
            fn from_u64(v: u64) -> Self { v as $t }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(lo < hi, "gen_range called with empty range");
        T::from_u64(lo + rng.next_u64() % (hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(lo <= hi, "gen_range called with empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.next_u64() % (span + 1))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Extension trait with the ergonomic sampling methods.
pub trait Rng: RngCore {
    /// Uniform value over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn gen_range<T, RG>(&mut self, range: RG) -> T
    where
        Self: Sized,
        RG: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0; 4] {
                // xoshiro must not start at the all-zero state.
                let mut sm = 0x9E37_79B9_7F4A_7C15u64;
                for word in s.iter_mut() {
                    *word = super::splitmix64(&mut sm);
                }
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(8) {
                chunk.copy_from_slice(&super::splitmix64(&mut sm).to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::from_seed([7; 32]);
        let mut b = SmallRng::from_seed([7; 32]);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::from_seed([1; 32]);
        let mut b = SmallRng::from_seed([2; 32]);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: usize = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = r.gen_range(0.1..1.0);
            assert!((0.1..1.0).contains(&f));
            let b: u8 = r.gen_range(0..100u8);
            assert!(b < 100);
        }
    }

    #[test]
    fn zero_seed_is_fixed_up() {
        let mut r = SmallRng::from_seed([0; 32]);
        assert_ne!(r.next_u64(), 0);
    }
}
