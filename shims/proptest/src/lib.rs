//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`strategy::Strategy`]
//! trait (`prop_map`, ranges, tuples, `any`, unions), `collection::vec`,
//! and the [`proptest!`]/[`prop_assert!`]/[`prop_oneof!`] macros. Cases are
//! generated from a deterministic per-test seed (derived from the test's
//! module path and name), so every run explores the same inputs — there is
//! no persistence file and **no shrinking**: on failure the macro prints
//! the generated inputs so they can be promoted to a deterministic test by
//! hand (see `tests/regressions_promoted.rs` for examples).

/// Deterministic splitmix64-based generator used for case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the fully qualified test name, decorrelated per case.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Runner configuration (only `cases` is meaningful in this stand-in).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Shrink-iteration cap; accepted for source compatibility with the
    /// real crate's `ProptestConfig { cases, ..default() }` idiom, ignored
    /// by this stand-in's runner (it does not shrink).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 1024 }
    }
}

pub mod strategy {
    //! The value-generation abstraction.

    use super::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe counterpart of [`Strategy`].
    pub trait DynStrategy<V> {
        /// Draw one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.as_ref().generate_dyn(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives ([`prop_oneof!`]).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from the alternatives.
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate_dyn(rng)
        }
    }

    /// Always produce a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Integers usable as range-strategy bounds.
    pub trait IntBound: Copy + Debug {
        /// Widen (order-preserving for the values used as bounds here).
        fn to_u64(self) -> u64;
        /// Narrow back.
        fn from_u64(v: u64) -> Self;
    }

    macro_rules! impl_int_bound {
        ($($t:ty),*) => {$(
            impl IntBound for $t {
                fn to_u64(self) -> u64 { self as u64 }
                fn from_u64(v: u64) -> Self { v as $t }
            }
        )*};
    }
    impl_int_bound!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: IntBound> Strategy for Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let lo = self.start.to_u64();
            let hi = self.end.to_u64();
            assert!(lo < hi, "empty range strategy");
            T::from_u64(lo + rng.below(hi - lo))
        }
    }

    impl<T: IntBound> Strategy for RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let lo = self.start().to_u64();
            let hi = self.end().to_u64();
            assert!(lo <= hi, "empty range strategy");
            let span = hi - lo;
            if span == u64::MAX {
                return T::from_u64(rng.next_u64());
            }
            T::from_u64(lo + rng.below(span + 1))
        }
    }

    /// Types with a canonical whole-domain strategy ([`any`]).
    pub trait Arbitrary: Sized + Debug {
        /// Draw one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Whole-domain strategy marker for `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (whole domain).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`].
    #[derive(Copy, Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_incl: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_incl: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with the given element strategy and length bounds.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_incl - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property (plain `assert!`; no early-return machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `cases` deterministic generated inputs.
/// On failure the generated inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let qualified = concat!(module_path!(), "::", stringify!($name));
            for case in 0..u64::from(cfg.cases) {
                let mut rng = $crate::TestRng::for_case(qualified, case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let repr = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                    $(&$arg),+
                );
                let outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed with inputs:\n{}",
                        case + 1, cfg.cases, qualified, repr
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Ranges stay in bounds; tuples and maps compose.
        #[test]
        fn generated_values_respect_strategies(
            x in 3usize..10,
            pair in (0u8..4, any::<bool>()),
            v in collection::vec(prop_oneof![(0u64..5).prop_map(|n| n * 2), 100u64..=101], 0..6),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(pair.0 < 4);
            prop_assert!(v.len() < 6);
            for e in v {
                prop_assert!(e % 2 == 0 || e == 101);
                prop_assert!(!(10..100).contains(&e));
            }
        }
    }
}
