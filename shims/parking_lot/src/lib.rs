//! Minimal offline stand-in for the `parking_lot` crate, implemented on
//! `std::sync`. Only the surface this workspace uses is provided: a
//! non-poisoning [`Mutex`] whose `lock()` returns the guard directly, and a
//! [`Condvar`] whose `wait` takes `&mut MutexGuard` (parking_lot's
//! signature, which `std`'s ownership-passing API cannot express directly).
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves the `parking_lot` name to this path crate instead.

use std::ops::{Deref, DerefMut};

/// Non-poisoning mutex. Panics while holding the lock simply release it.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner std guard sits in an `Option` so [`Condvar::wait`] can take it
/// by value and put it back, giving parking_lot's `&mut`-guard signature.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard stolen during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard stolen during wait")
    }
}

/// Condition variable with parking_lot's `&mut`-guard `wait`.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guarded mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard stolen during wait");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }
}
