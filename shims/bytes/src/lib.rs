//! Minimal offline stand-in for the `bytes` crate. [`Bytes`] is a cheaply
//! clonable, immutable, contiguous byte buffer backed by `Arc<Vec<u8>>` —
//! exactly the subset this workspace uses for RMA payloads. The `Vec`
//! backing (rather than `Arc<[u8]>`) makes `From<Vec<u8>>` adopt the
//! allocation instead of copying it, so building a payload from a
//! locally packed buffer is zero-copy.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::new(Vec::new()) }
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::new(data.to_vec()) }
    }

    /// Wrap a static slice (copies here; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: Arc::new(data.to_vec()) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        // Adopts the allocation — no copy.
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data[..] == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eq() {
        let a = Bytes::copy_from_slice(b"abc");
        let b = Bytes::from(vec![b'a', b'b', b'c']);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.as_ref(), b"abc");
        assert_eq!(a.to_vec(), vec![b'a', b'b', b'c']);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1u8; 1024]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }

    #[test]
    fn from_vec_adopts_the_allocation() {
        let v = vec![7u8; 64];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        assert!(std::ptr::eq(ptr, b.as_ref().as_ptr()));
    }
}
