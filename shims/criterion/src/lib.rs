//! Minimal offline stand-in for the `criterion` crate.
//!
//! Supports the subset the workspace benches use: [`black_box`],
//! [`Criterion::bench_function`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros (simple form). Each
//! benchmark runs a short warmup, then a fixed measurement pass, and prints
//! mean wall-clock time per iteration. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Opaque identity function that defeats constant folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark driver handed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the chosen number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark registry/runner.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Run one named benchmark: calibrating warmup, then measurement.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        // Warmup with one iteration to estimate cost, then size the
        // measurement pass to roughly 1s, capped to keep CI cheap.
        let mut warm = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut warm);
        let per_iter = warm.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_secs(1);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1000) as u64;

        let mut bench = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bench);
        let mean = bench.elapsed.as_nanos() as f64 / bench.iters as f64;
        println!("{name:<40} {:>12.1} ns/iter ({} iters)", mean, bench.iters);
        self
    }
}

/// Group benchmark functions under one runner function (simple form only).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_chains() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)))
            .bench_function("count", |b| {
                b.iter(|| calls += 1);
            });
        assert!(calls > 0);
    }
}
