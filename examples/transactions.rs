//! The massive unstructured atomic-transaction pattern of §IV.B: random
//! peers update random slots of random targets under exclusive locks,
//! driven three ways — blocking, nonblocking, and nonblocking with the
//! `A_A_A_R` out-of-order flag.
//!
//! Run with: `cargo run --release --example transactions`

use nonblocking_rma::apps::{expected_checksum, run_transactions, TxConfig, TxMode};
use nonblocking_rma::{JobConfig, SimTime};

fn main() {
    let n = 32;
    let base = TxConfig {
        txs_per_rank: 300,
        payload: 64,
        slots: 128,
        mode: TxMode::Blocking,
        aaar: false,
        think_time: SimTime::ZERO,
        dist: nonblocking_rma::apps::TargetDist::Uniform,
    };

    println!("{n} ranks, {} transactions each\n", base.txs_per_rank);
    for (label, mode, aaar) in [
        ("blocking epochs", TxMode::Blocking, false),
        ("nonblocking epochs", TxMode::Nonblocking { max_inflight: 16 }, false),
        (
            "nonblocking + A_A_A_R",
            TxMode::Nonblocking { max_inflight: 16 },
            true,
        ),
    ] {
        let cfg = TxConfig { mode, aaar, ..base.clone() };
        let res = run_transactions(JobConfig::new(n), cfg.clone()).unwrap();
        assert_eq!(res.checksum, expected_checksum(n, &cfg), "updates lost!");
        println!(
            "{label:<24} {:>10.0} tx/s  ({} in {})",
            res.tx_per_sec, res.total_txs, res.elapsed
        );
    }
}
