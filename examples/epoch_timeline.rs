//! Visualize epoch lifecycles: run the Late Post scenario with tracing on
//! and print the per-epoch timeline — deferral, early closes, and
//! asynchronous completion are directly visible.
//!
//! Run with: `cargo run --release --example epoch_timeline`

use nonblocking_rma::core::trace::render_timeline;
use nonblocking_rma::{run_job, Group, JobConfig, Rank, SimTime};

fn main() {
    let mut cfg = JobConfig::all_internode(2);
    cfg.trace = true;
    let report = run_job(cfg, |env| {
        let win = env.win_allocate(1 << 20).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            // The target posts its exposure 1000 µs late.
            env.compute(SimTime::from_micros(1000));
            env.post(win, Group::single(Rank(0))).unwrap();
            env.wait_epoch(win).unwrap();
        } else {
            // The origin closes nonblockingly and moves on immediately.
            env.start(win, Group::single(Rank(1))).unwrap();
            env.put_synthetic(win, Rank(1), 0, 1 << 20).unwrap();
            let r = env.icomplete(win).unwrap();
            env.compute(SimTime::from_micros(300)); // independent work
            env.wait(r).unwrap();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();

    println!("Late Post through the lens of the epoch trace (µs):\n");
    print!("{}", render_timeline(&report.trace));
    println!(
        "\nReading it: rank 0's gats-access epoch is *closed* a few µs in \
         (icomplete) but *completes* only after the late target posts at \
         ~1000 µs — the close→done column is exactly the latency the \
         nonblocking epoch keeps off the application's critical path."
    );
}
