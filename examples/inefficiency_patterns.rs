//! A guided tour of the paper's inefficiency patterns (§III): provoke
//! Late Post, Late Complete, and Late Unlock with blocking epochs, then
//! dissolve each with the nonblocking API.
//!
//! Run with: `cargo run --release --example inefficiency_patterns`

use std::sync::{Arc, Mutex};

use nonblocking_rma::{run_job, Group, JobConfig, LockKind, Rank, SimTime};

const MB: usize = 1 << 20;

fn measure(label: &str, nonblocking: bool) {
    // Late Post: the target posts 1000 µs late; the origin wants to move
    // on to an independent activity.
    let t = Arc::new(Mutex::new(0.0));
    let t2 = t.clone();
    run_job(JobConfig::all_internode(2), move |env| {
        let win = env.win_allocate(MB).unwrap();
        env.barrier().unwrap();
        let t0 = env.now();
        if env.rank().idx() == 1 {
            env.compute(SimTime::from_micros(1000)); // late!
            env.post(win, Group::single(Rank(0))).unwrap();
            env.wait_epoch(win).unwrap();
        } else {
            env.start(win, Group::single(Rank(1))).unwrap();
            env.put_synthetic(win, Rank(1), 0, MB).unwrap();
            if nonblocking {
                let r = env.icomplete(win).unwrap();
                env.compute(SimTime::from_micros(300)); // independent work
                env.wait(r).unwrap();
            } else {
                env.complete(win).unwrap();
                env.compute(SimTime::from_micros(300));
            }
            *t2.lock().unwrap() = (env.now() - t0).as_micros_f64();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    println!("  {label:<38} origin total: {:>8.1} µs", t.lock().unwrap());
}

fn late_unlock(label: &str, nonblocking: bool) {
    let t = Arc::new(Mutex::new(0.0));
    let t2 = t.clone();
    run_job(JobConfig::all_internode(3), move |env| {
        let win = env.win_allocate(MB).unwrap();
        env.barrier().unwrap();
        match env.rank().idx() {
            0 => {
                env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
                env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                if nonblocking {
                    let r = env.iunlock(win, Rank(2)).unwrap();
                    env.compute(SimTime::from_micros(1000));
                    env.wait(r).unwrap();
                } else {
                    env.compute(SimTime::from_micros(1000));
                    env.unlock(win, Rank(2)).unwrap();
                }
            }
            1 => {
                env.compute(SimTime::from_micros(50));
                let t0 = env.now();
                env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
                env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                env.unlock(win, Rank(2)).unwrap();
                *t2.lock().unwrap() = (env.now() - t0).as_micros_f64();
            }
            _ => {}
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    println!("  {label:<38} second requester: {:>8.1} µs", t.lock().unwrap());
}

fn main() {
    println!("Late Post (target 1000 µs late, then 300 µs of origin work):");
    measure("blocking complete serializes", false);
    measure("icomplete overlaps the delay", true);

    println!("\nLate Unlock (holder works 1000 µs before releasing):");
    late_unlock("blocking unlock propagates the wait", false);
    late_unlock("iunlock releases at transfer end", true);
}
