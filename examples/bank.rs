//! Lock-free bank transfers: `compare_and_swap` retry loops inside one
//! long-lived `lock_all` epoch, with flushes for remote completion. Money
//! is conserved exactly no matter how transfers interleave.
//!
//! Run with: `cargo run --release --example bank`

use nonblocking_rma::apps::{run_bank, BankConfig};
use nonblocking_rma::JobConfig;

fn main() {
    let n = 16;
    let cfg = BankConfig {
        accounts_per_rank: 4,
        initial_balance: 1_000,
        transfers_per_rank: 200,
        max_amount: 300,
    };
    let expected = n as u64 * cfg.accounts_per_rank as u64 * cfg.initial_balance;
    let r = run_bank(JobConfig::new(n), cfg).unwrap();
    println!(
        "{} transfers committed, {} aborted (insufficient funds), {} CAS retries",
        r.committed, r.insufficient, r.retries
    );
    println!(
        "total money: {} (expected {}), min balance {}, {} of virtual time",
        r.total_money, expected, r.min_balance, r.elapsed
    );
    assert_eq!(r.total_money, expected, "conservation violated!");
    println!("conservation holds ✓");
}
