//! Quickstart: every epoch flavour of the API in one small program.
//!
//! Run with: `cargo run --release --example quickstart`

use nonblocking_rma::{run_job, Group, JobConfig, LockKind, Rank, SimTime};

fn main() {
    let report = run_job(JobConfig::new(4), |env| {
        let me = env.rank();
        let n = env.n_ranks();
        let win = env.win_allocate(8 * n).unwrap();

        // ---- 1. Fence epochs: everyone puts its rank to its neighbour.
        env.fence(win).unwrap();
        let next = Rank((me.idx() + 1) % n);
        env.put(win, next, 8 * me.idx(), &(me.idx() as u64).to_le_bytes())
            .unwrap();
        env.fence(win).unwrap();

        // ---- 2. GATS epochs: rank 0 gathers a value from rank 1.
        if me.idx() == 0 {
            env.start(win, Group::single(Rank(1))).unwrap();
            let get = env.get(win, Rank(1), 0, 8).unwrap();
            env.complete(win).unwrap();
            let bytes = env.wait_data(get).unwrap();
            println!(
                "rank0 read {} from rank1's window",
                u64::from_le_bytes(bytes.as_ref().try_into().unwrap())
            );
        } else if me.idx() == 1 {
            env.post(win, Group::single(Rank(0))).unwrap();
            env.wait_epoch(win).unwrap();
        }
        env.barrier().unwrap();

        // ---- 3. A fully nonblocking lock epoch with overlap (§V).
        if me.idx() == 2 {
            let _open = env.ilock(win, Rank(3), LockKind::Exclusive).unwrap();
            env.put(win, Rank(3), 0, &999u64.to_le_bytes()).unwrap();
            let done = env.iunlock(win, Rank(3)).unwrap();
            // The epoch completes in the background while we compute.
            env.compute(SimTime::from_micros(500));
            env.wait(done).unwrap();
            println!("rank2 finished its nonblocking epoch at {}", env.now());
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();

    println!(
        "done: {} virtual time, {} events, {} messages",
        report.final_time, report.sim.events_executed, report.net.msgs_sent
    );
}
