//! 2-D five-point stencil with RMA ghost exchange: halo columns travel as
//! strided puts, halo rows as contiguous puts, all inside GATS epochs made
//! concurrent by the paper's reorder flags. Validated bitwise against a
//! sequential oracle.
//!
//! Run with: `cargo run --release --example stencil2d`

use nonblocking_rma::apps::{process_grid, run_stencil2d, Stencil2dConfig};
use nonblocking_rma::JobConfig;

fn main() {
    let n = 8;
    let (pr, pc) = process_grid(n);
    println!("{n} ranks as a {pr}x{pc} process grid over a 32x32 periodic field\n");
    for (label, nonblocking) in [("blocking epochs", false), ("nonblocking epochs", true)] {
        let r = run_stencil2d(
            JobConfig::new(n),
            Stencil2dConfig {
                rows: 32,
                cols: 32,
                iters: 25,
                nonblocking,
            },
        )
        .unwrap();
        println!(
            "{label:<20} time {:>12}  checksum {:.6}  max|err| vs oracle {}",
            r.total_time, r.checksum, r.max_error
        );
        assert_eq!(r.max_error, 0.0);
    }
    println!("\nboth flavours reproduce the sequential stencil exactly ✓");
}
