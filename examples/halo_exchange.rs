//! 1-D ghost-cell exchange: the same stencil driven by fence epochs, GATS
//! epochs, and nonblocking GATS epochs — all producing bitwise-identical
//! fields. The GATS variants rely on the paper's reorder flags to let each
//! rank's access and exposure epochs progress concurrently.
//!
//! Run with: `cargo run --release --example halo_exchange`

use nonblocking_rma::apps::{run_halo, HaloConfig, HaloSync};
use nonblocking_rma::JobConfig;

fn main() {
    let mut checksums = Vec::new();
    for (label, sync) in [
        ("fence epochs", HaloSync::Fence),
        ("GATS epochs", HaloSync::Gats),
        ("GATS nonblocking", HaloSync::GatsNonblocking),
    ] {
        let r = run_halo(
            JobConfig::new(8),
            HaloConfig {
                cells_per_rank: 256,
                iters: 50,
                sync,
            },
        )
        .unwrap();
        println!(
            "{label:<18} time {:>12}   checksum {:.6}",
            r.total_time, r.checksum
        );
        checksums.push(r.checksum.to_bits());
    }
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "sync flavours disagree!"
    );
    println!("all three synchronization flavours agree bitwise ✓");
}
