//! Distributed LU decomposition (1-D row-cyclic over GATS epochs) with
//! real data, validated against a sequential oracle — then the same kernel
//! at a larger modeled scale comparing blocking vs nonblocking epochs.
//!
//! Run with: `cargo run --release --example lu_solver`

use nonblocking_rma::apps::{run_lu, LuConfig, LuMode, LuSync};
use nonblocking_rma::JobConfig;

fn main() {
    // Small real-data factorization, bitwise-checked.
    let real = run_lu(JobConfig::new(4), LuConfig::small(64, LuSync::Nonblocking)).unwrap();
    println!(
        "real 64x64 LU on 4 ranks: {} (max |err| vs oracle = {:?})",
        real.total_time, real.max_error
    );
    assert_eq!(real.max_error, Some(0.0));

    // Modeled scale: the Late Complete effect in action.
    for (label, sync) in [("blocking", LuSync::Blocking), ("nonblocking", LuSync::Nonblocking)] {
        let cfg = LuConfig {
            m: 512,
            mode: LuMode::Modeled,
            sync,
            t_flop_ns: 30.0,
        };
        let r = run_lu(JobConfig::new(8), cfg).unwrap();
        println!(
            "modeled 512x512 LU on 8 ranks, {label:<12} time {:>12}   comm {:>5.1}%",
            r.total_time,
            r.comm_fraction * 100.0
        );
    }
}
