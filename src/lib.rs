//! # nonblocking-rma — nonblocking epochs for MPI one-sided communication
//!
//! A complete Rust reproduction of *"Nonblocking Epochs in MPI One-Sided
//! Communication"* (SC 2014): an MPI-like RMA middleware in which every
//! epoch synchronization — opening, closing, flushing — has a nonblocking
//! variant, plus the deferred-epoch progress engine, O(1) ω-triple epoch
//! matching, and the four out-of-order progression flags the paper
//! proposes. Ranks execute on a deterministic discrete-event simulation of
//! a QDR-InfiniBand-class cluster, so every latency in the paper's
//! evaluation can be regenerated on a laptop.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`sim`] — the discrete-event kernel (`mpisim-sim`);
//! * [`net`] — the interconnect model (`mpisim-net`);
//! * [`core`] — the RMA middleware (`mpisim-core`), also re-exported at
//!   the top level;
//! * [`apps`] — LU, transactions, and halo kernels (`mpisim-apps`).
//!
//! ## Quickstart
//!
//! ```
//! use nonblocking_rma::{run_job, JobConfig, LockKind, Rank};
//!
//! run_job(JobConfig::new(2), |env| {
//!     let win = env.win_allocate(64).unwrap();
//!     env.barrier().unwrap();
//!     if env.rank().idx() == 0 {
//!         // A fully nonblocking passive-target epoch (§V of the paper):
//!         let _open = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
//!         env.put(win, Rank(1), 0, b"epoch!").unwrap();
//!         let done = env.iunlock(win, Rank(1)).unwrap();
//!         env.compute(nonblocking_rma::SimTime::from_micros(100)); // overlap
//!         env.wait(done).unwrap();
//!     }
//!     env.barrier().unwrap();
//!     env.win_free(win).unwrap();
//! })
//! .unwrap();
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! harnesses that regenerate every figure of the paper.

pub use mpisim_apps as apps;
pub use mpisim_core as core;
pub use mpisim_net as net;
pub use mpisim_sim as sim;

pub use mpisim_core::{
    run_job, Datatype, Engine, EngineStats, Group, JobConfig, JobReport, LockKind, Overheads,
    Rank, RankEnv, RankStats, ReduceOp, Req, RmaError, RmaResult, SyncStrategy, WinId, WinInfo,
};
pub use mpisim_sim::SimTime;
