//! Workload-level behavioural tests: the paper's qualitative claims about
//! its two application kernels, checked as executable assertions.

use mpisim_apps::{
    run_halo, run_lu, run_transactions, HaloConfig, HaloSync, LuConfig, LuMode, LuSync,
    TxConfig, TxMode,
};
use mpisim_core::{JobConfig, SyncStrategy};
use mpisim_sim::SimTime;

#[test]
fn think_time_widens_the_nonblocking_gap() {
    // §VIII.B: "The difference [between blocking and nonblocking] is small
    // because the epochs are issued back to back ... That difference would
    // be more substantial if there were computations between adjacent
    // transactions."
    fn elapsed(mode: TxMode, think_us: u64) -> f64 {
        let cfg = TxConfig {
            txs_per_rank: 40,
            payload: 64,
            slots: 128,
            mode,
            aaar: false,
            think_time: SimTime::from_micros(think_us),
            dist: mpisim_apps::TargetDist::Uniform,
        };
        run_transactions(JobConfig::all_internode(6), cfg)
            .unwrap()
            .elapsed
            .as_secs_f64()
    }
    let nb = TxMode::Nonblocking { max_inflight: 16 };
    let gap_no_think = elapsed(TxMode::Blocking, 0) / elapsed(nb, 0);
    let gap_think = elapsed(TxMode::Blocking, 30) / elapsed(nb, 30);
    assert!(
        gap_think > gap_no_think,
        "think time should widen the nonblocking advantage: \
         {gap_no_think:.3}x (no think) vs {gap_think:.3}x (30 µs think)"
    );
    assert!(
        gap_think > 1.1,
        "with think time, nonblocking should clearly win: {gap_think:.3}x"
    );
}

#[test]
fn lu_mixed_topology_matches_oracle() {
    // Intranode FIFOs + internode channels in the same factorization.
    let mut job = JobConfig::new(6).with_strategy(SyncStrategy::Redesigned);
    job.cores_per_node = 3;
    let r = run_lu(job, LuConfig::small(24, LuSync::Nonblocking)).unwrap();
    assert_eq!(r.max_error, Some(0.0));
}

#[test]
fn lu_comm_fraction_grows_with_job_size() {
    // Fig 13 b/d: fixed matrix, growing job ⇒ growing communication share.
    let frac = |n: usize| {
        run_lu(
            JobConfig::all_internode(n),
            LuConfig {
                m: 128,
                mode: LuMode::Modeled,
                sync: LuSync::Blocking,
                t_flop_ns: 30.0,
            },
        )
        .unwrap()
        .comm_fraction
    };
    let f4 = frac(4);
    let f16 = frac(16);
    assert!(
        f16 > f4,
        "comm share must grow with job size: {f4:.3} (4) vs {f16:.3} (16)"
    );
}

#[test]
fn lu_time_scales_down_then_comm_dominates() {
    // The Fig 13(a) U-shape driver: doubling ranks roughly halves time in
    // the compute-bound regime.
    let time = |n: usize| {
        run_lu(
            JobConfig::all_internode(n),
            LuConfig {
                m: 256,
                mode: LuMode::Modeled,
                sync: LuSync::Nonblocking,
                t_flop_ns: 30.0,
            },
        )
        .unwrap()
        .total_time
        .as_secs_f64()
    };
    let t4 = time(4);
    let t8 = time(8);
    assert!(t8 < t4 * 0.7, "compute-bound scaling broken: {t4} -> {t8}");
}

#[test]
fn halo_nonblocking_not_slower_with_fat_cells() {
    // With large enough per-iteration compute, the nonblocking tail overlap
    // cannot lose to the blocking variant.
    let run = |sync| {
        run_halo(
            JobConfig::all_internode(6),
            HaloConfig {
                cells_per_rank: 4096,
                iters: 20,
                sync,
            },
        )
        .unwrap()
    };
    let b = run(HaloSync::Gats);
    let nb = run(HaloSync::GatsNonblocking);
    assert_eq!(b.checksum.to_bits(), nb.checksum.to_bits());
    assert!(
        nb.total_time.as_secs_f64() <= b.total_time.as_secs_f64() * 1.05,
        "nonblocking halo should not be slower: {} vs {}",
        nb.total_time,
        b.total_time
    );
}

#[test]
fn transactions_scale_with_ranks_under_uniform_targets() {
    // All-internode topology keeps the per-transaction cost constant, so
    // aggregate throughput scales with ranks (uniform random targets).
    let tput = |n: usize| {
        run_transactions(
            JobConfig::all_internode(n),
            TxConfig {
                txs_per_rank: 50,
                payload: 32,
                slots: 64,
                mode: TxMode::Nonblocking { max_inflight: 8 },
                aaar: true,
                think_time: SimTime::ZERO,
                dist: mpisim_apps::TargetDist::Uniform,
            },
        )
        .unwrap()
        .tx_per_sec
    };
    let t8 = tput(8);
    let t32 = tput(32);
    assert!(
        t32 > 2.0 * t8,
        "uniform random targets should scale: {t8:.0} (8) vs {t32:.0} (32)"
    );
}
