//! Static IR twins of the application workloads.
//!
//! Each builder mirrors the epoch skeleton of one kernel in this crate —
//! the same synchronization discipline, the same per-rank communication
//! pattern, all closes blocking — as an [`IrProgram`] the static layer
//! can analyze and the slack rewriter can relax. The twins are
//! analyzer-clean by construction (equal fence counts per rank, matched
//! start/post groups, disjoint per-origin write regions, same-op-no-op
//! compatible atomics), so the rewriter's output on them is the static
//! layer's prediction for the real workload: the `rewrite_apps` figure
//! in the bench crate executes both versions under the engine and
//! reports the blocked-steps / virtual-time delta.
//!
//! Builders take explicit scales and use a tiny inline LCG where the
//! real kernel draws random targets, so a twin is a pure function of
//! its arguments — no `rand` state, no wall clock.

use mpisim_analyze::{Close, FetchKind, IrProgram, Stmt};
use mpisim_core::ReduceOp;

/// Window size shared by every twin: eight 8-byte slots.
const WIN_BYTES: usize = 64;

/// Deterministic splitmix64 step — the twins' stand-in for the real
/// kernels' seeded RNG.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// IR twin of [`crate::halo`]'s fence discipline: per iteration each
/// rank puts one ghost cell to each ring neighbour, separated by
/// collective blocking fences. Identical shape to the macrobench
/// `halo_fence_ir` workload.
pub fn halo_ir(n_ranks: usize, iters: usize) -> IrProgram {
    assert!(n_ranks >= 2);
    let mut p = IrProgram::new(n_ranks, WIN_BYTES);
    for me in 0..n_ranks {
        let left = (me + n_ranks - 1) % n_ranks;
        let right = (me + 1) % n_ranks;
        let stmts = &mut p.ranks[me];
        stmts.push(Stmt::Fence { win: 0, close: Close::Blocking });
        for i in 0..iters {
            stmts.push(Stmt::Put { win: 0, target: left, disp: 8, len: 8 });
            stmts.push(Stmt::Put { win: 0, target: right, disp: (i % 2) * 24, len: 8 });
            stmts.push(Stmt::Fence { win: 0, close: Close::Blocking });
        }
    }
    p
}

/// IR twin of [`crate::stencil2d`]'s neighbour exchange, restructured
/// into two GATS half-phases per iteration (even ranks expose while odd
/// ranks access, then roles swap) so the twin needs no reorder flags:
/// the rewriter refuses to touch reorder-pinned programs, and the point
/// of the twin is to measure what it *can* do. Requires an even rank
/// count so the ring 2-colours.
pub fn stencil2d_ir(n_ranks: usize, iters: usize) -> IrProgram {
    assert!(n_ranks >= 2 && n_ranks.is_multiple_of(2), "ring must 2-colour");
    let mut p = IrProgram::new(n_ranks, WIN_BYTES);
    for me in 0..n_ranks {
        let up = (me + n_ranks - 1) % n_ranks;
        let down = (me + 1) % n_ranks;
        let mut group = vec![up, down];
        group.sort_unstable();
        group.dedup();
        let stmts = &mut p.ranks[me];
        for _ in 0..iters {
            for phase in 0..2 {
                // Phase 0: odd ranks access even neighbours; phase 1: swap.
                if (me % 2 == 1) == (phase == 0) {
                    stmts.push(Stmt::Start { win: 0, group: group.clone() });
                    // North ghost row lands in the target's low half,
                    // south ghost row in its high half: the two origins
                    // writing any one target never overlap.
                    stmts.push(Stmt::Put { win: 0, target: up, disp: 0, len: 32 });
                    stmts.push(Stmt::Put { win: 0, target: down, disp: 32, len: 32 });
                    stmts.push(Stmt::Complete { win: 0, close: Close::Blocking });
                } else {
                    stmts.push(Stmt::Post { win: 0, group: group.clone() });
                    stmts.push(Stmt::WaitEpoch { win: 0, close: Close::Blocking });
                }
            }
        }
    }
    p
}

/// IR twin of [`crate::lu`]'s panel broadcast: for panel `k` the owner
/// rank opens one GATS access epoch toward everyone else and puts the
/// factored panel; the others expose toward the owner and wait.
pub fn lu_ir(n_ranks: usize, panels: usize) -> IrProgram {
    assert!(n_ranks >= 2);
    let mut p = IrProgram::new(n_ranks, WIN_BYTES);
    for k in 0..panels {
        let owner = k % n_ranks;
        let disp = (k % 8) * 8;
        for me in 0..n_ranks {
            let stmts = &mut p.ranks[me];
            if me == owner {
                let others: Vec<usize> = (0..n_ranks).filter(|&r| r != me).collect();
                stmts.push(Stmt::Start { win: 0, group: others.clone() });
                for t in others {
                    stmts.push(Stmt::Put { win: 0, target: t, disp, len: 8 });
                }
                stmts.push(Stmt::Complete { win: 0, close: Close::Blocking });
            } else {
                stmts.push(Stmt::Post { win: 0, group: vec![owner] });
                stmts.push(Stmt::WaitEpoch { win: 0, close: Close::Blocking });
            }
        }
    }
    p
}

/// IR twin of [`crate::transactions`]: each transaction takes an
/// exclusive lock on a pseudo-random peer, accumulates into one of its
/// slots, and unlocks. One lock held at a time, so no lock-order cycle;
/// all updates are `Sum`, so concurrent epochs stay compatible.
pub fn transactions_ir(n_ranks: usize, txs: usize) -> IrProgram {
    assert!(n_ranks >= 2);
    let mut p = IrProgram::new(n_ranks, WIN_BYTES);
    for me in 0..n_ranks {
        let mut rng = 0x5eed_0000_u64 + me as u64;
        let stmts = &mut p.ranks[me];
        for _ in 0..txs {
            let target = {
                let t = (mix(&mut rng) as usize) % (n_ranks - 1);
                if t >= me { t + 1 } else { t }
            };
            let disp = ((mix(&mut rng) as usize) % 8) * 8;
            stmts.push(Stmt::Lock { win: 0, target, exclusive: true, nonblocking: false });
            stmts.push(Stmt::Acc { win: 0, target, disp, len: 8, op: ReduceOp::Sum });
            stmts.push(Stmt::Unlock { win: 0, target, close: Close::Blocking });
        }
    }
    p
}

/// IR twin of [`crate::bank`]'s transfer loop: one `lock_all` epoch per
/// rank, each transfer a value-producing balance read
/// (`fetch_and_op(NO_OP)`) plus a `Sum` credit, flushed per transfer
/// exactly as the kernel does. The reads bind IR locals, so this twin
/// also exercises the value-aware statements on an analyzer-clean
/// program (no spin, hence no E018).
pub fn bank_ir(n_ranks: usize, transfers: usize) -> IrProgram {
    assert!(n_ranks >= 2);
    let mut p = IrProgram::new(n_ranks, WIN_BYTES);
    for me in 0..n_ranks {
        let mut rng = 0xba2c_0000_u64 + me as u64;
        let stmts = &mut p.ranks[me];
        stmts.push(Stmt::LockAll { win: 0 });
        for i in 0..transfers {
            let target = {
                let t = (mix(&mut rng) as usize) % (n_ranks - 1);
                if t >= me { t + 1 } else { t }
            };
            let disp = ((mix(&mut rng) as usize) % 8) * 8;
            stmts.push(Stmt::ReadValue {
                win: 0,
                target,
                disp,
                kind: FetchKind::FetchOp(ReduceOp::NoOp),
                local: i,
            });
            stmts.push(Stmt::AccVal {
                win: 0,
                target,
                disp,
                op: ReduceOp::Sum,
                val: 1 + (i as u64 % 7),
            });
            stmts.push(Stmt::Flush {
                win: 0,
                target: Some(target),
                local_only: false,
                close: Close::Blocking,
            });
        }
        stmts.push(Stmt::UnlockAll { win: 0, close: Close::Blocking });
        stmts.push(Stmt::Barrier);
    }
    p
}

/// Every application twin at a common scale, labelled for figures and
/// sweeps. `short` is the CI smoke scale.
pub fn suite(short: bool) -> Vec<(&'static str, IrProgram)> {
    let (r, it) = if short { (4, 4) } else { (8, 12) };
    vec![
        ("halo", halo_ir(r, it)),
        ("stencil2d", stencil2d_ir(r, it)),
        ("lu", lu_ir(r, it)),
        ("transactions", transactions_ir(r, it)),
        ("bank", bank_ir(r, it)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim_analyze::{analyze, rewrite};

    #[test]
    fn every_twin_is_analyzer_clean() {
        for (name, p) in suite(true).into_iter().chain(suite(false)) {
            let diags = analyze(&p);
            assert!(diags.is_empty(), "{name}: {diags:?}");
        }
    }

    #[test]
    fn rewriter_finds_slack_in_every_twin_and_stays_clean() {
        for (name, p) in suite(false) {
            let (rw, rep) = rewrite(&p);
            if name == "transactions" {
                // Every unlock here releases a contended exclusive
                // lock; the rewriter's contention veto declines them
                // all (relaxing any one defers a release some peer's
                // acquire is waiting on).
                assert_eq!(rep.relaxed, 0, "{name}: contended unlock was relaxed");
                assert!(rep.skipped > 0, "{name}: veto left no trace in `skipped`");
                assert_eq!(rw, p, "{name}: program changed despite the veto");
                continue;
            }
            assert!(rep.changed(), "{name}: rewriter found nothing");
            let diags = analyze(&rw);
            assert!(diags.is_empty(), "{name} rewritten: {diags:?}");
            // Second application reaches the same fixpoint.
            let (rw2, _) = rewrite(&rw);
            assert_eq!(rw, rw2, "{name}: rewrite not idempotent");
        }
    }

    #[test]
    fn twins_are_deterministic() {
        assert_eq!(transactions_ir(6, 5), transactions_ir(6, 5));
        assert_eq!(bank_ir(6, 5), bank_ir(6, 5));
        assert_eq!(suite(true), suite(true));
    }
}
