//! # mpisim-apps — application kernels over the nonblocking-RMA runtime
//!
//! The workloads the paper evaluates (§VIII.B) plus one extra stencil
//! pattern:
//!
//! * [`transactions`] — the dynamic unstructured massive-transactions
//!   pattern (§IV.B, Fig 12): random atomic updates in exclusive-lock
//!   epochs, driven blocking, nonblocking, or nonblocking + `A_A_A_R`.
//! * [`lu`] — 1-D row-cyclic LU decomposition over GATS epochs (Fig 13),
//!   with a real-data validated mode and a paper-scale modeled mode.
//! * [`halo`] — 1-D ghost-cell exchange, exercising concurrent
//!   access/exposure epochs enabled by the §VI.B reorder flags.
//! * [`bank`] — lock-free bank transfers via `compare_and_swap` retry
//!   loops inside a `lock_all` epoch, with conservation invariants.
//! * [`stencil2d`] — 2-D five-point stencil whose column halos travel as
//!   *strided* puts, validated bitwise against a sequential oracle.

#![warn(missing_docs)]

pub mod bank;
pub mod halo;
pub mod ir_models;
pub mod stencil2d;
pub mod lu;
pub mod transactions;

pub use bank::{run_bank, BankConfig, BankResult};
pub use ir_models::{bank_ir, halo_ir as halo_ir_model, lu_ir, stencil2d_ir, transactions_ir};
pub use halo::{run_halo, HaloConfig, HaloResult, HaloSync};
pub use lu::{run_lu, sequential_lu, LuConfig, LuMode, LuResult, LuSync};
pub use stencil2d::{process_grid, run_stencil2d, sequential_stencil, Stencil2dConfig, Stencil2dResult};
pub use transactions::{expected_checksum, run_transactions, TargetDist, TxConfig, TxMode, TxResult};
