//! A lock-free transactional kernel: randomized bank transfers using
//! `compare_and_swap` retry loops inside a single long-lived `lock_all`
//! epoch, with flushes for remote completion — the "massive transactions"
//! idea of §IV.B driven through MPI-3 atomics instead of exclusive locks.
//!
//! Invariants checked: money is conserved exactly, and no account ever
//! goes negative (a debit only commits if the CAS observes sufficient
//! funds).

use mpisim_core::{run_job, Datatype, JobConfig, Rank, ReduceOp};
use mpisim_sim::{seeded_rng, SimError, SimTime};
use rand::Rng;

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct BankConfig {
    /// Accounts hosted per rank.
    pub accounts_per_rank: usize,
    /// Initial balance per account.
    pub initial_balance: u64,
    /// Transfers attempted per rank.
    pub transfers_per_rank: usize,
    /// Maximum amount per transfer.
    pub max_amount: u64,
}

impl Default for BankConfig {
    fn default() -> Self {
        BankConfig {
            accounts_per_rank: 8,
            initial_balance: 1_000,
            transfers_per_rank: 50,
            max_amount: 200,
        }
    }
}

/// Result of a bank run.
#[derive(Debug, Clone, Copy)]
pub struct BankResult {
    /// Transfers that committed (debit CAS succeeded with funds).
    pub committed: u64,
    /// Transfers abandoned for insufficient funds.
    pub insufficient: u64,
    /// CAS retries caused by contention.
    pub retries: u64,
    /// Final sum of every balance.
    pub total_money: u64,
    /// Smallest balance observed at the end.
    pub min_balance: u64,
    /// Virtual time of the whole run.
    pub elapsed: SimTime,
}

/// Run the workload. Total money must equal
/// `n_ranks * accounts_per_rank * initial_balance` afterwards.
pub fn run_bank(job: JobConfig, cfg: BankConfig) -> Result<BankResult, SimError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let n = job.n_ranks;
    let committed = Arc::new(AtomicU64::new(0));
    let insufficient = Arc::new(AtomicU64::new(0));
    let retries = Arc::new(AtomicU64::new(0));
    let total = Arc::new(AtomicU64::new(0));
    let min_bal = Arc::new(AtomicU64::new(u64::MAX));
    let (c2, i2, r2, t2, m2) = (
        committed.clone(),
        insufficient.clone(),
        retries.clone(),
        total.clone(),
        min_bal.clone(),
    );
    let cfg2 = cfg.clone();

    let report = run_job(job, move |env| {
        let cfg = &cfg2;
        let me = env.rank().idx();
        let win = env.win_allocate(cfg.accounts_per_rank * 8).unwrap();
        // Fund my accounts.
        for a in 0..cfg.accounts_per_rank {
            env.write_local(win, a * 8, &cfg.initial_balance.to_le_bytes())
                .unwrap();
        }
        env.barrier().unwrap();
        env.lock_all(win).unwrap();

        let mut rng = seeded_rng(0xBA22, me as u64);
        let total_accounts = n * cfg.accounts_per_rank;
        let read = |env: &mpisim_core::RankEnv, rank: Rank, disp: usize| -> u64 {
            let r = env
                .fetch_and_op(win, rank, disp, Datatype::U64, ReduceOp::NoOp, &0u64.to_le_bytes())
                .unwrap();
            env.flush(win, rank).unwrap();
            u64::from_le_bytes(env.wait_data(r).unwrap().as_ref().try_into().unwrap())
        };

        for _ in 0..cfg.transfers_per_rank {
            let from = rng.gen_range(0..total_accounts);
            let mut to = rng.gen_range(0..total_accounts);
            if to == from {
                to = (to + 1) % total_accounts;
            }
            let amount = rng.gen_range(1..=cfg.max_amount);
            let (fr, fd) = (Rank(from / cfg.accounts_per_rank), (from % cfg.accounts_per_rank) * 8);
            let (tr, td) = (Rank(to / cfg.accounts_per_rank), (to % cfg.accounts_per_rank) * 8);

            // Debit with a CAS retry loop.
            let mut old = read(env, fr, fd);
            let ok = loop {
                if old < amount {
                    break false;
                }
                let new = old - amount;
                let r = env
                    .compare_and_swap(win, fr, fd, Datatype::U64, &old.to_le_bytes(), &new.to_le_bytes())
                    .unwrap();
                env.flush(win, fr).unwrap();
                let seen =
                    u64::from_le_bytes(env.wait_data(r).unwrap().as_ref().try_into().unwrap());
                if seen == old {
                    break true;
                }
                r2.fetch_add(1, Ordering::Relaxed);
                old = seen;
            };
            if ok {
                // Credit is a plain atomic add — no retry needed.
                env.accumulate(win, tr, td, Datatype::U64, ReduceOp::Sum, &amount.to_le_bytes())
                    .unwrap();
                env.flush(win, tr).unwrap();
                c2.fetch_add(1, Ordering::Relaxed);
            } else {
                i2.fetch_add(1, Ordering::Relaxed);
            }
        }

        env.unlock_all(win).unwrap();
        env.barrier().unwrap();
        // Audit my accounts.
        for a in 0..cfg.accounts_per_rank {
            let v = u64::from_le_bytes(
                env.read_local(win, a * 8, 8).unwrap().try_into().unwrap(),
            );
            t2.fetch_add(v, Ordering::Relaxed);
            m2.fetch_min(v, Ordering::Relaxed);
        }
        env.win_free(win).unwrap();
    })?;

    Ok(BankResult {
        committed: committed.load(std::sync::atomic::Ordering::Relaxed),
        insufficient: insufficient.load(std::sync::atomic::Ordering::Relaxed),
        retries: retries.load(std::sync::atomic::Ordering::Relaxed),
        total_money: total.load(std::sync::atomic::Ordering::Relaxed),
        min_balance: min_bal.load(std::sync::atomic::Ordering::Relaxed),
        elapsed: report.final_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn money_is_conserved() {
        let cfg = BankConfig::default();
        let r = run_bank(JobConfig::new(4), cfg.clone()).unwrap();
        assert_eq!(
            r.total_money,
            4 * (cfg.accounts_per_rank as u64) * cfg.initial_balance
        );
        assert!(r.committed > 0);
    }

    #[test]
    fn no_negative_balances_even_under_drain() {
        // Tiny balances + large transfers force many insufficient-funds
        // aborts; min balance must remain representable (no wraparound).
        let cfg = BankConfig {
            accounts_per_rank: 2,
            initial_balance: 50,
            transfers_per_rank: 80,
            max_amount: 60,
        };
        let r = run_bank(JobConfig::all_internode(4), cfg.clone()).unwrap();
        assert_eq!(r.total_money, 4 * 2 * 50);
        assert!(r.min_balance <= 50);
        assert!(r.insufficient > 0, "drain scenario should abort transfers");
        // A wrapped balance would explode the total; also check magnitude.
        assert!(r.total_money < 10_000);
    }

    #[test]
    fn contention_causes_retries_but_not_loss() {
        // One account per rank, few ranks, many transfers: CAS collisions
        // are likely, yet conservation must hold.
        let cfg = BankConfig {
            accounts_per_rank: 1,
            initial_balance: 10_000,
            transfers_per_rank: 60,
            max_amount: 10,
        };
        let r = run_bank(JobConfig::all_internode(6), cfg).unwrap();
        assert_eq!(r.total_money, 6 * 10_000);
        assert_eq!(r.committed + r.insufficient, 6 * 60);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let r = run_bank(JobConfig::new(3).with_seed(5), BankConfig::default()).unwrap();
            (r.committed, r.retries, r.elapsed.as_nanos())
        };
        assert_eq!(run(), run());
    }
}
