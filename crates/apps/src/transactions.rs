//! The "dynamic unstructured massive transactions" pattern of §IV.B /
//! Fig 12: at any time, a set of peers updates another set of peers at
//! unpredictable offsets; each update is atomic and lives in its own
//! exclusive-lock epoch.
//!
//! With blocking synchronization every update waits for the previous one;
//! with nonblocking epochs several updates are in flight, and with
//! `A_A_A_R` they may progress and complete out of order, turning epoch
//! serialization into transaction pipelining.

use mpisim_core::{
    run_job, Datatype, JobConfig, LockKind, Rank, ReduceOp, RmaResult, WinInfo,
};
use mpisim_sim::{seeded_rng, SimTime};
use rand::Rng;

/// How each rank drives its transactions.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TxMode {
    /// `lock; accumulate; unlock` — one epoch at a time.
    Blocking,
    /// `ilock; accumulate; iunlock` with up to `max_inflight` epochs
    /// pending.
    Nonblocking {
        /// Sliding-window depth of outstanding epochs.
        max_inflight: usize,
    },
}

/// How transaction targets are chosen — §IV.B's updating sets are "not
/// necessarily disjoint", so contention is a workload parameter.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TargetDist {
    /// Every rank equally likely.
    Uniform,
    /// `percent`% of transactions hit rank 0 (a hot spot); the rest are
    /// uniform over all ranks.
    Hotspot {
        /// Percentage of transactions directed at rank 0.
        percent: u8,
    },
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct TxConfig {
    /// Transactions each rank performs.
    pub txs_per_rank: usize,
    /// Bytes per atomic update (multiple of 8).
    pub payload: usize,
    /// Number of 8-byte slots per target window.
    pub slots: usize,
    /// Epoch driving mode.
    pub mode: TxMode,
    /// Enable the `A_A_A_R` reorder flag on the window.
    pub aaar: bool,
    /// Optional modeled computation between transactions.
    pub think_time: SimTime,
    /// Target selection distribution.
    pub dist: TargetDist,
}

impl Default for TxConfig {
    fn default() -> Self {
        TxConfig {
            txs_per_rank: 200,
            payload: 64,
            slots: 256,
            mode: TxMode::Blocking,
            aaar: false,
            think_time: SimTime::ZERO,
            dist: TargetDist::Uniform,
        }
    }
}

/// Result of a transaction run.
#[derive(Debug, Clone, Copy)]
pub struct TxResult {
    /// Total committed transactions.
    pub total_txs: u64,
    /// Virtual time from the starting barrier to the last commit.
    pub elapsed: SimTime,
    /// Transactions per second of virtual time.
    pub tx_per_sec: f64,
    /// Sum over all window slots of all ranks (for validation: each
    /// transaction adds its payload words, each of value 1).
    pub checksum: u64,
}

/// Run the transaction workload on `job` (the job's strategy decides
/// baseline vs redesigned engine).
pub fn run_transactions(job: JobConfig, cfg: TxConfig) -> Result<TxResult, mpisim_sim::SimError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let n = job.n_ranks;
    let checksum = Arc::new(AtomicU64::new(0));
    let t_start = Arc::new(AtomicU64::new(0));
    let t_end = Arc::new(AtomicU64::new(0));
    let (ck, ts, te) = (checksum.clone(), t_start.clone(), t_end.clone());
    let cfg2 = cfg.clone();

    let report = run_job(job, move |env| {
        let cfg = &cfg2;
        let words = cfg.payload / 8;
        let info = if cfg.aaar { WinInfo::aaar() } else { WinInfo::default() };
        let win = env.win_allocate_with(cfg.slots * 8, info).unwrap();
        env.barrier().unwrap();
        ts.store(env.now().as_nanos(), Ordering::Relaxed);

        let mut rng = seeded_rng(0x7AC5, env.rank().idx() as u64);
        let ones = vec![1u64; words]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect::<Vec<u8>>();

        let pick_target = move |rng: &mut rand::rngs::SmallRng| -> Rank {
            match cfg.dist {
                TargetDist::Uniform => Rank(rng.gen_range(0..n)),
                TargetDist::Hotspot { percent } => {
                    if rng.gen_range(0..100u8) < percent {
                        Rank(0)
                    } else {
                        Rank(rng.gen_range(0..n))
                    }
                }
            }
        };
        let one_tx = |env: &mpisim_core::RankEnv, rng: &mut rand::rngs::SmallRng| -> RmaResult<mpisim_core::Req> {
            let target = pick_target(rng);
            let slot = rng.gen_range(0..cfg.slots - words + 1);
            let _ = env.ilock(win, target, LockKind::Exclusive)?;
            env.accumulate(win, target, slot * 8, Datatype::U64, ReduceOp::Sum, &ones)?;
            env.iunlock(win, target)
        };

        match cfg.mode {
            TxMode::Blocking => {
                for _ in 0..cfg.txs_per_rank {
                    let target = pick_target(&mut rng);
                    let slot = rng.gen_range(0..cfg.slots - words + 1);
                    env.lock(win, target, LockKind::Exclusive).unwrap();
                    env.accumulate(win, target, slot * 8, Datatype::U64, ReduceOp::Sum, &ones)
                        .unwrap();
                    env.unlock(win, target).unwrap();
                    if !cfg.think_time.is_zero() {
                        env.compute(cfg.think_time);
                    }
                }
            }
            TxMode::Nonblocking { max_inflight } => {
                let mut inflight: std::collections::VecDeque<mpisim_core::Req> =
                    std::collections::VecDeque::new();
                for _ in 0..cfg.txs_per_rank {
                    let req = one_tx(env, &mut rng).unwrap();
                    inflight.push_back(req);
                    if inflight.len() >= max_inflight {
                        let oldest = inflight.pop_front().unwrap();
                        env.wait(oldest).unwrap();
                    }
                    if !cfg.think_time.is_zero() {
                        env.compute(cfg.think_time);
                    }
                }
                for r in inflight {
                    env.wait(r).unwrap();
                }
            }
        }

        te.fetch_max(env.now().as_nanos(), Ordering::Relaxed);
        env.barrier().unwrap();
        // Validation: sum every slot of my window.
        let bytes = env.read_local(win, 0, cfg.slots * 8).unwrap();
        let sum: u64 = mpisim_core::datatype::bytes_to_u64s(&bytes).iter().sum();
        ck.fetch_add(sum, Ordering::Relaxed);
        env.win_free(win).unwrap();
    })?;

    let total_txs = (n * cfg.txs_per_rank) as u64;
    let elapsed = SimTime::from_nanos(
        t_end.load(std::sync::atomic::Ordering::Relaxed)
            - t_start.load(std::sync::atomic::Ordering::Relaxed),
    );
    let _ = report;
    Ok(TxResult {
        total_txs,
        elapsed,
        tx_per_sec: total_txs as f64 / elapsed.as_secs_f64(),
        checksum: checksum.load(std::sync::atomic::Ordering::Relaxed),
    })
}

/// The checksum a correct run must produce.
pub fn expected_checksum(n_ranks: usize, cfg: &TxConfig) -> u64 {
    (n_ranks * cfg.txs_per_rank * (cfg.payload / 8)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim_core::SyncStrategy;

    fn small(mode: TxMode, aaar: bool) -> (TxResult, TxConfig) {
        let cfg = TxConfig {
            txs_per_rank: 25,
            payload: 16,
            slots: 32,
            mode,
            aaar,
            think_time: SimTime::ZERO,
            dist: TargetDist::Uniform,
        };
        let r = run_transactions(JobConfig::all_internode(4), cfg.clone()).unwrap();
        (r, cfg)
    }

    #[test]
    fn blocking_txs_are_atomic_and_complete() {
        let (r, cfg) = small(TxMode::Blocking, false);
        assert_eq!(r.total_txs, 100);
        assert_eq!(r.checksum, expected_checksum(4, &cfg));
        assert!(r.tx_per_sec > 0.0);
    }

    #[test]
    fn nonblocking_txs_no_updates_lost() {
        let (r, cfg) = small(TxMode::Nonblocking { max_inflight: 8 }, false);
        assert_eq!(r.checksum, expected_checksum(4, &cfg));
    }

    #[test]
    fn aaar_txs_no_updates_lost_and_faster() {
        let (nb, cfg) = small(TxMode::Nonblocking { max_inflight: 8 }, false);
        let (re, _) = small(TxMode::Nonblocking { max_inflight: 8 }, true);
        assert_eq!(re.checksum, expected_checksum(4, &cfg));
        assert!(
            re.elapsed <= nb.elapsed,
            "A_A_A_R should not slow transactions: {} vs {}",
            re.elapsed,
            nb.elapsed
        );
    }

    #[test]
    fn hotspot_contention_slows_but_never_loses_updates() {
        let mk = |dist| TxConfig {
            txs_per_rank: 40,
            payload: 8,
            slots: 32,
            mode: TxMode::Nonblocking { max_inflight: 8 },
            aaar: true,
            think_time: SimTime::ZERO,
            dist,
        };
        let uni = run_transactions(JobConfig::all_internode(8), mk(TargetDist::Uniform)).unwrap();
        let hot =
            run_transactions(JobConfig::all_internode(8), mk(TargetDist::Hotspot { percent: 90 }))
                .unwrap();
        assert_eq!(uni.checksum, expected_checksum(8, &mk(TargetDist::Uniform)));
        assert_eq!(hot.checksum, expected_checksum(8, &mk(TargetDist::Uniform)));
        // 90% of exclusive locks on one rank serialize the job.
        assert!(
            hot.elapsed.as_secs_f64() > 1.5 * uni.elapsed.as_secs_f64(),
            "hotspot should serialize: {} vs {}",
            hot.elapsed,
            uni.elapsed
        );
    }

    #[test]
    fn baseline_strategy_also_correct() {
        let cfg = TxConfig {
            txs_per_rank: 20,
            payload: 8,
            slots: 16,
            mode: TxMode::Blocking,
            aaar: false,
            think_time: SimTime::ZERO,
            dist: TargetDist::Uniform,
        };
        let r = run_transactions(
            JobConfig::all_internode(3).with_strategy(SyncStrategy::LazyBaseline),
            cfg.clone(),
        )
        .unwrap();
        assert_eq!(r.checksum, expected_checksum(3, &cfg));
    }
}
