//! 1-D halo (ghost-cell) exchange over RMA epochs — a classic stencil
//! communication pattern used as an example workload and as an extra
//! stress test for repeated GATS/fence epochs.
//!
//! Each rank owns a block of a 1-D domain and iterates a 3-point average;
//! boundary cells are exchanged with the left/right neighbours through
//! puts into a window that exposes the two ghost slots.

use mpisim_core::{run_job, Group, JobConfig, Rank};
use mpisim_sim::{SimError, SimTime};

/// Which synchronization drives the exchange.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HaloSync {
    /// One fence epoch per iteration.
    Fence,
    /// GATS epochs toward the two neighbours.
    Gats,
    /// GATS with nonblocking closes overlapping the interior update.
    GatsNonblocking,
}

/// Halo exchange parameters.
#[derive(Clone, Debug)]
pub struct HaloConfig {
    /// Cells per rank.
    pub cells_per_rank: usize,
    /// Stencil iterations.
    pub iters: usize,
    /// Synchronization flavour.
    pub sync: HaloSync,
}

/// Result of a halo run.
#[derive(Debug, Clone)]
pub struct HaloResult {
    /// Total virtual time.
    pub total_time: SimTime,
    /// Final checksum (sum of all cells), identical across sync flavours.
    pub checksum: f64,
}

/// Window layout: [ghost_left (8B) | ghost_right (8B)].
const GHOST_L: usize = 0;
const GHOST_R: usize = 8;

/// Run the stencil. The domain is periodic (rank 0's left neighbour is
/// rank n−1).
pub fn run_halo(job: JobConfig, cfg: HaloConfig) -> Result<HaloResult, SimError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let sum_bits = Arc::new(AtomicU64::new(0));
    let sb = sum_bits.clone();
    let cfg2 = cfg.clone();

    let report = run_job(job, move |env| {
        let cfg = &cfg2;
        let n = env.n_ranks();
        let me = env.rank().idx();
        let c = cfg.cells_per_rank;
        let left = Rank((me + n - 1) % n);
        let right = Rank((me + 1) % n);
        // Every rank is simultaneously an origin (writing neighbours'
        // ghosts) and a target (exposing its own ghosts): the access and
        // exposure epochs of one iteration must progress concurrently.
        // The touched regions are trivially disjoint (§VI.C), so the
        // A_A_E_R and E_A_A_R reorder flags make this safe — and without
        // them rule 4's strict serialization would deadlock the ring.
        let info = mpisim_core::WinInfo {
            access_after_exposure: true,
            exposure_after_access: true,
            ..mpisim_core::WinInfo::default()
        };
        let win = env.win_allocate_with(16, info).unwrap();

        // Initial field: cell value = global index.
        let mut cells: Vec<f64> = (0..c).map(|i| (me * c + i) as f64).collect();
        env.barrier().unwrap();
        if cfg.sync == HaloSync::Fence {
            // Opening fence: subsequent puts land inside a fence epoch.
            env.fence(win).unwrap();
        }

        for _ in 0..cfg.iters {
            let first = cells[0].to_le_bytes();
            let last = cells[c - 1].to_le_bytes();
            // Exchange: my first cell goes to the left neighbour's right
            // ghost; my last cell to the right neighbour's left ghost.
            let close_req = match cfg.sync {
                HaloSync::Fence => {
                    env.put(win, left, GHOST_R, &first).unwrap();
                    env.put(win, right, GHOST_L, &last).unwrap();
                    env.fence(win).unwrap();
                    None
                }
                HaloSync::Gats | HaloSync::GatsNonblocking => {
                    let nbrs = if n == 2 {
                        // left == right when n == 2.
                        Group::single(left)
                    } else {
                        Group::new(if left < right {
                            vec![left.idx(), right.idx()]
                        } else {
                            vec![right.idx(), left.idx()]
                        })
                    };
                    env.post(win, nbrs.clone()).unwrap();
                    env.start(win, nbrs).unwrap();
                    env.put(win, left, GHOST_R, &first).unwrap();
                    env.put(win, right, GHOST_L, &last).unwrap();
                    if cfg.sync == HaloSync::GatsNonblocking {
                        let rc = env.icomplete(win).unwrap();
                        let rw = env.iwait(win).unwrap();
                        Some((rc, rw))
                    } else {
                        env.complete(win).unwrap();
                        env.wait_epoch(win).unwrap();
                        None
                    }
                }
            };

            // Interior update overlaps the nonblocking epoch tail.
            let old = cells.clone();
            for i in 1..c - 1 {
                cells[i] = (old[i - 1] + old[i] + old[i + 1]) / 3.0;
            }
            if let Some((rc, rw)) = close_req {
                env.wait(rc).unwrap();
                env.wait(rw).unwrap();
            }

            // Boundary update with ghosts (valid after synchronization).
            let gl = f64::from_le_bytes(
                env.read_local(win, GHOST_L, 8).unwrap().try_into().unwrap(),
            );
            let gr = f64::from_le_bytes(
                env.read_local(win, GHOST_R, 8).unwrap().try_into().unwrap(),
            );
            cells[0] = (gl + old[0] + old[1]) / 3.0;
            cells[c - 1] = (old[c - 2] + old[c - 1] + gr) / 3.0;
        }

        // The trailing (empty, open) fence epoch is retired by win_free.
        env.barrier().unwrap();
        let local: f64 = cells.iter().sum();
        // Deterministic accumulation: ranks add in rank order.
        for r in 0..n {
            env.barrier().unwrap();
            if r == me {
                let cur = f64::from_bits(sb.load(Ordering::Relaxed));
                sb.store((cur + local).to_bits(), Ordering::Relaxed);
            }
        }
        env.win_free(win).unwrap();
    })?;

    Ok(HaloResult {
        total_time: report.final_time,
        checksum: f64::from_bits(sum_bits.load(std::sync::atomic::Ordering::Relaxed)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(sync: HaloSync, n: usize) -> HaloResult {
        run_halo(
            JobConfig::all_internode(n),
            HaloConfig {
                cells_per_rank: 16,
                iters: 8,
                sync,
            },
        )
        .unwrap()
    }

    #[test]
    fn all_flavours_agree_on_the_field() {
        let f = run(HaloSync::Fence, 4);
        let g = run(HaloSync::Gats, 4);
        let ng = run(HaloSync::GatsNonblocking, 4);
        assert_eq!(f.checksum.to_bits(), g.checksum.to_bits());
        assert_eq!(f.checksum.to_bits(), ng.checksum.to_bits());
    }

    #[test]
    fn two_rank_ring_works() {
        let g = run(HaloSync::Gats, 2);
        let f = run(HaloSync::Fence, 2);
        assert_eq!(g.checksum.to_bits(), f.checksum.to_bits());
    }

    #[test]
    fn smoothing_converges_toward_mean() {
        // After many iterations of averaging on a periodic ring the field
        // approaches its mean: variance decreases.
        let few = run_halo(
            JobConfig::all_internode(3),
            HaloConfig {
                cells_per_rank: 8,
                iters: 1,
                sync: HaloSync::Gats,
            },
        )
        .unwrap();
        let many = run_halo(
            JobConfig::all_internode(3),
            HaloConfig {
                cells_per_rank: 8,
                iters: 30,
                sync: HaloSync::Gats,
            },
        )
        .unwrap();
        // The sum (mean × count) is conserved by periodic averaging up to
        // FP noise; checksums stay close.
        assert!((few.checksum - many.checksum).abs() < 1e-6 * few.checksum.abs());
    }
}
