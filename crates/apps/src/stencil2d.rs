//! 2-D five-point stencil with RMA ghost exchange.
//!
//! The process grid is `pr × pc`; each rank owns an `h × w` block of a
//! periodic global grid, stored *inside its window* with a one-cell halo.
//! Every iteration each rank writes its edge rows/columns directly into
//! its neighbours' halo cells: rows are contiguous puts, columns are
//! **strided** puts (`put_strided` with stride = the padded row width) —
//! the vector-datatype case the paper's overlap-reasoning discussion
//! (§VI.C) calls out. Like the 1-D halo, every rank is origin and target
//! at once, so the GATS epochs rely on the `A_A_E_R`/`E_A_A_R` reorder
//! flags.
//!
//! Correctness is checked against a sequential oracle on the full global
//! grid — bitwise, since the operation order per cell is identical.

use std::collections::BTreeSet;

use mpisim_core::datatype::{bytes_to_f64s, f64s_to_bytes};
use mpisim_core::{run_job, Group, JobConfig, Rank, WinId, WinInfo};
use mpisim_sim::SimError;

/// Stencil parameters.
#[derive(Clone, Debug)]
pub struct Stencil2dConfig {
    /// Global grid height (must divide by the process-grid rows).
    pub rows: usize,
    /// Global grid width (must divide by the process-grid cols).
    pub cols: usize,
    /// Iterations.
    pub iters: usize,
    /// Drive the exchange with nonblocking epoch closes.
    pub nonblocking: bool,
}

/// Result of a stencil run.
#[derive(Debug, Clone)]
pub struct Stencil2dResult {
    /// Total virtual time.
    pub total_time: mpisim_sim::SimTime,
    /// Sum of the final global grid.
    pub checksum: f64,
    /// Max |difference| against the sequential oracle.
    pub max_error: f64,
}

/// Choose a near-square process grid for `n` ranks.
pub fn process_grid(n: usize) -> (usize, usize) {
    let mut pr = (n as f64).sqrt() as usize;
    while pr > 1 && !n.is_multiple_of(pr) {
        pr -= 1;
    }
    (pr.max(1), n / pr.max(1))
}

fn initial(_rows: usize, cols: usize, i: usize, j: usize) -> f64 {
    (i * cols + j) as f64 % 97.0
}

/// Sequential oracle: the same 5-point averaging on the global periodic
/// grid, same operation order per cell.
pub fn sequential_stencil(rows: usize, cols: usize, iters: usize) -> Vec<f64> {
    let mut g: Vec<f64> = (0..rows * cols)
        .map(|k| initial(rows, cols, k / cols, k % cols))
        .collect();
    for _ in 0..iters {
        let old = g.clone();
        for i in 0..rows {
            for j in 0..cols {
                let up = old[((i + rows - 1) % rows) * cols + j];
                let down = old[((i + 1) % rows) * cols + j];
                let left = old[i * cols + (j + cols - 1) % cols];
                let right = old[i * cols + (j + 1) % cols];
                g[i * cols + j] = (old[i * cols + j] + up + down + left + right) / 5.0;
            }
        }
    }
    g
}

struct Block {
    h: usize,
    w: usize,
    /// Padded width (w + 2).
    pw: usize,
}

impl Block {
    fn idx(&self, i: usize, j: usize) -> usize {
        // (i, j) in padded coordinates (halo at 0 and h+1 / w+1).
        i * self.pw + j
    }
    fn disp(&self, i: usize, j: usize) -> usize {
        self.idx(i, j) * 8
    }
}

/// Run the distributed stencil and validate against the oracle.
pub fn run_stencil2d(job: JobConfig, cfg: Stencil2dConfig) -> Result<Stencil2dResult, SimError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let n = job.n_ranks;
    let (pr, pc) = process_grid(n);
    assert!(cfg.rows.is_multiple_of(pr) && cfg.cols.is_multiple_of(pc), "grid must tile the process grid");
    let max_err_bits = Arc::new(AtomicU64::new(0));
    let sum_bits = Arc::new(AtomicU64::new(0));
    let (me2, sb2) = (max_err_bits.clone(), sum_bits.clone());
    let cfg2 = cfg.clone();

    let report = run_job(job, move |env| {
        let cfg = &cfg2;
        let me = env.rank().idx();
        let (mi, mj) = (me / pc, me % pc);
        let b = Block {
            h: cfg.rows / pr,
            w: cfg.cols / pc,
            pw: cfg.cols / pc + 2,
        };
        let ph = b.h + 2;
        // Neighbours (periodic).
        let up = Rank(((mi + pr - 1) % pr) * pc + mj);
        let down = Rank(((mi + 1) % pr) * pc + mj);
        let left = Rank(mi * pc + (mj + pc - 1) % pc);
        let right = Rank(mi * pc + (mj + 1) % pc);
        let nbrs: BTreeSet<usize> = [up.0, down.0, left.0, right.0].into_iter().collect();
        let group = Group::new(nbrs.iter().copied());

        // Origin and target at once ⇒ cross-side reorder flags (§VI.C).
        let info = WinInfo {
            access_after_exposure: true,
            exposure_after_access: true,
            ..WinInfo::default()
        };
        let win = env.win_allocate_with(ph * b.pw * 8, info).unwrap();

        // Fill the interior from the global initial condition.
        let (gi0, gj0) = (mi * b.h, mj * b.w);
        for i in 0..b.h {
            let row: Vec<f64> = (0..b.w)
                .map(|j| initial(cfg.rows, cfg.cols, gi0 + i, gj0 + j))
                .collect();
            env.write_local(win, b.disp(i + 1, 1), &f64s_to_bytes(&row)).unwrap();
        }
        env.barrier().unwrap();

        let read_row = |env: &mpisim_core::RankEnv, win: WinId, i: usize| -> Vec<u8> {
            env.read_local(win, b.disp(i, 1), b.w * 8).unwrap()
        };
        let read_col = |env: &mpisim_core::RankEnv, win: WinId, j: usize| -> Vec<u8> {
            let mut packed = Vec::with_capacity(b.h * 8);
            for i in 1..=b.h {
                packed.extend_from_slice(&env.read_local(win, b.disp(i, j), 8).unwrap());
            }
            packed
        };

        for _ in 0..cfg.iters {
            // Exchange: my edges into the neighbours' halos.
            env.post(win, group.clone()).unwrap();
            env.start(win, group.clone()).unwrap();
            // Top edge → up neighbour's bottom halo row (contiguous).
            env.put(win, up, b.disp(b.h + 1, 1), &read_row(env, win, 1)).unwrap();
            // Bottom edge → down neighbour's top halo row.
            env.put(win, down, b.disp(0, 1), &read_row(env, win, b.h)).unwrap();
            // Left edge column → left neighbour's right halo column
            // (strided at the target: stride = padded row width).
            env.put_strided(win, left, b.disp(1, b.w + 1), b.h, 8, b.pw * 8, &read_col(env, win, 1))
                .unwrap();
            // Right edge column → right neighbour's left halo column.
            env.put_strided(win, right, b.disp(1, 0), b.h, 8, b.pw * 8, &read_col(env, win, b.w))
                .unwrap();
            if cfg.nonblocking {
                let rc = env.icomplete(win).unwrap();
                let rw = env.iwait(win).unwrap();
                env.wait(rc).unwrap();
                env.wait(rw).unwrap();
            } else {
                env.complete(win).unwrap();
                env.wait_epoch(win).unwrap();
            }

            // 5-point update on the interior (reads padded grid incl. halo).
            let old = bytes_to_f64s(&env.read_local(win, 0, ph * b.pw * 8).unwrap());
            let mut new_rows: Vec<Vec<f64>> = Vec::with_capacity(b.h);
            for i in 1..=b.h {
                let mut row = Vec::with_capacity(b.w);
                for j in 1..=b.w {
                    let c = old[b.idx(i, j)];
                    let upv = old[b.idx(i - 1, j)];
                    let dv = old[b.idx(i + 1, j)];
                    let lv = old[b.idx(i, j - 1)];
                    let rv = old[b.idx(i, j + 1)];
                    row.push((c + upv + dv + lv + rv) / 5.0);
                }
                new_rows.push(row);
            }
            for (i, row) in new_rows.iter().enumerate() {
                env.write_local(win, b.disp(i + 1, 1), &f64s_to_bytes(row)).unwrap();
            }
            env.barrier().unwrap();
        }

        // Validate against the oracle and accumulate the checksum.
        let oracle = sequential_stencil(cfg.rows, cfg.cols, cfg.iters);
        let mut err: f64 = 0.0;
        let mut local_sum = 0.0;
        for i in 0..b.h {
            let row = bytes_to_f64s(&env.read_local(win, b.disp(i + 1, 1), b.w * 8).unwrap());
            for (j, v) in row.iter().enumerate() {
                let o = oracle[(gi0 + i) * cfg.cols + (gj0 + j)];
                err = err.max((v - o).abs());
                local_sum += v;
            }
        }
        let total = env
            .allreduce(
                mpisim_core::Datatype::F64,
                mpisim_core::ReduceOp::Sum,
                &local_sum.to_le_bytes(),
            )
            .unwrap();
        let total = f64::from_le_bytes(total.try_into().unwrap());
        if me == 0 {
            sb2.store(total.to_bits(), Ordering::Relaxed);
        }
        me2.fetch_max(err.to_bits(), Ordering::Relaxed);
        env.win_free(win).unwrap();
    })?;

    Ok(Stencil2dResult {
        total_time: report.final_time,
        checksum: f64::from_bits(sum_bits.load(std::sync::atomic::Ordering::Relaxed)),
        max_error: f64::from_bits(max_err_bits.load(std::sync::atomic::Ordering::Relaxed)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_grid_is_near_square() {
        assert_eq!(process_grid(1), (1, 1));
        assert_eq!(process_grid(4), (2, 2));
        assert_eq!(process_grid(6), (2, 3));
        assert_eq!(process_grid(8), (2, 4));
        assert_eq!(process_grid(12), (3, 4));
        assert_eq!(process_grid(7), (1, 7));
    }

    #[test]
    fn matches_oracle_on_2x2_grid() {
        let r = run_stencil2d(
            JobConfig::all_internode(4),
            Stencil2dConfig {
                rows: 8,
                cols: 8,
                iters: 5,
                nonblocking: false,
            },
        )
        .unwrap();
        assert_eq!(r.max_error, 0.0, "bitwise equality with the oracle");
    }

    #[test]
    fn matches_oracle_nonblocking_and_rectangular() {
        let r = run_stencil2d(
            JobConfig::all_internode(6),
            Stencil2dConfig {
                rows: 6,
                cols: 12,
                iters: 4,
                nonblocking: true,
            },
        )
        .unwrap();
        assert_eq!(r.max_error, 0.0);
    }

    #[test]
    fn single_rank_degenerates_to_self_exchange() {
        let r = run_stencil2d(
            JobConfig::all_internode(1),
            Stencil2dConfig {
                rows: 4,
                cols: 4,
                iters: 3,
                nonblocking: false,
            },
        )
        .unwrap();
        assert_eq!(r.max_error, 0.0);
    }

    #[test]
    fn blocking_and_nonblocking_agree_bitwise() {
        let mk = |nb| Stencil2dConfig {
            rows: 8,
            cols: 8,
            iters: 6,
            nonblocking: nb,
        };
        let a = run_stencil2d(JobConfig::all_internode(4), mk(false)).unwrap();
        let b = run_stencil2d(JobConfig::all_internode(4), mk(true)).unwrap();
        assert_eq!(a.checksum.to_bits(), b.checksum.to_bits());
    }
}
