//! 1-D row-cyclic LU decomposition over GATS epochs (§VIII.B, Fig 13).
//!
//! For an `m×m` matrix on `n` ranks, rank `k % n` owns row `k`. At step
//! `k` the owner one-sidedly broadcasts the updated cells of row `k` to
//! the other `n−1` peers, then every rank eliminates its own rows below
//! `k`. The program overlaps communication with computation *inside* the
//! epoch (all series) — which, with blocking synchronization, inflicts
//! Late Complete on the targets; the nonblocking series closes the epoch
//! with `icomplete` before the trailing-matrix update, adding the second
//! kind of overlap without any latency transfer.
//!
//! Two fidelity modes:
//!
//! * [`LuMode::Real`] — actual `f64` elimination with data validation
//!   against a sequential oracle (bitwise identical operation order);
//! * [`LuMode::Modeled`] — synthetic payloads and a flop-cost model, for
//!   paper-scale matrices.

use mpisim_core::{run_job, Group, JobConfig, Rank, WinId};
use mpisim_sim::{seeded_rng, SimError, SimTime};
use rand::Rng;

/// Whether to move and verify real matrix data.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LuMode {
    /// Real `f64` data, verified.
    Real,
    /// Synthetic payloads + flop-time model (paper scale).
    Modeled,
}

/// Blocking vs nonblocking epoch driving.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LuSync {
    /// `complete`/`wait` after in-epoch overlap (Late Complete risk).
    Blocking,
    /// `icomplete` before the update; completion detected later.
    Nonblocking,
}

/// LU kernel parameters.
#[derive(Clone, Debug)]
pub struct LuConfig {
    /// Matrix dimension.
    pub m: usize,
    /// Fidelity mode.
    pub mode: LuMode,
    /// Synchronization style.
    pub sync: LuSync,
    /// Cost of one floating-point update operation (multiply-subtract
    /// counts as two flops) in nanoseconds; calibrated in EXPERIMENTS.md.
    pub t_flop_ns: f64,
}

impl LuConfig {
    /// A small real-data configuration for tests.
    pub fn small(m: usize, sync: LuSync) -> Self {
        LuConfig {
            m,
            mode: LuMode::Real,
            sync,
            t_flop_ns: 30.0,
        }
    }

    /// Paper-scale modeled configuration.
    pub fn modeled(m: usize, sync: LuSync) -> Self {
        LuConfig {
            m,
            mode: LuMode::Modeled,
            sync,
            t_flop_ns: 30.0,
        }
    }
}

/// Result of an LU run.
#[derive(Debug, Clone)]
pub struct LuResult {
    /// Virtual wall time of the whole factorization.
    pub total_time: SimTime,
    /// Mean fraction of rank time spent in MPI calls (Fig 13 b/d).
    pub comm_fraction: f64,
    /// Maximum absolute difference against the sequential oracle
    /// (`Real` mode only; exact 0.0 expected because the operation order
    /// matches the oracle's).
    pub max_error: Option<f64>,
}

/// Deterministic matrix entry (diagonally dominant so no pivoting is
/// needed).
fn entry(seed: u64, m: usize, i: usize, j: usize) -> f64 {
    let mut rng = seeded_rng(seed, (i * m + j) as u64);
    let v: f64 = rng.gen_range(0.1..1.0);
    if i == j {
        v + 2.0 * m as f64
    } else {
        v
    }
}

/// Sequential oracle: same elimination, same operation order per element.
#[allow(clippy::needless_range_loop)]
pub fn sequential_lu(seed: u64, m: usize) -> Vec<Vec<f64>> {
    let mut a: Vec<Vec<f64>> = (0..m)
        .map(|i| (0..m).map(|j| entry(seed, m, i, j)).collect())
        .collect();
    for k in 0..m - 1 {
        for i in k + 1..m {
            let factor = a[i][k] / a[k][k];
            a[i][k] = factor;
            for j in k + 1..m {
                a[i][j] -= factor * a[k][j];
            }
        }
    }
    a
}

struct RankLu<'e, 'a> {
    env: &'e mpisim_core::RankEnv<'a>,
    cfg: LuConfig,
    n: usize,
    win: WinId,
    /// Locally owned rows, by global row index.
    rows: std::collections::BTreeMap<usize, Vec<f64>>,
}

impl<'e, 'a> RankLu<'e, 'a> {
    fn update_cost(&self, my_rows_below: usize, k: usize) -> SimTime {
        let width = self.cfg.m - k - 1;
        let flops = 2.0 * my_rows_below as f64 * (width as f64 + 1.0);
        SimTime::from_nanos((flops * self.cfg.t_flop_ns) as u64)
    }

    /// Eliminate all my rows below `k` using `row_k` (cols k..m).
    fn eliminate(&mut self, k: usize, row_k: &[f64]) {
        let m = self.cfg.m;
        let my_below = self.rows.range(k + 1..).count();
        if self.cfg.mode == LuMode::Real {
            let rows: Vec<usize> = self.rows.range(k + 1..).map(|(i, _)| *i).collect();
            for i in rows {
                let r = self.rows.get_mut(&i).unwrap();
                let factor = r[k] / row_k[0];
                r[k] = factor;
                for j in k + 1..m {
                    r[j] -= factor * row_k[j - k];
                }
            }
        }
        self.env.compute(self.update_cost(my_below, k));
    }

    fn broadcast_row(&mut self, k: usize) -> Option<mpisim_core::Req> {
        let m = self.cfg.m;
        let others = Group::new((0..self.n).filter(|r| *r != self.env.rank().idx()));
        self.env.start(self.win, others.clone()).unwrap();
        let len = (m - k) * 8;
        match self.cfg.mode {
            LuMode::Real => {
                let row = &self.rows[&k];
                let bytes = mpisim_core::datatype::f64s_to_bytes(&row[k..]);
                for t in others.ranks() {
                    self.env.put(self.win, *t, 0, &bytes).unwrap();
                }
            }
            LuMode::Modeled => {
                for t in others.ranks() {
                    self.env.put_synthetic(self.win, *t, 0, len).unwrap();
                }
            }
        }
        match self.cfg.sync {
            LuSync::Blocking => {
                // Overlap the trailing update *inside* the epoch, then
                // close: the classic Late Complete shape (Fig 1a, sc. 3).
                let row_k: Vec<f64> = if self.cfg.mode == LuMode::Real {
                    self.rows[&k][k..].to_vec()
                } else {
                    Vec::new()
                };
                self.eliminate(k, &row_k);
                self.env.complete(self.win).unwrap();
                None
            }
            LuSync::Nonblocking => {
                // Close first (Fig 1b), then update; completion is
                // detected before the next epoch on this window.
                let req = self.env.icomplete(self.win).unwrap();
                let row_k: Vec<f64> = if self.cfg.mode == LuMode::Real {
                    self.rows[&k][k..].to_vec()
                } else {
                    Vec::new()
                };
                self.eliminate(k, &row_k);
                Some(req)
            }
        }
    }

    fn receive_row(&mut self, k: usize, owner: usize) {
        let m = self.cfg.m;
        self.env.post(self.win, Group::single(Rank(owner))).unwrap();
        self.env.wait_epoch(self.win).unwrap();
        let row_k: Vec<f64> = if self.cfg.mode == LuMode::Real {
            let bytes = self.env.read_local(self.win, 0, (m - k) * 8).unwrap();
            mpisim_core::datatype::bytes_to_f64s(&bytes)
        } else {
            Vec::new()
        };
        self.eliminate(k, &row_k);
    }
}

/// Run the distributed LU factorization.
pub fn run_lu(job: JobConfig, cfg: LuConfig) -> Result<LuResult, SimError> {
    use std::sync::Mutex;
    let m = cfg.m;
    let n = job.n_ranks;
    assert!(m >= n, "need at least one row per rank");
    let seed = job.seed;
    let max_err = std::sync::Arc::new(Mutex::new(None::<f64>));
    let me2 = max_err.clone();
    let cfg2 = cfg.clone();

    let report = run_job(job, move |env| {
        let cfg = cfg2.clone();
        let n = env.n_ranks();
        let me = env.rank().idx();
        // Window: one broadcast-row buffer.
        let win = env.win_allocate(m * 8).unwrap();
        let rows: std::collections::BTreeMap<usize, Vec<f64>> = (0..m)
            .filter(|i| i % n == me)
            .map(|i| {
                let row = if cfg.mode == LuMode::Real {
                    (0..m).map(|j| entry(seed, m, i, j)).collect()
                } else {
                    Vec::new()
                };
                (i, row)
            })
            .collect();
        env.barrier().unwrap();

        let mut lu = RankLu { env, cfg: cfg.clone(), n, win, rows };
        let mut pending: Option<mpisim_core::Req> = None;
        for k in 0..m - 1 {
            let owner = k % n;
            if owner == me {
                if let Some(req) = lu.broadcast_row(k) {
                    if let Some(p) = pending.replace(req) {
                        lu.env.wait(p).unwrap();
                    }
                }
            } else {
                lu.receive_row(k, owner);
            }
        }
        if let Some(p) = pending {
            env.wait(p).unwrap();
        }
        env.barrier().unwrap();

        // Validation against the sequential oracle.
        if cfg.mode == LuMode::Real {
            let oracle = sequential_lu(seed, m);
            let mut err: f64 = 0.0;
            for (i, row) in &lu.rows {
                for j in 0..m {
                    err = err.max((row[j] - oracle[*i][j]).abs());
                }
            }
            let mut g = me2.lock().unwrap();
            let cur = g.unwrap_or(0.0);
            *g = Some(cur.max(err));
        }
        env.win_free(win).unwrap();
    })?;

    let max_error = *max_err.lock().unwrap();
    Ok(LuResult {
        total_time: report.final_time,
        comm_fraction: report.mean_comm_fraction(),
        max_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim_core::SyncStrategy;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn sequential_oracle_factorizes() {
        let m = 12;
        let a = sequential_lu(1, m);
        // Reconstruct A = L·U and compare with the original entries.
        for i in 0..m {
            for j in 0..m {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    let l = if k == i { 1.0 } else { a[i][k] };
                    let u = if k <= j { a[k][j] } else { 0.0 };
                    if k < i && k > j {
                        continue;
                    }
                    s += l * u;
                }
                let orig = entry(1, m, i, j);
                assert!(
                    (s - orig).abs() < 1e-9 * (1.0 + orig.abs()),
                    "LU reconstruction off at ({i},{j}): {s} vs {orig}"
                );
            }
        }
    }

    #[test]
    fn distributed_blocking_matches_oracle_exactly() {
        let r = run_lu(
            JobConfig::all_internode(4),
            LuConfig::small(16, LuSync::Blocking),
        )
        .unwrap();
        assert_eq!(r.max_error, Some(0.0), "same op order ⇒ bitwise equality");
    }

    #[test]
    fn distributed_nonblocking_matches_oracle_exactly() {
        let r = run_lu(
            JobConfig::all_internode(4),
            LuConfig::small(16, LuSync::Nonblocking),
        )
        .unwrap();
        assert_eq!(r.max_error, Some(0.0));
    }

    #[test]
    fn baseline_strategy_matches_oracle() {
        let r = run_lu(
            JobConfig::all_internode(3).with_strategy(SyncStrategy::LazyBaseline),
            LuConfig::small(12, LuSync::Blocking),
        )
        .unwrap();
        assert_eq!(r.max_error, Some(0.0));
    }

    #[test]
    fn nonblocking_is_faster_with_heavy_compute() {
        // With substantial per-step compute, blocking Late Complete
        // roughly doubles the critical path (owner + targets serialize).
        let mk = |sync| LuConfig {
            m: 64,
            mode: LuMode::Modeled,
            sync,
            t_flop_ns: 2000.0, // exaggerate compute to expose the effect
        };
        let b = run_lu(JobConfig::all_internode(4), mk(LuSync::Blocking)).unwrap();
        let nb = run_lu(JobConfig::all_internode(4), mk(LuSync::Nonblocking)).unwrap();
        assert!(
            nb.total_time.as_secs_f64() < b.total_time.as_secs_f64() * 0.75,
            "nonblocking {:?} should beat blocking {:?} by ≥25%",
            nb.total_time,
            b.total_time
        );
        assert!(b.comm_fraction > nb.comm_fraction);
    }
}
