//! Job driver: spawn one simulated process per rank, run the SPMD closure
//! on each, and collect the report.

use std::sync::Arc;

use mpisim_net::NetStats;
use mpisim_sim::{Sim, SimError, SimStats, SimTime};

use crate::api::RankEnv;
use crate::config::JobConfig;
use crate::engine::{Engine, RankStats};
use crate::types::Rank;

/// Everything a finished job reports.
#[derive(Debug)]
pub struct JobReport {
    /// Virtual time when the last rank finished.
    pub final_time: SimTime,
    /// Kernel statistics.
    pub sim: SimStats,
    /// Network statistics.
    pub net: NetStats,
    /// Per-rank timing.
    pub ranks: Vec<RankStats>,
    /// Epoch lifecycle trace (empty unless `JobConfig::trace`).
    pub trace: Vec<crate::trace::TraceRecord>,
    /// Synchronization-plane trace (empty unless `JobConfig::trace`).
    pub sync_trace: Vec<crate::trace::SyncRecord>,
    /// Request lifecycle log (empty unless `JobConfig::trace`).
    pub req_events: Vec<(crate::types::Req, crate::request::ReqEvent)>,
    /// Requests still unconsumed when the job finished (should be 0).
    pub live_requests: usize,
    /// Engine-level counters (epochs opened/activated/completed, grants…).
    pub engine: crate::engine::EngineStats,
    /// Degraded-mode events the engine recorded — protocol violations,
    /// checksum drops, retry exhaustion, peer crashes, and cancelled
    /// (stalled) epochs — each with rank/window provenance. Empty on a
    /// healthy run; see [`JobReport::is_clean`].
    pub degradations: Vec<crate::engine::Degradation>,
    /// Completed rank-restart episodes (crash-recovery provenance). Every
    /// entry here also appears as a [`crate::engine::Degradation::Recovered`]
    /// record in `degradations`.
    pub recoveries: Vec<crate::engine::RecoveryReport>,
}

impl JobReport {
    /// `true` when the run recorded no degraded-mode events: no corrupt
    /// sync packets, checksum failures, exhausted retries, peer crashes,
    /// or watchdog-cancelled epochs.
    pub fn is_clean(&self) -> bool {
        self.degradations.is_empty()
    }

    /// Mean fraction of rank time spent in MPI calls (Fig 13 b/d).
    pub fn mean_comm_fraction(&self) -> f64 {
        if self.ranks.is_empty() || self.final_time.is_zero() {
            return 0.0;
        }
        let total: f64 = self
            .ranks
            .iter()
            .map(|r| r.mpi_time.as_secs_f64())
            .sum::<f64>();
        total / (self.ranks.len() as f64 * self.final_time.as_secs_f64())
    }
}

/// Run an SPMD program: `f` is executed once per rank against its
/// [`RankEnv`]. Returns when every rank's closure returns.
///
/// ```
/// use mpisim_core::{run_job, JobConfig};
///
/// let report = run_job(JobConfig::new(4), |env| {
///     let win = env.win_allocate(1024).unwrap();
///     env.fence(win).unwrap();
///     if env.rank().idx() == 0 {
///         env.put(win, mpisim_core::Rank(1), 0, &[42]).unwrap();
///     }
///     env.fence(win).unwrap();
///     if env.rank().idx() == 1 {
///         assert_eq!(env.read_local(win, 0, 1).unwrap(), vec![42]);
///     }
///     env.win_free(win).unwrap();
/// })
/// .unwrap();
/// assert!(report.final_time > mpisim_sim::SimTime::ZERO);
/// ```
pub fn run_job<F>(cfg: JobConfig, f: F) -> Result<JobReport, SimError>
where
    F: Fn(&mut RankEnv) + Send + Sync + 'static,
{
    let mut sim = Sim::new(cfg.seed);
    sim.set_exec_mode(cfg.exec);
    sim.set_stack_size(cfg.stack_size);
    sim.set_event_cap(cfg.event_cap);
    sim.set_tiebreak_seed(cfg.tiebreak_seed);
    sim.set_nondet_tiebreak(cfg.nondet_tiebreak);
    if let Some(iters) = cfg.handoff_spin {
        sim.set_handoff_spin(iters);
    }
    let eng = Engine::new(sim.handle(), cfg.clone());
    let f = Arc::new(f);
    for r in 0..cfg.n_ranks {
        let eng = eng.clone();
        let f = f.clone();
        sim.spawn(format!("rank{r}"), move |ctx| {
            let mut env = RankEnv::new(ctx, eng, Rank(r));
            f(&mut env);
        });
    }
    let stats = sim.run()?;
    let ranks = (0..cfg.n_ranks).map(|r| eng.rank_stats(Rank(r))).collect();
    Ok(JobReport {
        final_time: stats.final_time,
        sim: stats,
        net: eng.network().stats(),
        ranks,
        trace: eng.take_trace(),
        sync_trace: eng.take_sync_trace(),
        req_events: eng.take_req_log(),
        live_requests: eng.live_requests(),
        engine: eng.engine_stats(),
        degradations: eng.take_degradations(),
        recoveries: eng.take_recoveries(),
    })
}
