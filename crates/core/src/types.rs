//! Fundamental identifier and group types used across the middleware.

use std::sync::Arc;

pub use mpisim_net::Rank;

/// Identifier of an RMA window (dense per job).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WinId(pub u32);

/// Identifier of an epoch object within one rank's side of one window.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EpochId(pub u64);

/// An application-level request handle, as returned by the nonblocking API
/// and consumed by the test/wait family.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[must_use = "requests must be completed with wait/test or leaked knowingly"]
pub struct Req(pub u64);

/// An ordered set of ranks, used as the group argument of the general
/// active-target synchronization (GATS) calls.
///
/// Cheap to clone (`Arc` inside). Construction validates that ranks are
/// strictly increasing, which rules out duplicates.
#[derive(Clone, Debug)]
pub struct Group {
    ranks: Arc<Vec<Rank>>,
}

impl Group {
    /// Build a group from an iterator of rank indices. Panics on duplicates
    /// or unsorted input.
    pub fn new(ranks: impl IntoIterator<Item = usize>) -> Self {
        let v: Vec<Rank> = ranks.into_iter().map(Rank).collect();
        assert!(
            v.windows(2).all(|w| w[0] < w[1]),
            "group ranks must be strictly increasing"
        );
        Group { ranks: Arc::new(v) }
    }

    /// All ranks except `me`, over a job of `n` ranks.
    pub fn all_but(n: usize, me: Rank) -> Self {
        Group::new((0..n).filter(|r| *r != me.idx()))
    }

    /// Every rank in `0..n`.
    pub fn world(n: usize) -> Self {
        Group::new(0..n)
    }

    /// A single-rank group.
    pub fn single(r: Rank) -> Self {
        Group::new([r.idx()])
    }

    /// The member ranks, ascending.
    pub fn ranks(&self) -> &[Rank] {
        &self.ranks
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Whether `r` is a member (binary search).
    pub fn contains(&self, r: Rank) -> bool {
        self.ranks.binary_search(&r).is_ok()
    }
}

/// Exclusive or shared passive-target lock, mirroring
/// `MPI_LOCK_EXCLUSIVE` / `MPI_LOCK_SHARED`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LockKind {
    /// Only one origin may hold the lock.
    Exclusive,
    /// Any number of origins may hold the lock concurrently.
    Shared,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_construction() {
        let g = Group::new([0, 2, 5]);
        assert_eq!(g.len(), 3);
        assert!(g.contains(Rank(2)));
        assert!(!g.contains(Rank(1)));
    }

    #[test]
    fn group_all_but_skips_me() {
        let g = Group::all_but(4, Rank(2));
        assert_eq!(g.ranks(), &[Rank(0), Rank(1), Rank(3)]);
    }

    #[test]
    fn world_and_single() {
        assert_eq!(Group::world(3).len(), 3);
        let s = Group::single(Rank(7));
        assert_eq!(s.ranks(), &[Rank(7)]);
        assert!(Group::new(std::iter::empty()).is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn duplicate_ranks_rejected() {
        let _ = Group::new([1, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_ranks_rejected() {
        let _ = Group::new([2, 1]);
    }
}
