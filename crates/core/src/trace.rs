//! Epoch lifecycle tracing.
//!
//! When [`crate::JobConfig::trace`] is enabled, the engine records a
//! timestamped event at each transition of every epoch's two lifetimes
//! (§VI: application-level *open → closed*, internal *activated →
//! completed*). The trace makes the paper's concepts directly observable:
//! deferral shows up as a gap between *opened* and *activated*, a
//! nonblocking close shows up as *closed* long before *completed*, and
//! Late-Complete-style propagation shows up as target epochs completing
//! at the origin's pace.

use mpisim_sim::SimTime;

use crate::types::{Rank, WinId};

/// A lifecycle transition.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EpochEvent {
    /// Epoch object created (application-level open).
    Opened,
    /// Internal lifetime started (progress engine activated it).
    Activated,
    /// Application-level close routine invoked.
    Closed,
    /// Internal lifetime ended (all completion conditions met).
    Completed,
}

impl EpochEvent {
    /// Short label used in displays.
    pub fn label(self) -> &'static str {
        match self {
            EpochEvent::Opened => "open",
            EpochEvent::Activated => "act",
            EpochEvent::Closed => "close",
            EpochEvent::Completed => "done",
        }
    }
}

impl std::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} r{} w{} e{} {} {}",
            self.time,
            self.rank.idx(),
            self.win.0,
            self.epoch,
            self.kind,
            self.event.label()
        )
    }
}

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// Virtual time of the transition.
    pub time: SimTime,
    /// Rank owning the epoch.
    pub rank: Rank,
    /// Window the epoch belongs to.
    pub win: WinId,
    /// Epoch id within that rank's side of the window.
    pub epoch: u64,
    /// Epoch kind ("fence", "gats-access", "gats-exposure", "lock",
    /// "lock-all").
    pub kind: &'static str,
    /// Which transition.
    pub event: EpochEvent,
}

/// Which ω-triple matching plane a synchronization event belongs to.
///
/// GATS/fence epochs match on the `⟨a, e, g⟩` counters; passive-target
/// epochs match on the separate `⟨a_lock, g_lock⟩` pair (split matching
/// planes, DESIGN.md deviation 1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Plane {
    /// Active-target plane (`a`/`e`/`g` counters; fence and GATS).
    Gats,
    /// Passive-target plane (`a_lock`/`g_lock` counters; lock/lock_all).
    Lock,
}

/// How an RMA data operation touches target window memory, as recorded in
/// the sync trace for the happens-before race detector
/// (`mpisim-analyze`). Accumulate-family operations are applied atomically
/// elementwise by the engine, so two accumulates with the *same* reduction
/// operator never conflict; everything else follows the usual
/// read/write matrix.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Get-style read of target bytes.
    Read,
    /// Put-style overwrite of target bytes.
    Write,
    /// Accumulate-family atomic update with this reduction operator
    /// (accumulate, get_accumulate, fetch_and_op).
    Atomic(crate::datatype::ReduceOp),
    /// Compare-and-swap: an atomic conditional write.
    AtomicCas,
}

impl AccessKind {
    /// Whether two accesses to overlapping bytes of one window conflict
    /// (i.e. at least one mutates and the pair is not an atomic pair that
    /// commutes). Unordered conflicting accesses are data races under the
    /// MPI-3 RMA memory model.
    pub fn conflicts_with(self, other: AccessKind) -> bool {
        use crate::datatype::ReduceOp::NoOp;
        use AccessKind::*;
        match (self, other) {
            // Neither side mutates (plain reads and NoOp atomic reads).
            _ if !self.writes() && !other.writes() => false,
            // A NoOp accumulate is an element-wise-atomic pure read:
            // well-ordered against every accumulate-family access (the
            // MPI `same_op_no_op` default).
            (Atomic(NoOp), Atomic(_) | AtomicCas)
            | (Atomic(_) | AtomicCas, Atomic(NoOp)) => false,
            // Same-operator accumulates are atomic and commute; mixed
            // operators leave a schedule-dependent result.
            (Atomic(a), Atomic(b)) => a != b,
            _ => true,
        }
    }

    /// Whether the access mutates target memory (a `NoOp` accumulate
    /// reads atomically without modifying the slot).
    pub fn writes(self) -> bool {
        !matches!(
            self,
            AccessKind::Read | AccessKind::Atomic(crate::datatype::ReduceOp::NoOp)
        )
    }
}

/// A synchronization-plane transition, recorded alongside the epoch trace
/// when tracing is on. These are the raw material of the conformance
/// harness's invariant auditor — grant emission and application must stay
/// positional and monotone, and data must never be issued to a target
/// before the matching grant arrived (§VII.B) — and of the
/// happens-before race detector, which advances vector clocks on the
/// grant / epoch-done / fence-done edges and checks [`DataIssued`] byte
/// ranges for unordered conflicts.
///
/// [`DataIssued`]: SyncEvent::DataIssued
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SyncEvent {
    /// The granter sent positional grant number `id` to `peer`.
    GrantSent {
        /// Grant position within the (granter, peer, win, plane) stream.
        id: u64,
    },
    /// The origin applied a grant, raising its `g_r` (or `g_lock`) to `id`.
    GrantApplied {
        /// The counter value after application.
        id: u64,
    },
    /// An access epoch was assigned its positional access id `A_i` toward
    /// `peer` at activation.
    AccessAssigned {
        /// Epoch id (matches the epoch trace).
        epoch: u64,
        /// The positional access id assigned.
        id: u64,
    },
    /// An RMA data operation of `epoch` was handed to the network toward
    /// `peer` (after the grant gate, except for fences which pre-grant).
    /// Carries the target byte range and access kind so the race detector
    /// needs no side channels.
    DataIssued {
        /// Epoch id (matches the epoch trace).
        epoch: u64,
        /// Target window byte displacement.
        disp: usize,
        /// Target window extent in bytes (layout extent for strided ops).
        len: usize,
        /// How the operation touches `[disp, disp+len)` at the target.
        access: AccessKind,
    },
    /// The origin announced epoch closure toward `peer`: a GATS done
    /// packet (plane [`Plane::Gats`]) or an unlock packet
    /// ([`Plane::Lock`]), carrying the positional access id. The
    /// complete→wait / unlock→lock happens-before edge starts here.
    EpochDoneSent {
        /// Epoch id (matches the epoch trace).
        epoch: u64,
        /// Positional access id of the closing epoch toward `peer`.
        id: u64,
    },
    /// The target consumed the origin's closure announcement `id` (done
    /// packet raised `gats_done_recv`, or the unlock entered the release
    /// backlog). The complete→wait / unlock→lock edge lands here.
    EpochDoneApplied {
        /// Positional access id of the origin's closing epoch.
        id: u64,
    },
    /// This rank announced its closing fence of sequence `seq` to `peer`
    /// (the fence barrier's outgoing half).
    FenceDoneSent {
        /// Fence sequence number on the window.
        seq: u64,
    },
    /// This rank's fence of sequence `seq` completed having consumed the
    /// announcement from `peer` (the fence barrier's incoming half; one
    /// record per peer at completion).
    FenceDoneApplied {
        /// Fence sequence number on the window.
        seq: u64,
    },
    /// The rank touched its *own* window memory outside any traced
    /// synchronization (`peer` = self). Emitted only by the `hb-race`
    /// fault injection today: a planted unsynchronized local access the
    /// race detector must flag.
    LocalAccess {
        /// Byte displacement in the local window.
        disp: usize,
        /// Length in bytes.
        len: usize,
        /// How local memory was touched.
        access: AccessKind,
    },
}

/// One synchronization-plane trace record.
#[derive(Copy, Clone, Debug)]
pub struct SyncRecord {
    /// Virtual time of the event.
    pub time: SimTime,
    /// Rank on which the event happened.
    pub rank: Rank,
    /// The remote rank involved (grant peer, or data target).
    pub peer: Rank,
    /// Window.
    pub win: WinId,
    /// Matching plane.
    pub plane: Plane,
    /// The transition.
    pub event: SyncEvent,
}

impl std::fmt::Display for SyncRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let plane = match self.plane {
            Plane::Gats => "gats",
            Plane::Lock => "lock",
        };
        write!(
            f,
            "{} r{} w{} peer r{} {plane} {:?}",
            self.time,
            self.rank.idx(),
            self.win.0,
            self.peer.idx(),
            self.event
        )
    }
}

/// Per-epoch lifecycle summary assembled from raw records.
#[derive(Clone, Debug, Default)]
pub struct EpochSummary {
    /// Rank owning the epoch.
    pub rank: usize,
    /// Window id.
    pub win: u32,
    /// Epoch id.
    pub epoch: u64,
    /// Epoch kind.
    pub kind: &'static str,
    /// Transition times.
    pub opened: Option<SimTime>,
    /// Internal activation time (None = never activated).
    pub activated: Option<SimTime>,
    /// Application-level close time.
    pub closed: Option<SimTime>,
    /// Internal completion time.
    pub completed: Option<SimTime>,
}

impl EpochSummary {
    /// Time the epoch sat deferred (opened → activated).
    pub fn deferral(&self) -> Option<SimTime> {
        Some(self.activated? - self.opened?)
    }

    /// Time between the application closing the epoch and the middleware
    /// completing it — the window a nonblocking close makes productive.
    pub fn close_to_complete(&self) -> Option<SimTime> {
        Some(self.completed?.saturating_sub(self.closed?))
    }
}

/// Fold raw records into per-epoch summaries, ordered by (rank, win,
/// epoch id).
pub fn summarize(records: &[TraceRecord]) -> Vec<EpochSummary> {
    use std::collections::BTreeMap;
    let mut map: BTreeMap<(usize, u32, u64), EpochSummary> = BTreeMap::new();
    for r in records {
        let e = map.entry((r.rank.idx(), r.win.0, r.epoch)).or_insert_with(|| EpochSummary {
            rank: r.rank.idx(),
            win: r.win.0,
            epoch: r.epoch,
            kind: r.kind,
            ..EpochSummary::default()
        });
        let slot = match r.event {
            EpochEvent::Opened => &mut e.opened,
            EpochEvent::Activated => &mut e.activated,
            EpochEvent::Closed => &mut e.closed,
            EpochEvent::Completed => &mut e.completed,
        };
        debug_assert!(slot.is_none(), "duplicate {:?} for epoch", r.event);
        *slot = Some(r.time);
    }
    map.into_values().collect()
}

fn fmt_t(t: Option<SimTime>) -> String {
    match t {
        Some(t) => format!("{:>10.1}", t.as_micros_f64()),
        None => format!("{:>10}", "-"),
    }
}

/// Render a text timeline of every epoch, one row each, µs columns.
pub fn render_timeline(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<5}{:<5}{:<6}{:<15}{:>10}{:>10}{:>10}{:>10}{:>12}{:>12}\n",
        "rank", "win", "epoch", "kind", "open", "act", "close", "done", "deferred", "close→done"
    ));
    for s in summarize(records) {
        out.push_str(&format!(
            "r{:<4}w{:<4}e{:<5}{:<15}{}{}{}{}{:>12}{:>12}\n",
            s.rank,
            s.win,
            s.epoch,
            s.kind,
            fmt_t(s.opened),
            fmt_t(s.activated),
            fmt_t(s.closed),
            fmt_t(s.completed),
            s.deferral()
                .map(|d| format!("{:.1}", d.as_micros_f64()))
                .unwrap_or_else(|| "-".into()),
            s.close_to_complete()
                .map(|d| format!("{:.1}", d.as_micros_f64()))
                .unwrap_or_else(|| "-".into()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(rank: usize, epoch: u64, event: EpochEvent, us: u64) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_micros(us),
            rank: Rank(rank),
            win: WinId(0),
            epoch,
            kind: "lock",
            event,
        }
    }

    #[test]
    fn summarize_folds_transitions() {
        let recs = vec![
            rec(0, 1, EpochEvent::Opened, 10),
            rec(0, 1, EpochEvent::Activated, 12),
            rec(0, 1, EpochEvent::Closed, 20),
            rec(0, 1, EpochEvent::Completed, 300),
            rec(0, 2, EpochEvent::Opened, 21),
            rec(0, 2, EpochEvent::Activated, 300),
        ];
        let s = summarize(&recs);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].deferral(), Some(SimTime::from_micros(2)));
        assert_eq!(s[0].close_to_complete(), Some(SimTime::from_micros(280)));
        // Epoch 2 was deferred 279 µs and never closed.
        assert_eq!(s[1].deferral(), Some(SimTime::from_micros(279)));
        assert_eq!(s[1].close_to_complete(), None);
    }

    #[test]
    fn render_contains_rows_and_headers() {
        let recs = vec![
            rec(1, 7, EpochEvent::Opened, 5),
            rec(1, 7, EpochEvent::Completed, 50),
        ];
        let out = render_timeline(&recs);
        assert!(out.contains("deferred"));
        assert!(out.contains("r1"));
        assert!(out.contains("e7"));
        assert!(out.contains("lock"));
    }
}
