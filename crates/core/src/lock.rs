//! Target-side passive-target lock manager.
//!
//! Each rank hosts one lock per window. Requests queue in arrival order;
//! the engine grants a queued request when (a) its origin's grant sequence
//! makes it *eligible* (grants to one origin are emitted in access-id
//! order, §VII.B) and (b) the lock state admits it. FIFO fairness: a
//! request that is eligible but blocked by the lock state blocks everything
//! behind it, so writers cannot starve behind a stream of readers.

use std::collections::{HashMap, VecDeque};

use crate::types::{LockKind, Rank};

/// Current holder state of one window's lock at one rank.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockState {
    /// Nobody holds the lock.
    Free,
    /// Held shared by the contained number of origins.
    Shared(usize),
    /// Held exclusively by one origin.
    Excl(Rank),
}

/// A queued lock request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueuedLock {
    /// Requesting origin.
    pub origin: Rank,
    /// The origin's access id toward this target.
    pub access_id: u64,
    /// Exclusive or shared.
    pub kind: LockKind,
}

/// The lock manager for one window at one rank.
#[derive(Debug)]
pub struct LockMgr {
    state: LockState,
    queue: VecDeque<QueuedLock>,
    /// origin → access id of its held lock (one hold per origin).
    holders: HashMap<Rank, u64>,
}

impl Default for LockMgr {
    fn default() -> Self {
        LockMgr {
            state: LockState::Free,
            queue: VecDeque::new(),
            holders: HashMap::new(),
        }
    }
}

impl LockMgr {
    /// Current lock state.
    pub fn state(&self) -> &LockState {
        &self.state
    }

    /// Number of queued (ungranted) requests.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Enqueue an arriving request (arrival order preserved). A request
    /// from an origin that currently holds the lock is legal: with the
    /// reorder flags, back-to-back lock epochs toward the same target put
    /// the next epoch's request in flight before the previous unlock.
    pub fn enqueue(&mut self, req: QueuedLock) {
        self.queue.push_back(req);
    }

    /// Whether the lock state would admit `kind` right now.
    pub fn admits(&self, kind: LockKind) -> bool {
        matches!(
            (&self.state, kind),
            (LockState::Free, _) | (LockState::Shared(_), LockKind::Shared)
        )
    }

    /// Grant a specific queued request (the engine decided it is eligible
    /// and admissible). Panics if the request is not queued or not
    /// admissible — the engine's pump must check first.
    pub fn grant(&mut self, origin: Rank, access_id: u64) {
        let pos = self
            .queue
            .iter()
            .position(|q| q.origin == origin && q.access_id == access_id)
            .expect("granting a lock request that is not queued");
        let req = self.queue.remove(pos).unwrap();
        assert!(self.admits(req.kind), "granting an inadmissible lock");
        assert!(
            !self.holders.contains_key(&origin),
            "origin {origin} granted a lock it already holds (erroneous program)"
        );
        self.state = match (&self.state, req.kind) {
            (LockState::Free, LockKind::Exclusive) => LockState::Excl(origin),
            (LockState::Free, LockKind::Shared) => LockState::Shared(1),
            (LockState::Shared(n), LockKind::Shared) => LockState::Shared(n + 1),
            _ => unreachable!(),
        };
        self.holders.insert(origin, access_id);
    }

    /// Release the lock held by `origin`. Panics if it holds nothing
    /// (erroneous program).
    pub fn release(&mut self, origin: Rank) {
        assert!(
            self.holders.remove(&origin).is_some(),
            "{origin} released a lock it does not hold (erroneous program)"
        );
        self.state = match &self.state {
            LockState::Excl(r) => {
                assert_eq!(*r, origin, "exclusive lock released by a non-holder");
                LockState::Free
            }
            LockState::Shared(1) => LockState::Free,
            LockState::Shared(n) => LockState::Shared(n - 1),
            LockState::Free => panic!("release on a free lock"),
        };
    }

    /// Iterate queued requests in arrival order.
    pub fn queue_iter(&self) -> impl Iterator<Item = &QueuedLock> {
        self.queue.iter()
    }

    /// Whether `origin` currently holds the lock.
    pub fn holds(&self, origin: Rank) -> bool {
        self.holders.contains_key(&origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(origin: usize, id: u64, kind: LockKind) -> QueuedLock {
        QueuedLock {
            origin: Rank(origin),
            access_id: id,
            kind,
        }
    }

    #[test]
    fn exclusive_serializes() {
        let mut m = LockMgr::default();
        m.enqueue(req(0, 1, LockKind::Exclusive));
        m.enqueue(req(1, 1, LockKind::Exclusive));
        assert!(m.admits(LockKind::Exclusive));
        m.grant(Rank(0), 1);
        assert_eq!(*m.state(), LockState::Excl(Rank(0)));
        assert!(!m.admits(LockKind::Exclusive));
        assert!(!m.admits(LockKind::Shared));
        m.release(Rank(0));
        assert_eq!(*m.state(), LockState::Free);
        m.grant(Rank(1), 1);
        assert!(m.holds(Rank(1)));
    }

    #[test]
    fn shared_holders_accumulate() {
        let mut m = LockMgr::default();
        for o in 0..3 {
            m.enqueue(req(o, 1, LockKind::Shared));
        }
        m.grant(Rank(0), 1);
        m.grant(Rank(1), 1);
        m.grant(Rank(2), 1);
        assert_eq!(*m.state(), LockState::Shared(3));
        m.release(Rank(1));
        assert_eq!(*m.state(), LockState::Shared(2));
        m.release(Rank(0));
        m.release(Rank(2));
        assert_eq!(*m.state(), LockState::Free);
    }

    #[test]
    fn shared_blocks_exclusive() {
        let mut m = LockMgr::default();
        m.enqueue(req(0, 1, LockKind::Shared));
        m.grant(Rank(0), 1);
        assert!(m.admits(LockKind::Shared));
        assert!(!m.admits(LockKind::Exclusive));
    }

    #[test]
    fn requeue_while_holding_is_legal_but_double_grant_is_not() {
        let mut m = LockMgr::default();
        m.enqueue(req(0, 1, LockKind::Shared));
        m.grant(Rank(0), 1);
        // Back-to-back epoch: request queued while holding is fine...
        m.enqueue(req(0, 2, LockKind::Shared));
        assert_eq!(m.queued(), 1);
        // ...and becomes grantable after the release.
        m.release(Rank(0));
        m.grant(Rank(0), 2);
        assert!(m.holds(Rank(0)));
    }

    #[test]
    #[should_panic(expected = "already holds")]
    fn double_grant_same_origin_panics() {
        let mut m = LockMgr::default();
        m.enqueue(req(0, 1, LockKind::Shared));
        m.enqueue(req(0, 2, LockKind::Shared));
        m.grant(Rank(0), 1);
        m.grant(Rank(0), 2);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn release_without_hold_panics() {
        let mut m = LockMgr::default();
        m.release(Rank(0));
    }

    #[test]
    fn queue_order_preserved() {
        let mut m = LockMgr::default();
        m.enqueue(req(2, 1, LockKind::Exclusive));
        m.enqueue(req(0, 5, LockKind::Shared));
        let order: Vec<Rank> = m.queue_iter().map(|q| q.origin).collect();
        assert_eq!(order, vec![Rank(2), Rank(0)]);
        assert_eq!(m.queued(), 2);
    }
}
