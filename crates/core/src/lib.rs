//! # mpisim-core — nonblocking MPI RMA epochs on a simulated cluster
//!
//! A from-scratch Rust implementation of the system described in
//! *"Nonblocking Epochs in MPI One-Sided Communication"* (SC 2014):
//! an MPI-like one-sided communication middleware in which **every** epoch
//! synchronization routine — opening, closing, and flushing — has a
//! nonblocking variant whose completion is detected through the test/wait
//! family, making the entire lifetime of an RMA epoch wait-free at the
//! application level.
//!
//! The middleware implements the paper's design literally:
//!
//! * **deferred epochs** with event recording and replay (§VI, §VII.A);
//! * **O(1) epoch matching** via the per-peer ω = ⟨a, e, g⟩ counter
//!   triples, with grants sequenced per origin (§VII.B);
//! * **specialized request objects** — dummy epoch-opening requests,
//!   epoch-closing requests, and age-stamped flush requests (§VII.C);
//! * the **seven-step progress sweep** (§VII.D);
//! * the four **info-object reorder flags** `A_A_A_R`, `A_A_E_R`,
//!   `E_A_E_R`, `E_A_A_R` enabling out-of-order epoch progression (§VI.B);
//! * a **lazy baseline** strategy reproducing the documented vanilla
//!   MVAPICH behaviour for comparison (§VIII).
//!
//! Because no native MPI runtime is available to modify, ranks run on a
//! deterministic discrete-event simulation (`mpisim-sim`) over a calibrated
//! InfiniBand-like network model (`mpisim-net`); all latencies below are
//! virtual time.
//!
//! ## Quickstart
//!
//! ```
//! use mpisim_core::{run_job, JobConfig, Group, LockKind, Rank};
//!
//! let report = run_job(JobConfig::new(2), |env| {
//!     let win = env.win_allocate(64).unwrap();
//!     // Passive-target epoch, fully nonblocking:
//!     if env.rank().idx() == 0 {
//!         let _ = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
//!         env.put(win, Rank(1), 0, b"hello").unwrap();
//!         let done = env.iunlock(win, Rank(1)).unwrap();
//!         // ... overlap computation here ...
//!         env.wait(done).unwrap();
//!     }
//!     env.barrier().unwrap();
//!     if env.rank().idx() == 1 {
//!         assert_eq!(env.read_local(win, 0, 5).unwrap(), b"hello");
//!     }
//!     env.win_free(win).unwrap();
//! })
//! .unwrap();
//! assert!(report.sim.events_executed > 0);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod coll;
pub mod config;
pub mod datatype;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod lock;
pub mod msg;
pub mod request;
pub mod runtime;
pub mod trace;
pub mod types;
pub mod window;

pub use api::RankEnv;
pub use config::{JobConfig, Overheads, RecoveryCfg, Reliability, SyncStrategy, WinInfo};
pub use datatype::{Datatype, ReduceOp};
pub use engine::{
    Degradation, Engine, EngineStats, Fault, OmegaSnapshot, ProtocolError, RankStats,
    RecoveryReport, StallReport,
};
pub use error::{RmaError, RmaResult};
pub use mpisim_sim::ExecMode;
pub use runtime::{run_job, JobReport};
pub use types::{Group, LockKind, Rank, Req, WinId};
