//! Collective operations over the two-sided substrate: binomial-tree
//! broadcast, reduce, allreduce, and gather.
//!
//! The middleware needs these for application bootstrap (distributing
//! parameters, collecting results) — real MPI programs mix collectives
//! with RMA phases constantly, and the paper's progress-engine design
//! explicitly requires RMA and non-RMA communication to progress each
//! other (§VII). Every collective is built from `isend`/`irecv`, so
//! running one *is* exercising that cooperation.
//!
//! Tag space: collective traffic uses tags above [`COLL_TAG_BASE`], with a
//! per-rank sequence number. SPMD programs call collectives in the same
//! order on every rank, so sequence numbers agree without negotiation.
//!
//! ```
//! use mpisim_core::{run_job, Datatype, JobConfig, Rank, ReduceOp};
//!
//! run_job(JobConfig::new(4), |env| {
//!     // Rank 2 broadcasts a parameter...
//!     let data = if env.rank().idx() == 2 { vec![9u8] } else { vec![] };
//!     let param = env.bcast(Rank(2), &data).unwrap();
//!     assert_eq!(param.as_ref(), &[9]);
//!     // ...and everyone agrees on a sum.
//!     let total = env
//!         .allreduce(Datatype::U64, ReduceOp::Sum, &1u64.to_le_bytes())
//!         .unwrap();
//!     assert_eq!(u64::from_le_bytes(total.try_into().unwrap()), 4);
//! })
//! .unwrap();
//! ```

use bytes::Bytes;

use crate::api::RankEnv;
use crate::datatype::{self, Datatype, ReduceOp};
use crate::error::{RmaError, RmaResult};
use crate::types::Rank;

/// Tags at or above this value are reserved for collectives.
pub const COLL_TAG_BASE: u64 = 1 << 60;

impl RankEnv<'_> {
    fn coll_tag(&self) -> u64 {
        COLL_TAG_BASE + self.engine().next_coll_seq(self.rank())
    }

    /// Binomial-tree broadcast: `root`'s `data` is returned on every rank.
    pub fn bcast(&self, root: Rank, data: &[u8]) -> RmaResult<Bytes> {
        let n = self.n_ranks();
        if root.idx() >= n {
            return Err(RmaError::InvalidRank(root.idx()));
        }
        let tag = self.coll_tag();
        let me = self.rank().idx();
        let rel = (me + n - root.idx()) % n;

        let buf: Bytes = if rel == 0 {
            Bytes::copy_from_slice(data)
        } else {
            // Receive from the parent: clear the lowest set bit.
            let parent_rel = rel & (rel - 1);
            let parent = Rank((parent_rel + root.idx()) % n);
            self.recv(parent, tag)?
        };
        // Forward to children: set each bit above the lowest set bit of
        // rel (for rel == 0, all bits).
        let lowbit = if rel == 0 { usize::MAX } else { rel & rel.wrapping_neg() };
        let mut reqs = Vec::new();
        let mut bit = 1usize;
        while bit < n {
            if bit < lowbit && rel + bit < n {
                let child = Rank((rel + bit + root.idx()) % n);
                reqs.push(self.isend(child, tag, &buf)?);
            }
            bit <<= 1;
        }
        self.wait_all(reqs)?;
        Ok(buf)
    }

    /// Binomial-tree reduction of equal-length element buffers toward
    /// `root`. Returns `Some(result)` at the root, `None` elsewhere.
    pub fn reduce(
        &self,
        root: Rank,
        dt: Datatype,
        op: ReduceOp,
        data: &[u8],
    ) -> RmaResult<Option<Vec<u8>>> {
        let n = self.n_ranks();
        if root.idx() >= n {
            return Err(RmaError::InvalidRank(root.idx()));
        }
        dt.check_len(data.len())?;
        let tag = self.coll_tag();
        let me = self.rank().idx();
        let rel = (me + n - root.idx()) % n;

        let mut acc = data.to_vec();
        // Receive from children (mirror of the bcast tree), combining as
        // they arrive.
        let lowbit = if rel == 0 { usize::MAX } else { rel & rel.wrapping_neg() };
        let mut bit = 1usize;
        while bit < n {
            if bit < lowbit && rel + bit < n {
                let child = Rank((rel + bit + root.idx()) % n);
                let contrib = self.recv(child, tag)?;
                if contrib.len() != acc.len() {
                    return Err(RmaError::DatatypeMismatch {
                        detail: "reduce contributions differ in length",
                    });
                }
                datatype::apply(dt, op, &mut acc, &contrib)?;
            }
            bit <<= 1;
        }
        if rel == 0 {
            Ok(Some(acc))
        } else {
            let parent_rel = rel & (rel - 1);
            let parent = Rank((parent_rel + root.idx()) % n);
            self.send(parent, tag, &acc)?;
            Ok(None)
        }
    }

    /// Reduce-to-root followed by broadcast: every rank gets the combined
    /// result.
    pub fn allreduce(&self, dt: Datatype, op: ReduceOp, data: &[u8]) -> RmaResult<Vec<u8>> {
        let root = Rank(0);
        let reduced = self.reduce(root, dt, op, data)?;
        let result = self.bcast(root, reduced.as_deref().unwrap_or(&[]))?;
        Ok(result.to_vec())
    }

    /// Gather every rank's buffer at `root`, ordered by rank. Returns
    /// `Some(buffers)` at the root, `None` elsewhere.
    pub fn gather(&self, root: Rank, data: &[u8]) -> RmaResult<Option<Vec<Bytes>>> {
        let n = self.n_ranks();
        if root.idx() >= n {
            return Err(RmaError::InvalidRank(root.idx()));
        }
        let tag = self.coll_tag();
        if self.rank() == root {
            // Post all receives up front so arrivals overlap.
            let mut reqs = Vec::new();
            for r in 0..n {
                if r != root.idx() {
                    reqs.push(Some(self.irecv(Rank(r), tag)?));
                } else {
                    reqs.push(None);
                }
            }
            let mut out = Vec::with_capacity(n);
            for (r, req) in reqs.into_iter().enumerate() {
                match req {
                    Some(q) => out.push(self.wait_data(q)?),
                    None => {
                        debug_assert_eq!(r, root.idx());
                        out.push(Bytes::copy_from_slice(data));
                    }
                }
            }
            Ok(Some(out))
        } else {
            self.send(root, tag, data)?;
            Ok(None)
        }
    }
}
