//! Error reporting for misused RMA semantics.
//!
//! Real MPI implementations abort on most of these; surfacing them as typed
//! errors makes the simulated middleware far easier to test (several unit
//! tests deliberately provoke each variant).

use crate::types::{Rank, WinId};

/// Errors surfaced by the RMA middleware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmaError {
    /// An RMA communication call was made with no open access epoch
    /// covering the target.
    NoEpoch {
        /// Window involved.
        win: WinId,
        /// Intended target.
        target: Rank,
    },
    /// An epoch-closing routine did not match the kind of the open epoch
    /// (e.g. `complete` with no GATS access epoch open).
    EpochMismatch {
        /// What the application called.
        called: &'static str,
    },
    /// A grant arriving from a target did not match the kind of access the
    /// origin opened — the program's epochs are mismatched (rule 3 of
    /// §VI.A, FIFO matching, was violated).
    GrantKindMismatch {
        /// Window involved.
        win: WinId,
        /// Granting peer.
        peer: Rank,
    },
    /// Address range `[disp, disp+len)` exceeds the target's window.
    OutOfBounds {
        /// Window involved.
        win: WinId,
        /// Target whose region was exceeded.
        target: Rank,
        /// Offending displacement.
        disp: usize,
        /// Offending length.
        len: usize,
    },
    /// Target rank does not exist in the job.
    InvalidRank(usize),
    /// A window id that was never created (or already freed).
    InvalidWindow(WinId),
    /// An already-open epoch forbids this call (e.g. two `lock` calls to
    /// the same target without an `unlock`).
    AlreadyInEpoch {
        /// What the application called.
        called: &'static str,
    },
    /// Datatype/length mismatch (buffer not a multiple of the element
    /// size, or compare-and-swap on more than one element).
    DatatypeMismatch {
        /// Human-readable detail.
        detail: &'static str,
    },
    /// A request handle that was never issued or was already consumed.
    InvalidRequest,
    /// Operation is meaningless for the epoch kind (e.g. flush outside a
    /// passive-target epoch).
    NotPassiveEpoch,
    /// The info key combination is unsupported.
    BadInfo(&'static str),
}

impl std::fmt::Display for RmaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmaError::NoEpoch { win, target } => {
                write!(f, "RMA call on {win:?} to {target} outside any access epoch")
            }
            RmaError::EpochMismatch { called } => {
                write!(f, "{called} does not match the currently open epoch")
            }
            RmaError::GrantKindMismatch { win, peer } => write!(
                f,
                "grant from {peer} on {win:?} does not match the opened access kind (FIFO matching violated)"
            ),
            RmaError::OutOfBounds {
                win,
                target,
                disp,
                len,
            } => write!(
                f,
                "access [{disp}, {}) exceeds window {win:?} at {target}",
                disp + len
            ),
            RmaError::InvalidRank(r) => write!(f, "rank {r} out of range"),
            RmaError::InvalidWindow(w) => write!(f, "window {w:?} does not exist"),
            RmaError::AlreadyInEpoch { called } => {
                write!(f, "{called} while a conflicting epoch is already open")
            }
            RmaError::DatatypeMismatch { detail } => write!(f, "datatype mismatch: {detail}"),
            RmaError::InvalidRequest => write!(f, "invalid or already-consumed request handle"),
            RmaError::NotPassiveEpoch => write!(f, "flush requires a passive-target epoch"),
            RmaError::BadInfo(k) => write!(f, "unsupported info combination: {k}"),
        }
    }
}

impl std::error::Error for RmaError {}

/// Shorthand result type for RMA calls.
pub type RmaResult<T> = Result<T, RmaError>;
