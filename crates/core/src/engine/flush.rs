//! The flush family (`flush`, `flush_local`, `flush_all`,
//! `flush_local_all` and their nonblocking `i` variants), implemented with
//! the paper's age-stamping design (§VII.C):
//!
//! > "a monotonically increasing number is used to give an age to each RMA
//! > call object. Then the nonblocking flush request object is stamped with
//! > the age of the RMA call that immediately precedes. The completion
//! > counter of the request object is assigned either from the overall
//! > number of noncompleted RMA calls in the epoch or from the number of
//! > RMA calls yet to complete for a given target. [...] A flush request
//! > object completes when its completion counter reaches zero."

use std::sync::Arc;

use crate::engine::{EngState, Engine};
use crate::error::{RmaError, RmaResult};
use crate::request::ReqKind;
use crate::types::{EpochId, Rank, Req, WinId};
use crate::window::FlushState;

impl Engine {
    /// `MPI_WIN_IFLUSH*`: create an age-stamped flush request over the open
    /// passive-target epoch(s).
    ///
    /// * `target == Some(t)` → flush / flush_local toward `t`;
    /// * `target == None` → flush_all / flush_local_all;
    /// * `local_only` selects the `_local` semantics (origin completion
    ///   only, no remote acknowledgement required).
    pub fn iflush(
        self: &Arc<Self>,
        rank: Rank,
        win: WinId,
        target: Option<Rank>,
        local_only: bool,
    ) -> RmaResult<Req> {
        let req = {
            let mut st = self.st.lock();
            let w = st.win(win, rank);
            // Which passive epochs does this flush cover?
            let epochs: Vec<EpochId> = match target {
                Some(t) => {
                    let id = w
                        .open_locks
                        .get(&t)
                        .copied()
                        .or(w.cur_lock_all)
                        .ok_or(RmaError::NotPassiveEpoch)?;
                    vec![id]
                }
                None => {
                    let mut v: Vec<EpochId> = w.open_locks.values().copied().collect();
                    if let Some(id) = w.cur_lock_all {
                        v.push(id);
                    }
                    if v.is_empty() {
                        return Err(RmaError::NotPassiveEpoch);
                    }
                    v
                }
            };
            // Stamp: the age of the RMA call that immediately precedes.
            let stamp = w.next_age - 1;
            // Completion counter: covered, not-yet-complete RMA calls.
            let mut remaining = 0u64;
            for id in &epochs {
                let e = w.epoch(*id);
                for op in &e.pending_ops {
                    if op.age <= stamp && target.is_none_or(|t| op.target == t) {
                        remaining += 1;
                    }
                }
                for (age, op) in &e.live_ops {
                    if *age <= stamp && target.is_none_or(|t| op.target == t) {
                        let incomplete = if local_only {
                            !op.locally_done()
                        } else {
                            !op.done()
                        };
                        if incomplete {
                            remaining += 1;
                        }
                    }
                }
            }
            // Lazy baseline: the epoch is normally deferred whole until
            // `unlock`, but a flush demands remote completion *now*, which
            // requires the lock — so the flush forces acquisition (as in
            // MVAPICH, where flush triggers the lazy lock request).
            let mut forced = false;
            {
                let w = st.win_mut(win, rank);
                for id in &epochs {
                    let e = w.epoch_mut(*id);
                    if e.lazy_hold {
                        e.lazy_hold = false;
                        forced = true;
                    }
                    if !e.closed {
                        e.flush_forced = true;
                    }
                }
            }
            if forced {
                st.mark_act_dirty(rank, win);
            }
            for id in &epochs {
                st.mark_ops_dirty(rank, win, *id);
            }
            if remaining == 0 {
                st.reqs.alloc_done(ReqKind::Flush)
            } else {
                let req = st.reqs.alloc(ReqKind::Flush);
                st.win_mut(win, rank).flushes.push(FlushState {
                    epochs,
                    target,
                    stamp,
                    local_only,
                    remaining,
                    req,
                });
                req
            }
        };
        self.sweep(rank);
        Ok(req)
    }

    /// Decrement flush completion counters after an op transition
    /// ("any RMA object that [completes] decrements [the] completion
    /// counter [of covering flush requests]", §VII.C).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn flush_note_op(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        epoch: EpochId,
        age: u64,
        target: Rank,
        became_local: bool,
        became_done: bool,
    ) {
        if !(became_local || became_done) {
            return;
        }
        // Check emptiness before borrowing the scratch buffer so the
        // common no-flush case stays a pure early return.
        if st.win(win, rank).flushes.is_empty() {
            return;
        }
        let mut completed = std::mem::take(&mut st.sweep[rank.idx()].req_scratch);
        {
            let w = st.win_mut(win, rank);
            for f in w.flushes.iter_mut() {
                if !f.epochs.contains(&epoch)
                    || age > f.stamp
                    || f.target.is_some_and(|t| t != target)
                {
                    continue;
                }
                let hit = if f.local_only { became_local } else { became_done };
                if hit {
                    debug_assert!(f.remaining > 0);
                    f.remaining -= 1;
                    if f.remaining == 0 {
                        completed.push(f.req);
                    }
                }
            }
            w.flushes.retain(|f| f.remaining > 0);
        }
        for &r in &completed {
            st.reqs.complete(r, None);
        }
        completed.clear();
        st.sweep[rank.idx()].req_scratch = completed;
    }
}
