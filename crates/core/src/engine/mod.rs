//! The RMA progress engine (§VII).
//!
//! One `Engine` serves the whole simulated job. Its state is a single
//! mutex-protected structure; because the simulation kernel runs exactly
//! one entity at a time, the lock is never contended — it exists to satisfy
//! Rust's aliasing rules across the rank threads and scheduler events.
//!
//! The engine is driven from two directions:
//!
//! * **application calls** (via [`crate::api`]) mutate state and then run a
//!   progress sweep;
//! * **network events** (message delivery, local-completion and
//!   acknowledgement callbacks) enqueue work and run a sweep for the
//!   affected rank.
//!
//! A sweep executes the paper's seven steps (§VII.D) to quiescence:
//! completion verification, internode posting, batch epoch
//! completion/activation, intranode posting, intranode-FIFO consumption,
//! lock/unlock batch processing, and a final completion/activation pass.

mod epochs;
mod fence;
mod flush;
mod locks;
mod p2p;
pub(crate) mod recover;
pub(crate) mod rel;
mod rma;
mod watchdog;

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use mpisim_net::{NetParams, Network, Packet, Payload, Topology};
use mpisim_sim::{SimHandle, SimTime};
use parking_lot::Mutex;

use crate::config::{JobConfig, SyncStrategy};
use crate::msg::{Body, SyncPacket};
use crate::request::ReqTable;
use crate::types::{EpochId, Rank, Req, WinId};
use crate::window::WinRank;

pub(crate) use p2p::{BarrierRank, P2pRank};
pub use recover::{OmegaSnapshot, RecoveryReport};
pub use rel::Degradation;
pub(crate) use rel::RelRank;
pub use watchdog::StallReport;

/// Completion notices consumed by sweep step 1.
///
/// `Copy` matters: the reliability sublayer stores an op's ack notice as
/// plain data inside its retransmit window and pushes it onto the sweep
/// queue when the peer's cumulative ack arrives — while the engine lock is
/// already held, where a re-entrant closure would deadlock.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Notice {
    /// An outgoing data message finished serializing (origin buffer free).
    LocalComplete {
        win: WinId,
        epoch: EpochId,
        age: u64,
    },
    /// The origin learned of remote completion of a data message.
    Acked {
        win: WinId,
        epoch: EpochId,
        age: u64,
    },
}

/// Correlation state for tokens carried by request/response messages.
pub(crate) enum TokenInfo {
    /// Outstanding get: response completes the op and carries data.
    Get {
        rank: Rank,
        win: WinId,
        epoch: EpochId,
        age: u64,
        req: Req,
    },
    /// Outstanding fetch-style atomic.
    Fetch {
        rank: Rank,
        win: WinId,
        epoch: EpochId,
        age: u64,
        req: Req,
    },
    /// Large accumulate waiting for its clear-to-send.
    AccRndv {
        rank: Rank,
        win: WinId,
        epoch: EpochId,
        op: crate::epoch::OpDesc,
    },
    /// Rendezvous two-sided send waiting for its clear-to-send.
    P2pSend { rank: Rank, payload: Payload, req: Req },
    /// Rendezvous two-sided receive waiting for data.
    P2pRecv { req: Req },
}

/// Aggregate progress-engine counters (whole job), exposed by
/// [`Engine::engine_stats`] for introspection, tests, and ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Epoch objects created.
    pub epochs_opened: u64,
    /// Epochs that could not be activated at open (deferred at least once).
    pub epochs_deferred: u64,
    /// Epochs activated.
    pub epochs_activated: u64,
    /// Epochs internally completed.
    pub epochs_completed: u64,
    /// Exposure grants emitted.
    pub exposure_grants: u64,
    /// Lock grants emitted.
    pub lock_grants: u64,
    /// GATS done packets sent.
    pub gats_dones: u64,
    /// 64-bit packets successfully pushed through intranode notification
    /// FIFOs. Retries after a full ring are not double-counted, so this
    /// balances [`EngineStats::fifo_drained`] at quiescence.
    pub fifo_packets: u64,
    /// Progress sweeps executed.
    pub sweeps: u64,
    /// Per-step execution counts: how many times each of the seven sweep
    /// steps actually ran. A step whose work list is empty is skipped
    /// entirely (never counted), so a quiescent sweep leaves this array
    /// untouched. Index 0..6 = steps 1..7 of §VII.D.
    pub step_runs: [u64; 7],
    /// Completion notices consumed by step 1.
    pub notices_drained: u64,
    /// Dirty (window, epoch) entries scanned by the issue steps 2/4.
    pub issue_scans: u64,
    /// RMA operations put on the wire by the issue steps 2/4.
    pub ops_issued: u64,
    /// Dirty epochs whose completion conditions were rechecked (steps 3/7).
    pub completion_checks: u64,
    /// Per-window activation scans performed (steps 3/7).
    pub activation_scans: u64,
    /// 64-bit packets drained from intranode FIFOs by step 5.
    pub fifo_drained: u64,
    /// Corrupt 64-bit packets dropped by step 5 (each leaves a
    /// [`ProtocolError`] record instead of aborting the job).
    pub fifo_decode_errors: u64,
    /// Sync words that left the origin inside a multi-word
    /// [`Body::Fifo64Batch`] push (every word of such a batch is counted;
    /// singleton pushes are not). Proves the per-sweep per-channel
    /// notification batching actually fires.
    pub notices_batched: u64,
    /// Deferred lock releases applied by step 6.
    pub unlocks_applied: u64,
    /// Backlogged windows pumped for grant emission by step 6.
    pub grant_pumps: u64,
    /// Dormant trailing fence epochs retired at `win_free` (DESIGN.md
    /// deviation 4). Counted so the deferred-queue balance
    /// `epochs_opened == epochs_completed + dormant_retired` stays
    /// checkable: these epochs are opened but never complete.
    pub dormant_retired: u64,
    /// Internode messages wrapped in reliability frames (sublayer on).
    /// At quiescence `rel_frames_sent == rel_delivered + rel_checksum_drops
    /// - rel_dups_dropped`-style balances do not hold message-by-message
    /// (duplication faults add copies); the channel invariant is
    /// `pushed == acked + retransmit-pending` per (src, dst) pair.
    pub rel_frames_sent: u64,
    /// Frames re-sent by the retransmit timer scan (sweep step 1).
    pub rel_retransmits: u64,
    /// Cumulative acks flushed by sweep step 2.
    pub rel_acks_sent: u64,
    /// Ack sends elided by delayed-ack coalescing: every frame a flushed
    /// cumulative ack covered beyond the first. Proves the TCP-style
    /// delayed ack collapses per-frame ack traffic.
    pub acks_coalesced: u64,
    /// Duplicate frames suppressed at delivery (retransmit races and
    /// fabric-level duplication faults).
    pub rel_dups_dropped: u64,
    /// Reordered frames buffered ahead of the in-order point.
    pub rel_ooo_buffered: u64,
    /// Frames dropped for checksum mismatch (recovered by retransmit).
    pub rel_checksum_drops: u64,
    /// In-order frames dispatched by sweep step 5.
    pub rel_delivered: u64,
    /// Frames abandoned after exhausting the retry cap.
    pub retries_exhausted: u64,
    /// Epochs force-terminated by the stall watchdog.
    pub epochs_cancelled: u64,
    /// Watchdog tick events fired.
    pub watchdog_ticks: u64,
    /// Responses whose correlation token was already gone (epoch cancelled
    /// or late duplicate), tolerated instead of asserted in resilient
    /// configurations.
    pub orphan_responses: u64,
    /// Host-blocking parks: how many times an application thread actually
    /// suspended inside the wait family (`wait`/`wait_all`/`wait_any` and
    /// every blocking epoch close or flush built on them) because the
    /// awaited request was not yet complete. A request that is already
    /// done at the wait call costs zero parks, so this counter measures
    /// the host-blocking work the paper's nonblocking epochs exist to
    /// remove — the slack rewriter's closed-loop validator requires it
    /// to never increase under a sound relaxation.
    pub sync_blocked_steps: u64,
    /// Virtual nanoseconds application threads spent suspended in those
    /// parks (wake time minus park time, summed over all ranks). The
    /// companion magnitude to [`EngineStats::sync_blocked_steps`]: a
    /// deferred wait may still park once, but strictly later, so the
    /// blocked time shrinks whenever the reclaimed slack overlaps
    /// communication with host progress.
    pub sync_blocked_ns: u64,
    /// Checkpoints cut by the crash-recovery subsystem (one per window
    /// side per covered commit; includes the `win_allocate` baselines).
    pub ckpt_commits: u64,
    /// Bytes written to the in-simulation stable store by those
    /// checkpoints (window contents plus serialized ω-triples).
    pub ckpt_bytes: u64,
    /// Window sides restored by rank restarts.
    pub recoveries: u64,
}

/// A malformed packet the engine recorded and survived instead of
/// aborting the simulated job, with full provenance for diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Rank that observed the error.
    pub rank: Rank,
    /// Window whose notification FIFO carried the packet.
    pub win: WinId,
    /// Peer the packet came from.
    pub src: Rank,
    /// The raw 64-bit word that failed to decode.
    pub raw: u64,
    /// What went wrong.
    pub detail: &'static str,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} win {} peer {}: {} (raw 0x{:016x})",
            self.rank, self.win.0, self.src, self.detail, self.raw
        )
    }
}

/// A deliberately injected engine bug, used by the conformance harness to
/// prove the differential checker and auditor catch real defects. Never
/// active unless explicitly requested via [`JobConfig::fault`] or the
/// `MPISIM_CHECK_INJECT` environment variable.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Fault {
    /// `pump_exposure_grants` silently drops the second exposure grant of
    /// every (granter, origin) stream — a liveness bug: the origin's
    /// second epoch toward that target waits forever for `A_i ≤ g_r`,
    /// surfacing as a simulated deadlock.
    SkipGrant,
    /// `handle_acc` applies every eager accumulate payload twice — a
    /// safety bug: final window contents diverge from the oracle while
    /// every synchronization invariant still holds.
    DoubleAcc,
    /// The target performs an unsynchronized local read of the bytes every
    /// arriving put/accumulate touches — a memory-model bug: the oracle
    /// and every ω-triple invariant stay intact (the read mutates
    /// nothing), but the access is unordered with the origin's write
    /// under the happens-before relation, so only the race detector in
    /// `mpisim-analyze` can catch it.
    HbRace,
}

/// Per-rank cumulative timing, reported by [`crate::api::RankEnv::stats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RankStats {
    /// Virtual time spent inside MPI calls (including blocking waits).
    pub mpi_time: SimTime,
    /// Virtual time spent in modeled computation.
    pub compute_time: SimTime,
    /// Number of MPI calls made.
    pub calls: u64,
    /// Epoch commits this rank has performed (rank-wide ordinal across
    /// all windows). The crash-recovery fault plan addresses crash points
    /// by this 1-based count, and the conformance harness's probe run
    /// reads it to enumerate the valid crash points of a program.
    pub epochs_committed: u64,
}

/// One rank's sweep work lists plus reusable scratch buffers.
///
/// Every sweep step is driven by an explicit, deduplicated work list: a
/// step touches only state some earlier event enqueued, never scans
/// per-window or per-peer structures looking for work (DESIGN.md §10).
/// The `*_scratch` buffers ping-pong with their work lists so the steady
/// state of a sweep performs no heap allocation.
pub(crate) struct RankSweepState {
    pub notices: VecDeque<Notice>,
    /// Epochs that may have issueable ops.
    pub dirty_ops: Vec<(WinId, EpochId)>,
    /// Epochs whose completion conditions should be rechecked.
    pub dirty_complete: Vec<(WinId, EpochId)>,
    /// Windows needing an activation scan.
    pub act_dirty: Vec<WinId>,
    /// Windows with pending lock/unlock work (step 6 backlog).
    pub lock_backlog: Vec<WinId>,
    /// Deferred lock releases: (window, origin releasing).
    pub pending_unlocks: VecDeque<(WinId, Rank)>,
    /// Pending-FIFO index (step 5's work list): the (window, peer) pairs
    /// whose intranode notification FIFO received packets since the last
    /// drain. Deduplicated; maintained by the `Fifo64` delivery path on
    /// every *successful* push (a full ring is already indexed by the
    /// pushes that filled it).
    pub fifo_pending: Vec<(WinId, Rank)>,
    /// Outgoing intranode sync words buffered during the current sweep
    /// pass: (destination, window, encoded word) in send order. Flushed
    /// by `flush_sync_batches` at the bottom of each sweep-loop
    /// iteration as one push per (destination, window) channel.
    pub sync_out: Vec<(Rank, WinId, u64)>,
    /// Ping-pong buffer for `dirty_ops` (issue steps 2/4).
    pub ops_scratch: Vec<(WinId, EpochId)>,
    /// Ping-pong buffer for `dirty_complete` (steps 3/7).
    pub complete_scratch: Vec<(WinId, EpochId)>,
    /// Ping-pong buffer for `act_dirty` (steps 3/7).
    pub act_scratch: Vec<WinId>,
    /// Ping-pong buffer for `fifo_pending` (step 5).
    pub fifo_scratch: Vec<(WinId, Rank)>,
    /// Ping-pong buffer for `lock_backlog` (step 6).
    pub win_scratch: Vec<WinId>,
    /// Ping-pong buffer for an epoch's `pending_ops` during issue.
    pub pending_scratch: VecDeque<crate::epoch::OpDesc>,
    /// Scratch for per-target (rank, id) send batches (done/unlock/fence
    /// announcements).
    pub send_scratch: Vec<(Rank, u64)>,
    /// Scratch for exposure-grant id batches.
    pub grant_scratch: Vec<u64>,
    /// Scratch for small rank sets (grant pumping, unlock blocking).
    pub rank_scratch: Vec<Rank>,
    /// Scratch for completed flush requests.
    pub req_scratch: Vec<Req>,
    /// Ping-pong buffer for `sync_out` (batch flush).
    pub sync_scratch: Vec<(Rank, WinId, u64)>,
    /// Scratch for one channel's worth of words during the batch flush.
    pub sync_word_scratch: Vec<u64>,
}

impl RankSweepState {
    fn new() -> Self {
        RankSweepState {
            notices: VecDeque::new(),
            dirty_ops: Vec::new(),
            dirty_complete: Vec::new(),
            act_dirty: Vec::new(),
            lock_backlog: Vec::new(),
            pending_unlocks: VecDeque::new(),
            fifo_pending: Vec::new(),
            ops_scratch: Vec::new(),
            complete_scratch: Vec::new(),
            act_scratch: Vec::new(),
            fifo_scratch: Vec::new(),
            win_scratch: Vec::new(),
            pending_scratch: VecDeque::new(),
            send_scratch: Vec::new(),
            grant_scratch: Vec::new(),
            rank_scratch: Vec::new(),
            req_scratch: Vec::new(),
            sync_out: Vec::new(),
            sync_scratch: Vec::new(),
            sync_word_scratch: Vec::new(),
        }
    }

    fn has_work(&self) -> bool {
        !self.notices.is_empty()
            || !self.dirty_ops.is_empty()
            || !self.dirty_complete.is_empty()
            || !self.act_dirty.is_empty()
            || !self.lock_backlog.is_empty()
            || !self.pending_unlocks.is_empty()
            || !self.fifo_pending.is_empty()
            || !self.sync_out.is_empty()
    }
}

/// One window across all ranks.
pub(crate) struct WinGlobal {
    pub per_rank: Vec<Option<WinRank>>,
}

/// The mutable engine state (all ranks).
pub(crate) struct EngState {
    pub wins: Vec<WinGlobal>,
    /// Number of `win_allocate` calls each rank has made (SPMD ordering).
    pub created: Vec<u32>,
    pub reqs: ReqTable,
    pub p2p: Vec<P2pRank>,
    pub barrier: Vec<BarrierRank>,
    pub stats: Vec<RankStats>,
    pub sweep: Vec<RankSweepState>,
    pub tokens: HashMap<u64, TokenInfo>,
    pub next_token: u64,
    pub eng_stats: EngineStats,
    /// Per-rank collective sequence numbers (tag disambiguation).
    pub coll_seq: Vec<u64>,
    /// Epoch lifecycle trace (populated when `JobConfig::trace`).
    pub trace: Vec<crate::trace::TraceRecord>,
    /// Synchronization-plane trace (populated when `JobConfig::trace`).
    pub sync_trace: Vec<crate::trace::SyncRecord>,
    /// Degraded-but-survived events (decode failures, checksum drops,
    /// abandoned frames, cancelled epochs) recorded with provenance
    /// instead of aborting the job.
    pub degradations: Vec<Degradation>,
    /// Per-rank reliability-sublayer channels and work lists.
    pub rel: Vec<RelRank>,
    /// Whether a stall-watchdog tick is currently scheduled.
    pub watchdog_armed: bool,
    /// The crash-recovery stable store, one entry per (window, rank)
    /// side: latest checkpoint plus the redo log since it. Populated only
    /// while [`crate::config::JobConfig::recovery`] is armed.
    pub stable: HashMap<(WinId, Rank), recover::StableWin>,
    /// Ranks currently down (NIC crashed, restart pending).
    pub crashed: Vec<bool>,
    /// Completed rank-restart episodes, with provenance.
    pub recoveries: Vec<recover::RecoveryReport>,
    /// Closed-but-incomplete epochs the stall watchdog must inspect,
    /// appended at every epoch close (only while a watchdog budget is
    /// configured). A tick scans this list instead of every
    /// window × rank × epoch in the job, so watchdog cost follows the
    /// number of in-flight closes, not the rank count; entries for
    /// epochs that completed or retired in the meantime are dropped
    /// lazily during the scan.
    pub stall_watch: Vec<(WinId, Rank, crate::types::EpochId)>,
}

impl EngState {
    pub(crate) fn win(&self, w: WinId, r: Rank) -> &WinRank {
        self.wins[w.0 as usize].per_rank[r.idx()]
            .as_ref()
            .expect("window not created at this rank")
    }

    pub(crate) fn win_mut(&mut self, w: WinId, r: Rank) -> &mut WinRank {
        self.wins[w.0 as usize].per_rank[r.idx()]
            .as_mut()
            .expect("window not created at this rank")
    }

    pub(crate) fn alloc_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    pub(crate) fn mark_ops_dirty(&mut self, rank: Rank, win: WinId, epoch: EpochId) {
        let d = &mut self.sweep[rank.idx()].dirty_ops;
        if !d.contains(&(win, epoch)) {
            d.push((win, epoch));
        }
    }

    pub(crate) fn mark_complete_dirty(&mut self, rank: Rank, win: WinId, epoch: EpochId) {
        let d = &mut self.sweep[rank.idx()].dirty_complete;
        if !d.contains(&(win, epoch)) {
            d.push((win, epoch));
        }
    }

    pub(crate) fn mark_act_dirty(&mut self, rank: Rank, win: WinId) {
        let d = &mut self.sweep[rank.idx()].act_dirty;
        if !d.contains(&win) {
            d.push(win);
        }
    }

    pub(crate) fn mark_lock_backlog(&mut self, rank: Rank, win: WinId) {
        let d = &mut self.sweep[rank.idx()].lock_backlog;
        if !d.contains(&win) {
            d.push(win);
        }
    }
}

/// The RMA middleware engine for one simulated job.
pub struct Engine {
    pub(crate) st: Mutex<EngState>,
    pub(crate) net: Arc<Network<Body>>,
    pub(crate) sim: SimHandle,
    pub(crate) cfg: JobConfig,
    /// Resolved injected fault (see [`Fault`]); `None` in normal operation.
    pub(crate) fault: Option<Fault>,
}

/// Issue phase selector for sweep steps 2 and 4.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum Phase {
    Internode,
    Intranode,
}

impl Engine {
    /// Build the engine (and its network) for a job.
    pub fn new(sim: SimHandle, cfg: JobConfig) -> Arc<Self> {
        let topo = Topology::new(cfg.n_ranks, cfg.cores_per_node);
        let net_params: NetParams = cfg.net.clone();
        let net = Network::new(sim.clone(), net_params, topo);
        let n = cfg.n_ranks;
        // The explicit config field wins; the env var is the hidden fallback
        // the harness self-test uses. Empty string = explicitly no fault.
        let fault_name = cfg
            .fault
            .clone()
            .or_else(|| std::env::var("MPISIM_CHECK_INJECT").ok());
        let fault = match fault_name.as_deref() {
            None | Some("") => None,
            Some("skip-grant") => Some(Fault::SkipGrant),
            Some("double-acc") => Some(Fault::DoubleAcc),
            Some("hb-race") => Some(Fault::HbRace),
            Some(other) => panic!("unknown injected fault {other:?}"),
        };
        let eng = Arc::new(Engine {
            st: Mutex::new(EngState {
                wins: Vec::new(),
                created: vec![0; n],
                reqs: {
                    let mut t = ReqTable::new();
                    t.set_logging(cfg.trace);
                    t
                },
                p2p: (0..n).map(|_| P2pRank::default()).collect(),
                barrier: (0..n).map(|_| BarrierRank::default()).collect(),
                stats: vec![RankStats::default(); n],
                sweep: (0..n).map(|_| RankSweepState::new()).collect(),
                tokens: HashMap::new(),
                next_token: 1,
                eng_stats: EngineStats::default(),
                coll_seq: vec![0; n],
                trace: Vec::new(),
                sync_trace: Vec::new(),
                degradations: Vec::new(),
                rel: (0..n).map(|_| RelRank::new()).collect(),
                stable: HashMap::new(),
                crashed: vec![false; n],
                recoveries: Vec::new(),
                watchdog_armed: false,
                stall_watch: Vec::new(),
            }),
            net: net.clone(),
            sim,
            cfg,
            fault,
        });
        let e2 = eng.clone();
        net.set_handler(move |pkt| e2.on_message(pkt));
        eng
    }

    /// The simulated network (for stats).
    pub fn network(&self) -> &Arc<Network<Body>> {
        &self.net
    }

    /// Whether the engine runs the lazy baseline strategy.
    pub(crate) fn lazy(&self) -> bool {
        self.cfg.strategy == SyncStrategy::LazyBaseline
    }

    /// Per-rank statistics snapshot.
    pub fn rank_stats(&self, r: Rank) -> RankStats {
        self.st.lock().stats[r.idx()]
    }

    /// Aggregate progress-engine counters.
    pub fn engine_stats(&self) -> EngineStats {
        self.st.lock().eng_stats
    }

    /// Drain the accumulated degradations (decode failures, checksum
    /// drops, abandoned frames, cancelled epochs — every non-fatal event
    /// the engine survived instead of aborting on).
    pub fn take_degradations(&self) -> Vec<Degradation> {
        std::mem::take(&mut self.st.lock().degradations)
    }

    /// Drain the recorded rank-restart episodes.
    pub fn take_recoveries(&self) -> Vec<RecoveryReport> {
        std::mem::take(&mut self.st.lock().recoveries)
    }

    /// Drain the recorded epoch lifecycle trace.
    pub fn take_trace(&self) -> Vec<crate::trace::TraceRecord> {
        std::mem::take(&mut self.st.lock().trace)
    }

    /// Drain the recorded synchronization-plane trace.
    pub fn take_sync_trace(&self) -> Vec<crate::trace::SyncRecord> {
        std::mem::take(&mut self.st.lock().sync_trace)
    }

    /// Drain the recorded request-lifecycle log.
    pub fn take_req_log(&self) -> Vec<(Req, crate::request::ReqEvent)> {
        self.st.lock().reqs.take_log()
    }

    /// Number of live (unconsumed) requests right now.
    pub fn live_requests(&self) -> usize {
        self.st.lock().reqs.live()
    }

    /// Record one synchronization-plane event (no-op unless tracing).
    ///
    /// Pay-for-use: with no trace sink attached (`cfg.trace == false`,
    /// the default outside the conformance harness) this is a single
    /// predictable branch on an immutable config bool; the record
    /// construction — clock read included — is outlined into a cold
    /// function so the hot sweep path carries no trace-plumbing weight.
    #[inline(always)]
    pub(crate) fn sync_event(
        &self,
        st: &mut EngState,
        rank: Rank,
        peer: Rank,
        win: WinId,
        plane: crate::trace::Plane,
        event: crate::trace::SyncEvent,
    ) {
        if !self.cfg.trace {
            return;
        }
        self.sync_event_slow(st, rank, peer, win, plane, event);
    }

    #[cold]
    #[inline(never)]
    fn sync_event_slow(
        &self,
        st: &mut EngState,
        rank: Rank,
        peer: Rank,
        win: WinId,
        plane: crate::trace::Plane,
        event: crate::trace::SyncEvent,
    ) {
        let time = self.sim.now();
        st.sync_trace.push(crate::trace::SyncRecord {
            time,
            rank,
            peer,
            win,
            plane,
            event,
        });
    }

    /// Record one epoch lifecycle transition (no-op unless tracing).
    /// Same pay-for-use shape as [`Engine::sync_event`].
    #[inline(always)]
    pub(crate) fn trace_event(
        &self,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        id: EpochId,
        event: crate::trace::EpochEvent,
    ) {
        if !self.cfg.trace {
            return;
        }
        self.trace_event_slow(st, rank, win, id, event);
    }

    #[cold]
    #[inline(never)]
    fn trace_event_slow(
        &self,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        id: EpochId,
        event: crate::trace::EpochEvent,
    ) {
        let kind = st.win(win, rank).epoch(id).kind.name();
        let time = self.sim.now();
        st.trace.push(crate::trace::TraceRecord {
            time,
            rank,
            win,
            epoch: id.0,
            kind,
            event,
        });
    }

    /// Next collective sequence number for `rank` (collective tag space).
    pub(crate) fn next_coll_seq(&self, rank: Rank) -> u64 {
        let mut st = self.st.lock();
        let s = st.coll_seq[rank.idx()];
        st.coll_seq[rank.idx()] += 1;
        s
    }

    /// Accumulate MPI-call time for Fig-13-style communication breakdowns.
    pub(crate) fn add_mpi_time(&self, r: Rank, dt: SimTime) {
        let mut st = self.st.lock();
        let s = &mut st.stats[r.idx()];
        s.mpi_time += dt;
        s.calls += 1;
    }

    /// Accumulate modeled compute time.
    pub(crate) fn add_compute_time(&self, r: Rank, dt: SimTime) {
        self.st.lock().stats[r.idx()].compute_time += dt;
    }

    /// The dummy always-complete request returned by nonblocking
    /// epoch-opening routines (§VII.C).
    pub(crate) fn dummy_open_req(&self) -> Req {
        self.st.lock().reqs.alloc_done(crate::request::ReqKind::EpochOpen)
    }

    // ------------------------------------------------------------------
    // windows
    // ------------------------------------------------------------------

    /// Create this rank's side of its next window (SPMD creation order
    /// assigns ids). The API layer adds the collective barrier.
    pub fn win_allocate(&self, rank: Rank, size: usize, info: crate::config::WinInfo) -> WinId {
        let mut st = self.st.lock();
        let idx = st.created[rank.idx()] as usize;
        st.created[rank.idx()] += 1;
        if st.wins.len() <= idx {
            st.wins.push(WinGlobal {
                per_rank: (0..self.cfg.n_ranks).map(|_| None).collect(),
            });
        }
        assert!(
            st.wins[idx].per_rank[rank.idx()].is_none(),
            "window creation order diverged across ranks"
        );
        st.wins[idx].per_rank[rank.idx()] = Some(WinRank::new(size, info, self.cfg.n_ranks));
        let win = WinId(idx as u32);
        if self.recovery_armed() {
            // Commit-0 baseline: a crash before the first epoch commit
            // still has a consistent restore point.
            self.recovery_init_win(&mut st, rank, win);
        }
        win
    }

    /// Tear down this rank's side of a window. Errors if epochs are still
    /// open; a trailing empty fence epoch is retired silently.
    pub fn win_free(self: &Arc<Self>, rank: Rank, win: WinId) -> crate::error::RmaResult<()> {
        let mut st = self.st.lock();
        self.retire_empty_open_fence(&mut st, rank, win);
        let w = st.win(win, rank);
        if w.cur_gats_access.is_some()
            || w.cur_exposure.is_some()
            || !w.open_locks.is_empty()
            || w.cur_lock_all.is_some()
            || w.cur_fence.is_some()
            || !w.order.is_empty()
        {
            return Err(crate::error::RmaError::AlreadyInEpoch { called: "win_free" });
        }
        st.wins[win.0 as usize].per_rank[rank.idx()] = None;
        Ok(())
    }

    /// Local load from the window copy.
    pub fn read_local(
        &self,
        rank: Rank,
        win: WinId,
        disp: usize,
        len: usize,
    ) -> crate::error::RmaResult<Vec<u8>> {
        let mut st = self.st.lock();
        if win.0 as usize >= st.wins.len() {
            return Err(crate::error::RmaError::InvalidWindow(win));
        }
        self.freshen_crashed_mem(&mut st, rank, win);
        let w = st.win(win, rank);
        if disp + len > w.mem.len() {
            return Err(crate::error::RmaError::OutOfBounds {
                win,
                target: rank,
                disp,
                len,
            });
        }
        Ok(w.mem[disp..disp + len].to_vec())
    }

    /// Local store into the window copy.
    pub fn write_local(
        &self,
        rank: Rank,
        win: WinId,
        disp: usize,
        data: &[u8],
    ) -> crate::error::RmaResult<()> {
        let mut st = self.st.lock();
        if win.0 as usize >= st.wins.len() {
            return Err(crate::error::RmaError::InvalidWindow(win));
        }
        self.freshen_crashed_mem(&mut st, rank, win);
        let w = st.win_mut(win, rank);
        if disp + data.len() > w.mem.len() {
            return Err(crate::error::RmaError::OutOfBounds {
                win,
                target: rank,
                disp,
                len: data.len(),
            });
        }
        w.mem[disp..disp + data.len()].copy_from_slice(data);
        self.log_win_write(&mut st, rank, win, disp, data.len());
        Ok(())
    }

    // ------------------------------------------------------------------
    // message dispatch
    // ------------------------------------------------------------------

    fn on_message(self: &Arc<Self>, pkt: Packet<Body>) {
        let dst = pkt.dst;
        let src = pkt.src;
        {
            let mut st = self.st.lock();
            self.dispatch_body(&mut st, dst, src, pkt.body);
        }
        self.sweep(dst);
    }

    /// Dispatch one message body to its handler. Factored out of
    /// [`Engine::on_message`] so the reliability sublayer's in-order
    /// delivery queue (sweep step 5) can re-enter it for unwrapped frames.
    pub(crate) fn dispatch_body(self: &Arc<Self>, st: &mut EngState, dst: Rank, src: Rank, body: Body) {
        match body {
            // ---- reliability sublayer ----
            Body::Rel { seq, checksum, inner } => {
                self.rel_receive(st, dst, src, seq, checksum, *inner)
            }
            Body::RelAck { cum } => self.rel_handle_ack(st, dst, src, cum),
            // ---- data plane ----
            Body::PutData {
                win,
                tag,
                disp,
                layout,
                payload,
            } => self.handle_put(st, dst, src, win, tag, disp, layout, payload),
            Body::AccData {
                win,
                tag,
                disp,
                dt,
                op,
                payload,
            } => self.handle_acc(st, dst, src, win, tag, disp, dt, op, payload),
            Body::AccRts { win, size, token } => {
                self.handle_acc_rts(st, dst, src, win, size, token)
            }
            Body::AccCts { token } => self.handle_acc_cts(st, dst, token),
            Body::GetReq {
                win,
                tag,
                disp,
                len,
                layout,
                token,
            } => self.handle_get_req(st, dst, src, win, tag, disp, len, layout, token),
            Body::GetResp { win, token, payload } => {
                self.handle_get_resp(st, dst, win, token, payload)
            }
            Body::FetchReq {
                win,
                tag,
                fetch,
                disp,
                dt,
                op,
                operand,
                token,
            } => self.handle_fetch_req(
                st, dst, src, win, tag, fetch, disp, dt, op, operand, token,
            ),
            Body::FetchResp { win, token, payload } => {
                self.handle_fetch_resp(st, dst, win, token, payload)
            }

            // ---- synchronization plane ----
            Body::LockReq {
                win,
                access_id,
                kind,
            } => self.handle_lock_req(st, dst, src, win, access_id, kind),
            Body::Grant { win, id, kind } => self.handle_grant(st, dst, src, win, id, kind),
            Body::GatsDone { win, access_id } => {
                self.handle_gats_done(st, dst, src, win, access_id)
            }
            Body::Unlock { win, access_id } => {
                self.handle_unlock(st, dst, src, win, access_id)
            }
            Body::FenceDone { win, seq, ops_sent } => {
                self.handle_fence_done(st, dst, src, win, seq, ops_sent)
            }
            Body::Fifo64 { win, packet } => {
                // Push into the per-pair FIFO; drained in sweep step 5.
                // A full FIFO forces a retry, as a real shared-memory
                // ring would. The pending-FIFO index and the pushed
                // counter are updated only on a *successful* push: a
                // full ring's pair is already indexed by the pushes
                // that filled it, and retries must not double-count.
                let w = st.win_mut(win, dst);
                if w.fifo_from(src).push(packet) {
                    st.eng_stats.fifo_packets += 1;
                    let idx = &mut st.sweep[dst.idx()].fifo_pending;
                    if !idx.contains(&(win, src)) {
                        idx.push((win, src));
                    }
                } else {
                    let me = self.clone();
                    self.sim.schedule(SimTime::from_micros(1), move || {
                        me.on_message(Packet {
                            src,
                            dst,
                            body: Body::Fifo64 { win, packet },
                        });
                    });
                }
            }
            Body::Fifo64Batch { win, packets } => {
                // Same ring discipline as `Fifo64`, word by word. If the
                // ring fills mid-batch the *remaining* words retry as a
                // smaller batch after the 1 µs pause, preserving FIFO
                // order; words already pushed are not re-sent.
                for (i, &packet) in packets.iter().enumerate() {
                    let w = st.win_mut(win, dst);
                    if w.fifo_from(src).push(packet) {
                        st.eng_stats.fifo_packets += 1;
                        let idx = &mut st.sweep[dst.idx()].fifo_pending;
                        if !idx.contains(&(win, src)) {
                            idx.push((win, src));
                        }
                    } else {
                        let rest = packets[i..].to_vec();
                        let me = self.clone();
                        self.sim.schedule(SimTime::from_micros(1), move || {
                            me.on_message(Packet {
                                src,
                                dst,
                                body: Body::Fifo64Batch { win, packets: rest },
                            });
                        });
                        break;
                    }
                }
            }

            // ---- two-sided ----
            Body::P2pEager { tag, payload } => {
                self.handle_p2p_eager(st, dst, src, tag, payload)
            }
            Body::P2pRts { tag, size, token } => {
                self.handle_p2p_rts(st, dst, src, tag, size, token)
            }
            Body::P2pCts { token, data_token } => {
                self.handle_p2p_cts_from(st, dst, src, token, data_token)
            }
            Body::P2pData { data_token, payload } => {
                self.handle_p2p_data(st, dst, data_token, payload)
            }
            Body::BarrierMsg { seq, round } => {
                self.handle_barrier_msg(st, dst, seq, round)
            }
        }
    }

    // ------------------------------------------------------------------
    // the seven-step progress sweep (§VII.D)
    // ------------------------------------------------------------------

    /// Run the progress engine for `rank` until quiescent.
    ///
    /// Each iteration runs only the steps whose work lists are non-empty
    /// (fine-grained dispatch): an idle step is skipped entirely and does
    /// not touch any per-window or per-peer state. Running a step with an
    /// empty queue was always a no-op — the gating elides the no-op, it
    /// does not change what work gets done.
    pub(crate) fn sweep(self: &Arc<Self>, rank: Rank) {
        let mut st = self.st.lock();
        st.eng_stats.sweeps += 1;
        loop {
            let sw = &st.sweep[rank.idx()];
            if !sw.has_work() && !st.rel[rank.idx()].has_work() {
                break;
            }
            // Step 1: verification of outgoing/incoming completion. The
            // reliability sublayer grows this step with the retransmit
            // timer scan.
            if !st.sweep[rank.idx()].notices.is_empty() || st.rel[rank.idx()].timer_due {
                st.eng_stats.step_runs[0] += 1;
                if st.rel[rank.idx()].timer_due {
                    self.rel_retransmit_scan(&mut st, rank);
                }
                self.drain_notices(&mut st, rank);
            }
            // Step 2: post internode RMA communications. The sublayer
            // grows this step with the cumulative-ack flush (acks are
            // internode postings too).
            if !st.sweep[rank.idx()].dirty_ops.is_empty()
                || !st.rel[rank.idx()].ack_due.is_empty()
            {
                st.eng_stats.step_runs[1] += 1;
                if !st.rel[rank.idx()].ack_due.is_empty() {
                    self.rel_flush_acks(&mut st, rank);
                }
                if !st.sweep[rank.idx()].dirty_ops.is_empty() {
                    self.issue_phase(&mut st, rank, Phase::Internode);
                }
            }
            // Step 3: batch completion + activation of deferred epochs.
            if Self::completion_work(&st, rank) {
                st.eng_stats.step_runs[2] += 1;
                self.complete_and_activate(&mut st, rank);
            }
            // Step 4: post intranode RMA communications.
            if !st.sweep[rank.idx()].dirty_ops.is_empty() {
                st.eng_stats.step_runs[3] += 1;
                self.issue_phase(&mut st, rank, Phase::Intranode);
            }
            // Step 5: consume intranode notifications. The sublayer grows
            // this step with the in-order frame delivery queue (dedup'd
            // internode notifications).
            if !st.sweep[rank.idx()].fifo_pending.is_empty()
                || !st.rel[rank.idx()].deliver.is_empty()
            {
                st.eng_stats.step_runs[4] += 1;
                if !st.rel[rank.idx()].deliver.is_empty() {
                    self.rel_deliver(&mut st, rank);
                }
                if !st.sweep[rank.idx()].fifo_pending.is_empty() {
                    self.drain_fifos(&mut st, rank);
                }
            }
            // Step 6: batch processing of lock/unlock requests.
            if !st.sweep[rank.idx()].lock_backlog.is_empty()
                || !st.sweep[rank.idx()].pending_unlocks.is_empty()
            {
                st.eng_stats.step_runs[5] += 1;
                self.pump_lock_backlog(&mut st, rank);
            }
            // Step 7: batch completion + activation again.
            if Self::completion_work(&st, rank) {
                st.eng_stats.step_runs[6] += 1;
                self.complete_and_activate(&mut st, rank);
            }
            // Flush the intranode sync words the steps above buffered:
            // one FIFO push per (peer, window) channel per pass instead
            // of one per notice. Runs inside the loop so `has_work`
            // (which includes the buffer) still terminates.
            if !st.sweep[rank.idx()].sync_out.is_empty() {
                self.flush_sync_batches(&mut st, rank);
            }
        }
    }

    /// Whether steps 3/7 (completion + activation) have pending work.
    fn completion_work(st: &EngState, rank: Rank) -> bool {
        let sw = &st.sweep[rank.idx()];
        !sw.dirty_complete.is_empty() || !sw.act_dirty.is_empty()
    }

    /// Step 1: consume completion notices.
    fn drain_notices(self: &Arc<Self>, st: &mut EngState, rank: Rank) {
        while let Some(n) = st.sweep[rank.idx()].notices.pop_front() {
            st.eng_stats.notices_drained += 1;
            match n {
                Notice::LocalComplete { win, epoch, age } => {
                    self.op_update(st, rank, win, epoch, age, |o| o.needs_local = false);
                }
                Notice::Acked { win, epoch, age } => {
                    self.op_update(st, rank, win, epoch, age, |o| o.needs_ack = false);
                }
            }
        }
    }

    /// Steps 3 and 7: batch-complete dirty epochs, then scan deferred
    /// epochs for activation. Both work lists ping-pong with scratch
    /// buffers so the steady state allocates nothing: entries marked
    /// *during* processing land in the scratch-backed live list and the
    /// drained buffer (cleared, capacity kept) becomes the next scratch.
    fn complete_and_activate(self: &Arc<Self>, st: &mut EngState, rank: Rank) {
        let sw = &mut st.sweep[rank.idx()];
        let dirty = std::mem::replace(
            &mut sw.dirty_complete,
            std::mem::take(&mut sw.complete_scratch),
        );
        st.eng_stats.completion_checks += dirty.len() as u64;
        for &(win, epoch) in &dirty {
            self.check_epoch_progress(st, rank, win, epoch);
        }
        let mut dirty = dirty;
        dirty.clear();
        st.sweep[rank.idx()].complete_scratch = dirty;

        let sw = &mut st.sweep[rank.idx()];
        let wins = std::mem::replace(&mut sw.act_dirty, std::mem::take(&mut sw.act_scratch));
        for &win in &wins {
            self.activation_scan(st, rank, win);
        }
        let mut wins = wins;
        wins.clear();
        st.sweep[rank.idx()].act_scratch = wins;
    }

    /// Step 5: drain exactly the (window, peer) FIFOs indexed as pending
    /// and dispatch the decoded 64-bit packets. Pairs that receive more
    /// packets while we dispatch re-index themselves through the normal
    /// delivery path, so nothing is lost; the drained index buffer is
    /// recycled as the next scratch.
    fn drain_fifos(self: &Arc<Self>, st: &mut EngState, rank: Rank) {
        let sw = &mut st.sweep[rank.idx()];
        let pairs = std::mem::replace(&mut sw.fifo_pending, std::mem::take(&mut sw.fifo_scratch));
        for &(win, src) in &pairs {
            if st.wins[win.0 as usize].per_rank[rank.idx()].is_none() {
                continue;
            }
            while let Some(raw) = st.win_mut(win, rank).fifo_from(src).pop() {
                st.eng_stats.fifo_drained += 1;
                let Some(sp) = SyncPacket::decode(raw) else {
                    // Surface corrupt packets with provenance instead of
                    // aborting the simulated job (the real library would
                    // raise an MPI error on the window).
                    st.eng_stats.fifo_decode_errors += 1;
                    st.degradations.push(Degradation::FifoDecode(ProtocolError {
                        rank,
                        win,
                        src,
                        raw,
                        detail: "corrupt 64-bit sync packet",
                    }));
                    continue;
                };
                self.dispatch_sync_packet(st, rank, win, src, sp);
            }
        }
        let mut pairs = pairs;
        pairs.clear();
        st.sweep[rank.idx()].fifo_scratch = pairs;
    }

    /// Dispatch one decoded intranode sync packet (step 5 payload).
    fn dispatch_sync_packet(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        src: Rank,
        sp: SyncPacket,
    ) {
        match sp {
            SyncPacket::LockReqExcl {
                origin, access_id, ..
            } => self.handle_lock_req(
                st,
                rank,
                origin,
                win,
                access_id,
                crate::types::LockKind::Exclusive,
            ),
            SyncPacket::LockReqShared {
                origin, access_id, ..
            } => self.handle_lock_req(
                st,
                rank,
                origin,
                win,
                access_id,
                crate::types::LockKind::Shared,
            ),
            SyncPacket::GrantExposure { granter, id, .. } => {
                debug_assert_eq!(granter, src);
                self.handle_grant(st, rank, granter, win, id, crate::msg::GrantKind::Exposure)
            }
            SyncPacket::GrantLock { granter, id, .. } => {
                self.handle_grant(st, rank, granter, win, id, crate::msg::GrantKind::Lock)
            }
            SyncPacket::GatsDone {
                origin, access_id, ..
            } => self.handle_gats_done(st, rank, origin, win, access_id),
            SyncPacket::Unlock {
                origin, access_id, ..
            } => self.handle_unlock(st, rank, origin, win, access_id),
        }
    }

    // ------------------------------------------------------------------
    // send helpers
    // ------------------------------------------------------------------

    /// Send a synchronization-plane packet; intranode it travels as a
    /// 64-bit word through the notification FIFO (§VII.D), internode it
    /// rides the reliability sublayer when configured.
    ///
    /// Intranode words are not pushed immediately: they are buffered in
    /// the sender's sweep state and flushed by [`Engine::flush_sync_batches`]
    /// at the bottom of the sweep-loop iteration that produced them, so
    /// everything one pass emits toward the same (peer, window) channel
    /// leaves as a single push. Every `send_sync` caller runs either
    /// inside a sweep step or in a dispatch/watchdog path that is
    /// followed by a `sweep()` of the sending rank, so the buffer never
    /// outlives the event that filled it.
    pub(crate) fn send_sync(
        self: &Arc<Self>,
        st: &mut EngState,
        src: Rank,
        dst: Rank,
        win: WinId,
        sp: SyncPacket,
    ) {
        if self.net.topology().same_node(src, dst) {
            st.sweep[src.idx()].sync_out.push((dst, win, sp.encode()));
            return;
        }
        let body = {
            match sp {
                SyncPacket::LockReqExcl { access_id, .. } => Body::LockReq {
                    win,
                    access_id,
                    kind: crate::types::LockKind::Exclusive,
                },
                SyncPacket::LockReqShared { access_id, .. } => Body::LockReq {
                    win,
                    access_id,
                    kind: crate::types::LockKind::Shared,
                },
                SyncPacket::GrantExposure { id, .. } => Body::Grant {
                    win,
                    id,
                    kind: crate::msg::GrantKind::Exposure,
                },
                SyncPacket::GrantLock { id, .. } => Body::Grant {
                    win,
                    id,
                    kind: crate::msg::GrantKind::Lock,
                },
                SyncPacket::GatsDone { access_id, .. } => Body::GatsDone { win, access_id },
                SyncPacket::Unlock { access_id, .. } => Body::Unlock { win, access_id },
            }
        };
        self.send_framed(st, Packet { src, dst, body }, None, None);
    }

    /// Flush the intranode sync words buffered by [`Engine::send_sync`]:
    /// group the buffer by (destination, window) channel — order within a
    /// channel preserved — and emit one `Fifo64` (singleton) or
    /// `Fifo64Batch` (multi-word) push per channel. The buffers ping-pong
    /// with scratch so a steady-state flush allocates only the batch
    /// vectors that actually go on the wire.
    fn flush_sync_batches(self: &Arc<Self>, st: &mut EngState, rank: Rank) {
        let sw = &mut st.sweep[rank.idx()];
        let mut out = std::mem::replace(&mut sw.sync_out, std::mem::take(&mut sw.sync_scratch));
        let mut words = std::mem::take(&mut sw.sync_word_scratch);
        while !out.is_empty() {
            let (dst, win, _) = out[0];
            words.clear();
            out.retain(|&(d, w, word)| {
                if (d, w) == (dst, win) {
                    words.push(word);
                    false
                } else {
                    true
                }
            });
            let body = if words.len() == 1 {
                Body::Fifo64 {
                    win,
                    packet: words[0],
                }
            } else {
                st.eng_stats.notices_batched += words.len() as u64;
                Body::Fifo64Batch {
                    win,
                    packets: words.clone(),
                }
            };
            self.send_framed(st, Packet { src: rank, dst, body }, None, None);
        }
        let sw = &mut st.sweep[rank.idx()];
        sw.sync_scratch = out;
        sw.sync_word_scratch = words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WinInfo;
    use mpisim_sim::Sim;

    /// Build an engine with one 2-rank window whose peer FIFO is
    /// registered (but empty) — the state a drained rank is left in.
    /// The `Sim` is returned alongside so tests that need delivery
    /// events (e.g. FIFO batching) can drain it.
    fn engine_with_window() -> (Sim, Arc<Engine>) {
        let sim = Sim::new(1);
        let eng = Engine::new(sim.handle(), JobConfig::new(2));
        {
            let mut st = eng.st.lock();
            st.wins.push(WinGlobal {
                per_rank: (0..2).map(|_| Some(WinRank::new(64, WinInfo::default(), 2))).collect(),
            });
            st.win_mut(WinId(0), Rank(0)).fifo_from(Rank(1));
        }
        (sim, eng)
    }

    #[test]
    fn quiescent_sweep_does_no_step_work() {
        let (_sim, eng) = engine_with_window();
        eng.sweep(Rank(0));
        let s = eng.engine_stats();
        assert_eq!(s.sweeps, 1);
        // Every step was elided: no per-window or per-FIFO state was
        // touched even though a window and a registered FIFO exist.
        assert_eq!(s.step_runs, [0; 7]);
        assert_eq!(s.notices_drained, 0);
        assert_eq!(s.issue_scans, 0);
        assert_eq!(s.completion_checks, 0);
        assert_eq!(s.activation_scans, 0);
        assert_eq!(s.fifo_drained, 0);
        assert_eq!(s.grant_pumps, 0);
    }

    #[test]
    fn corrupt_fifo_packet_is_surfaced_not_fatal() {
        let (_sim, eng) = engine_with_window();
        {
            let mut st = eng.st.lock();
            // 0xF type nibble: SyncPacket::decode returns None.
            assert!(st.win_mut(WinId(0), Rank(0)).fifo_from(Rank(1)).push(0xF << 60));
            st.sweep[0].fifo_pending.push((WinId(0), Rank(1)));
        }
        eng.sweep(Rank(0));
        let s = eng.engine_stats();
        assert_eq!(s.fifo_drained, 1);
        assert_eq!(s.fifo_decode_errors, 1);
        assert_eq!(s.step_runs[4], 1, "step 5 ran exactly once");
        let errs = eng.take_degradations();
        assert_eq!(errs.len(), 1);
        let Degradation::FifoDecode(e) = &errs[0] else {
            panic!("expected a fifo-decode degradation, got {:?}", errs[0])
        };
        assert_eq!((e.rank, e.win, e.src), (Rank(0), WinId(0), Rank(1)));
        let msg = errs[0].to_string();
        assert!(msg.contains("corrupt") && msg.contains("0xf000000000000000"), "{msg}");
        assert_eq!(errs[0].kind(), "fifo-decode");
        assert!(eng.take_degradations().is_empty(), "take drains");
    }

    #[test]
    fn same_channel_sync_words_batch_into_one_push() {
        let (sim, eng) = engine_with_window();
        let w1 = SyncPacket::GatsDone { win: WinId(0), origin: Rank(1), access_id: 7 };
        let w2 = SyncPacket::GatsDone { win: WinId(0), origin: Rank(1), access_id: 9 };
        {
            let mut st = eng.st.lock();
            eng.send_sync(&mut st, Rank(1), Rank(0), WinId(0), w1);
            eng.send_sync(&mut st, Rank(1), Rank(0), WinId(0), w2);
            // Buffered, not yet on the wire.
            assert_eq!(st.sweep[1].sync_out.len(), 2);
            assert_eq!(st.eng_stats.fifo_packets, 0);
        }
        // The sweep-loop bottom flushes the buffer as a single
        // Fifo64Batch push; draining the sim delivers it, and the
        // receiver's dispatch-triggered sweep decodes both words.
        eng.sweep(Rank(1));
        sim.run().unwrap();
        let s = eng.engine_stats();
        assert_eq!(s.notices_batched, 2, "both words travelled in one batch");
        assert_eq!(s.fifo_packets, 2);
        assert_eq!(s.fifo_drained, 2);
        assert_eq!(s.fifo_decode_errors, 0);
        // Words were applied in FIFO order: the done high-water mark
        // landed on the later access id.
        let mut st = eng.st.lock();
        assert_eq!(st.win_mut(WinId(0), Rank(0)).gats_done_recv[1], 9);
        assert!(st.sweep[0].fifo_pending.is_empty(), "drain consumed the pending entry");
    }

    #[test]
    fn distinct_channels_flush_as_singletons() {
        let (sim, eng) = engine_with_window();
        {
            let mut st = eng.st.lock();
            st.win_mut(WinId(0), Rank(0)).fifo_from(Rank(1));
            let sp = SyncPacket::GatsDone { win: WinId(0), origin: Rank(1), access_id: 1 };
            eng.send_sync(&mut st, Rank(1), Rank(0), WinId(0), sp);
        }
        eng.sweep(Rank(1));
        sim.run().unwrap();
        let s = eng.engine_stats();
        // A lone word stays a plain Fifo64: no batch, no counter.
        assert_eq!(s.notices_batched, 0);
        assert_eq!(s.fifo_packets, 1);
    }
}
