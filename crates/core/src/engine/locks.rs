//! Target-side grant sequencing and lock management (sweep step 6), plus
//! the origin-side grant handler.
//!
//! §VII.B requires O(1) matching through per-pair counters: grants to one
//! origin are emitted in that origin's access-id order, so the origin only
//! ever compares `A_i ≤ g_r`. We keep the GATS plane (exposure grants)
//! and the lock plane (lock grants) in *separate* counters — the paper
//! folds both into one triple, but a single counter lets an exposure grant
//! positionally consume the id of a lock request still in flight, breaking
//! legal programs that mix lock and GATS epochs toward the same peer (see
//! DESIGN.md, "deviation: split matching planes"). Each plane remains
//! O(1) per pair.

use std::sync::Arc;

use crate::engine::{EngState, Engine};
use crate::epoch::EpochKind;
use crate::lock::QueuedLock;
use crate::msg::{GrantKind, SyncPacket};
use crate::types::{EpochId, LockKind, Rank, WinId};

impl Engine {
    /// Handler for an arriving lock request (internode control message or
    /// decoded intranode 64-bit packet).
    pub(crate) fn handle_lock_req(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        origin: Rank,
        win: WinId,
        access_id: u64,
        kind: LockKind,
    ) {
        // Late arrival for a freed window: a retransmit-delayed frame can
        // land after the final barrier let this rank free the window (the
        // origin is nonblocking and has already moved on). The lock state
        // is gone and nothing can ever wait on the grant — drop it.
        if st.wins[win.0 as usize].per_rank[me.idx()].is_none() {
            return;
        }
        let w = st.win_mut(win, me);
        debug_assert!(
            w.grant_seq[origin.idx()].gl_sent < access_id,
            "stale lock request id"
        );
        w.grant_seq[origin.idx()]
            .pending_locks
            .insert(access_id, kind);
        w.lock_mgr.enqueue(QueuedLock {
            origin,
            access_id,
            kind,
        });
        if !w.grant_dirty.contains(&origin) {
            w.grant_dirty.push(origin);
        }
        st.mark_lock_backlog(me, win);
    }

    /// Handler for an arriving unlock. The release itself is deferred to
    /// the step-6 backlog ("Step 5 potentially builds a backlog of lock or
    /// unlock requests; Step 6 follows immediately to process them").
    pub(crate) fn handle_unlock(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        origin: Rank,
        win: WinId,
        access_id: u64,
    ) {
        self.sync_event(
            st,
            me,
            origin,
            win,
            crate::trace::Plane::Lock,
            crate::trace::SyncEvent::EpochDoneApplied { id: access_id },
        );
        st.sweep[me.idx()].pending_unlocks.push_back((win, origin));
        st.mark_lock_backlog(me, win);
    }

    /// Sweep step 6: apply deferred unlocks, then pump grant emission for
    /// every backlogged window until quiescent.
    pub(crate) fn pump_lock_backlog(self: &Arc<Self>, st: &mut EngState, rank: Rank) {
        while let Some((win, origin)) = st.sweep[rank.idx()].pending_unlocks.pop_front() {
            // Freed window (see `handle_lock_req`): a retransmit-delayed
            // unlock whose release is moot — the origin already completed.
            if st.wins[win.0 as usize].per_rank[rank.idx()].is_none() {
                continue;
            }
            st.eng_stats.unlocks_applied += 1;
            let w = st.win_mut(win, rank);
            w.lock_mgr.release(origin);
            // A release may make any queued request admissible.
            st.mark_lock_backlog(rank, win);
        }
        let sw = &mut st.sweep[rank.idx()];
        let wins = std::mem::replace(&mut sw.lock_backlog, std::mem::take(&mut sw.win_scratch));
        st.eng_stats.grant_pumps += wins.len() as u64;
        for &win in &wins {
            if st.wins[win.0 as usize].per_rank[rank.idx()].is_none() {
                continue;
            }
            self.pump_window_grants(st, rank, win);
        }
        let mut wins = wins;
        wins.clear();
        st.sweep[rank.idx()].win_scratch = wins;
    }

    /// Emit every grant that has become possible on this window.
    fn pump_window_grants(self: &Arc<Self>, st: &mut EngState, me: Rank, win: WinId) {
        loop {
            let mut progressed = false;

            // Positional exposure grants per dirty origin. The dirty list
            // ping-pongs with the rank scratch buffer: origins marked while
            // pumping land in the scratch-backed live list and the drained
            // buffer becomes the next scratch.
            let scratch = std::mem::take(&mut st.sweep[me.idx()].rank_scratch);
            let mut dirty = std::mem::replace(&mut st.win_mut(win, me).grant_dirty, scratch);
            for &origin in &dirty {
                progressed |= self.pump_exposure_grants(st, me, win, origin);
            }
            dirty.clear();
            st.sweep[me.idx()].rank_scratch = dirty;

            // Lock grants: scan the arrival-order queue. FIFO fairness —
            // the first *eligible but inadmissible* request stops the scan.
            loop {
                let grant: Option<QueuedLock> = {
                    let w = st.win(win, me);
                    let mut pick = None;
                    for q in w.lock_mgr.queue_iter() {
                        let eligible =
                            w.grant_seq[q.origin.idx()].gl_sent + 1 == q.access_id;
                        if !eligible {
                            continue; // cannot be granted regardless of lock state
                        }
                        if w.lock_mgr.admits(q.kind) {
                            pick = Some(q.clone());
                        }
                        break;
                    }
                    pick
                };
                let Some(q) = grant else { break };
                {
                    let w = st.win_mut(win, me);
                    w.lock_mgr.grant(q.origin, q.access_id);
                    let gs = &mut w.grant_seq[q.origin.idx()];
                    gs.pending_locks.remove(&q.access_id);
                    gs.gl_sent = q.access_id;
                    if !w.grant_dirty.contains(&q.origin) {
                        w.grant_dirty.push(q.origin);
                    }
                }
                st.eng_stats.lock_grants += 1;
                self.sync_event(
                    st,
                    me,
                    q.origin,
                    win,
                    crate::trace::Plane::Lock,
                    crate::trace::SyncEvent::GrantSent { id: q.access_id },
                );
                self.send_sync(
                    st,
                    me,
                    q.origin,
                    win,
                    SyncPacket::GrantLock {
                        win,
                        granter: me,
                        id: q.access_id,
                    },
                );
                progressed = true;
            }

            if !progressed {
                break;
            }
        }
    }

    /// Emit positional exposure grants to one origin until the next id is a
    /// pending lock (handled by the lock scan) or credits run out.
    fn pump_exposure_grants(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        win: WinId,
        origin: Rank,
    ) -> bool {
        let mut sent = std::mem::take(&mut st.sweep[me.idx()].grant_scratch);
        {
            let w = st.win_mut(win, me);
            loop {
                let gs = &mut w.grant_seq[origin.idx()];
                let next = gs.g_sent + 1;
                if gs.exposure_credits == 0 {
                    break;
                }
                if self.fault == Some(crate::engine::Fault::SkipGrant) && next == 2 {
                    // Injected liveness bug: the grant stream toward this
                    // origin freezes before position 2 is ever emitted.
                    break;
                }
                gs.exposure_credits -= 1;
                gs.g_sent = next;
                sent.push(next);
            }
        }
        st.eng_stats.exposure_grants += sent.len() as u64;
        for id in &sent {
            self.sync_event(
                st,
                me,
                origin,
                win,
                crate::trace::Plane::Gats,
                crate::trace::SyncEvent::GrantSent { id: *id },
            );
            self.send_sync(
                st,
                me,
                origin,
                win,
                SyncPacket::GrantExposure {
                    win,
                    granter: me,
                    id: *id,
                },
            );
        }
        let progressed = !sent.is_empty();
        sent.clear();
        st.sweep[me.idx()].grant_scratch = sent;
        progressed
    }

    // ------------------------------------------------------------------
    // origin side
    // ------------------------------------------------------------------

    /// A grant arrived: advance the plane's counter and unblock the waiting
    /// access epoch of that plane.
    pub(crate) fn handle_grant(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        granter: Rank,
        win: WinId,
        id: u64,
        kind: GrantKind,
    ) {
        {
            let w = st.win_mut(win, me);
            let ctr = match kind {
                GrantKind::Exposure => &mut w.g[granter.idx()],
                GrantKind::Lock => &mut w.g_lock[granter.idx()],
            };
            assert_eq!(*ctr + 1, id, "grants from {granter} arrived out of order");
            *ctr = id;
        }
        let plane = match kind {
            GrantKind::Exposure => crate::trace::Plane::Gats,
            GrantKind::Lock => crate::trace::Plane::Lock,
        };
        self.sync_event(
            st,
            me,
            granter,
            win,
            plane,
            crate::trace::SyncEvent::GrantApplied { id },
        );
        // Find the (activated) access epoch of the right plane waiting on
        // this grant.
        let hit: Option<EpochId> = st
            .win(win, me)
            .order
            .iter()
            .copied()
            .find(|eid| {
                let e = st.win(win, me).epoch(*eid);
                let plane_ok = match kind {
                    GrantKind::Exposure => matches!(e.kind, EpochKind::GatsAccess { .. }),
                    GrantKind::Lock => {
                        matches!(e.kind, EpochKind::Lock { .. } | EpochKind::LockAll)
                    }
                };
                plane_ok
                    && e.activated
                    && e.targets
                        .get(&granter)
                        .is_some_and(|ts| ts.access_id == id && !ts.granted)
            });
        match hit {
            Some(eid) => {
                st.win_mut(win, me)
                    .epoch_mut(eid)
                    .targets
                    .get_mut(&granter)
                    .unwrap()
                    .granted = true;
                st.mark_ops_dirty(me, win, eid);
                st.mark_complete_dirty(me, win, eid);
            }
            None => {
                // Pre-grant: the matching access epoch is not activated (or
                // not even opened) yet — "the granted access notification
                // must persist for the origin to see it when it catches
                // up" (§VII.B). Lock grants cannot pre-arrive because lock
                // requests are only sent at activation — but they CAN
                // post-arrive, for an epoch the stall watchdog cancelled
                // while its lock request was still queued at the target.
                // Answer those with an immediate unlock so the granter's
                // lock queue keeps moving; anything else is a protocol bug.
                if kind == GrantKind::Lock {
                    let w = st.win_mut(win, me);
                    let pos = w
                        .cancelled_lock_grants
                        .iter()
                        .position(|&(g, aid)| g == granter && aid == id)
                        .expect("lock grant arrived with no matching activated lock epoch");
                    w.cancelled_lock_grants.swap_remove(pos);
                    self.send_sync(
                        st,
                        me,
                        granter,
                        win,
                        crate::msg::SyncPacket::Unlock { win, origin: me, access_id: id },
                    );
                }
            }
        }
    }

    /// A GATS done packet arrived at the target: record it and re-check
    /// exposure epochs involving that origin.
    pub(crate) fn handle_gats_done(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        origin: Rank,
        win: WinId,
        access_id: u64,
    ) {
        self.sync_event(
            st,
            me,
            origin,
            win,
            crate::trace::Plane::Gats,
            crate::trace::SyncEvent::EpochDoneApplied { id: access_id },
        );
        {
            let w = st.win_mut(win, me);
            let slot = &mut w.gats_done_recv[origin.idx()];
            *slot = (*slot).max(access_id);
        }
        // Index walk instead of snapshotting `order` (the marker never
        // mutates `order`), so the re-check is allocation-free.
        let mut i = 0;
        loop {
            let w = st.win(win, me);
            if i >= w.order.len() {
                break;
            }
            let eid = w.order[i];
            i += 1;
            let e = w.epoch(eid);
            if matches!(e.kind, EpochKind::GatsExposure { .. })
                && e.exposure_origins.contains_key(&origin)
            {
                st.mark_complete_dirty(me, win, eid);
            }
        }
    }
}
