//! Ack/retransmit reliability sublayer for internode traffic.
//!
//! When [`crate::config::JobConfig::reliability`] is set, every internode
//! message travels as a sequence-numbered [`Body::Rel`] frame on its
//! `(src, dst)` channel. The receiver delivers frames in sequence order
//! exactly once (buffering reordered frames, dropping duplicates),
//! acknowledges cumulatively with raw [`Body::RelAck`] packets, and drops
//! frames whose checksum disagrees with the inner body. The sender keeps a
//! clean copy of every unacknowledged frame and retransmits on timeout
//! with exponential backoff up to a retry cap; an abandoned frame surfaces
//! as a [`Degradation`] and arms the epoch stall watchdog so the job still
//! terminates (see DESIGN.md §11).
//!
//! The sublayer rides the existing seven-step sweep (§VII.D): step 1 grows
//! the retransmit timer scan, step 2 grows the ack flush, and step 5 grows
//! the in-order delivery queue. At quiescence the channel invariant
//! `pushed == acked + retransmit-pending` holds: every frame ever framed
//! is either covered by the peer's cumulative ack or still sitting in the
//! sender's unacked window.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use mpisim_net::Packet;
use mpisim_sim::SimTime;

use crate::config::Reliability;
use crate::engine::{EngState, Engine, Notice, ProtocolError};
use crate::msg::Body;
use crate::types::Rank;

/// One unacknowledged outbound frame: a clean copy of the inner body for
/// retransmission plus the notice to post once the peer's cumulative ack
/// covers it.
pub(crate) struct RelFrame {
    /// Clean copy of the framed message (retransmissions re-frame this).
    pub inner: Body,
    /// Virtual time at which the frame times out and is retransmitted.
    pub deadline: SimTime,
    /// Retransmissions performed so far.
    pub retries: u32,
    /// Completion notice posted when the frame is acknowledged
    /// end-to-end. Plain data, not a closure: acks are processed while
    /// the engine lock is held, so the notice is pushed straight onto the
    /// owner's sweep queue.
    pub ack_notice: Option<Notice>,
}

/// Sender side of one reliability channel (this rank toward one peer).
pub(crate) struct RelOut {
    /// Next sequence number to assign (1-based).
    pub next_seq: u64,
    /// Highest cumulative ack received from the peer.
    pub acked: u64,
    /// Sent-but-unacknowledged frames by sequence number.
    pub unacked: BTreeMap<u64, RelFrame>,
}

impl Default for RelOut {
    fn default() -> Self {
        RelOut { next_seq: 1, acked: 0, unacked: BTreeMap::new() }
    }
}

/// Receiver side of one reliability channel (one peer toward this rank).
pub(crate) struct RelIn {
    /// Next in-order sequence expected (1-based).
    pub next_expected: u64,
    /// Reordered frames received ahead of the in-order point.
    pub ooo: BTreeMap<u64, Body>,
    /// Highest cumulative ack this side has flushed toward the peer,
    /// tracked to measure how many frames each flushed ack covers
    /// (`acks_coalesced`).
    pub last_cum_acked: u64,
}

impl Default for RelIn {
    fn default() -> Self {
        RelIn { next_expected: 1, ooo: BTreeMap::new(), last_cum_acked: 0 }
    }
}

/// One rank's reliability state: its channels plus the sweep work lists
/// the sublayer adds (retransmit timer, pending acks, in-order delivery).
pub(crate) struct RelRank {
    /// Outbound channels by destination.
    pub out: HashMap<Rank, RelOut>,
    /// Inbound channels by source.
    pub inn: HashMap<Rank, RelIn>,
    /// Peers owed a cumulative ack (deduplicated; flushed by step 2).
    pub ack_due: Vec<Rank>,
    /// Peers whose ack is being *held* inside the delayed-ack window;
    /// moved to `ack_due` when the ack timer fires. Deliberately not
    /// sweep work: the hold ends on the timer, not on progress.
    pub ack_pending: Vec<Rank>,
    /// Ping-pong buffer for `ack_due` (step 2 flush).
    pub ack_scratch: Vec<Rank>,
    /// When the pending delayed ack fires, if armed.
    pub ack_timer_at: Option<SimTime>,
    /// Generation counter invalidating superseded delayed-ack events.
    pub ack_timer_gen: u64,
    /// In-order messages awaiting dispatch (drained by step 5).
    pub deliver: VecDeque<(Rank, Body)>,
    /// The retransmit timer fired: step 1 must scan `out` for expired
    /// frames.
    pub timer_due: bool,
    /// Earliest scheduled timer wake-up, if any.
    pub timer_at: Option<SimTime>,
    /// Generation counter invalidating superseded timer events.
    pub timer_gen: u64,
}

impl RelRank {
    pub(crate) fn new() -> Self {
        RelRank {
            out: HashMap::new(),
            inn: HashMap::new(),
            ack_due: Vec::new(),
            ack_pending: Vec::new(),
            ack_scratch: Vec::new(),
            ack_timer_at: None,
            ack_timer_gen: 0,
            deliver: VecDeque::new(),
            timer_due: false,
            timer_at: None,
            timer_gen: 0,
        }
    }

    /// Whether the sublayer has sweep work pending for this rank.
    pub(crate) fn has_work(&self) -> bool {
        self.timer_due || !self.ack_due.is_empty() || !self.deliver.is_empty()
    }

    /// The oldest unacknowledged (peer, seq) across every outbound
    /// channel, for stall diagnostics.
    pub(crate) fn oldest_unacked(&self) -> Option<(Rank, u64)> {
        self.out
            .iter()
            .filter_map(|(dst, o)| o.unacked.keys().next().map(|s| (*dst, *s)))
            .min_by_key(|(_, s)| *s)
    }
}

/// A degraded-but-survived event: something went wrong on the unreliable
/// fabric (or a peer stalled) and the middleware absorbed it instead of
/// hanging or aborting. Collected on [`crate::runtime::JobReport`].
#[derive(Debug, Clone)]
pub enum Degradation {
    /// A corrupt 64-bit intranode sync packet failed to decode (the
    /// pre-existing [`ProtocolError`] surface).
    FifoDecode(ProtocolError),
    /// A reliability frame arrived with a checksum that disagrees with
    /// its body and was dropped for retransmit.
    ChecksumFail {
        /// Rank that received the corrupt frame.
        rank: Rank,
        /// Peer the frame came from.
        src: Rank,
        /// Channel sequence number of the dropped frame.
        seq: u64,
    },
    /// A frame exhausted its retransmit budget toward a live peer and was
    /// abandoned.
    RetriesExhausted {
        /// Sending rank.
        rank: Rank,
        /// Unreachable destination.
        dst: Rank,
        /// Abandoned sequence number.
        seq: u64,
        /// Retransmissions performed before giving up.
        retries: u32,
    },
    /// A frame was abandoned because its destination (or the sender
    /// itself) is crashed under the active fault plan.
    PeerCrash {
        /// Sending rank.
        rank: Rank,
        /// The crashed peer.
        peer: Rank,
        /// Abandoned sequence number.
        seq: u64,
    },
    /// The stall watchdog cancelled an epoch that stopped making progress
    /// (see [`crate::engine::StallReport`]).
    EpochStall(crate::engine::StallReport),
    /// A crashed rank was restarted from its epoch-aligned checkpoint and
    /// its window state recovered (see
    /// [`crate::engine::RecoveryReport`]). Unlike every other variant
    /// this records a *successful* repair, but it still marks the run as
    /// degraded: the final state converged through recovery, not through
    /// the undisturbed protocol.
    Recovered(crate::engine::RecoveryReport),
}

impl Degradation {
    /// Short stable label for the degradation class.
    pub fn kind(&self) -> &'static str {
        match self {
            Degradation::FifoDecode(_) => "fifo-decode",
            Degradation::ChecksumFail { .. } => "checksum-fail",
            Degradation::RetriesExhausted { .. } => "retries-exhausted",
            Degradation::PeerCrash { .. } => "peer-crash",
            Degradation::EpochStall(_) => "epoch-stall",
            Degradation::Recovered(_) => "recovered",
        }
    }
}

impl std::fmt::Display for Degradation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Degradation::FifoDecode(e) => write!(f, "fifo-decode: {e}"),
            Degradation::ChecksumFail { rank, src, seq } => {
                write!(f, "checksum-fail: rank {rank} dropped corrupt frame #{seq} from {src}")
            }
            Degradation::RetriesExhausted { rank, dst, seq, retries } => write!(
                f,
                "retries-exhausted: rank {rank} abandoned frame #{seq} to {dst} after {retries} retransmits"
            ),
            Degradation::PeerCrash { rank, peer, seq } => {
                write!(f, "peer-crash: rank {rank} abandoned frame #{seq}; {peer} is down")
            }
            Degradation::EpochStall(r) => write!(f, "epoch-stall: {r}"),
            Degradation::Recovered(r) => write!(f, "recovered: {r}"),
        }
    }
}

/// The per-retry backoff: `rto << retries`, capped at `max_backoff`.
fn backoff(cfg: &Reliability, retries: u32) -> SimTime {
    let shifted = cfg.rto.as_nanos().saturating_mul(1u64.checked_shl(retries).unwrap_or(u64::MAX));
    SimTime::from_nanos(shifted.min(cfg.max_backoff.as_nanos()))
}

impl Engine {
    /// Whether traffic from `src` to `dst` travels framed (sublayer on and
    /// the channel is internode).
    pub(crate) fn framed(&self, src: Rank, dst: Rank) -> bool {
        self.cfg.reliability.is_some() && !self.net.topology().same_node(src, dst)
    }

    /// Whether the engine must tolerate protocol anomalies (orphan
    /// responses after a cancelled epoch, late duplicates) instead of
    /// asserting: any of the fault model, the sublayer, or the watchdog is
    /// active.
    pub(crate) fn resilient(&self) -> bool {
        self.cfg.reliability.is_some()
            || self.cfg.watchdog.is_some()
            || self.cfg.recovery.is_some()
            || self.cfg.net.faults.as_ref().is_some_and(|f| f.is_active())
    }

    /// Send `pkt`, tracking local completion and (optionally) end-to-end
    /// acknowledgement.
    ///
    /// With the sublayer off — or on an intranode channel — this is the
    /// legacy fabric path: `on_local` fires when the origin buffer is
    /// reusable and `ack_notice` is posted at the fabric-level
    /// acknowledgement. With the sublayer on, the body is wrapped in a
    /// [`Body::Rel`] frame, a clean copy is retained for retransmission,
    /// and `ack_notice` is posted only when the peer's cumulative ack
    /// covers the frame (a true end-to-end acknowledgement that lost
    /// messages can never fake).
    pub(crate) fn send_framed(
        self: &Arc<Self>,
        st: &mut EngState,
        pkt: Packet<Body>,
        on_local: Option<Box<dyn FnOnce() + Send + 'static>>,
        ack_notice: Option<Notice>,
    ) {
        let (src, dst) = (pkt.src, pkt.dst);
        if !self.framed(src, dst) {
            match (on_local, ack_notice) {
                (Some(f), Some(n)) => {
                    let me = self.clone();
                    self.net.send_tracked(pkt, f, move || me.post_notice(src, n));
                }
                (Some(f), None) => self.net.send_with_completion(pkt, f),
                (None, Some(n)) => {
                    let me = self.clone();
                    self.net.send_tracked(pkt, || (), move || me.post_notice(src, n));
                }
                (None, None) => self.net.send(pkt),
            }
            return;
        }
        let rel_cfg = self.cfg.reliability.as_ref().expect("framed() checked");
        let deadline = self.sim.now() + rel_cfg.rto;
        let out = st.rel[src.idx()].out.entry(dst).or_default();
        let seq = out.next_seq;
        out.next_seq += 1;
        let checksum = pkt.body.digest();
        out.unacked
            .insert(seq, RelFrame { inner: pkt.body.clone(), deadline, retries: 0, ack_notice });
        st.eng_stats.rel_frames_sent += 1;
        let frame =
            Packet { src, dst, body: Body::Rel { seq, checksum, inner: Box::new(pkt.body) } };
        match on_local {
            Some(f) => self.net.send_with_completion(frame, f),
            None => self.net.send(frame),
        }
        self.schedule_rel_timer(st, src, deadline);
    }

    /// Ensure a retransmit-timer event is scheduled at or before `at`.
    pub(crate) fn schedule_rel_timer(self: &Arc<Self>, st: &mut EngState, rank: Rank, at: SimTime) {
        let ch = &mut st.rel[rank.idx()];
        if ch.timer_at.is_some_and(|t| t <= at) {
            return;
        }
        ch.timer_gen += 1;
        ch.timer_at = Some(at);
        let gen = ch.timer_gen;
        let me = self.clone();
        let delay = at.saturating_sub(self.sim.now());
        self.sim.schedule(delay, move || me.rel_timer_fire(rank, gen));
    }

    /// Retransmit-timer event: mark the scan due and run a sweep. A stale
    /// generation means a closer wake-up superseded this event.
    fn rel_timer_fire(self: &Arc<Self>, rank: Rank, gen: u64) {
        {
            let mut st = self.st.lock();
            let ch = &mut st.rel[rank.idx()];
            if ch.timer_gen != gen {
                return;
            }
            ch.timer_at = None;
            ch.timer_due = true;
        }
        self.sweep(rank);
    }

    /// Sweep step 1 growth: scan outbound channels for expired frames,
    /// retransmit them with exponential backoff, abandon frames past the
    /// retry cap, and re-arm the timer at the earliest surviving deadline.
    pub(crate) fn rel_retransmit_scan(self: &Arc<Self>, st: &mut EngState, rank: Rank) {
        st.rel[rank.idx()].timer_due = false;
        let Some(rel_cfg) = self.cfg.reliability.clone() else {
            return;
        };
        let now = self.sim.now();
        let mut next: Option<SimTime> = None;
        let mut resend: Vec<Packet<Body>> = Vec::new();
        let mut abandoned: Vec<(Rank, u64, u32)> = Vec::new();
        {
            let ch = &mut st.rel[rank.idx()];
            for (&dst, out) in ch.out.iter_mut() {
                let mut dead: Vec<u64> = Vec::new();
                for (&seq, frame) in out.unacked.iter_mut() {
                    if frame.deadline <= now {
                        if frame.retries >= rel_cfg.max_retries {
                            dead.push(seq);
                            continue;
                        }
                        frame.retries += 1;
                        frame.deadline = now + backoff(&rel_cfg, frame.retries);
                        resend.push(Packet {
                            src: rank,
                            dst,
                            body: Body::Rel {
                                seq,
                                checksum: frame.inner.digest(),
                                inner: Box::new(frame.inner.clone()),
                            },
                        });
                    }
                    next = Some(next.map_or(frame.deadline, |t: SimTime| t.min(frame.deadline)));
                }
                for seq in dead {
                    let frame = out.unacked.remove(&seq).expect("dead seq present");
                    // The ack notice is dropped, not posted: the op will
                    // never be remotely acknowledged. Terminating the
                    // epoch is the watchdog's job.
                    abandoned.push((dst, seq, frame.retries));
                }
            }
        }
        st.eng_stats.rel_retransmits += resend.len() as u64;
        for pkt in resend {
            self.net.send(pkt);
        }
        for (dst, seq, retries) in abandoned {
            st.eng_stats.retries_exhausted += 1;
            let crashed =
                self.cfg.net.faults.as_ref().is_some_and(|f| f.crashed(rank, dst, now));
            st.degradations.push(if crashed {
                Degradation::PeerCrash { rank, peer: dst, seq }
            } else {
                Degradation::RetriesExhausted { rank, dst, seq, retries }
            });
            self.arm_watchdog(st);
        }
        if let Some(at) = next {
            self.schedule_rel_timer(st, rank, at);
        }
    }

    /// Sweep step 2 growth: flush one cumulative ack to every peer owed
    /// one. Under delayed acks one flush typically covers several frames;
    /// every frame beyond the first is counted as a coalesced ack.
    pub(crate) fn rel_flush_acks(self: &Arc<Self>, st: &mut EngState, rank: Rank) {
        let ch = &mut st.rel[rank.idx()];
        let mut due = std::mem::replace(&mut ch.ack_due, std::mem::take(&mut ch.ack_scratch));
        for &dst in &due {
            let ch = &mut st.rel[rank.idx()];
            let (cum, covered) = match ch.inn.get_mut(&dst) {
                Some(i) => {
                    let cum = i.next_expected - 1;
                    let covered = cum.saturating_sub(i.last_cum_acked);
                    i.last_cum_acked = cum;
                    (cum, covered)
                }
                None => (0, 0),
            };
            if covered > 1 {
                st.eng_stats.acks_coalesced += covered - 1;
            }
            st.eng_stats.rel_acks_sent += 1;
            // Acks ride the fabric raw: a lost ack is repaired by the
            // retransmit it provokes (which re-queues the ack), so framing
            // them would only add a second unbounded channel. A zero-new-
            // coverage ack is still sent — it re-acks a duplicate so the
            // sender's window advances past a lost ack.
            self.net.send(Packet { src: rank, dst, body: Body::RelAck { cum } });
        }
        due.clear();
        st.rel[rank.idx()].ack_scratch = due;
    }

    /// Receive one reliability frame: checksum validation, duplicate
    /// suppression, reorder buffering, and in-order queueing for step 5.
    pub(crate) fn rel_receive(
        self: &Arc<Self>,
        st: &mut EngState,
        dst: Rank,
        src: Rank,
        seq: u64,
        checksum: u64,
        inner: Body,
    ) {
        debug_assert!(
            !matches!(inner, Body::Rel { .. } | Body::RelAck { .. }),
            "reliability frames never nest"
        );
        if inner.digest() != checksum {
            // Drop the frame without acknowledging it: the sender's
            // retransmit timer recovers the message from its clean copy.
            st.eng_stats.rel_checksum_drops += 1;
            st.degradations.push(Degradation::ChecksumFail { rank: dst, src, seq });
            return;
        }
        let inn = st.rel[dst.idx()].inn.entry(src).or_default();
        if seq < inn.next_expected {
            // Duplicate of an already-delivered frame (retransmit racing
            // the ack, or a fabric-level duplication fault): drop it, but
            // still re-ack so the sender's window advances.
            st.eng_stats.rel_dups_dropped += 1;
        } else if seq == inn.next_expected {
            inn.next_expected += 1;
            let mut bodies = vec![inner];
            while let Some(b) = inn.ooo.remove(&inn.next_expected) {
                inn.next_expected += 1;
                bodies.push(b);
            }
            let q = &mut st.rel[dst.idx()].deliver;
            for b in bodies {
                q.push_back((src, b));
            }
        } else if st.rel[dst.idx()].inn.get_mut(&src).expect("channel").ooo.insert(seq, inner).is_some()
        {
            st.eng_stats.rel_dups_dropped += 1;
        } else {
            st.eng_stats.rel_ooo_buffered += 1;
        }
        let delay = self.cfg.reliability.as_ref().map_or(SimTime::from_nanos(0), |r| r.ack_delay);
        if delay.as_nanos() == 0 {
            // Immediate mode: owe the ack to the very next sweep's step 2.
            let due = &mut st.rel[dst.idx()].ack_due;
            if !due.contains(&src) {
                due.push(src);
            }
        } else {
            // Delayed-ack mode: hold the ack for the coalescing window so
            // the rest of the burst lands under the same cumulative ack.
            let ch = &mut st.rel[dst.idx()];
            if !ch.ack_pending.contains(&src) {
                ch.ack_pending.push(src);
            }
            if ch.ack_timer_at.is_none() {
                ch.ack_timer_gen += 1;
                let gen = ch.ack_timer_gen;
                ch.ack_timer_at = Some(self.sim.now() + delay);
                let me = self.clone();
                self.sim.schedule(delay, move || me.rel_ack_timer_fire(dst, gen));
            }
        }
    }

    /// Delayed-ack timer: promote held acks to due and run a sweep so
    /// step 2 flushes them. A stale generation means the state was torn
    /// down and rebuilt under this event.
    fn rel_ack_timer_fire(self: &Arc<Self>, rank: Rank, gen: u64) {
        {
            let mut st = self.st.lock();
            let ch = &mut st.rel[rank.idx()];
            if ch.ack_timer_gen != gen {
                return;
            }
            ch.ack_timer_at = None;
            while let Some(src) = ch.ack_pending.pop() {
                if !ch.ack_due.contains(&src) {
                    ch.ack_due.push(src);
                }
            }
        }
        self.sweep(rank);
    }

    /// Sweep step 5 growth: dispatch queued in-order deliveries.
    pub(crate) fn rel_deliver(self: &Arc<Self>, st: &mut EngState, rank: Rank) {
        while let Some((src, body)) = st.rel[rank.idx()].deliver.pop_front() {
            st.eng_stats.rel_delivered += 1;
            self.dispatch_body(st, rank, src, body);
        }
    }

    /// Process a cumulative ack: retire covered frames and post their
    /// completion notices onto the owner's sweep queue.
    pub(crate) fn rel_handle_ack(
        self: &Arc<Self>,
        st: &mut EngState,
        dst: Rank,
        src: Rank,
        cum: u64,
    ) {
        let Some(out) = st.rel[dst.idx()].out.get_mut(&src) else {
            return;
        };
        if cum <= out.acked {
            return; // stale or duplicate ack
        }
        out.acked = cum;
        let mut notices: Vec<Notice> = Vec::new();
        while let Some((&seq, _)) = out.unacked.first_key_value() {
            if seq > cum {
                break;
            }
            let frame = out.unacked.remove(&seq).expect("first key present");
            if let Some(n) = frame.ack_notice {
                notices.push(n);
            }
        }
        for n in notices {
            st.sweep[dst.idx()].notices.push_back(n);
        }
    }

    /// Record an orphan response (token retired by a cancelled epoch, or
    /// a message outliving its correlation state) when the engine runs in
    /// a resilient configuration; panic otherwise — without faults this is
    /// an engine bug.
    pub(crate) fn orphan_response(&self, st: &mut EngState, what: &'static str) {
        if self.resilient() {
            st.eng_stats.orphan_responses += 1;
        } else {
            panic!("{what} with unknown token");
        }
    }
}
