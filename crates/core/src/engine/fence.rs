//! Fence epochs: `MPI_WIN_FENCE` / `MPI_WIN_IFENCE`.
//!
//! A fence call closes the current fence epoch (if one is open) and opens
//! the next. Closing entails barrier semantics (§VI.A rule 5): each rank
//! announces, per peer, how many data messages it issued toward that peer
//! in the epoch; a rank's fence epoch completes only when it has received
//! the announcement from *every* peer and the announced number of data
//! messages has arrived.

use std::sync::Arc;

use mpisim_net::Packet;

use crate::engine::{EngState, Engine};
use crate::epoch::EpochKind;
use crate::error::{RmaError, RmaResult};
use crate::msg::Body;
use crate::request::ReqKind;
use crate::types::{EpochId, Rank, Req, WinId};

impl Engine {
    /// `MPI_WIN_IFENCE` (and the internals of `MPI_WIN_FENCE`): close the
    /// open fence epoch, open the next one, and return the closing request
    /// (a dummy completed request if this fence only opens).
    pub fn fence(self: &Arc<Self>, rank: Rank, win: WinId) -> RmaResult<Req> {
        let req = {
            let mut st = self.st.lock();
            let w = st.win(win, rank);
            if w.cur_gats_access.is_some()
                || w.cur_exposure.is_some()
                || !w.open_locks.is_empty()
                || w.cur_lock_all.is_some()
            {
                return Err(RmaError::AlreadyInEpoch { called: "fence" });
            }
            let closing = st.win_mut(win, rank).cur_fence.take();
            let req = match closing {
                Some(id) => {
                    let req = st.reqs.alloc(ReqKind::EpochClose);
                    let now = self.sim.now();
                    let e = st.win_mut(win, rank).epoch_mut(id);
                    e.closed = true;
                    e.closed_at = Some(now);
                    e.close_req = Some(req);
                    self.trace_event(&mut st, rank, win, id, crate::trace::EpochEvent::Closed);
                    st.mark_ops_dirty(rank, win, id);
                    st.mark_complete_dirty(rank, win, id);
                    self.watch_epoch(&mut st, rank, win, id);
                    req
                }
                // An opening-only fence completes immediately (§VII.C).
                None => st.reqs.alloc_done(ReqKind::EpochOpen),
            };
            // Open the next fence epoch.
            let w = st.win_mut(win, rank);
            let seq = w.next_fence_seq;
            w.next_fence_seq += 1;
            let id = w.alloc_epoch_id();
            let e = w.new_epoch(id, EpochKind::Fence { seq });
            w.push_epoch(e);
            w.cur_fence = Some(id);
            st.eng_stats.epochs_opened += 1;
            self.trace_event(&mut st, rank, win, id, crate::trace::EpochEvent::Opened);
            st.mark_act_dirty(rank, win);
            req
        };
        self.sweep(rank);
        Ok(req)
    }

    /// Progress a fence epoch: emit per-peer FenceDone announcements once
    /// that peer's data is fully posted, and evaluate completion. Returns
    /// whether the epoch is complete.
    pub(crate) fn fence_progress(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        id: EpochId,
        seq: u64,
    ) -> bool {
        let n = self.cfg.n_ranks;
        let closed = st.win(win, rank).epoch(id).closed;
        if closed {
            // Send FenceDone to every peer (self included, for uniformity)
            // whose outgoing data is fully posted. The batch reuses the
            // rank's send scratch buffer.
            let mut to_send = std::mem::take(&mut st.sweep[rank.idx()].send_scratch);
            {
                let e = st.win_mut(win, rank).epoch_mut(id);
                for (t, ts) in e.targets.iter_mut() {
                    if ts.unsent == 0 && !ts.done_sent {
                        ts.done_sent = true;
                        to_send.push((*t, ts.data_msgs_sent));
                    }
                }
            }
            for &(t, ops_sent) in &to_send {
                self.sync_event(
                    st,
                    rank,
                    t,
                    win,
                    crate::trace::Plane::Gats,
                    crate::trace::SyncEvent::FenceDoneSent { seq },
                );
                self.send_framed(
                    st,
                    Packet {
                        src: rank,
                        dst: t,
                        body: Body::FenceDone { win, seq, ops_sent },
                    },
                    None,
                    None,
                );
            }
            to_send.clear();
            st.sweep[rank.idx()].send_scratch = to_send;
        }
        // Completion: closed, everything announced and locally complete,
        // and every peer's announcement + announced data received.
        let e = st.win(win, rank).epoch(id);
        if !(closed && e.targets.values().all(|t| t.done_sent) && e.live_ops.is_empty()) {
            return false;
        }
        let w = st.win(win, rank);
        for p in 0..n {
            match w.fence_dones.get(&(p, seq)) {
                None => return false,
                Some(expected) => {
                    let got = w.fence_arrivals.get(&(p, seq)).copied().unwrap_or(0);
                    debug_assert!(got <= *expected, "more fence data than announced");
                    if got < *expected {
                        return false;
                    }
                }
            }
        }
        // Epoch complete: this rank has now observed every peer's closing
        // announcement (and all announced data) — record the HB join edges.
        for p in 0..n {
            self.sync_event(
                st,
                rank,
                Rank(p),
                win,
                crate::trace::Plane::Gats,
                crate::trace::SyncEvent::FenceDoneApplied { seq },
            );
        }
        // Clean up the per-sequence bookkeeping.
        let w = st.win_mut(win, rank);
        for p in 0..n {
            w.fence_dones.remove(&(p, seq));
            w.fence_arrivals.remove(&(p, seq));
        }
        true
    }

    /// A peer's closing-fence announcement arrived.
    pub(crate) fn handle_fence_done(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        origin: Rank,
        win: WinId,
        seq: u64,
        ops_sent: u64,
    ) {
        st.win_mut(win, me)
            .fence_dones
            .insert((origin.idx(), seq), ops_sent);
        self.mark_fence_dirty(st, me, win, seq);
    }
}
