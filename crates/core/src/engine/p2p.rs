//! Two-sided messaging (eager + rendezvous) and the dissemination barrier.
//!
//! The middleware needs a two-sided substrate both for applications (the
//! paper's Late Post microbenchmark interleaves an RMA epoch with a
//! two-sided transfer) and for collective bootstrap (barriers around window
//! creation).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use mpisim_net::{Packet, Payload};

use crate::engine::{EngState, Engine, TokenInfo};
use crate::error::{RmaError, RmaResult};
use crate::msg::Body;
use crate::request::ReqKind;
use crate::types::{Rank, Req};

/// A posted (not yet matched) receive.
pub(crate) struct PostedRecv {
    pub src: Rank,
    pub tag: u64,
    pub req: Req,
}

/// An arrived-but-unmatched message.
pub(crate) enum UnexpContent {
    Eager(Payload),
    Rndv { token: u64 },
}

pub(crate) struct UnexpMsg {
    pub src: Rank,
    pub tag: u64,
    pub content: UnexpContent,
}

/// Per-rank two-sided state.
#[derive(Default)]
pub(crate) struct P2pRank {
    pub posted: VecDeque<PostedRecv>,
    pub unexpected: VecDeque<UnexpMsg>,
}

/// Per-rank dissemination-barrier state.
#[derive(Default)]
pub(crate) struct BarrierRank {
    /// Current barrier generation (increments per ibarrier).
    pub seq: u64,
    /// Current round within the active barrier.
    pub round: u32,
    /// Request completed when the barrier finishes.
    pub req: Option<Req>,
    /// Early arrivals: (seq, round) → count.
    pub arrived: HashMap<(u64, u32), u32>,
}

fn barrier_rounds(n: usize) -> u32 {
    let mut r = 0u32;
    let mut span = 1usize;
    while span < n {
        span *= 2;
        r += 1;
    }
    r
}

impl Engine {
    // ------------------------------------------------------------------
    // two-sided
    // ------------------------------------------------------------------

    /// `MPI_ISEND`: the request completes at local completion (buffer
    /// reusable).
    pub fn isend(self: &Arc<Self>, rank: Rank, dst: Rank, tag: u64, payload: Payload) -> RmaResult<Req> {
        if dst.idx() >= self.cfg.n_ranks {
            return Err(RmaError::InvalidRank(dst.idx()));
        }
        let req = {
            let mut st = self.st.lock();
            let req = st.reqs.alloc(ReqKind::P2p);
            if payload.len() <= self.cfg.rndv_threshold {
                let me = self.clone();
                self.send_framed(
                    &mut st,
                    Packet {
                        src: rank,
                        dst,
                        body: Body::P2pEager { tag, payload },
                    },
                    Some(Box::new(move || me.complete_req_and_sweep(rank, req, None))),
                    None,
                );
            } else {
                let token = st.alloc_token();
                st.tokens.insert(token, TokenInfo::P2pSend { rank, payload, req });
                self.send_framed(
                    &mut st,
                    Packet {
                        src: rank,
                        dst,
                        body: Body::P2pRts {
                            tag,
                            size: 0,
                            token,
                        },
                    },
                    None,
                    None,
                );
            }
            req
        };
        self.sweep(rank);
        Ok(req)
    }

    /// `MPI_IRECV` (matched by exact source and tag): the request completes
    /// with the message data.
    pub fn irecv(self: &Arc<Self>, rank: Rank, src: Rank, tag: u64) -> RmaResult<Req> {
        if src.idx() >= self.cfg.n_ranks {
            return Err(RmaError::InvalidRank(src.idx()));
        }
        let req = {
            let mut st = self.st.lock();
            let req = st.reqs.alloc(ReqKind::P2p);
            // FIFO search of the unexpected queue preserves per-(src, tag)
            // ordering, matching MPI's non-overtaking rule.
            let hit = st.p2p[rank.idx()]
                .unexpected
                .iter()
                .position(|m| m.src == src && m.tag == tag);
            match hit {
                Some(i) => {
                    let msg = st.p2p[rank.idx()].unexpected.remove(i).unwrap();
                    match msg.content {
                        UnexpContent::Eager(payload) => {
                            let data = payload_to_bytes(payload);
                            st.reqs.complete(req, Some(data));
                        }
                        UnexpContent::Rndv { token } => {
                            let data_token = st.alloc_token();
                            st.tokens.insert(data_token, TokenInfo::P2pRecv { req });
                            self.send_framed(
                                &mut st,
                                Packet {
                                    src: rank,
                                    dst: msg.src,
                                    body: Body::P2pCts { token, data_token },
                                },
                                None,
                                None,
                            );
                        }
                    }
                }
                None => {
                    st.p2p[rank.idx()].posted.push_back(PostedRecv { src, tag, req });
                }
            }
            req
        };
        self.sweep(rank);
        Ok(req)
    }

    pub(crate) fn handle_p2p_eager(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        src: Rank,
        tag: u64,
        payload: Payload,
    ) {
        let hit = st.p2p[me.idx()]
            .posted
            .iter()
            .position(|p| p.src == src && p.tag == tag);
        match hit {
            Some(i) => {
                let posted = st.p2p[me.idx()].posted.remove(i).unwrap();
                let data = payload_to_bytes(payload);
                st.reqs.complete(posted.req, Some(data));
            }
            None => st.p2p[me.idx()].unexpected.push_back(UnexpMsg {
                src,
                tag,
                content: UnexpContent::Eager(payload),
            }),
        }
    }

    pub(crate) fn handle_p2p_rts(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        src: Rank,
        tag: u64,
        _size: usize,
        token: u64,
    ) {
        let hit = st.p2p[me.idx()]
            .posted
            .iter()
            .position(|p| p.src == src && p.tag == tag);
        match hit {
            Some(i) => {
                let posted = st.p2p[me.idx()].posted.remove(i).unwrap();
                let data_token = st.alloc_token();
                st.tokens.insert(data_token, TokenInfo::P2pRecv { req: posted.req });
                self.send_framed(
                    st,
                    Packet {
                        src: me,
                        dst: src,
                        body: Body::P2pCts { token, data_token },
                    },
                    None,
                    None,
                );
            }
            None => st.p2p[me.idx()].unexpected.push_back(UnexpMsg {
                src,
                tag,
                content: UnexpContent::Rndv { token },
            }),
        }
    }

    /// Sender side: CTS arrived from `cts_src` — ship the staged payload.
    pub(crate) fn handle_p2p_cts_from(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        cts_src: Rank,
        token: u64,
        data_token: u64,
    ) {
        let Some(TokenInfo::P2pSend { rank, payload, req }) = st.tokens.remove(&token) else {
            self.orphan_response(st, "P2pCts");
            return;
        };
        debug_assert_eq!(rank, me);
        let m = self.clone();
        self.send_framed(
            st,
            Packet {
                src: me,
                dst: cts_src,
                body: Body::P2pData { data_token, payload },
            },
            Some(Box::new(move || m.complete_req_and_sweep(me, req, None))),
            None,
        );
    }

    /// Receiver side: rendezvous data arrived.
    pub(crate) fn handle_p2p_data(
        self: &Arc<Self>,
        st: &mut EngState,
        _me: Rank,
        data_token: u64,
        payload: Payload,
    ) {
        let Some(TokenInfo::P2pRecv { req }) = st.tokens.remove(&data_token) else {
            self.orphan_response(st, "P2pData");
            return;
        };
        let data = payload_to_bytes(payload);
        st.reqs.complete(req, Some(data));
    }

    /// Complete a request from a scheduler event and run the rank's sweep.
    pub(crate) fn complete_req_and_sweep(self: &Arc<Self>, rank: Rank, req: Req, data: Option<bytes::Bytes>) {
        {
            let mut st = self.st.lock();
            st.reqs.complete(req, data);
        }
        self.sweep(rank);
    }

    // ------------------------------------------------------------------
    // barrier
    // ------------------------------------------------------------------

    /// Nonblocking dissemination barrier over all ranks.
    pub fn ibarrier(self: &Arc<Self>, rank: Rank) -> Req {
        let n = self.cfg.n_ranks;
        let req = {
            let mut st = self.st.lock();
            let req = st.reqs.alloc(ReqKind::Barrier);
            let b = &mut st.barrier[rank.idx()];
            assert!(b.req.is_none(), "overlapping barriers are not supported");
            b.seq += 1;
            b.round = 0;
            b.req = Some(req);
            if n == 1 {
                let r = b.req.take().unwrap();
                st.reqs.complete(r, None);
            } else {
                let seq = st.barrier[rank.idx()].seq;
                let peer = Rank((rank.idx() + 1) % n);
                self.send_framed(
                    &mut st,
                    Packet {
                        src: rank,
                        dst: peer,
                        body: Body::BarrierMsg { seq, round: 0 },
                    },
                    None,
                    None,
                );
                self.barrier_try_advance(&mut st, rank);
            }
            req
        };
        self.sweep(rank);
        req
    }

    pub(crate) fn handle_barrier_msg(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        seq: u64,
        round: u32,
    ) {
        *st.barrier[me.idx()].arrived.entry((seq, round)).or_insert(0) += 1;
        self.barrier_try_advance(st, me);
    }

    fn barrier_try_advance(self: &Arc<Self>, st: &mut EngState, me: Rank) {
        let n = self.cfg.n_ranks;
        let total = barrier_rounds(n);
        loop {
            let b = &mut st.barrier[me.idx()];
            if b.req.is_none() {
                return;
            }
            let key = (b.seq, b.round);
            let Some(c) = b.arrived.get_mut(&key) else { return };
            debug_assert!(*c > 0);
            *c -= 1;
            if *c == 0 {
                b.arrived.remove(&key);
            }
            b.round += 1;
            if b.round == total {
                let r = b.req.take().unwrap();
                st.reqs.complete(r, None);
                return;
            }
            let round = b.round;
            let seq = b.seq;
            let peer = Rank((me.idx() + (1 << round)) % n);
            self.send_framed(
                st,
                Packet {
                    src: me,
                    dst: peer,
                    body: Body::BarrierMsg { seq, round },
                },
                None,
                None,
            );
        }
    }
}

fn payload_to_bytes(p: Payload) -> bytes::Bytes {
    match p {
        Payload::Bytes(b) => b,
        Payload::Synthetic(n) => bytes::Bytes::from(vec![0u8; n]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds() {
        assert_eq!(barrier_rounds(1), 0);
        assert_eq!(barrier_rounds(2), 1);
        assert_eq!(barrier_rounds(3), 2);
        assert_eq!(barrier_rounds(4), 2);
        assert_eq!(barrier_rounds(5), 3);
        assert_eq!(barrier_rounds(8), 3);
        assert_eq!(barrier_rounds(9), 4);
    }
}
