//! Epoch-aligned checkpointing and crash recovery (DESIGN.md §16).
//!
//! Epoch commit is the only instant at which a window's state is globally
//! coherent (every covered operation acknowledged, every grant consumed),
//! so it is the natural checkpoint boundary: at configurable commit
//! points each rank snapshots its window contents plus the ω matching
//! triples into an in-simulation stable store, and journals every later
//! window write as a physical redo record.
//!
//! The crash model is a **NIC crash with a bounded outage**: the fault
//! plan's `crash_at_commit` list (or a watchdog-declared death) takes the
//! rank's NIC off the fabric and wipes its volatile window memory; the
//! host-side fiber survives (it is typically parked waiting on network
//! progress). After `restart_after` of virtual time the runtime restarts
//! the rank: the NIC rejoins the fabric, window memory is reconstructed
//! as *checkpoint + redo-log replay*, and the live ω-counters are audited
//! against the checkpointed snapshot (they must only have advanced — the
//! reliability channels journal continuously, the "NIC NVRAM" shortcut,
//! so sequence state is never lost). In-flight internode traffic is
//! bridged by the ack/retransmit sublayer exactly as for a transient
//! partition. The whole episode is recorded as a [`RecoveryReport`] plus
//! a [`Degradation::Recovered`] provenance entry.
//!
//! The `plant_stale` knob exists solely for the conformance harness's
//! exit-inverted `--inject bad-recovery` self-test: it installs the raw
//! checkpoint *without* replaying the redo log, a textbook stale restore
//! the differential check must catch whenever the log was non-empty.

use std::sync::Arc;

use mpisim_sim::SimTime;

use crate::engine::rel::Degradation;
use crate::engine::{EngState, Engine};
use crate::types::{Rank, WinId};

/// Snapshot of one window side's ω matching state (§VII.B), both the
/// GATS plane and the split lock plane, plus the done high-water marks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OmegaSnapshot {
    /// Accesses requested toward each peer (`a_l`).
    pub a: Vec<u64>,
    /// Exposures opened toward each peer (`e_l`).
    pub e: Vec<u64>,
    /// Access grants received from each peer (`g_r`).
    pub g: Vec<u64>,
    /// Lock-plane requests toward each peer.
    pub a_lock: Vec<u64>,
    /// Lock-plane grants received from each peer.
    pub g_lock: Vec<u64>,
    /// Highest GATS done id received from each origin.
    pub gats_done_recv: Vec<u64>,
}

impl OmegaSnapshot {
    fn capture(w: &crate::window::WinRank) -> Self {
        OmegaSnapshot {
            a: w.a.clone(),
            e: w.e.clone(),
            g: w.g.clone(),
            a_lock: w.a_lock.clone(),
            g_lock: w.g_lock.clone(),
            gats_done_recv: w.gats_done_recv.clone(),
        }
    }

    /// Serialized size, for checkpoint-overhead accounting.
    fn byte_len(&self) -> u64 {
        8 * (self.a.len()
            + self.e.len()
            + self.g.len()
            + self.a_lock.len()
            + self.g_lock.len()
            + self.gats_done_recv.len()) as u64
    }

    /// Count counters where `live` has moved *backwards* relative to this
    /// snapshot — impossible under the monotonic ω protocol, so any hit
    /// is a reconcile-audit failure.
    fn regressions_vs(&self, live: &OmegaSnapshot) -> u64 {
        let pairs = [
            (&self.a, &live.a),
            (&self.e, &live.e),
            (&self.g, &live.g),
            (&self.a_lock, &live.a_lock),
            (&self.g_lock, &live.g_lock),
            (&self.gats_done_recv, &live.gats_done_recv),
        ];
        pairs
            .iter()
            .flat_map(|(ck, lv)| ck.iter().zip(lv.iter()))
            .filter(|(ck, lv)| lv < ck)
            .count() as u64
    }
}

/// One committed checkpoint of one (window, rank) side.
#[derive(Debug, Clone)]
pub(crate) struct Checkpoint {
    /// The rank-wide epoch-commit ordinal at which this was taken
    /// (0 = the initial `win_allocate` baseline).
    pub commit_no: u64,
    /// Virtual time of the commit.
    pub at: SimTime,
    /// Full window contents at the commit instant.
    pub mem: Vec<u8>,
    /// ω matching state at the commit instant.
    pub omega: OmegaSnapshot,
}

/// One physical redo record: the post-image of a window write.
#[derive(Debug, Clone)]
pub(crate) struct LogRecord {
    pub disp: usize,
    pub bytes: Vec<u8>,
}

/// The stable store for one (window, rank) side: the latest checkpoint
/// plus the redo log of every window write since it.
#[derive(Debug, Default)]
pub(crate) struct StableWin {
    pub ckpt: Option<Checkpoint>,
    pub log: Vec<LogRecord>,
}

impl StableWin {
    /// Reconstruct the window contents: checkpoint plus redo-log replay.
    fn reconstruct(&self) -> Vec<u8> {
        let ckpt = self.ckpt.as_ref().expect("recovery without a checkpoint");
        let mut mem = ckpt.mem.clone();
        for rec in &self.log {
            mem[rec.disp..rec.disp + rec.bytes.len()].copy_from_slice(&rec.bytes);
        }
        mem
    }
}

/// Structured provenance of one completed rank-restart episode (one entry
/// per recovered window side).
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The restarted rank.
    pub rank: Rank,
    /// The recovered window.
    pub win: WinId,
    /// Rank-wide epoch-commit ordinal at which the crash fired.
    pub crash_commit: u64,
    /// Virtual time of the crash.
    pub crash_at: SimTime,
    /// Virtual time the restart completed.
    pub restored_at: SimTime,
    /// Commit ordinal of the checkpoint that was restored.
    pub ckpt_commit: u64,
    /// Virtual time the restored checkpoint was originally cut.
    pub ckpt_at: SimTime,
    /// Redo-log records replayed on top of the checkpoint.
    pub replayed_ops: u64,
    /// Bytes replayed from the redo log.
    pub replayed_bytes: u64,
    /// ω-counters that moved backwards in the reconcile audit (always 0
    /// on a healthy run: the protocol is monotonic).
    pub omega_regressions: u64,
    /// The restore deliberately skipped redo-log replay (the planted
    /// `bad-recovery` fault) *and* that actually left the memory stale.
    pub stale: bool,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} win {} crashed at commit {} ({} ns), restored ckpt {} + {} replayed ops ({} bytes) at {} ns{}{}",
            self.rank,
            self.win.0,
            self.crash_commit,
            self.crash_at.as_nanos(),
            self.ckpt_commit,
            self.replayed_ops,
            self.replayed_bytes,
            self.restored_at.as_nanos(),
            if self.stale { ", STALE restore" } else { "" },
            if self.omega_regressions > 0 { ", omega REGRESSED" } else { "" },
        )
    }
}

/// Byte pattern a crash wipes volatile window memory with, so a restart
/// that forgets to restore is loudly visible in the differential check.
const WIPE_BYTE: u8 = 0xDB;

impl Engine {
    /// Whether the crash-recovery subsystem is armed for this job.
    pub(crate) fn recovery_armed(&self) -> bool {
        self.cfg.recovery.is_some()
    }

    /// Take the initial (commit-0) checkpoint for a freshly allocated
    /// window side, so a crash before the first commit still has a
    /// consistent restore point.
    pub(crate) fn recovery_init_win(&self, st: &mut EngState, rank: Rank, win: WinId) {
        let ckpt = {
            let w = st.win(win, rank);
            Checkpoint {
                commit_no: 0,
                at: self.sim.now(),
                mem: w.mem.clone(),
                omega: OmegaSnapshot::capture(w),
            }
        };
        self.account_ckpt(st, &ckpt);
        st.stable.insert((win, rank), StableWin { ckpt: Some(ckpt), log: Vec::new() });
    }

    fn account_ckpt(&self, st: &mut EngState, ckpt: &Checkpoint) {
        st.eng_stats.ckpt_commits += 1;
        st.eng_stats.ckpt_bytes += ckpt.mem.len() as u64 + ckpt.omega.byte_len();
    }

    /// Journal the post-image of a window write into the redo log. Called
    /// at every site that mutates `WinRank::mem` — remote put/accumulate/
    /// fetch application and local stores alike — after the write landed.
    pub(crate) fn log_win_write(
        &self,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        disp: usize,
        len: usize,
    ) {
        if !self.recovery_armed() || len == 0 {
            return;
        }
        let bytes = {
            let w = st.win(win, rank);
            w.mem[disp..disp + len].to_vec()
        };
        if let Some(sw) = st.stable.get_mut(&(win, rank)) {
            sw.log.push(LogRecord { disp, bytes });
        }
    }

    /// Repair a crashed rank's window *before* any access touches it
    /// during the outage. A crash wipes the volatile memory and the
    /// restart installs the reconstruction — but the gap between them is
    /// reachable: self-targeted operations never cross the downed NIC
    /// (`src == dst` is not cut), and requests that were delivered just
    /// before the crash can still be served by the progress sweep.
    /// Applying a reduction to — or answering a get from — the wiped
    /// bytes would poison the redo log's post-images and the reply data.
    /// `reconstruct()` is by construction the window's true current
    /// contents at any instant, so installing it eagerly here is always
    /// sound; the scheduled restart still performs the accounted restore.
    ///
    /// The planted-stale backdoor must poison this path too: a crashed
    /// rank whose job finishes inside the outage window reads its final
    /// memory through here, and serving the healthy reconstruction would
    /// mask the very staleness the self-test plants at restart.
    pub(crate) fn freshen_crashed_mem(&self, st: &mut EngState, rank: Rank, win: WinId) {
        if !self.recovery_armed() || !st.crashed[rank.idx()] {
            return;
        }
        let plant_stale = self.cfg.recovery.as_ref().is_some_and(|r| r.plant_stale);
        let Some(mem) = st.stable.get(&(win, rank)).map(|sw| {
            if plant_stale {
                sw.ckpt.as_ref().expect("recovery without a checkpoint").mem.clone()
            } else {
                sw.reconstruct()
            }
        }) else {
            return;
        };
        st.win_mut(win, rank).mem = mem;
    }

    /// Epoch-commit hook, run from `complete_epoch` after the commit
    /// ordinal was bumped: cut a new checkpoint when the cadence says so,
    /// then fire a planned crash if this rank hit its crash commit.
    pub(crate) fn recovery_on_commit(self: &Arc<Self>, st: &mut EngState, rank: Rank) {
        let Some(rcfg) = self.cfg.recovery.clone() else {
            return;
        };
        let commit_no = st.stats[rank.idx()].epochs_committed;
        if rcfg.ckpt_every > 0 && commit_no.is_multiple_of(rcfg.ckpt_every) {
            self.checkpoint_rank(st, rank, commit_no);
        }
        let planned = self
            .cfg
            .net
            .faults
            .as_ref()
            .and_then(|p| p.crash_commit(mpisim_net::Rank(rank.idx())));
        if planned == Some(commit_no) && !st.crashed[rank.idx()] {
            self.crash_rank(st, rank, commit_no, rcfg.restart_after);
        }
    }

    /// Cut a fresh checkpoint of every window side this rank holds and
    /// truncate the redo logs (they are folded into the new snapshot).
    fn checkpoint_rank(&self, st: &mut EngState, rank: Rank, commit_no: u64) {
        let now = self.sim.now();
        let wins: Vec<WinId> = (0..st.wins.len() as u32)
            .map(WinId)
            .filter(|w| st.wins[w.0 as usize].per_rank[rank.idx()].is_some())
            .collect();
        for win in wins {
            // A commit can land mid-outage (epochs with no live network
            // dependency still complete); snapshotting the wiped volatile
            // bytes would fold the wipe into the stable store and truncate
            // the redo log that could have repaired it.
            self.freshen_crashed_mem(st, rank, win);
            let ckpt = {
                let w = st.win(win, rank);
                Checkpoint {
                    commit_no,
                    at: now,
                    mem: w.mem.clone(),
                    omega: OmegaSnapshot::capture(w),
                }
            };
            self.account_ckpt(st, &ckpt);
            let sw = st.stable.entry((win, rank)).or_default();
            sw.ckpt = Some(ckpt);
            sw.log.clear();
        }
    }

    /// Crash a rank at an epoch-commit point: NIC off the fabric, volatile
    /// window memory wiped, restart scheduled `restart_after` later.
    /// Callable from the watchdog path too (declared-dead peers).
    pub(crate) fn crash_rank(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        commit_no: u64,
        restart_after: SimTime,
    ) {
        st.crashed[rank.idx()] = true;
        self.net.nic_down(mpisim_net::Rank(rank.idx()));
        for win in 0..st.wins.len() {
            if let Some(w) = st.wins[win].per_rank[rank.idx()].as_mut() {
                w.mem.fill(WIPE_BYTE);
            }
        }
        let crash_at = self.sim.now();
        let me = self.clone();
        self.sim.schedule(restart_after, move || {
            me.restart_rank(rank, commit_no, crash_at);
        });
    }

    /// Restart a crashed rank from its stable store: bring the NIC back,
    /// reconstruct every window side as checkpoint + redo replay (or the
    /// raw checkpoint under the planted stale-restore fault), audit the
    /// live ω-counters against the checkpointed snapshot, and record the
    /// episode. The retransmit sublayer then re-delivers everything the
    /// outage dropped, exactly as after a healed partition.
    fn restart_rank(self: &Arc<Self>, rank: Rank, crash_commit: u64, crash_at: SimTime) {
        {
            let mut st = self.st.lock();
            let plant_stale = self.cfg.recovery.as_ref().is_some_and(|r| r.plant_stale);
            self.net.nic_up(mpisim_net::Rank(rank.idx()));
            st.crashed[rank.idx()] = false;
            let now = self.sim.now();
            let wins: Vec<WinId> = (0..st.wins.len() as u32)
                .map(WinId)
                .filter(|w| st.wins[w.0 as usize].per_rank[rank.idx()].is_some())
                .collect();
            for win in wins {
                let Some(sw) = st.stable.get(&(win, rank)) else {
                    continue;
                };
                let Some(ckpt) = sw.ckpt.as_ref() else {
                    continue;
                };
                let reconstructed = sw.reconstruct();
                let (replayed_ops, replayed_bytes) = (
                    sw.log.len() as u64,
                    sw.log.iter().map(|r| r.bytes.len() as u64).sum::<u64>(),
                );
                let installed = if plant_stale { ckpt.mem.clone() } else { reconstructed.clone() };
                let stale = installed != reconstructed;
                let ckpt_commit = ckpt.commit_no;
                let ckpt_at = ckpt.at;
                let omega_ckpt = ckpt.omega.clone();
                let live_omega = OmegaSnapshot::capture(st.win(win, rank));
                let omega_regressions = omega_ckpt.regressions_vs(&live_omega);
                st.win_mut(win, rank).mem = installed;
                let report = RecoveryReport {
                    rank,
                    win,
                    crash_commit,
                    crash_at,
                    restored_at: now,
                    ckpt_commit,
                    ckpt_at,
                    replayed_ops,
                    replayed_bytes,
                    omega_regressions,
                    stale,
                };
                st.eng_stats.recoveries += 1;
                st.degradations.push(Degradation::Recovered(report.clone()));
                st.recoveries.push(report);
            }
        }
        self.sweep(rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{JobConfig, RecoveryCfg};
    use crate::runtime::run_job;

    fn recovery_cfg(n: usize) -> JobConfig {
        let mut cfg = JobConfig::all_internode(n)
            .with_reliability()
            .with_watchdog(SimTime::from_millis(50));
        cfg.recovery = Some(RecoveryCfg::default());
        cfg
    }

    /// The halo exchange used by the recovery tests: each rank puts a
    /// recognizable byte into its right neighbour across several fence
    /// phases, then reads back.
    fn halo(env: &mut crate::api::RankEnv, phases: usize) -> Vec<u8> {
        let n = env.n_ranks();
        let me = env.rank().idx();
        let win = env.win_allocate(64).unwrap();
        env.fence(win).unwrap();
        for p in 0..phases {
            let right = (me + 1) % n;
            env.put(win, crate::Rank(right), p, &[(me * 10 + p) as u8])
                .unwrap();
            env.fence(win).unwrap();
        }
        let out = env.read_local(win, 0, phases).unwrap();
        env.win_free(win).unwrap();
        out
    }

    #[test]
    fn checkpoints_are_cut_at_commits_without_a_crash() {
        let cfg = recovery_cfg(3);
        let report = run_job(cfg, |env| {
            halo(env, 3);
        })
        .unwrap();
        assert!(report.is_clean(), "no crash planned: {:?}", report.degradations);
        assert!(report.engine.ckpt_commits > 0, "commits must cut checkpoints");
        assert!(report.engine.ckpt_bytes > 0);
        assert_eq!(report.engine.recoveries, 0);
        assert!(report.recoveries.is_empty());
        assert!(report.ranks.iter().all(|r| r.epochs_committed > 0));
    }

    #[test]
    fn crashed_rank_recovers_and_converges() {
        let mut cfg = recovery_cfg(3);
        let mut plan = mpisim_net::FaultPlan::none(1);
        plan.crash_at_commit.push((mpisim_net::Rank(1), 2));
        cfg.net.faults = Some(plan);
        let report = run_job(cfg, |env| {
            let got = halo(env, 4);
            let n = env.n_ranks();
            let left = (env.rank().idx() + n - 1) % n;
            let want: Vec<u8> = (0..4).map(|p| (left * 10 + p) as u8).collect();
            assert_eq!(got, want, "rank {} window diverged", env.rank());
        })
        .unwrap();
        assert!(report.engine.recoveries > 0, "the crash must recover");
        assert_eq!(report.recoveries.len(), report.engine.recoveries as usize);
        let r = &report.recoveries[0];
        assert_eq!(r.rank, crate::Rank(1));
        assert_eq!(r.crash_commit, 2);
        assert!(!r.stale);
        assert_eq!(r.omega_regressions, 0);
        assert!(r.restored_at > r.crash_at);
        // The only degradations are the structured recovery records.
        assert!(report
            .degradations
            .iter()
            .all(|d| matches!(d, Degradation::Recovered(_))));
    }

    #[test]
    fn planted_stale_restore_is_flagged_and_diverges() {
        // Sparse checkpoints (every 100 commits → only the initial one)
        // guarantee a non-empty redo log at the crash, so skipping replay
        // is guaranteed stale.
        let mut cfg = recovery_cfg(3);
        cfg.recovery = Some(RecoveryCfg {
            ckpt_every: 100,
            plant_stale: true,
            ..RecoveryCfg::default()
        });
        let mut plan = mpisim_net::FaultPlan::none(1);
        plan.crash_at_commit.push((mpisim_net::Rank(1), 3));
        cfg.net.faults = Some(plan);
        let diverged = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let d2 = diverged.clone();
        let report = run_job(cfg, move |env| {
            let got = halo(env, 4);
            let n = env.n_ranks();
            let left = (env.rank().idx() + n - 1) % n;
            let want: Vec<u8> = (0..4).map(|p| (left * 10 + p) as u8).collect();
            if got != want {
                d2.store(true, std::sync::atomic::Ordering::SeqCst);
            }
        })
        .unwrap();
        let stale: Vec<_> = report.recoveries.iter().filter(|r| r.stale).collect();
        assert!(!stale.is_empty(), "the plant must be flagged effective");
        assert!(
            diverged.load(std::sync::atomic::Ordering::SeqCst),
            "a stale restore must corrupt the final window contents"
        );
    }

    #[test]
    fn omega_snapshot_audit_counts_regressions() {
        let a = OmegaSnapshot {
            a: vec![3, 5],
            e: vec![1, 1],
            g: vec![2, 2],
            a_lock: vec![0, 0],
            g_lock: vec![0, 0],
            gats_done_recv: vec![4, 4],
        };
        let mut live = a.clone();
        assert_eq!(a.regressions_vs(&live), 0);
        live.a[0] = 2; // moved backwards
        live.gats_done_recv[1] = 0; // moved backwards
        assert_eq!(a.regressions_vs(&live), 2);
    }
}
