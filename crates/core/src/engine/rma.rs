//! RMA communication calls: recording, issuing (sweep steps 2/4), the
//! data-plane message handlers, and per-operation completion tracking.

use std::sync::Arc;

use mpisim_net::{Packet, Payload};

use crate::datatype::{self, Datatype, ReduceOp};
use crate::engine::{EngState, Engine, Notice, Phase, TokenInfo};
use crate::epoch::{EpochKind, LiveOp, OpDesc, OpKind};
use crate::error::{RmaError, RmaResult};
use crate::msg::{Body, EpochTag, FetchKind, Layout};
use crate::request::ReqKind;
use crate::types::{EpochId, Rank, Req, WinId};

impl Engine {
    // ------------------------------------------------------------------
    // recording (application-side entry)
    // ------------------------------------------------------------------

    /// Record an RMA operation into the open access epoch covering
    /// `target`. Returns the result request for get/fetch ops (always) and
    /// for request-based put/accumulate variants (`want_req`).
    pub fn rma_op(
        self: &Arc<Self>,
        rank: Rank,
        win: WinId,
        target: Rank,
        disp: usize,
        kind: OpKind,
        want_req: bool,
    ) -> RmaResult<Option<Req>> {
        let req = {
            let mut st = self.st.lock();
            if target.idx() >= self.cfg.n_ranks {
                return Err(RmaError::InvalidRank(target.idx()));
            }
            if win.0 as usize >= st.wins.len() {
                return Err(RmaError::InvalidWindow(win));
            }
            // Validate element sizes early (API-level error).
            if let OpKind::Acc { dt, payload, .. } = &kind {
                dt.check_len(payload.len())?;
            }
            if let OpKind::Fetch { fetch, dt, operand, .. } = &kind {
                dt.check_len(operand.len())?;
                match fetch {
                    FetchKind::FetchAndOp => {
                        if operand.len() != dt.size() {
                            return Err(RmaError::DatatypeMismatch {
                                detail: "fetch_and_op operates on exactly one element",
                            });
                        }
                    }
                    FetchKind::CompareAndSwap { compare } => {
                        if operand.len() != dt.size() || compare.len() != dt.size() {
                            return Err(RmaError::DatatypeMismatch {
                                detail: "compare_and_swap operates on exactly one element",
                            });
                        }
                    }
                    FetchKind::GetAccumulate => {}
                }
            }
            let w = st.win_mut(win, rank);
            let eid = w
                .open_access_covering(target)
                .ok_or(RmaError::NoEpoch { win, target })?;
            let age = w.alloc_age();
            let req = if kind.expects_response() || want_req {
                Some(st.reqs.alloc(ReqKind::Comm))
            } else {
                None
            };
            let e = st.win_mut(win, rank).epoch_mut(eid);
            e.targets.entry(target).or_default().unsent += 1;
            e.pending_ops.push_back(OpDesc {
                age,
                target,
                disp,
                kind,
                req,
            });
            st.mark_ops_dirty(rank, win, eid);
            req
        };
        self.sweep(rank);
        Ok(req)
    }

    // ------------------------------------------------------------------
    // issuing (sweep steps 2 and 4)
    // ------------------------------------------------------------------

    /// Post every eligible recorded op for this rank in the given phase.
    /// Epochs that still hold ops the *other* phase could issue right now
    /// are re-queued: internode step 2 hands intranode leftovers to step 4,
    /// and step 4 hands internode leftovers to the next pass's step 2 (the
    /// sweep loops until quiescent).
    pub(crate) fn issue_phase(self: &Arc<Self>, st: &mut EngState, rank: Rank, phase: Phase) {
        let sw = &mut st.sweep[rank.idx()];
        let dirty = std::mem::replace(&mut sw.dirty_ops, std::mem::take(&mut sw.ops_scratch));
        st.eng_stats.issue_scans += dirty.len() as u64;
        for &(win, eid) in &dirty {
            if !st.win(win, rank).epochs.contains_key(&eid.0) {
                continue;
            }
            if self.issue_ops(st, rank, win, eid, phase) {
                // Re-queue via the marker so it dedupes against entries
                // enqueued while issuing.
                st.mark_ops_dirty(rank, win, eid);
            }
        }
        let mut dirty = dirty;
        dirty.clear();
        st.sweep[rank.idx()].ops_scratch = dirty;
    }

    /// Issue eligible ops of one epoch; returns whether ops remain that the
    /// *other* phase could issue right now.
    fn issue_ops(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        eid: EpochId,
        phase: Phase,
    ) -> bool {
        let lazy = self.lazy();
        let topo = self.net.topology().clone();
        {
            let e = st.win(win, rank).epoch(eid);
            if !e.activated {
                return false;
            }
            // Lazy baseline (§VIII.B): nothing is issued before the
            // epoch-closing routine — unless a flush forced the epoch out
            // of deferral, in which case recorded ops must drain now so
            // the flush can complete. All internode targets must be
            // granted before any internode issue; all targets must be
            // granted before intranode issue.
            if lazy {
                if !e.closed && !e.flush_forced {
                    return false;
                }
                let all_ok = |internode_only: bool| {
                    e.targets.iter().all(|(t, ts)| {
                        ts.granted || (internode_only && topo.same_node(rank, *t))
                    })
                };
                match phase {
                    Phase::Internode => {
                        if !all_ok(true) {
                            return false;
                        }
                    }
                    Phase::Intranode => {
                        if !all_ok(false) {
                            return false;
                        }
                    }
                }
            }
        }
        // Drain issueable ops, preserving order of the rest. Ready ops are
        // sent as they are found (`send_op` never touches `pending_ops`);
        // the survivors accumulate in a recycled scratch deque, so the
        // steady state allocates nothing.
        let mut leftovers_other_phase = false;
        let mut rest = std::mem::take(&mut st.sweep[rank.idx()].pending_scratch);
        let mut pending = std::mem::take(&mut st.win_mut(win, rank).epoch_mut(eid).pending_ops);
        while let Some(op) = pending.pop_front() {
            let granted = {
                let e = st.win(win, rank).epoch(eid);
                e.targets.get(&op.target).is_some_and(|t| t.granted)
            };
            let intranode = topo.same_node(rank, op.target);
            let phase_ok = match phase {
                Phase::Internode => !intranode,
                Phase::Intranode => intranode,
            };
            if granted && phase_ok {
                self.send_op(st, rank, win, eid, op);
            } else {
                if granted && !phase_ok {
                    leftovers_other_phase = true;
                }
                rest.push_back(op);
            }
        }
        st.win_mut(win, rank).epoch_mut(eid).pending_ops = rest;
        st.sweep[rank.idx()].pending_scratch = pending;
        st.mark_complete_dirty(rank, win, eid);
        leftovers_other_phase
    }

    /// Build the epoch tag for data heading to `target`.
    fn epoch_tag(&self, st: &EngState, rank: Rank, win: WinId, eid: EpochId, target: Rank) -> EpochTag {
        let e = st.win(win, rank).epoch(eid);
        match &e.kind {
            EpochKind::GatsAccess { .. } => EpochTag::Gats {
                access_id: e.targets[&target].access_id,
            },
            EpochKind::Lock { .. } | EpochKind::LockAll => EpochTag::Lock {
                access_id: e.targets[&target].access_id,
            },
            EpochKind::Fence { seq } => EpochTag::Fence { seq: *seq },
            EpochKind::GatsExposure { .. } => unreachable!("exposure epochs issue no RMA"),
        }
    }

    /// Put one recorded op on the wire.
    fn send_op(self: &Arc<Self>, st: &mut EngState, rank: Rank, win: WinId, eid: EpochId, op: OpDesc) {
        st.eng_stats.ops_issued += 1;
        let tag = self.epoch_tag(st, rank, win, eid, op.target);
        let is_passive = st.win(win, rank).epoch(eid).kind.is_passive();
        let plane = if is_passive {
            crate::trace::Plane::Lock
        } else {
            crate::trace::Plane::Gats
        };
        // Target byte range + access kind travel with the trace record so
        // the race detector needs no side channel into the op stream.
        let (len, access) = match &op.kind {
            OpKind::Put { payload, layout } => {
                (layout.extent(payload.len()), crate::trace::AccessKind::Write)
            }
            OpKind::Get { len, layout } => {
                (layout.extent(*len), crate::trace::AccessKind::Read)
            }
            OpKind::Acc { op: rop, payload, .. } => {
                (payload.len(), crate::trace::AccessKind::Atomic(*rop))
            }
            OpKind::Fetch { fetch, op: rop, operand, .. } => (
                operand.len(),
                match fetch {
                    FetchKind::CompareAndSwap { .. } => crate::trace::AccessKind::AtomicCas,
                    _ => crate::trace::AccessKind::Atomic(*rop),
                },
            ),
        };
        self.sync_event(
            st,
            rank,
            op.target,
            win,
            plane,
            crate::trace::SyncEvent::DataIssued { epoch: eid.0, disp: op.disp, len, access },
        );
        let OpDesc {
            age,
            target,
            disp,
            kind,
            req,
        } = op;
        match kind {
            OpKind::Put { payload, layout } => {
                self.track_send(
                    st,
                    rank,
                    win,
                    eid,
                    age,
                    target,
                    is_passive,
                    req,
                    Body::PutData {
                        win,
                        tag,
                        disp,
                        layout,
                        payload,
                    },
                );
                let ts = st.win_mut(win, rank).epoch_mut(eid).targets.get_mut(&target).unwrap();
                ts.unsent -= 1;
                ts.data_msgs_sent += 1;
            }
            OpKind::Acc { dt, op: rop, payload } => {
                if payload.len() > self.cfg.rndv_threshold {
                    // Rendezvous: the target must stage an intermediate
                    // buffer for the operand (§VIII.A) — RTS now, data on
                    // CTS. `unsent` stays up so done/unlock packets cannot
                    // overtake the data.
                    let token = st.alloc_token();
                    let size = payload.len();
                    st.win_mut(win, rank).epoch_mut(eid).live_ops.insert(
                        age,
                        LiveOp {
                            target,
                            needs_local: true,
                            needs_resp: false,
                            needs_ack: is_passive,
                            req,
                        },
                    );
                    st.tokens.insert(
                        token,
                        TokenInfo::AccRndv {
                            rank,
                            win,
                            epoch: eid,
                            op: OpDesc {
                                age,
                                target,
                                disp,
                                kind: OpKind::Acc { dt, op: rop, payload },
                                req,
                            },
                        },
                    );
                    self.send_framed(
                        st,
                        Packet {
                            src: rank,
                            dst: target,
                            body: Body::AccRts { win, size, token },
                        },
                        None,
                        None,
                    );
                } else {
                    self.track_send(
                        st,
                        rank,
                        win,
                        eid,
                        age,
                        target,
                        is_passive,
                        req,
                        Body::AccData {
                            win,
                            tag,
                            disp,
                            dt,
                            op: rop,
                            payload,
                        },
                    );
                    let ts = st.win_mut(win, rank).epoch_mut(eid).targets.get_mut(&target).unwrap();
                    ts.unsent -= 1;
                    ts.data_msgs_sent += 1;
                }
            }
            OpKind::Get { len, layout } => {
                let token = st.alloc_token();
                st.tokens.insert(
                    token,
                    TokenInfo::Get {
                        rank,
                        win,
                        epoch: eid,
                        age,
                        req: req.expect("get ops always carry a result request"),
                    },
                );
                st.win_mut(win, rank).epoch_mut(eid).live_ops.insert(
                    age,
                    LiveOp {
                        target,
                        needs_local: false,
                        needs_resp: true,
                        needs_ack: false,
                        req,
                    },
                );
                let ts = st.win_mut(win, rank).epoch_mut(eid).targets.get_mut(&target).unwrap();
                ts.unsent -= 1;
                ts.data_msgs_sent += 1;
                self.send_framed(
                    st,
                    Packet {
                        src: rank,
                        dst: target,
                        body: Body::GetReq {
                            win,
                            tag,
                            disp,
                            len,
                            layout,
                            token,
                        },
                    },
                    None,
                    None,
                );
            }
            OpKind::Fetch {
                fetch,
                dt,
                op: rop,
                operand,
            } => {
                let token = st.alloc_token();
                st.tokens.insert(
                    token,
                    TokenInfo::Fetch {
                        rank,
                        win,
                        epoch: eid,
                        age,
                        req: req.expect("fetch ops always carry a result request"),
                    },
                );
                st.win_mut(win, rank).epoch_mut(eid).live_ops.insert(
                    age,
                    LiveOp {
                        target,
                        needs_local: true,
                        needs_resp: true,
                        needs_ack: false,
                        req,
                    },
                );
                let ts = st.win_mut(win, rank).epoch_mut(eid).targets.get_mut(&target).unwrap();
                ts.unsent -= 1;
                ts.data_msgs_sent += 1;
                let me = self.clone();
                self.send_framed(
                    st,
                    Packet {
                        src: rank,
                        dst: target,
                        body: Body::FetchReq {
                            win,
                            tag,
                            fetch,
                            disp,
                            dt,
                            op: rop,
                            operand,
                            token,
                        },
                    },
                    Some(Box::new(move || {
                        me.post_notice(rank, Notice::LocalComplete { win, epoch: eid, age })
                    })),
                    None,
                );
            }
        }
    }

    /// Send a payload-bearing data message with local-completion (and, for
    /// passive epochs, remote-ack) tracking.
    #[allow(clippy::too_many_arguments)]
    fn track_send(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        eid: EpochId,
        age: u64,
        target: Rank,
        is_passive: bool,
        req: Option<Req>,
        body: Body,
    ) {
        st.win_mut(win, rank).epoch_mut(eid).live_ops.insert(
            age,
            LiveOp {
                target,
                needs_local: true,
                needs_resp: false,
                needs_ack: is_passive,
                req,
            },
        );
        let pkt = Packet {
            src: rank,
            dst: target,
            body,
        };
        let me = self.clone();
        let local = Box::new(move || {
            me.post_notice(rank, Notice::LocalComplete { win, epoch: eid, age })
        });
        let ack = is_passive.then_some(Notice::Acked { win, epoch: eid, age });
        self.send_framed(st, pkt, Some(local), ack);
    }

    /// Enqueue a completion notice and run the owner's sweep (called from
    /// scheduler events).
    pub(crate) fn post_notice(self: &Arc<Self>, rank: Rank, n: Notice) {
        {
            let mut st = self.st.lock();
            st.sweep[rank.idx()].notices.push_back(n);
        }
        self.sweep(rank);
    }

    // ------------------------------------------------------------------
    // per-op state transitions
    // ------------------------------------------------------------------

    /// Apply `f` to a live op and process the resulting transitions:
    /// request completion at local completion, flush-counter decrements,
    /// and removal when fully done.
    pub(crate) fn op_update(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        eid: EpochId,
        age: u64,
        f: impl FnOnce(&mut LiveOp),
    ) {
        if !st.win(win, rank).epochs.contains_key(&eid.0) {
            return; // epoch already retired (op was not needed for completion)
        }
        let (became_local, became_done, target, req) = {
            let e = st.win_mut(win, rank).epoch_mut(eid);
            let Some(op) = e.live_ops.get_mut(&age) else {
                return;
            };
            let was_local = op.locally_done();
            f(op);
            let became_local = !was_local && op.locally_done();
            let became_done = op.done();
            let target = op.target;
            let req = op.req;
            if became_done {
                e.live_ops.remove(&age);
            }
            (became_local, became_done, target, req)
        };
        if became_local {
            if let Some(r) = req {
                // Request-based put/accumulate semantics: the request
                // completes at local completion. Get/fetch requests are
                // completed with data by the response handler; completing
                // here is a no-op for them because `complete` is idempotent.
                st.reqs.complete(r, None);
            }
        }
        self.flush_note_op(st, rank, win, eid, age, target, became_local, became_done);
        st.mark_complete_dirty(rank, win, eid);
    }

    // ------------------------------------------------------------------
    // data-plane handlers (target side unless noted)
    // ------------------------------------------------------------------

    /// `hb-race` fault injection: the target reads the bytes an arriving
    /// write just touched, with no synchronization ordering the read
    /// against the origin's epoch — the planted race the `mpisim-analyze`
    /// detector must catch. Memory is unchanged and no protocol counter
    /// moves, so the oracle and the ω-triple auditor both stay green.
    fn plant_local_read(
        &self,
        st: &mut EngState,
        me: Rank,
        win: WinId,
        tag: EpochTag,
        disp: usize,
        len: usize,
    ) {
        if self.fault != Some(crate::engine::Fault::HbRace) {
            return;
        }
        let plane = match tag {
            EpochTag::Lock { .. } => crate::trace::Plane::Lock,
            EpochTag::Gats { .. } | EpochTag::Fence { .. } => crate::trace::Plane::Gats,
        };
        self.sync_event(
            st,
            me,
            me,
            win,
            plane,
            crate::trace::SyncEvent::LocalAccess {
                disp,
                len,
                access: crate::trace::AccessKind::Read,
            },
        );
    }

    fn apply_fence_arrival(&self, st: &mut EngState, me: Rank, win: WinId, src: Rank, tag: EpochTag) {
        if let EpochTag::Fence { seq } = tag {
            let w = st.win_mut(win, me);
            *w.fence_arrivals.entry((src.idx(), seq)).or_insert(0) += 1;
            self.mark_fence_dirty(st, me, win, seq);
        }
    }

    pub(crate) fn mark_fence_dirty(&self, st: &mut EngState, me: Rank, win: WinId, seq: u64) {
        // Index walk instead of snapshotting `order`: `mark_complete_dirty`
        // never mutates `order`, so re-borrowing per iteration is safe and
        // allocation-free.
        let mut i = 0;
        loop {
            let w = st.win(win, me);
            if i >= w.order.len() {
                break;
            }
            let id = w.order[i];
            i += 1;
            if matches!(w.epoch(id).kind, EpochKind::Fence { seq: s } if s == seq) {
                st.mark_complete_dirty(me, win, id);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_put(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        src: Rank,
        win: WinId,
        tag: EpochTag,
        disp: usize,
        layout: Layout,
        payload: Payload,
    ) {
        self.freshen_crashed_mem(st, me, win);
        {
            let w = st.win_mut(win, me);
            let len = payload.len();
            let extent = layout.extent(len);
            assert!(
                disp + extent <= w.mem.len(),
                "erroneous program: put of {len} bytes (extent {extent}) at disp {disp}                  exceeds window ({} bytes) at {me}",
                w.mem.len()
            );
            if let Some(bytes) = payload.bytes() {
                match layout {
                    Layout::Contig => {
                        w.mem[disp..disp + len].copy_from_slice(bytes);
                    }
                    Layout::Vector { count, blocklen, stride } => {
                        debug_assert_eq!(len, count * blocklen);
                        for b in 0..count {
                            let d = disp + b * stride;
                            w.mem[d..d + blocklen]
                                .copy_from_slice(&bytes[b * blocklen..(b + 1) * blocklen]);
                        }
                    }
                }
            }
        }
        if payload.bytes().is_some() {
            match layout {
                Layout::Contig => self.log_win_write(st, me, win, disp, payload.len()),
                Layout::Vector { count, blocklen, stride } => {
                    for b in 0..count {
                        self.log_win_write(st, me, win, disp + b * stride, blocklen);
                    }
                }
            }
        }
        self.plant_local_read(st, me, win, tag, disp, layout.extent(payload.len()));
        self.apply_fence_arrival(st, me, win, src, tag);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_acc(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        src: Rank,
        win: WinId,
        tag: EpochTag,
        disp: usize,
        dt: Datatype,
        op: ReduceOp,
        payload: Payload,
    ) {
        self.freshen_crashed_mem(st, me, win);
        {
            let w = st.win_mut(win, me);
            let len = payload.len();
            assert!(
                disp + len <= w.mem.len(),
                "erroneous program: accumulate exceeds window bounds at {me}"
            );
            if let Some(bytes) = payload.bytes() {
                // Applied elementwise in one step: this is what makes the
                // operation atomic with respect to other accumulates.
                datatype::apply(dt, op, &mut w.mem[disp..disp + len], bytes)
                    .expect("erroneous program: accumulate datatype mismatch at target");
                if self.fault == Some(crate::engine::Fault::DoubleAcc) {
                    // Injected safety bug: the reduction is applied twice.
                    datatype::apply(dt, op, &mut w.mem[disp..disp + len], bytes)
                        .expect("erroneous program: accumulate datatype mismatch at target");
                }
            }
        }
        if payload.bytes().is_some() {
            self.log_win_write(st, me, win, disp, payload.len());
        }
        self.plant_local_read(st, me, win, tag, disp, payload.len());
        self.apply_fence_arrival(st, me, win, src, tag);
    }

    pub(crate) fn handle_acc_rts(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        src: Rank,
        _win: WinId,
        _size: usize,
        token: u64,
    ) {
        // The target stages an intermediate buffer and replies CTS.
        self.send_framed(
            st,
            Packet {
                src: me,
                dst: src,
                body: Body::AccCts { token },
            },
            None,
            None,
        );
    }

    /// Origin side: CTS arrived, send the staged accumulate payload.
    pub(crate) fn handle_acc_cts(self: &Arc<Self>, st: &mut EngState, me: Rank, token: u64) {
        let Some(TokenInfo::AccRndv { rank, win, epoch, op }) = st.tokens.remove(&token) else {
            self.orphan_response(st, "AccCts");
            return;
        };
        debug_assert_eq!(rank, me);
        if !st.win(win, me).epochs.contains_key(&epoch.0) {
            return;
        }
        let tag = self.epoch_tag(st, me, win, epoch, op.target);
        let is_passive = st.win(win, me).epoch(epoch).kind.is_passive();
        let OpDesc {
            age,
            target,
            disp,
            kind,
            req: _,
        } = op;
        let OpKind::Acc { dt, op: rop, payload } = kind else {
            unreachable!("AccRndv holds accumulate ops only")
        };
        {
            let ts = st
                .win_mut(win, me)
                .epoch_mut(epoch)
                .targets
                .get_mut(&target)
                .unwrap();
            ts.unsent -= 1;
            ts.data_msgs_sent += 1;
        }
        let pkt = Packet {
            src: me,
            dst: target,
            body: Body::AccData {
                win,
                tag,
                disp,
                dt,
                op: rop,
                payload,
            },
        };
        let m1 = self.clone();
        let local = Box::new(move || {
            m1.post_notice(me, Notice::LocalComplete { win, epoch, age })
        });
        let ack = is_passive.then_some(Notice::Acked { win, epoch, age });
        self.send_framed(st, pkt, Some(local), ack);
        st.mark_complete_dirty(me, win, epoch);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_get_req(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        src: Rank,
        win: WinId,
        tag: EpochTag,
        disp: usize,
        len: usize,
        layout: Layout,
        token: u64,
    ) {
        self.freshen_crashed_mem(st, me, win);
        let payload = {
            let w = st.win(win, me);
            let extent = layout.extent(len);
            assert!(
                disp + extent <= w.mem.len(),
                "erroneous program: get exceeds window bounds at {me}"
            );
            match layout {
                Layout::Contig => Payload::copy_from_slice(&w.mem[disp..disp + len]),
                Layout::Vector { count, blocklen, stride } => {
                    let mut packed = Vec::with_capacity(count * blocklen);
                    for b in 0..count {
                        let d = disp + b * stride;
                        packed.extend_from_slice(&w.mem[d..d + blocklen]);
                    }
                    // `from_vec` adopts the packed buffer without a copy.
                    Payload::from_vec(packed)
                }
            }
        };
        self.apply_fence_arrival(st, me, win, src, tag);
        self.send_framed(
            st,
            Packet {
                src: me,
                dst: src,
                body: Body::GetResp { win, token, payload },
            },
            None,
            None,
        );
    }

    /// Origin side: get data arrived.
    pub(crate) fn handle_get_resp(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        _win: WinId,
        token: u64,
        payload: Payload,
    ) {
        let Some(TokenInfo::Get { rank, win, epoch, age, req }) = st.tokens.remove(&token) else {
            self.orphan_response(st, "GetResp");
            return;
        };
        debug_assert_eq!(rank, me);
        let len = payload.len();
        let data = payload
            .into_bytes()
            .unwrap_or_else(|| bytes::Bytes::from(vec![0u8; len]));
        st.reqs.complete(req, Some(data));
        self.op_update(st, me, win, epoch, age, |o| o.needs_resp = false);
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_fetch_req(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        src: Rank,
        win: WinId,
        tag: EpochTag,
        fetch: FetchKind,
        disp: usize,
        dt: Datatype,
        op: ReduceOp,
        operand: Payload,
        token: u64,
    ) {
        self.freshen_crashed_mem(st, me, win);
        let old = {
            let w = st.win_mut(win, me);
            let len = operand.len();
            assert!(
                disp + len <= w.mem.len(),
                "erroneous program: fetch op exceeds window bounds at {me}"
            );
            let old = Payload::copy_from_slice(&w.mem[disp..disp + len]);
            if let Some(bytes) = operand.bytes() {
                match &fetch {
                    FetchKind::GetAccumulate | FetchKind::FetchAndOp => {
                        datatype::apply(dt, op, &mut w.mem[disp..disp + len], bytes)
                            .expect("erroneous program: fetch datatype mismatch");
                    }
                    FetchKind::CompareAndSwap { compare } => {
                        if &w.mem[disp..disp + len] == compare.as_slice() {
                            w.mem[disp..disp + len].copy_from_slice(bytes);
                        }
                    }
                }
            }
            old
        };
        if operand.bytes().is_some() {
            self.log_win_write(st, me, win, disp, operand.len());
        }
        self.apply_fence_arrival(st, me, win, src, tag);
        self.send_framed(
            st,
            Packet {
                src: me,
                dst: src,
                body: Body::FetchResp {
                    win,
                    token,
                    payload: old,
                },
            },
            None,
            None,
        );
    }

    /// Origin side: fetch result arrived.
    pub(crate) fn handle_fetch_resp(
        self: &Arc<Self>,
        st: &mut EngState,
        me: Rank,
        _win: WinId,
        token: u64,
        payload: Payload,
    ) {
        let Some(TokenInfo::Fetch { rank, win, epoch, age, req }) = st.tokens.remove(&token) else {
            self.orphan_response(st, "FetchResp");
            return;
        };
        debug_assert_eq!(rank, me);
        let len = payload.len();
        let data = payload
            .into_bytes()
            .unwrap_or_else(|| bytes::Bytes::from(vec![0u8; len]));
        st.reqs.complete(req, Some(data));
        self.op_update(st, me, win, epoch, age, |o| o.needs_resp = false);
    }
}
