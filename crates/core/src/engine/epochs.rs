//! Epoch lifecycle: opening, closing, the activation predicate of §VI, the
//! deferred-epoch activation scan of §VII.A, and completion detection.

use std::sync::Arc;

use crate::engine::{EngState, Engine};
use crate::epoch::{EpochKind, Side};
use crate::error::{RmaError, RmaResult};
use crate::msg::SyncPacket;
use crate::request::ReqKind;
use crate::types::{EpochId, Group, LockKind, Rank, Req, WinId};

impl Engine {
    // ------------------------------------------------------------------
    // opening routines (all nonblocking at middleware level; §VII.C: the
    // application-level request for an opening routine is a dummy)
    // ------------------------------------------------------------------

    /// `MPI_WIN_START` / `MPI_WIN_ISTART`: open a GATS access epoch.
    pub fn open_gats_access(self: &Arc<Self>, rank: Rank, win: WinId, group: Group) -> RmaResult<()> {
        {
            let mut st = self.st.lock();
            self.check_fence_conflict(&st, rank, win, "start")?;
            let w = st.win_mut(win, rank);
            if w.cur_gats_access.is_some() {
                return Err(RmaError::AlreadyInEpoch { called: "start" });
            }
            if !w.open_locks.is_empty() || w.cur_lock_all.is_some() {
                return Err(RmaError::AlreadyInEpoch { called: "start" });
            }
            let id = w.alloc_epoch_id();
            let e = w.new_epoch(id, EpochKind::GatsAccess { group });
            w.push_epoch(e);
            w.cur_gats_access = Some(id);
            st.eng_stats.epochs_opened += 1;
            self.trace_event(&mut st, rank, win, id, crate::trace::EpochEvent::Opened);
            st.mark_act_dirty(rank, win);
        }
        self.sweep(rank);
        Ok(())
    }

    /// `MPI_WIN_POST` / `MPI_WIN_IPOST`: open an exposure epoch.
    pub fn open_exposure(self: &Arc<Self>, rank: Rank, win: WinId, group: Group) -> RmaResult<()> {
        {
            let mut st = self.st.lock();
            self.check_fence_conflict(&st, rank, win, "post")?;
            let w = st.win_mut(win, rank);
            if w.cur_exposure.is_some() {
                return Err(RmaError::AlreadyInEpoch { called: "post" });
            }
            let id = w.alloc_epoch_id();
            let e = w.new_epoch(id, EpochKind::GatsExposure { group });
            w.push_epoch(e);
            w.cur_exposure = Some(id);
            st.eng_stats.epochs_opened += 1;
            self.trace_event(&mut st, rank, win, id, crate::trace::EpochEvent::Opened);
            st.mark_act_dirty(rank, win);
        }
        self.sweep(rank);
        Ok(())
    }

    /// `MPI_WIN_LOCK` / `MPI_WIN_ILOCK`: open a single-target passive epoch.
    pub fn open_lock(
        self: &Arc<Self>,
        rank: Rank,
        win: WinId,
        target: Rank,
        lock: LockKind,
    ) -> RmaResult<()> {
        {
            let mut st = self.st.lock();
            if target.idx() >= self.cfg.n_ranks {
                return Err(RmaError::InvalidRank(target.idx()));
            }
            self.check_fence_conflict(&st, rank, win, "lock")?;
            let lazy = self.lazy();
            let w = st.win_mut(win, rank);
            if w.open_locks.contains_key(&target)
                || w.cur_lock_all.is_some()
                || w.cur_gats_access.is_some()
            {
                return Err(RmaError::AlreadyInEpoch { called: "lock" });
            }
            let id = w.alloc_epoch_id();
            let mut e = w.new_epoch(id, EpochKind::Lock { target, lock });
            // Lazy baseline: the whole epoch is deferred until `unlock`
            // (MVAPICH's lazy lock acquisition, §VIII.A).
            e.lazy_hold = lazy;
            w.push_epoch(e);
            w.open_locks.insert(target, id);
            st.eng_stats.epochs_opened += 1;
            self.trace_event(&mut st, rank, win, id, crate::trace::EpochEvent::Opened);
            st.mark_act_dirty(rank, win);
        }
        self.sweep(rank);
        Ok(())
    }

    /// `MPI_WIN_LOCK_ALL` / `MPI_WIN_ILOCK_ALL`.
    pub fn open_lock_all(self: &Arc<Self>, rank: Rank, win: WinId) -> RmaResult<()> {
        {
            let mut st = self.st.lock();
            self.check_fence_conflict(&st, rank, win, "lock_all")?;
            let lazy = self.lazy();
            let w = st.win_mut(win, rank);
            if !w.open_locks.is_empty()
                || w.cur_lock_all.is_some()
                || w.cur_gats_access.is_some()
            {
                return Err(RmaError::AlreadyInEpoch { called: "lock_all" });
            }
            let id = w.alloc_epoch_id();
            let mut e = w.new_epoch(id, EpochKind::LockAll);
            e.lazy_hold = lazy;
            w.push_epoch(e);
            w.cur_lock_all = Some(id);
            st.eng_stats.epochs_opened += 1;
            self.trace_event(&mut st, rank, win, id, crate::trace::EpochEvent::Opened);
            st.mark_act_dirty(rank, win);
        }
        self.sweep(rank);
        Ok(())
    }

    // ------------------------------------------------------------------
    // closing routines — nonblocking primitives returning the closing
    // request; the blocking variants wait on it in the API layer
    // ------------------------------------------------------------------

    /// `MPI_WIN_ICOMPLETE` (and the internals of `MPI_WIN_COMPLETE`).
    pub fn close_gats_access(self: &Arc<Self>, rank: Rank, win: WinId) -> RmaResult<Req> {
        let req = {
            let mut st = self.st.lock();
            let w = st.win_mut(win, rank);
            let id = w
                .cur_gats_access
                .take()
                .ok_or(RmaError::EpochMismatch { called: "complete" })?;
            let req = st.reqs.alloc(ReqKind::EpochClose);
            let now = self.sim.now();
            let e = st.win_mut(win, rank).epoch_mut(id);
            e.closed = true;
            e.closed_at = Some(now);
            e.close_req = Some(req);
            self.trace_event(&mut st, rank, win, id, crate::trace::EpochEvent::Closed);
            st.mark_ops_dirty(rank, win, id);
            st.mark_complete_dirty(rank, win, id);
            self.watch_epoch(&mut st, rank, win, id);
            req
        };
        self.sweep(rank);
        Ok(req)
    }

    /// `MPI_WIN_IWAIT` (and the internals of `MPI_WIN_WAIT`).
    pub fn close_exposure(self: &Arc<Self>, rank: Rank, win: WinId) -> RmaResult<Req> {
        let req = {
            let mut st = self.st.lock();
            let w = st.win_mut(win, rank);
            let id = w
                .cur_exposure
                .take()
                .ok_or(RmaError::EpochMismatch { called: "wait" })?;
            let req = st.reqs.alloc(ReqKind::EpochClose);
            let now = self.sim.now();
            let e = st.win_mut(win, rank).epoch_mut(id);
            e.closed = true;
            e.closed_at = Some(now);
            e.close_req = Some(req);
            self.trace_event(&mut st, rank, win, id, crate::trace::EpochEvent::Closed);
            st.mark_complete_dirty(rank, win, id);
            self.watch_epoch(&mut st, rank, win, id);
            req
        };
        self.sweep(rank);
        Ok(req)
    }

    /// `MPI_WIN_TEST`: nonblocking completion check of the current exposure
    /// epoch *without* closing it unless complete. Returns `Ok(true)` and
    /// closes the epoch if its completion conditions hold.
    pub fn test_exposure(self: &Arc<Self>, rank: Rank, win: WinId) -> RmaResult<bool> {
        let st = self.st.lock();
        let w = st.win(win, rank);
        let id = w
            .cur_exposure
            .ok_or(RmaError::EpochMismatch { called: "test" })?;
        let e = w.epoch(id);
        let done = e.activated && self.exposure_conditions_met(&st, rank, win, id);
        if done {
            drop(st);
            let req = self.close_exposure(rank, win)?;
            let mut st = self.st.lock();
            debug_assert!(st.reqs.is_done(req).unwrap());
            st.reqs.consume(req)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// `MPI_WIN_IUNLOCK` (and the internals of `MPI_WIN_UNLOCK`).
    pub fn close_lock(self: &Arc<Self>, rank: Rank, win: WinId, target: Rank) -> RmaResult<Req> {
        let req = {
            let mut st = self.st.lock();
            let w = st.win_mut(win, rank);
            let id = w
                .open_locks
                .remove(&target)
                .ok_or(RmaError::EpochMismatch { called: "unlock" })?;
            let req = st.reqs.alloc(ReqKind::EpochClose);
            let now = self.sim.now();
            let e = st.win_mut(win, rank).epoch_mut(id);
            e.closed = true;
            e.closed_at = Some(now);
            e.close_req = Some(req);
            e.lazy_hold = false; // lazy baseline: now the epoch may activate
            self.trace_event(&mut st, rank, win, id, crate::trace::EpochEvent::Closed);
            st.mark_ops_dirty(rank, win, id);
            st.mark_complete_dirty(rank, win, id);
            st.mark_act_dirty(rank, win);
            self.watch_epoch(&mut st, rank, win, id);
            req
        };
        self.sweep(rank);
        Ok(req)
    }

    /// `MPI_WIN_IUNLOCK_ALL` (and the internals of `MPI_WIN_UNLOCK_ALL`).
    pub fn close_lock_all(self: &Arc<Self>, rank: Rank, win: WinId) -> RmaResult<Req> {
        let req = {
            let mut st = self.st.lock();
            let w = st.win_mut(win, rank);
            let id = w
                .cur_lock_all
                .take()
                .ok_or(RmaError::EpochMismatch { called: "unlock_all" })?;
            let req = st.reqs.alloc(ReqKind::EpochClose);
            let now = self.sim.now();
            let e = st.win_mut(win, rank).epoch_mut(id);
            e.closed = true;
            e.closed_at = Some(now);
            e.close_req = Some(req);
            e.lazy_hold = false;
            self.trace_event(&mut st, rank, win, id, crate::trace::EpochEvent::Closed);
            st.mark_ops_dirty(rank, win, id);
            st.mark_complete_dirty(rank, win, id);
            st.mark_act_dirty(rank, win);
            self.watch_epoch(&mut st, rank, win, id);
            req
        };
        self.sweep(rank);
        Ok(req)
    }

    // ------------------------------------------------------------------
    // activation (§VI rules, §VII.A deferred-epoch scan)
    // ------------------------------------------------------------------

    /// Scan the window's epochs in open order, activating deferred epochs
    /// until the first one that fails the predicate ("the scan stops when
    /// the first deferred epoch is encountered that fails activation
    /// conditions", §VII.A).
    pub(crate) fn activation_scan(self: &Arc<Self>, st: &mut EngState, rank: Rank, win: WinId) {
        st.eng_stats.activation_scans += 1;
        // The window may be gone: `win_free` marks the activation list when
        // it retires a dormant trailing fence, and with the reliability
        // sublayer on, late traffic (re-acks, duplicate retransmits) can
        // still trigger sweeps after the free.
        if st.wins[win.0 as usize].per_rank[rank.idx()].is_none() {
            return;
        }
        // Index walk over `order` (re-borrowed each iteration) instead of
        // snapshotting into a Vec: activation never reorders `order`, so
        // the walk is stable and allocation-free.
        let mut i = 0;
        loop {
            let w = st.win(win, rank);
            if i >= w.order.len() {
                break;
            }
            let id = w.order[i];
            i += 1;
            if !w.epochs.contains_key(&id.0) {
                continue; // retired during this scan
            }
            if w.epoch(id).activated {
                continue;
            }
            if self.can_activate(st, rank, win, id) {
                self.activate_epoch(st, rank, win, id);
            } else {
                st.eng_stats.epochs_deferred += 1;
                break;
            }
        }
    }

    /// The activation predicate: rule 4 of §VI.A (strictly serial
    /// activation) relaxed by the §VI.B reorder flags.
    ///
    /// A *dormant* fence epoch — open, never closed, and empty — is
    /// skipped when looking for the preceding epoch: it is the trailing
    /// fence of a finished fence phase and only exists so a later fence
    /// call keeps the collective sequence aligned across ranks.
    fn can_activate(&self, st: &EngState, rank: Rank, win: WinId, id: EpochId) -> bool {
        let w = st.win(win, rank);
        let e = w.epoch(id);
        if e.lazy_hold && !e.closed {
            return false;
        }
        let pos = w
            .order
            .iter()
            .position(|x| *x == id)
            .expect("epoch missing from order");
        let prev_id = (0..pos)
            .rev()
            .map(|i| w.order[i])
            .find(|p| !Self::is_dormant_fence(w.epoch(*p)));
        match prev_id {
            None => true,
            Some(prev_id) => {
                let prev = w.epoch(prev_id);
                if !prev.activated {
                    return false; // rule 4: epochs are never skipped
                }
                // MPI requires concurrently *open* lock epochs toward
                // distinct targets to make progress (their per-pair
                // matching chains are independent), so serializing behind a
                // still-open lock epoch would deadlock a legal program.
                // Once the preceding lock epoch is closed, though, rule 4
                // applies: back-to-back lock epochs serialize unless
                // A_A_A_R is set (the paper's Fig 8 behaviour).
                if let (
                    EpochKind::Lock { target: t1, .. },
                    EpochKind::Lock { target: t2, .. },
                ) = (&prev.kind, &e.kind)
                {
                    if t1 != t2 && !prev.closed {
                        return true;
                    }
                }
                // The preceding epoch is active but incomplete.
                if self.lazy() {
                    // Vanilla-MVAPICH emulation: there is no deferred-epoch
                    // queue in the baseline, so access and exposure epochs
                    // of the same rank progress independently (MPI requires
                    // a process to be origin and target at once). Same-side
                    // serialization never arises under blocking calls.
                    let cross = matches!(
                        (prev.kind.side(), e.kind.side()),
                        (Side::Access, Side::Exposure) | (Side::Exposure, Side::Access)
                    );
                    return cross
                        && !prev.kind.excluded_from_reorder()
                        && !e.kind.excluded_from_reorder();
                }
                // Redesigned engine: only the reorder flags permit
                // concurrent progression, never across lock_all epochs,
                // and across fence epochs only with the opt-in
                // `unsafe_fence_reorder` extension (§VI.B, §X).
                let excluded = |k: &EpochKind| match k {
                    EpochKind::LockAll => true,
                    EpochKind::Fence { .. } => !w.info.unsafe_fence_reorder,
                    _ => false,
                };
                if excluded(&prev.kind) || excluded(&e.kind) {
                    return false;
                }
                // A fence is both sides at once: the candidate needs the
                // flag(s) covering every (prev side, candidate side) pair.
                let flag = |ps: Side, cs: Side| match (ps, cs) {
                    (Side::Access, Side::Access) => w.info.access_after_access,
                    (Side::Exposure, Side::Access) => w.info.access_after_exposure,
                    (Side::Exposure, Side::Exposure) => w.info.exposure_after_exposure,
                    (Side::Access, Side::Exposure) => w.info.exposure_after_access,
                    _ => unreachable!("Both is expanded before calling"),
                };
                let expand = |s: Side| -> &'static [Side] {
                    match s {
                        Side::Both => &[Side::Access, Side::Exposure],
                        Side::Access => &[Side::Access],
                        Side::Exposure => &[Side::Exposure],
                    }
                };
                expand(prev.kind.side())
                    .iter()
                    .all(|ps| expand(e.kind.side()).iter().all(|cs| flag(*ps, *cs)))
            }
        }
    }

    /// Start an epoch's internal lifetime: assign access ids, send lock
    /// requests, emit exposure grants, and replay recorded state.
    fn activate_epoch(self: &Arc<Self>, st: &mut EngState, rank: Rank, win: WinId, id: EpochId) {
        let kind = {
            let e = st.win_mut(win, rank).epoch_mut(id);
            debug_assert!(!e.activated);
            e.activated = true;
            e.kind.clone()
        };
        st.eng_stats.epochs_activated += 1;
        self.trace_event(st, rank, win, id, crate::trace::EpochEvent::Activated);
        match kind {
            EpochKind::GatsAccess { group } => {
                for t in group.ranks() {
                    let w = st.win_mut(win, rank);
                    w.a[t.idx()] += 1;
                    let aid = w.a[t.idx()];
                    let granted = aid <= w.g[t.idx()];
                    let ts = st
                        .win_mut(win, rank)
                        .epoch_mut(id)
                        .targets
                        .get_mut(t)
                        .expect("target state");
                    ts.access_id = aid;
                    ts.granted = granted;
                    self.sync_event(
                        st,
                        rank,
                        *t,
                        win,
                        crate::trace::Plane::Gats,
                        crate::trace::SyncEvent::AccessAssigned { epoch: id.0, id: aid },
                    );
                }
                st.mark_ops_dirty(rank, win, id);
                st.mark_complete_dirty(rank, win, id);
            }
            EpochKind::Lock { target, lock } => {
                let w = st.win_mut(win, rank);
                w.a_lock[target.idx()] += 1;
                let aid = w.a_lock[target.idx()];
                let ts = st
                    .win_mut(win, rank)
                    .epoch_mut(id)
                    .targets
                    .get_mut(&target)
                    .expect("target state");
                ts.access_id = aid;
                self.sync_event(
                    st,
                    rank,
                    target,
                    win,
                    crate::trace::Plane::Lock,
                    crate::trace::SyncEvent::AccessAssigned { epoch: id.0, id: aid },
                );
                let sp = match lock {
                    LockKind::Exclusive => SyncPacket::LockReqExcl {
                        win,
                        origin: rank,
                        access_id: aid,
                    },
                    LockKind::Shared => SyncPacket::LockReqShared {
                        win,
                        origin: rank,
                        access_id: aid,
                    },
                };
                self.send_sync(st, rank, target, win, sp);
                st.mark_complete_dirty(rank, win, id);
            }
            EpochKind::LockAll => {
                for t in 0..self.cfg.n_ranks {
                    let t = Rank(t);
                    let w = st.win_mut(win, rank);
                    w.a_lock[t.idx()] += 1;
                    let aid = w.a_lock[t.idx()];
                    // entry() preserves `unsent` counts recorded while
                    // the epoch was deferred.
                    st.win_mut(win, rank)
                        .epoch_mut(id)
                        .targets
                        .entry(t)
                        .or_default()
                        .access_id = aid;
                    self.sync_event(
                        st,
                        rank,
                        t,
                        win,
                        crate::trace::Plane::Lock,
                        crate::trace::SyncEvent::AccessAssigned { epoch: id.0, id: aid },
                    );
                    self.send_sync(
                        st,
                        rank,
                        t,
                        win,
                        SyncPacket::LockReqShared {
                            win,
                            origin: rank,
                            access_id: aid,
                        },
                    );
                }
                st.mark_complete_dirty(rank, win, id);
            }
            EpochKind::GatsExposure { group } => {
                for o in group.ranks() {
                    let w = st.win_mut(win, rank);
                    w.e[o.idx()] += 1;
                    let eid = w.e[o.idx()];
                    w.grant_seq[o.idx()].exposure_credits += 1;
                    if !w.grant_dirty.contains(o) {
                        w.grant_dirty.push(*o);
                    }
                    st.win_mut(win, rank)
                        .epoch_mut(id)
                        .exposure_origins
                        .insert(*o, eid);
                }
                // Emitting the grants is lock/grant-sequencing work.
                st.mark_lock_backlog(rank, win);
                st.mark_complete_dirty(rank, win, id);
            }
            EpochKind::Fence { .. } => {
                // A fence epoch is an access epoch toward every rank (self
                // included) and needs no grants.
                for t in 0..self.cfg.n_ranks {
                    // entry() preserves `unsent` counts recorded while the
                    // epoch was deferred.
                    st.win_mut(win, rank)
                        .epoch_mut(id)
                        .targets
                        .entry(Rank(t))
                        .or_default()
                        .granted = true;
                }
                st.mark_ops_dirty(rank, win, id);
                st.mark_complete_dirty(rank, win, id);
            }
        }
    }

    // ------------------------------------------------------------------
    // completion
    // ------------------------------------------------------------------

    /// Re-evaluate one epoch: emit any per-target done/unlock packets that
    /// became possible, and complete the epoch if its conditions hold
    /// ("completion notification packets are sent to each target as soon
    /// as the last RMA transfer meant for the target is fulfilled",
    /// §VII.D).
    pub(crate) fn check_epoch_progress(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        id: EpochId,
    ) {
        // Tolerate a freed window (late post-free sweeps, see
        // `activation_scan`) and an already-retired epoch.
        let live = st.wins[win.0 as usize].per_rank[rank.idx()]
            .as_ref()
            .is_some_and(|w| w.epochs.contains_key(&id.0));
        if !live {
            return;
        }
        let (activated, complete, closed, kind) = {
            let e = st.win(win, rank).epoch(id);
            (e.activated, e.complete, e.closed, e.kind.clone())
        };
        if !activated || complete {
            return;
        }
        let done = match kind {
            EpochKind::GatsAccess { .. } => {
                if closed {
                    self.emit_gats_dones(st, rank, win, id);
                }
                let e = st.win(win, rank).epoch(id);
                closed && e.targets.values().all(|t| t.done_sent) && e.live_ops.is_empty()
            }
            EpochKind::Lock { .. } | EpochKind::LockAll => {
                if closed {
                    self.emit_unlocks(st, rank, win, id);
                }
                let e = st.win(win, rank).epoch(id);
                closed && e.targets.values().all(|t| t.unlock_sent) && e.live_ops.is_empty()
            }
            EpochKind::GatsExposure { .. } => {
                closed && self.exposure_conditions_met(st, rank, win, id)
            }
            EpochKind::Fence { seq } => self.fence_progress(st, rank, win, id, seq),
        };
        if done {
            self.complete_epoch(st, rank, win, id);
        }
    }

    /// Send per-target GATS done packets for fulfilled targets.
    fn emit_gats_dones(self: &Arc<Self>, st: &mut EngState, rank: Rank, win: WinId, id: EpochId) {
        let mut to_send = std::mem::take(&mut st.sweep[rank.idx()].send_scratch);
        {
            let e = st.win_mut(win, rank).epoch_mut(id);
            for (t, ts) in e.targets.iter_mut() {
                if ts.granted && ts.unsent == 0 && !ts.done_sent {
                    ts.done_sent = true;
                    to_send.push((*t, ts.access_id));
                }
            }
        }
        st.eng_stats.gats_dones += to_send.len() as u64;
        for &(t, aid) in &to_send {
            self.sync_event(
                st,
                rank,
                t,
                win,
                crate::trace::Plane::Gats,
                crate::trace::SyncEvent::EpochDoneSent { epoch: id.0, id: aid },
            );
            self.send_sync(
                st,
                rank,
                t,
                win,
                SyncPacket::GatsDone {
                    win,
                    origin: rank,
                    access_id: aid,
                },
            );
        }
        to_send.clear();
        st.sweep[rank.idx()].send_scratch = to_send;
    }

    /// Send per-target unlock packets once every covered op at that target
    /// has fully completed (local + response + remote ack).
    fn emit_unlocks(self: &Arc<Self>, st: &mut EngState, rank: Rank, win: WinId, id: EpochId) {
        let sw = &mut st.sweep[rank.idx()];
        let mut to_send = std::mem::take(&mut sw.send_scratch);
        let mut blocked = std::mem::take(&mut sw.rank_scratch);
        {
            let e = st.win_mut(win, rank).epoch_mut(id);
            // Collect per-target liveness first (immutable pass). The
            // blocked set is tiny (≤ a handful of targets), so a scratch
            // Vec with a contains-dedup beats a fresh BTreeSet.
            for op in e.live_ops.values() {
                if !op.done() && !blocked.contains(&op.target) {
                    blocked.push(op.target);
                }
            }
            for (t, ts) in e.targets.iter_mut() {
                if ts.granted && ts.unsent == 0 && !ts.unlock_sent && !blocked.contains(t) {
                    ts.unlock_sent = true;
                    to_send.push((*t, ts.access_id));
                }
            }
        }
        for &(t, aid) in &to_send {
            self.sync_event(
                st,
                rank,
                t,
                win,
                crate::trace::Plane::Lock,
                crate::trace::SyncEvent::EpochDoneSent { epoch: id.0, id: aid },
            );
            self.send_sync(
                st,
                rank,
                t,
                win,
                SyncPacket::Unlock {
                    win,
                    origin: rank,
                    access_id: aid,
                },
            );
        }
        to_send.clear();
        blocked.clear();
        let sw = &mut st.sweep[rank.idx()];
        sw.send_scratch = to_send;
        sw.rank_scratch = blocked;
    }

    /// Whether an exposure epoch's completion conditions hold: every origin
    /// in the group has sent its done packet (`gats_done_recv[o] ≥ exp_id`).
    pub(crate) fn exposure_conditions_met(
        &self,
        st: &EngState,
        rank: Rank,
        win: WinId,
        id: EpochId,
    ) -> bool {
        let w = st.win(win, rank);
        let e = w.epoch(id);
        e.exposure_origins
            .iter()
            .all(|(o, exp)| w.gats_done_recv[o.idx()] >= *exp)
    }

    /// Mark the epoch internally complete: fire its closing request, retire
    /// it from the open order, and rescan for newly activatable epochs.
    pub(crate) fn complete_epoch(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        id: EpochId,
    ) {
        let close_req = {
            let e = st.win_mut(win, rank).epoch_mut(id);
            e.complete = true;
            e.close_req
        };
        if let Some(r) = close_req {
            st.reqs.complete(r, None);
        }
        st.eng_stats.epochs_completed += 1;
        self.trace_event(st, rank, win, id, crate::trace::EpochEvent::Completed);
        st.win_mut(win, rank).retire(id);
        st.mark_act_dirty(rank, win);
        // Epoch commit is the only globally coherent snapshot instant:
        // the crash-recovery subsystem both checkpoints and fires planned
        // crashes here.
        st.stats[rank.idx()].epochs_committed += 1;
        if self.recovery_armed() {
            self.recovery_on_commit(st, rank);
        }
    }

    /// Whether `e` is a dormant trailing fence: open, never closed, and
    /// without any recorded or issued operation.
    pub(crate) fn is_dormant_fence(e: &crate::epoch::EpochObj) -> bool {
        matches!(e.kind, EpochKind::Fence { .. })
            && !e.closed
            && e.pending_ops.is_empty()
            && e.live_ops.is_empty()
            && e.targets
                .values()
                .all(|t| t.data_msgs_sent == 0 && t.unsent == 0)
    }

    /// Error if a *non-dormant* fence epoch is open: fence phases cannot
    /// interleave with other epoch kinds. A dormant trailing fence is
    /// tolerated — it coexists with the next phase and is closed by the
    /// next fence call (or retired at `win_free`), keeping the collective
    /// fence sequence aligned on every rank.
    pub(crate) fn check_fence_conflict(
        &self,
        st: &EngState,
        rank: Rank,
        win: WinId,
        called: &'static str,
    ) -> RmaResult<()> {
        if let Some(id) = st.win(win, rank).cur_fence {
            if !Self::is_dormant_fence(st.win(win, rank).epoch(id)) {
                return Err(RmaError::AlreadyInEpoch { called });
            }
        }
        Ok(())
    }

    /// If the window still holds a dormant trailing fence epoch, retire it
    /// (used at `win_free`, where no later fence call can exist).
    pub(crate) fn retire_empty_open_fence(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
    ) {
        let Some(id) = st.win(win, rank).cur_fence else {
            return;
        };
        if Self::is_dormant_fence(st.win(win, rank).epoch(id)) {
            let w = st.win_mut(win, rank);
            w.cur_fence = None;
            w.retire(id);
            st.eng_stats.dormant_retired += 1;
            st.mark_act_dirty(rank, win);
        }
    }
}
