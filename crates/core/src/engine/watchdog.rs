//! Epoch stall watchdog: bounded-time termination under arbitrary fault
//! schedules.
//!
//! With [`crate::config::JobConfig::watchdog`] set, every *closed* epoch
//! gets a sim-time budget to reach internal completion. An epoch that
//! overstays — because a peer crashed, a partition never healed, or the
//! reliability sublayer abandoned a frame — is **cancelled**: its closing
//! request and every op request it still holds are force-completed, a
//! structured [`StallReport`] lands on the job's degradation list, and the
//! epoch is retired so successors can activate. The job then terminates
//! degraded instead of hanging; no fault schedule may produce a hang.
//!
//! The watchdog is armed lazily (at epoch close and at frame abandonment)
//! and its tick re-arms only while closed-but-incomplete epochs remain, so
//! a healthy job's event queue still drains and the simulation ends. A
//! stalled epoch is cancelled no later than `2 × budget` after its close
//! (one tick interval of slack on top of the budget).

use std::sync::Arc;

use mpisim_sim::SimTime;

use crate::engine::rel::Degradation;
use crate::epoch::EpochKind;
use crate::engine::{EngState, Engine};
use crate::types::{EpochId, Rank, Req, WinId};

/// Diagnostic snapshot of a cancelled (stalled) epoch: where it was stuck
/// and what the synchronization counters looked like at cancellation.
#[derive(Debug, Clone)]
pub struct StallReport {
    /// Rank whose epoch stalled.
    pub rank: Rank,
    /// Window the epoch belongs to.
    pub win: WinId,
    /// Epoch identifier within that rank's side of the window.
    pub epoch: u64,
    /// Epoch kind name (`"gats-access"`, `"lock"`, …).
    pub kind: &'static str,
    /// Virtual time the closing routine ran.
    pub closed_at: SimTime,
    /// Virtual time the watchdog cancelled it.
    pub cancelled_at: SimTime,
    /// Per-peer ω-triple snapshot `(a, e, g)` — the GATS access/exposure/
    /// grant counters of §VII.B at cancellation (index = peer rank).
    pub omega: Vec<(u64, u64, u64)>,
    /// Per-peer passive-target counters `(a_lock, g_lock)` at cancellation.
    pub omega_lock: Vec<(u64, u64)>,
    /// Oldest unacknowledged reliability frame this rank still holds, as
    /// `(peer, sequence)` — the likeliest culprit for the stall.
    pub oldest_unacked: Option<(Rank, u64)>,
    /// Issued-but-incomplete ops abandoned with the epoch.
    pub live_ops: usize,
    /// Recorded-but-unissued ops abandoned with the epoch.
    pub pending_ops: usize,
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rank {} win {} {} epoch #{} closed at {:?}, cancelled at {:?} ({} live, {} pending ops",
            self.rank,
            self.win.0,
            self.kind,
            self.epoch,
            self.closed_at,
            self.cancelled_at,
            self.live_ops,
            self.pending_ops,
        )?;
        match self.oldest_unacked {
            Some((peer, seq)) => write!(f, "; oldest unacked frame #{seq} to {peer})"),
            None => write!(f, ")"),
        }
    }
}

impl Engine {
    /// Arm the stall watchdog (no-op when no budget is configured or a
    /// tick is already pending). Called at every epoch close (via
    /// [`Engine::watch_epoch`]) and whenever the reliability sublayer
    /// abandons a frame.
    pub(crate) fn arm_watchdog(self: &Arc<Self>, st: &mut EngState) {
        let Some(budget) = self.cfg.watchdog else {
            return;
        };
        if st.watchdog_armed {
            return;
        }
        st.watchdog_armed = true;
        let me = self.clone();
        self.sim.schedule(budget, move || me.watchdog_tick());
    }

    /// Register a just-closed epoch with the watchdog's watch list and arm
    /// a tick. Ticks scan only this list — never all windows × ranks — so
    /// a 4096-rank job pays for the epochs actually awaiting completion,
    /// not for its size. No-op without a configured budget.
    pub(crate) fn watch_epoch(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        id: EpochId,
    ) {
        if self.cfg.watchdog.is_none() {
            return;
        }
        st.stall_watch.push((win, rank, id));
        self.arm_watchdog(st);
    }

    /// One watchdog tick: cancel every watched epoch past its budget,
    /// prune entries that completed or retired on their own, and re-arm
    /// while closed-but-incomplete epochs remain.
    fn watchdog_tick(self: &Arc<Self>) {
        let budget = self.cfg.watchdog.expect("tick armed without a budget");
        let now = self.sim.now();
        let mut touched: Vec<Rank> = Vec::new();
        {
            let mut st = self.st.lock();
            st.watchdog_armed = false;
            st.eng_stats.watchdog_ticks += 1;
            let mut to_cancel: Vec<(Rank, WinId, EpochId)> = Vec::new();
            {
                let EngState { stall_watch, wins, .. } = &mut *st;
                stall_watch.retain(|&(win, rank, id)| {
                    // A watched epoch may have completed and retired (its
                    // id vanishes from the map — ids are never reused) or
                    // completed in place; both drop off the list here.
                    let Some(wr) = wins[win.0 as usize].per_rank[rank.idx()].as_ref() else {
                        return false;
                    };
                    let Some(e) = wr.epochs.get(&id.0) else {
                        return false;
                    };
                    if e.complete {
                        return false;
                    }
                    debug_assert!(e.closed, "unclosed epoch on the stall watch list");
                    match e.closed_at {
                        Some(t) if now >= t + budget => {
                            to_cancel.push((rank, win, id));
                            false
                        }
                        _ => true,
                    }
                });
            }
            let still_waiting = !st.stall_watch.is_empty();
            for (rank, win, id) in to_cancel {
                self.cancel_epoch(&mut st, rank, win, id);
                if !touched.contains(&rank) {
                    touched.push(rank);
                }
            }
            if still_waiting {
                self.arm_watchdog(&mut st);
            }
        }
        for r in touched {
            self.sweep(r);
        }
    }

    /// Force-terminate a stalled closed epoch: snapshot diagnostics,
    /// complete its closing request and every op request it still holds,
    /// retire it, and record the [`Degradation::EpochStall`].
    pub(crate) fn cancel_epoch(
        self: &Arc<Self>,
        st: &mut EngState,
        rank: Rank,
        win: WinId,
        id: EpochId,
    ) {
        let report = {
            let w = st.win(win, rank);
            let e = w.epoch(id);
            StallReport {
                rank,
                win,
                epoch: id.0,
                kind: e.kind.name(),
                closed_at: e.closed_at.unwrap_or(SimTime::ZERO),
                cancelled_at: self.sim.now(),
                omega: (0..self.cfg.n_ranks).map(|p| (w.a[p], w.e[p], w.g[p])).collect(),
                omega_lock: (0..self.cfg.n_ranks)
                    .map(|p| (w.a_lock[p], w.g_lock[p]))
                    .collect(),
                oldest_unacked: st.rel[rank.idx()].oldest_unacked(),
                live_ops: e.live_ops.len(),
                pending_ops: e.pending_ops.len(),
            }
        };
        let (close_req, mut op_reqs) = {
            let e = st.win_mut(win, rank).epoch_mut(id);
            e.complete = true;
            let close_req = e.close_req;
            let mut reqs: Vec<Req> = e.live_ops.values().filter_map(|o| o.req).collect();
            for op in e.pending_ops.drain(..) {
                if let Some(r) = op.req {
                    reqs.push(r);
                }
            }
            e.live_ops.clear();
            (close_req, reqs)
        };
        // Dedup, then guard each completion: an op request may already be
        // done (request-based puts complete at local completion) or even
        // consumed by the application; completing a live one marks the op
        // failed-but-terminated, re-completing a done one is a no-op, and
        // a consumed (stale) handle must be left alone.
        op_reqs.sort_unstable_by_key(|r| r.0);
        op_reqs.dedup();
        if let Some(r) = close_req {
            if st.reqs.is_done(r).is_ok() {
                st.reqs.complete(r, None);
            }
        }
        for r in op_reqs {
            if st.reqs.is_done(r).is_ok() {
                st.reqs.complete(r, None);
            }
        }
        // A cancelled passive epoch may still owe the protocol lock
        // traffic: grants it already holds must be released now, and
        // grants still in flight must be answered when they land (the
        // target's lock manager serialises on them either way).
        let mut release_now: Vec<(Rank, u64)> = Vec::new();
        {
            let w = st.win_mut(win, rank);
            let e = w.epoch(id);
            if matches!(e.kind, EpochKind::Lock { .. } | EpochKind::LockAll) {
                let mut owed: Vec<(Rank, u64)> = Vec::new();
                for (t, ts) in e.targets.iter() {
                    if ts.access_id == 0 {
                        continue;
                    }
                    if ts.granted && !ts.unlock_sent {
                        release_now.push((*t, ts.access_id));
                    } else if !ts.granted {
                        owed.push((*t, ts.access_id));
                    }
                }
                w.cancelled_lock_grants.extend(owed);
            }
        }
        for (t, aid) in release_now {
            self.send_sync(
                st,
                rank,
                t,
                win,
                crate::msg::SyncPacket::Unlock { win, origin: rank, access_id: aid },
            );
        }
        st.eng_stats.epochs_cancelled += 1;
        self.trace_event(st, rank, win, id, crate::trace::EpochEvent::Completed);
        st.degradations.push(Degradation::EpochStall(report));
        st.win_mut(win, rank).retire(id);
        st.mark_act_dirty(rank, win);
    }
}
