//! The application-facing API — the MPI-RMA surface of the paper, blocking
//! and nonblocking.
//!
//! Each simulated rank receives a [`RankEnv`] and programs against it the
//! way an MPI process programs against `MPI_*`:
//!
//! | MPI | here (blocking) | here (nonblocking, §V) |
//! |---|---|---|
//! | `MPI_WIN_FENCE` | [`RankEnv::fence`] | [`RankEnv::ifence`] |
//! | `MPI_WIN_POST` / `WAIT` / `TEST` | [`RankEnv::post`] / [`RankEnv::wait_epoch`] / [`RankEnv::test_epoch`] | [`RankEnv::ipost`] / [`RankEnv::iwait`] |
//! | `MPI_WIN_START` / `COMPLETE` | [`RankEnv::start`] / [`RankEnv::complete`] | [`RankEnv::istart`] / [`RankEnv::icomplete`] |
//! | `MPI_WIN_LOCK` / `UNLOCK` | [`RankEnv::lock`] / [`RankEnv::unlock`] | [`RankEnv::ilock`] / [`RankEnv::iunlock`] |
//! | `MPI_WIN_LOCK_ALL` / `UNLOCK_ALL` | [`RankEnv::lock_all`] / [`RankEnv::unlock_all`] | [`RankEnv::ilock_all`] / [`RankEnv::iunlock_all`] |
//! | `MPI_WIN_FLUSH*` | [`RankEnv::flush`] … | [`RankEnv::iflush`] … |
//! | `MPI_PUT` / `GET` / accumulates | [`RankEnv::put`] … | request-based [`RankEnv::rput`] … |
//!
//! Deviation from MPI for memory safety: `get`-style operations return a
//! data-bearing [`Req`] instead of writing into a caller-supplied buffer;
//! fetch the bytes with [`RankEnv::wait_data`] after synchronization.

use std::sync::Arc;

use bytes::Bytes;
use mpisim_net::Payload;
use mpisim_sim::{ProcCtx, Signal, SimTime};

use crate::config::WinInfo;
use crate::datatype::{Datatype, ReduceOp};
use crate::engine::{Engine, RankStats};
use crate::epoch::OpKind;
use crate::error::{RmaError, RmaResult};
use crate::msg::{FetchKind, Layout};
use crate::types::{Group, LockKind, Rank, Req, WinId};

/// The environment of one simulated MPI rank.
pub struct RankEnv<'a> {
    ctx: &'a ProcCtx,
    eng: Arc<Engine>,
    rank: Rank,
}

impl<'a> RankEnv<'a> {
    /// Construct the environment (done by the runtime).
    pub fn new(ctx: &'a ProcCtx, eng: Arc<Engine>, rank: Rank) -> Self {
        RankEnv { ctx, eng, rank }
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Job size.
    pub fn n_ranks(&self) -> usize {
        self.eng.cfg.n_ranks
    }

    /// Current virtual time (`MPI_Wtime`).
    pub fn now(&self) -> SimTime {
        self.ctx.now()
    }

    /// Model `d` of computation: virtual time advances, communications
    /// progress meanwhile.
    pub fn compute(&self, d: SimTime) {
        self.eng.add_compute_time(self.rank, d);
        self.ctx.advance(d);
    }

    /// Per-rank timing statistics so far.
    pub fn stats(&self) -> RankStats {
        self.eng.rank_stats(self.rank)
    }

    /// The engine (for instrumentation, e.g. network stats).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.eng
    }

    /// Charge the per-call software overhead and account MPI time around
    /// `f`.
    fn timed<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = self.ctx.now();
        self.ctx.advance(self.eng.cfg.overheads.call_entry);
        let r = f();
        let dt = self.ctx.now() - t0;
        self.eng.add_mpi_time(self.rank, dt);
        r
    }

    // ------------------------------------------------------------------
    // requests (test/wait family)
    // ------------------------------------------------------------------

    /// Block until `req` completes; consumes the request.
    pub fn wait(&self, req: Req) -> RmaResult<()> {
        self.timed(|| self.wait_inner(req).map(|_| ()))
    }

    /// Block until `req` completes and return its data (get/fetch/recv
    /// results). Errors if the request carries no data.
    pub fn wait_data(&self, req: Req) -> RmaResult<Bytes> {
        self.timed(|| {
            self.wait_inner(req)?
                .ok_or(RmaError::DatatypeMismatch {
                    detail: "request carries no data",
                })
        })
    }

    fn wait_inner(&self, req: Req) -> RmaResult<Option<Bytes>> {
        loop {
            let sig = {
                let mut st = self.eng.st.lock();
                if st.reqs.is_done(req)? {
                    return st.reqs.consume(req);
                }
                let s = Signal::new();
                st.reqs.add_waiter(req, s.clone())?;
                st.eng_stats.sync_blocked_steps += 1;
                s
            };
            self.blocked_park(&sig);
        }
    }

    /// Suspend on `sig`, charging the park to the host-blocking counters
    /// ([`crate::EngineStats::sync_blocked_ns`]). Every blocking wait in
    /// the API funnels through here, so the pair
    /// (`sync_blocked_steps`, `sync_blocked_ns`) is exactly the host
    /// time the wait family spent suspended.
    fn blocked_park(&self, sig: &Signal) {
        let t0 = self.ctx.now();
        self.ctx.wait(sig);
        let dt = self.ctx.now() - t0;
        self.eng.st.lock().eng_stats.sync_blocked_ns += dt.as_nanos();
    }

    /// Nonblocking completion check; consumes the request when complete.
    pub fn test(&self, req: Req) -> RmaResult<bool> {
        self.timed(|| {
            let mut st = self.eng.st.lock();
            if st.reqs.is_done(req)? {
                st.reqs.consume(req)?;
                Ok(true)
            } else {
                Ok(false)
            }
        })
    }

    /// Wait for every request in order.
    pub fn wait_all(&self, reqs: impl IntoIterator<Item = Req>) -> RmaResult<()> {
        for r in reqs {
            self.wait(r)?;
        }
        Ok(())
    }

    /// Block until *any* of the requests completes; consumes that request
    /// and returns its index (`MPI_WAITANY`). Errors if the slice is empty
    /// or a handle is stale.
    pub fn wait_any(&self, reqs: &[Req]) -> RmaResult<usize> {
        if reqs.is_empty() {
            return Err(RmaError::InvalidRequest);
        }
        self.timed(|| loop {
            let sig = {
                let mut st = self.eng.st.lock();
                for (i, r) in reqs.iter().enumerate() {
                    if st.reqs.is_done(*r)? {
                        st.reqs.consume(*r)?;
                        return Ok(i);
                    }
                }
                // None complete: one signal registered with every request,
                // so any completion wakes us.
                let s = Signal::new();
                for r in reqs {
                    st.reqs.add_waiter(*r, s.clone())?;
                }
                st.eng_stats.sync_blocked_steps += 1;
                s
            };
            self.blocked_park(&sig);
        })
    }

    // ------------------------------------------------------------------
    // windows
    // ------------------------------------------------------------------

    /// Collective window creation with `size` bytes of exposed memory
    /// (`MPI_WIN_ALLOCATE`); synchronizes all ranks.
    pub fn win_allocate(&self, size: usize) -> RmaResult<WinId> {
        self.win_allocate_with(size, WinInfo::default())
    }

    /// Window creation with explicit info flags (§VI.B reorder flags).
    pub fn win_allocate_with(&self, size: usize, info: WinInfo) -> RmaResult<WinId> {
        let w = self.timed(|| self.eng.win_allocate(self.rank, size, info));
        self.barrier()?;
        Ok(w)
    }

    /// Collective window destruction; synchronizes all ranks.
    pub fn win_free(&self, win: WinId) -> RmaResult<()> {
        self.barrier()?;
        self.timed(|| self.eng.win_free(self.rank, win))
    }

    /// Read `len` bytes from the local window copy (local load).
    pub fn read_local(&self, win: WinId, disp: usize, len: usize) -> RmaResult<Vec<u8>> {
        self.eng.read_local(self.rank, win, disp, len)
    }

    /// Write into the local window copy (local store).
    pub fn write_local(&self, win: WinId, disp: usize, data: &[u8]) -> RmaResult<()> {
        self.eng.write_local(self.rank, win, disp, data)
    }

    // ------------------------------------------------------------------
    // fence epochs
    // ------------------------------------------------------------------

    /// Blocking `MPI_WIN_FENCE`.
    pub fn fence(&self, win: WinId) -> RmaResult<()> {
        self.timed(|| {
            let r = self.eng.fence(self.rank, win)?;
            self.wait_inner(r).map(|_| ())
        })
    }

    /// `MPI_WIN_IFENCE` (§V): returns the closing request.
    pub fn ifence(&self, win: WinId) -> RmaResult<Req> {
        self.timed(|| self.eng.fence(self.rank, win))
    }

    // ------------------------------------------------------------------
    // GATS epochs
    // ------------------------------------------------------------------

    /// `MPI_WIN_START` (nonblocking by design in modern MPIs).
    pub fn start(&self, win: WinId, group: Group) -> RmaResult<()> {
        self.timed(|| self.eng.open_gats_access(self.rank, win, group))
    }

    /// `MPI_WIN_ISTART`: identical to [`RankEnv::start`] plus a dummy
    /// completed request (§VII.C).
    pub fn istart(&self, win: WinId, group: Group) -> RmaResult<Req> {
        self.timed(|| {
            self.eng.open_gats_access(self.rank, win, group)?;
            Ok(self.eng.dummy_open_req())
        })
    }

    /// `MPI_WIN_POST` (already nonblocking in MPI-3.0).
    pub fn post(&self, win: WinId, group: Group) -> RmaResult<()> {
        self.timed(|| self.eng.open_exposure(self.rank, win, group))
    }

    /// `MPI_WIN_IPOST`: provided for uniformity (§V).
    pub fn ipost(&self, win: WinId, group: Group) -> RmaResult<Req> {
        self.timed(|| {
            self.eng.open_exposure(self.rank, win, group)?;
            Ok(self.eng.dummy_open_req())
        })
    }

    /// Blocking `MPI_WIN_COMPLETE`.
    pub fn complete(&self, win: WinId) -> RmaResult<()> {
        self.timed(|| {
            let r = self.eng.close_gats_access(self.rank, win)?;
            self.wait_inner(r).map(|_| ())
        })
    }

    /// `MPI_WIN_ICOMPLETE` (§V).
    pub fn icomplete(&self, win: WinId) -> RmaResult<Req> {
        self.timed(|| self.eng.close_gats_access(self.rank, win))
    }

    /// Blocking `MPI_WIN_WAIT`.
    pub fn wait_epoch(&self, win: WinId) -> RmaResult<()> {
        self.timed(|| {
            let r = self.eng.close_exposure(self.rank, win)?;
            self.wait_inner(r).map(|_| ())
        })
    }

    /// `MPI_WIN_IWAIT` (§V): unlike `MPI_WIN_TEST`, this closes the epoch
    /// immediately, so a subsequent exposure can be opened wait-free.
    pub fn iwait(&self, win: WinId) -> RmaResult<Req> {
        self.timed(|| self.eng.close_exposure(self.rank, win))
    }

    /// `MPI_WIN_TEST`: nonblocking check that closes the exposure epoch
    /// only when it has completed.
    pub fn test_epoch(&self, win: WinId) -> RmaResult<bool> {
        self.timed(|| self.eng.test_exposure(self.rank, win))
    }

    // ------------------------------------------------------------------
    // passive-target epochs
    // ------------------------------------------------------------------

    /// Blocking `MPI_WIN_LOCK` (returns when the epoch is open at the
    /// application level; acquisition happens inside the middleware).
    pub fn lock(&self, win: WinId, target: Rank, kind: LockKind) -> RmaResult<()> {
        self.timed(|| self.eng.open_lock(self.rank, win, target, kind))
    }

    /// `MPI_WIN_ILOCK` (§V).
    pub fn ilock(&self, win: WinId, target: Rank, kind: LockKind) -> RmaResult<Req> {
        self.timed(|| {
            self.eng.open_lock(self.rank, win, target, kind)?;
            Ok(self.eng.dummy_open_req())
        })
    }

    /// Blocking `MPI_WIN_UNLOCK`: returns when every RMA op of the epoch
    /// completed locally and remotely and the lock is released.
    pub fn unlock(&self, win: WinId, target: Rank) -> RmaResult<()> {
        self.timed(|| {
            let r = self.eng.close_lock(self.rank, win, target)?;
            self.wait_inner(r).map(|_| ())
        })
    }

    /// `MPI_WIN_IUNLOCK` (§V).
    pub fn iunlock(&self, win: WinId, target: Rank) -> RmaResult<Req> {
        self.timed(|| self.eng.close_lock(self.rank, win, target))
    }

    /// Blocking `MPI_WIN_LOCK_ALL`.
    pub fn lock_all(&self, win: WinId) -> RmaResult<()> {
        self.timed(|| self.eng.open_lock_all(self.rank, win))
    }

    /// `MPI_WIN_ILOCK_ALL` (§V).
    pub fn ilock_all(&self, win: WinId) -> RmaResult<Req> {
        self.timed(|| {
            self.eng.open_lock_all(self.rank, win)?;
            Ok(self.eng.dummy_open_req())
        })
    }

    /// Blocking `MPI_WIN_UNLOCK_ALL`.
    pub fn unlock_all(&self, win: WinId) -> RmaResult<()> {
        self.timed(|| {
            let r = self.eng.close_lock_all(self.rank, win)?;
            self.wait_inner(r).map(|_| ())
        })
    }

    /// `MPI_WIN_IUNLOCK_ALL` (§V).
    pub fn iunlock_all(&self, win: WinId) -> RmaResult<Req> {
        self.timed(|| self.eng.close_lock_all(self.rank, win))
    }

    // ------------------------------------------------------------------
    // flush family
    // ------------------------------------------------------------------

    /// Blocking `MPI_WIN_FLUSH` toward one target.
    pub fn flush(&self, win: WinId, target: Rank) -> RmaResult<()> {
        self.timed(|| {
            let r = self.eng.iflush(self.rank, win, Some(target), false)?;
            self.wait_inner(r).map(|_| ())
        })
    }

    /// `MPI_WIN_IFLUSH` (§V).
    pub fn iflush(&self, win: WinId, target: Rank) -> RmaResult<Req> {
        self.timed(|| self.eng.iflush(self.rank, win, Some(target), false))
    }

    /// Blocking `MPI_WIN_FLUSH_LOCAL`.
    pub fn flush_local(&self, win: WinId, target: Rank) -> RmaResult<()> {
        self.timed(|| {
            let r = self.eng.iflush(self.rank, win, Some(target), true)?;
            self.wait_inner(r).map(|_| ())
        })
    }

    /// `MPI_WIN_IFLUSH_LOCAL` (§V).
    pub fn iflush_local(&self, win: WinId, target: Rank) -> RmaResult<Req> {
        self.timed(|| self.eng.iflush(self.rank, win, Some(target), true))
    }

    /// Blocking `MPI_WIN_FLUSH_ALL`.
    pub fn flush_all(&self, win: WinId) -> RmaResult<()> {
        self.timed(|| {
            let r = self.eng.iflush(self.rank, win, None, false)?;
            self.wait_inner(r).map(|_| ())
        })
    }

    /// `MPI_WIN_IFLUSH_ALL` (§V).
    pub fn iflush_all(&self, win: WinId) -> RmaResult<Req> {
        self.timed(|| self.eng.iflush(self.rank, win, None, false))
    }

    /// Blocking `MPI_WIN_FLUSH_LOCAL_ALL`.
    pub fn flush_local_all(&self, win: WinId) -> RmaResult<()> {
        self.timed(|| {
            let r = self.eng.iflush(self.rank, win, None, true)?;
            self.wait_inner(r).map(|_| ())
        })
    }

    /// `MPI_WIN_IFLUSH_LOCAL_ALL` (§V).
    pub fn iflush_local_all(&self, win: WinId) -> RmaResult<Req> {
        self.timed(|| self.eng.iflush(self.rank, win, None, true))
    }

    // ------------------------------------------------------------------
    // RMA communication calls (nonblocking per MPI-3.0)
    // ------------------------------------------------------------------

    /// `MPI_PUT`.
    pub fn put(&self, win: WinId, target: Rank, disp: usize, data: &[u8]) -> RmaResult<()> {
        self.rma(
            win,
            target,
            disp,
            OpKind::Put {
                payload: Payload::copy_from_slice(data),
                layout: Layout::Contig,
            },
            false,
        )
        .map(|_| ())
    }

    /// Strided put (`MPI_PUT` with a vector target datatype): `data` holds
    /// `count × blocklen` packed bytes, written as `count` blocks whose
    /// starts are `stride` bytes apart at the target.
    #[allow(clippy::too_many_arguments)]
    pub fn put_strided(
        &self,
        win: WinId,
        target: Rank,
        disp: usize,
        count: usize,
        blocklen: usize,
        stride: usize,
        data: &[u8],
    ) -> RmaResult<()> {
        if stride < blocklen || data.len() != count * blocklen {
            return Err(RmaError::DatatypeMismatch {
                detail: "vector layout: need stride ≥ blocklen and data = count × blocklen",
            });
        }
        self.rma(
            win,
            target,
            disp,
            OpKind::Put {
                payload: Payload::copy_from_slice(data),
                layout: Layout::Vector { count, blocklen, stride },
            },
            false,
        )
        .map(|_| ())
    }

    /// Size-only put for paper-scale workloads: times like a real put,
    /// moves no bytes.
    pub fn put_synthetic(&self, win: WinId, target: Rank, disp: usize, len: usize) -> RmaResult<()> {
        self.rma(
            win,
            target,
            disp,
            OpKind::Put {
                payload: Payload::Synthetic(len),
                layout: Layout::Contig,
            },
            false,
        )
        .map(|_| ())
    }

    /// `MPI_RPUT`: request completes at local completion.
    pub fn rput(&self, win: WinId, target: Rank, disp: usize, data: &[u8]) -> RmaResult<Req> {
        self.rma(
            win,
            target,
            disp,
            OpKind::Put {
                payload: Payload::copy_from_slice(data),
                layout: Layout::Contig,
            },
            true,
        )
        .map(|r| r.expect("request-based op returns a request"))
    }

    /// `MPI_GET`: returns a data-bearing request; the bytes are valid after
    /// the epoch synchronizes (or the request completes).
    pub fn get(&self, win: WinId, target: Rank, disp: usize, len: usize) -> RmaResult<Req> {
        self.rma(win, target, disp, OpKind::Get { len, layout: Layout::Contig }, true)
            .map(|r| r.expect("get returns a request"))
    }

    /// Strided get: gathers `count` blocks of `blocklen` bytes, `stride`
    /// apart, from the target into one packed data-bearing request.
    pub fn get_strided(
        &self,
        win: WinId,
        target: Rank,
        disp: usize,
        count: usize,
        blocklen: usize,
        stride: usize,
    ) -> RmaResult<Req> {
        if stride < blocklen {
            return Err(RmaError::DatatypeMismatch {
                detail: "vector layout: need stride ≥ blocklen",
            });
        }
        self.rma(
            win,
            target,
            disp,
            OpKind::Get {
                len: count * blocklen,
                layout: Layout::Vector { count, blocklen, stride },
            },
            true,
        )
        .map(|r| r.expect("get returns a request"))
    }

    /// `MPI_ACCUMULATE`.
    pub fn accumulate(
        &self,
        win: WinId,
        target: Rank,
        disp: usize,
        dt: Datatype,
        op: ReduceOp,
        data: &[u8],
    ) -> RmaResult<()> {
        self.rma(
            win,
            target,
            disp,
            OpKind::Acc { dt, op, payload: Payload::copy_from_slice(data) },
            false,
        )
        .map(|_| ())
    }

    /// Size-only accumulate (skips target-side arithmetic).
    pub fn accumulate_synthetic(
        &self,
        win: WinId,
        target: Rank,
        disp: usize,
        dt: Datatype,
        op: ReduceOp,
        len: usize,
    ) -> RmaResult<()> {
        self.rma(
            win,
            target,
            disp,
            OpKind::Acc { dt, op, payload: Payload::Synthetic(len) },
            false,
        )
        .map(|_| ())
    }

    /// `MPI_RACCUMULATE`.
    pub fn raccumulate(
        &self,
        win: WinId,
        target: Rank,
        disp: usize,
        dt: Datatype,
        op: ReduceOp,
        data: &[u8],
    ) -> RmaResult<Req> {
        self.rma(
            win,
            target,
            disp,
            OpKind::Acc { dt, op, payload: Payload::copy_from_slice(data) },
            true,
        )
        .map(|r| r.expect("request-based op returns a request"))
    }

    /// `MPI_GET_ACCUMULATE`: atomically applies `op` and returns the
    /// previous target contents via the request.
    pub fn get_accumulate(
        &self,
        win: WinId,
        target: Rank,
        disp: usize,
        dt: Datatype,
        op: ReduceOp,
        data: &[u8],
    ) -> RmaResult<Req> {
        self.rma(
            win,
            target,
            disp,
            OpKind::Fetch {
                fetch: FetchKind::GetAccumulate,
                dt,
                op,
                operand: Payload::copy_from_slice(data),
            },
            true,
        )
        .map(|r| r.expect("fetch op returns a request"))
    }

    /// `MPI_FETCH_AND_OP` (single element).
    pub fn fetch_and_op(
        &self,
        win: WinId,
        target: Rank,
        disp: usize,
        dt: Datatype,
        op: ReduceOp,
        operand: &[u8],
    ) -> RmaResult<Req> {
        self.rma(
            win,
            target,
            disp,
            OpKind::Fetch {
                fetch: FetchKind::FetchAndOp,
                dt,
                op,
                operand: Payload::copy_from_slice(operand),
            },
            true,
        )
        .map(|r| r.expect("fetch op returns a request"))
    }

    /// `MPI_COMPARE_AND_SWAP` (single element): swaps in `new` iff the
    /// target equals `compare`; the request returns the previous contents.
    pub fn compare_and_swap(
        &self,
        win: WinId,
        target: Rank,
        disp: usize,
        dt: Datatype,
        compare: &[u8],
        new: &[u8],
    ) -> RmaResult<Req> {
        self.rma(
            win,
            target,
            disp,
            OpKind::Fetch {
                fetch: FetchKind::CompareAndSwap {
                    compare: compare.to_vec(),
                },
                dt,
                op: ReduceOp::Replace,
                operand: Payload::copy_from_slice(new),
            },
            true,
        )
        .map(|r| r.expect("fetch op returns a request"))
    }

    fn rma(
        &self,
        win: WinId,
        target: Rank,
        disp: usize,
        kind: OpKind,
        want_req: bool,
    ) -> RmaResult<Option<Req>> {
        let per_op = self.eng.cfg.overheads.per_op;
        self.timed(|| {
            self.ctx.advance(per_op);
            self.eng.rma_op(self.rank, win, target, disp, kind, want_req)
        })
    }

    // ------------------------------------------------------------------
    // two-sided and collectives
    // ------------------------------------------------------------------

    /// Blocking standard-mode send (returns when the buffer is reusable).
    pub fn send(&self, dst: Rank, tag: u64, data: &[u8]) -> RmaResult<()> {
        let r = self.isend(dst, tag, data)?;
        self.wait(r)
    }

    /// `MPI_ISEND`.
    pub fn isend(&self, dst: Rank, tag: u64, data: &[u8]) -> RmaResult<Req> {
        self.timed(|| self.eng.isend(self.rank, dst, tag, Payload::copy_from_slice(data)))
    }

    /// Size-only isend.
    pub fn isend_synthetic(&self, dst: Rank, tag: u64, len: usize) -> RmaResult<Req> {
        self.timed(|| self.eng.isend(self.rank, dst, tag, Payload::Synthetic(len)))
    }

    /// Blocking receive returning the message bytes.
    pub fn recv(&self, src: Rank, tag: u64) -> RmaResult<Bytes> {
        let r = self.irecv(src, tag)?;
        self.wait_data(r)
    }

    /// `MPI_IRECV`.
    pub fn irecv(&self, src: Rank, tag: u64) -> RmaResult<Req> {
        self.timed(|| self.eng.irecv(self.rank, src, tag))
    }

    /// Blocking dissemination barrier over all ranks.
    pub fn barrier(&self) -> RmaResult<()> {
        self.timed(|| {
            let r = self.eng.ibarrier(self.rank);
            self.wait_inner(r).map(|_| ())
        })
    }

    /// Nonblocking barrier.
    pub fn ibarrier(&self) -> Req {
        self.timed(|| self.eng.ibarrier(self.rank))
    }
}
