//! Element datatypes and reduction operators for the accumulate family.
//!
//! The middleware moves raw bytes; datatypes only matter where arithmetic
//! happens — `accumulate`, `get_accumulate`, `fetch_and_op`, and
//! `compare_and_swap` apply [`ReduceOp`]s elementwise at the target, which
//! is what gives those operations their atomicity guarantee.

use crate::error::{RmaError, RmaResult};

/// Supported element datatypes (little-endian on the simulated wire).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Datatype {
    /// 1-byte unsigned integer.
    U8,
    /// 4-byte signed integer.
    I32,
    /// 8-byte unsigned integer.
    U64,
    /// 8-byte IEEE-754 double.
    F64,
}

impl Datatype {
    /// Element size in bytes.
    pub fn size(self) -> usize {
        match self {
            Datatype::U8 => 1,
            Datatype::I32 => 4,
            Datatype::U64 => 8,
            Datatype::F64 => 8,
        }
    }

    /// Validate that `len` bytes form a whole number of elements.
    pub fn check_len(self, len: usize) -> RmaResult<usize> {
        if !len.is_multiple_of(self.size()) {
            return Err(RmaError::DatatypeMismatch {
                detail: "buffer length is not a multiple of the element size",
            });
        }
        Ok(len / self.size())
    }
}

/// Reduction operators, mirroring the MPI predefined ops that are valid for
/// RMA accumulates.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// Overwrite the target element (`MPI_REPLACE`).
    Replace,
    /// Leave the target untouched (`MPI_NO_OP`; used to read atomically).
    NoOp,
    /// Addition.
    Sum,
    /// Multiplication.
    Prod,
    /// Maximum.
    Max,
    /// Minimum.
    Min,
    /// Bitwise and (integer types only).
    Band,
    /// Bitwise or (integer types only).
    Bor,
    /// Bitwise xor (integer types only).
    Bxor,
}

macro_rules! apply_int {
    ($t:ty, $tgt:expr, $opd:expr, $op:expr) => {{
        let cur = <$t>::from_le_bytes($tgt.try_into().unwrap());
        let operand = <$t>::from_le_bytes($opd.try_into().unwrap());
        let new = match $op {
            ReduceOp::Replace => operand,
            ReduceOp::NoOp => cur,
            ReduceOp::Sum => cur.wrapping_add(operand),
            ReduceOp::Prod => cur.wrapping_mul(operand),
            ReduceOp::Max => cur.max(operand),
            ReduceOp::Min => cur.min(operand),
            ReduceOp::Band => cur & operand,
            ReduceOp::Bor => cur | operand,
            ReduceOp::Bxor => cur ^ operand,
        };
        $tgt.copy_from_slice(&new.to_le_bytes());
        Ok(())
    }};
}

/// Apply `op` elementwise: `target[i] = target[i] op operand[i]`.
///
/// `target` and `operand` must be equal-length multiples of the element
/// size. Bitwise ops on `F64` are rejected.
pub fn apply(dt: Datatype, op: ReduceOp, target: &mut [u8], operand: &[u8]) -> RmaResult<()> {
    if target.len() != operand.len() {
        return Err(RmaError::DatatypeMismatch {
            detail: "target/operand length mismatch",
        });
    }
    let n = dt.check_len(target.len())?;
    let s = dt.size();
    for i in 0..n {
        let tgt = &mut target[i * s..(i + 1) * s];
        let opd = &operand[i * s..(i + 1) * s];
        match dt {
            Datatype::U8 => apply_int!(u8, tgt, opd, op)?,
            Datatype::I32 => apply_int!(i32, tgt, opd, op)?,
            Datatype::U64 => apply_int!(u64, tgt, opd, op)?,
            Datatype::F64 => {
                let cur = f64::from_le_bytes(tgt.try_into().unwrap());
                let operand = f64::from_le_bytes(opd.try_into().unwrap());
                let new = match op {
                    ReduceOp::Replace => operand,
                    ReduceOp::NoOp => cur,
                    ReduceOp::Sum => cur + operand,
                    ReduceOp::Prod => cur * operand,
                    ReduceOp::Max => cur.max(operand),
                    ReduceOp::Min => cur.min(operand),
                    ReduceOp::Band | ReduceOp::Bor | ReduceOp::Bxor => {
                        return Err(RmaError::DatatypeMismatch {
                            detail: "bitwise op on F64",
                        })
                    }
                };
                tgt.copy_from_slice(&new.to_le_bytes());
            }
        }
    }
    Ok(())
}

/// Serialize a `u64` slice to little-endian bytes.
pub fn u64s_to_bytes(v: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Deserialize little-endian bytes into `u64`s.
pub fn bytes_to_u64s(b: &[u8]) -> Vec<u64> {
    b.chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Serialize an `f64` slice to little-endian bytes.
pub fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Deserialize little-endian bytes into `f64`s.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_sum_and_replace() {
        let mut tgt = u64s_to_bytes(&[10, 20]);
        apply(Datatype::U64, ReduceOp::Sum, &mut tgt, &u64s_to_bytes(&[1, 2])).unwrap();
        assert_eq!(bytes_to_u64s(&tgt), vec![11, 22]);
        apply(
            Datatype::U64,
            ReduceOp::Replace,
            &mut tgt,
            &u64s_to_bytes(&[7, 8]),
        )
        .unwrap();
        assert_eq!(bytes_to_u64s(&tgt), vec![7, 8]);
    }

    #[test]
    fn noop_reads_without_writing() {
        let mut tgt = u64s_to_bytes(&[99]);
        apply(Datatype::U64, ReduceOp::NoOp, &mut tgt, &u64s_to_bytes(&[5])).unwrap();
        assert_eq!(bytes_to_u64s(&tgt), vec![99]);
    }

    #[test]
    fn f64_ops() {
        let mut tgt = f64s_to_bytes(&[1.5]);
        apply(Datatype::F64, ReduceOp::Sum, &mut tgt, &f64s_to_bytes(&[2.25])).unwrap();
        assert_eq!(bytes_to_f64s(&tgt), vec![3.75]);
        apply(Datatype::F64, ReduceOp::Max, &mut tgt, &f64s_to_bytes(&[1.0])).unwrap();
        assert_eq!(bytes_to_f64s(&tgt), vec![3.75]);
    }

    #[test]
    fn f64_bitwise_rejected() {
        let mut tgt = f64s_to_bytes(&[1.0]);
        let err = apply(Datatype::F64, ReduceOp::Bxor, &mut tgt, &f64s_to_bytes(&[1.0]));
        assert!(err.is_err());
    }

    #[test]
    fn i32_min_max_band() {
        let mut tgt = (-5i32).to_le_bytes().to_vec();
        apply(Datatype::I32, ReduceOp::Max, &mut tgt, &3i32.to_le_bytes()).unwrap();
        assert_eq!(i32::from_le_bytes(tgt.clone().try_into().unwrap()), 3);
        apply(Datatype::I32, ReduceOp::Band, &mut tgt, &2i32.to_le_bytes()).unwrap();
        assert_eq!(i32::from_le_bytes(tgt.try_into().unwrap()), 2);
    }

    #[test]
    fn u8_wrapping_sum() {
        let mut tgt = vec![250u8];
        apply(Datatype::U8, ReduceOp::Sum, &mut tgt, &[10u8]).unwrap();
        assert_eq!(tgt, vec![4u8]); // wraps
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut tgt = vec![0u8; 8];
        assert!(apply(Datatype::U64, ReduceOp::Sum, &mut tgt, &[0u8; 16]).is_err());
        let mut odd = vec![0u8; 7];
        assert!(apply(Datatype::U64, ReduceOp::Sum, &mut odd, &[0u8; 7]).is_err());
    }

    #[test]
    fn roundtrips() {
        let v = vec![1u64, u64::MAX, 42];
        assert_eq!(bytes_to_u64s(&u64s_to_bytes(&v)), v);
        let f = vec![0.5f64, -3.25, 1e300];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&f)), f);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Sum-accumulates over u64 commute: any permutation of the same
        /// operand multiset yields the same target — the property the
        /// paper's transaction workload relies on for correctness under
        /// out-of-order epoch completion.
        #[test]
        fn u64_sum_commutes(init in any::<u64>(), ops in proptest::collection::vec(any::<u64>(), 0..20)) {
            let mut fwd = u64s_to_bytes(&[init]);
            for o in &ops {
                apply(Datatype::U64, ReduceOp::Sum, &mut fwd, &u64s_to_bytes(&[*o])).unwrap();
            }
            let mut rev = u64s_to_bytes(&[init]);
            for o in ops.iter().rev() {
                apply(Datatype::U64, ReduceOp::Sum, &mut rev, &u64s_to_bytes(&[*o])).unwrap();
            }
            prop_assert_eq!(fwd, rev);
        }

        /// Replace is idempotent with the same operand and always wins.
        #[test]
        fn replace_last_writer_wins(init in any::<u64>(), vals in proptest::collection::vec(any::<u64>(), 1..10)) {
            let mut t = u64s_to_bytes(&[init]);
            for v in &vals {
                apply(Datatype::U64, ReduceOp::Replace, &mut t, &u64s_to_bytes(&[*v])).unwrap();
            }
            prop_assert_eq!(bytes_to_u64s(&t)[0], *vals.last().unwrap());
        }
    }
}
