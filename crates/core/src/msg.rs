//! Wire messages exchanged by the middleware, and the 64-bit packet
//! encoding used on intranode notification FIFOs.
//!
//! Two planes exist, mirroring the paper's design:
//!
//! * the **data plane** — put/get/accumulate payload movement, priced by
//!   the network model;
//! * the **synchronization plane** — lock requests, grants, epoch-done and
//!   fence-done notifications. Internode these are small control packets;
//!   intranode they are encoded into single 64-bit words pushed through the
//!   per-window-pair shared-memory FIFO (§VII.D: "that notification channel
//!   deals only with 64-bit packets").

use mpisim_net::{Payload, Wire};

use crate::datatype::{Datatype, ReduceOp};
use crate::types::{LockKind, Rank, WinId};

/// Memory layout of an RMA transfer at the target — the `target_datatype`
/// dimension of MPI RMA calls (§VI.C reasons about overlap via `disp`,
/// `target_datatype`, and `count`). The wire always carries the packed
/// bytes; the target scatters or gathers according to the layout.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Layout {
    /// One contiguous region.
    Contig,
    /// `count` blocks of `blocklen` bytes, the start of consecutive blocks
    /// `stride` bytes apart (an `MPI_Type_vector` of bytes).
    Vector {
        /// Number of blocks.
        count: usize,
        /// Bytes per block.
        blocklen: usize,
        /// Distance between block starts, bytes (≥ blocklen).
        stride: usize,
    },
}

impl Layout {
    /// Total bytes the layout touches at the target, from its start.
    pub fn extent(&self, packed_len: usize) -> usize {
        match self {
            Layout::Contig => packed_len,
            Layout::Vector { count, blocklen, stride } => {
                if *count == 0 {
                    0
                } else {
                    (count - 1) * stride + blocklen
                }
            }
        }
    }

    /// Bytes actually transferred (the packed size).
    pub fn packed_len(&self, contig_len: usize) -> usize {
        match self {
            Layout::Contig => contig_len,
            Layout::Vector { count, blocklen, .. } => count * blocklen,
        }
    }
}

/// Which epoch context an RMA data message belongs to at the target.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EpochTag {
    /// Data inside a GATS access epoch with this per-pair access id.
    Gats {
        /// The origin's access id toward this target (`A_i` of §VII.B).
        access_id: u64,
    },
    /// Data inside a passive-target lock epoch with this access id.
    Lock {
        /// The origin's access id toward this target.
        access_id: u64,
    },
    /// Data inside a fence epoch with this sequence number.
    Fence {
        /// Window-global fence sequence number.
        seq: u64,
    },
}

/// Fetch-style operations that return the previous target contents.
#[derive(Clone, Debug, PartialEq)]
pub enum FetchKind {
    /// `MPI_GET_ACCUMULATE`.
    GetAccumulate,
    /// `MPI_FETCH_AND_OP` (single element).
    FetchAndOp,
    /// `MPI_COMPARE_AND_SWAP` (single element; swap iff equal to compare).
    CompareAndSwap {
        /// The comparand bytes.
        compare: Vec<u8>,
    },
}

/// What kind of access a [`Body::Grant`] message grants.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GrantKind {
    /// A GATS exposure was opened matching the origin's access epoch.
    Exposure,
    /// A passive-target lock was acquired for the origin.
    Lock,
}

/// Every message the middleware puts on the wire.
#[derive(Clone, Debug)]
pub enum Body {
    // ---------------- data plane ----------------
    /// Put payload into the target window.
    PutData {
        /// Target window.
        win: WinId,
        /// Epoch context at the target.
        tag: EpochTag,
        /// Byte displacement into the target window.
        disp: usize,
        /// Target-side layout (payload carries the packed bytes).
        layout: Layout,
        /// The data (or a synthetic size).
        payload: Payload,
    },
    /// Accumulate payload into the target window (applied atomically,
    /// elementwise, on delivery).
    AccData {
        /// Target window.
        win: WinId,
        /// Epoch context at the target.
        tag: EpochTag,
        /// Byte displacement into the target window.
        disp: usize,
        /// Element datatype.
        dt: Datatype,
        /// Reduction operator.
        op: ReduceOp,
        /// Operand data.
        payload: Payload,
    },
    /// Rendezvous request for a large accumulate (the target must stage an
    /// intermediate buffer, which is why large accumulates cannot overlap —
    /// §VIII.A).
    AccRts {
        /// Target window.
        win: WinId,
        /// Operand size, bytes.
        size: usize,
        /// Token correlating the CTS.
        token: u64,
    },
    /// Clear-to-send reply for an [`Body::AccRts`].
    AccCts {
        /// Token from the RTS.
        token: u64,
    },
    /// Read `len` bytes from the target window.
    GetReq {
        /// Target window.
        win: WinId,
        /// Epoch context at the target.
        tag: EpochTag,
        /// Byte displacement into the target window.
        disp: usize,
        /// Packed bytes to read.
        len: usize,
        /// Target-side layout to gather from.
        layout: Layout,
        /// Token correlating the response.
        token: u64,
    },
    /// Response carrying get data back to the origin.
    GetResp {
        /// Origin window.
        win: WinId,
        /// Token from the request.
        token: u64,
        /// The data read.
        payload: Payload,
    },
    /// A fetch-style atomic (get_accumulate / fetch_and_op / CAS).
    FetchReq {
        /// Target window.
        win: WinId,
        /// Epoch context at the target.
        tag: EpochTag,
        /// Which fetch operation.
        fetch: FetchKind,
        /// Byte displacement into the target window.
        disp: usize,
        /// Element datatype.
        dt: Datatype,
        /// Reduction operator (ignored for CAS).
        op: ReduceOp,
        /// Operand bytes.
        operand: Payload,
        /// Token correlating the response.
        token: u64,
    },
    /// Response carrying the previous target contents of a fetch-style op.
    FetchResp {
        /// Origin window.
        win: WinId,
        /// Token from the request.
        token: u64,
        /// Previous contents.
        payload: Payload,
    },

    // ---------------- synchronization plane ----------------
    /// Passive-target lock request (carries the origin's access id so the
    /// target can sequence grants per §VII.B).
    LockReq {
        /// Target window.
        win: WinId,
        /// The origin's access id toward the target.
        access_id: u64,
        /// Exclusive or shared.
        kind: LockKind,
    },
    /// Access granted: the one-sided update of the origin's `g_r` counter.
    Grant {
        /// Window.
        win: WinId,
        /// The granted access id (`g_r` becomes this value).
        id: u64,
        /// Exposure-match or lock grant.
        kind: GrantKind,
    },
    /// Origin finished a GATS access epoch toward this target ("done
    /// packet containing `A_i`", §VII.B).
    GatsDone {
        /// Window.
        win: WinId,
        /// The access id being closed.
        access_id: u64,
    },
    /// Origin releases a passive-target lock ("a different kind of done
    /// packet", §VII.B).
    Unlock {
        /// Window.
        win: WinId,
        /// The access id of the lock epoch being closed.
        access_id: u64,
    },
    /// Closing-fence announcement: carries how many data messages the
    /// sender issued toward the receiver inside fence epoch `seq`.
    FenceDone {
        /// Window.
        win: WinId,
        /// Fence sequence being closed.
        seq: u64,
        /// Data-plane messages the sender directed at the receiver in this
        /// fence epoch.
        ops_sent: u64,
    },
    /// A synchronization-plane packet travelling intranode, encoded as one
    /// 64-bit word for the per-window-pair notification FIFO.
    Fifo64 {
        /// Window (also encoded inside, kept here for routing).
        win: WinId,
        /// The encoded packet.
        packet: u64,
    },
    /// Several 64-bit sync words for the *same* per-window-pair FIFO,
    /// coalesced into a single push: the progress engine batches the words
    /// one sweep pass produces per channel instead of issuing one
    /// syscall-shaped push per notice. FIFO order of the words is
    /// preserved; the receiver pushes them into the ring one by one.
    Fifo64Batch {
        /// Window (also encoded inside each word, kept here for routing).
        win: WinId,
        /// The encoded packets, in send order.
        packets: Vec<u64>,
    },

    // ---------------- two-sided plane ----------------
    /// Eager two-sided message.
    P2pEager {
        /// Match tag.
        tag: u64,
        /// The data.
        payload: Payload,
    },
    /// Rendezvous ready-to-send for a large two-sided message.
    P2pRts {
        /// Match tag.
        tag: u64,
        /// Data size.
        size: usize,
        /// Token correlating CTS/data.
        token: u64,
    },
    /// Clear-to-send reply.
    P2pCts {
        /// The sender's token from the RTS.
        token: u64,
        /// A fresh receiver-side token identifying the data leg.
        data_token: u64,
    },
    /// Rendezvous data.
    P2pData {
        /// The receiver's token from the CTS.
        data_token: u64,
        /// The data.
        payload: Payload,
    },
    /// Dissemination-barrier round message.
    BarrierMsg {
        /// Barrier generation.
        seq: u64,
        /// Dissemination round.
        round: u32,
    },

    // ---------------- reliability sublayer ----------------
    /// A sequence-numbered reliability frame wrapping one internode
    /// message. The receiver delivers frames of a channel in sequence
    /// order exactly once, acknowledges cumulatively, and drops frames
    /// whose checksum does not match the inner body.
    Rel {
        /// Per-`(src, dst)` channel sequence number (1-based, contiguous).
        seq: u64,
        /// Structural digest of `inner` at send time (see [`Body::digest`]).
        checksum: u64,
        /// The framed message.
        inner: Box<Body>,
    },
    /// Cumulative acknowledgement for a reliability channel: every frame
    /// with `seq <= cum` has been received (delivered or deduplicated).
    /// Acks are never framed themselves — a lost ack is repaired by the
    /// retransmit it provokes.
    RelAck {
        /// Highest in-order sequence received on the reverse channel.
        cum: u64,
    },
}

impl Body {
    /// Deterministic structural digest used as the reliability-frame
    /// checksum. It mixes the variant, the modeled wire size, and the
    /// identifying header fields; payload *contents* are not hashed
    /// (payloads may be synthetic sizes), matching a real transport's CRC
    /// over header-plus-length granularity at simulation fidelity.
    pub fn digest(&self) -> u64 {
        fn tag_bits(t: &EpochTag) -> u64 {
            match t {
                EpochTag::Gats { access_id } => 0x10 ^ (access_id << 8),
                EpochTag::Lock { access_id } => 0x20 ^ (access_id << 8),
                EpochTag::Fence { seq } => 0x30 ^ (seq << 8),
            }
        }
        let (ty, a, b): (u64, u64, u64) = match self {
            Body::PutData { win, tag, disp, .. } => {
                (1, u64::from(win.0) ^ tag_bits(tag), *disp as u64)
            }
            Body::AccData { win, tag, disp, .. } => {
                (2, u64::from(win.0) ^ tag_bits(tag), *disp as u64)
            }
            Body::AccRts { win, size, token } => {
                (3, u64::from(win.0) ^ (*size as u64), *token)
            }
            Body::AccCts { token } => (4, *token, 0),
            Body::GetReq { win, tag, disp, token, .. } => {
                (5, u64::from(win.0) ^ tag_bits(tag) ^ (*disp as u64), *token)
            }
            Body::GetResp { win, token, .. } => (6, u64::from(win.0), *token),
            Body::FetchReq { win, tag, disp, token, .. } => {
                (7, u64::from(win.0) ^ tag_bits(tag) ^ (*disp as u64), *token)
            }
            Body::FetchResp { win, token, .. } => (8, u64::from(win.0), *token),
            Body::LockReq { win, access_id, kind } => (
                9,
                u64::from(win.0) ^ (*access_id << 8),
                matches!(kind, LockKind::Exclusive) as u64,
            ),
            Body::Grant { win, id, kind } => (
                10,
                u64::from(win.0) ^ (*id << 8),
                matches!(kind, GrantKind::Lock) as u64,
            ),
            Body::GatsDone { win, access_id } => (11, u64::from(win.0), *access_id),
            Body::Unlock { win, access_id } => (12, u64::from(win.0), *access_id),
            Body::FenceDone { win, seq, ops_sent } => {
                (13, u64::from(win.0) ^ (*seq << 8), *ops_sent)
            }
            Body::Fifo64 { win, packet } => (14, u64::from(win.0), *packet),
            Body::Fifo64Batch { win, packets } => {
                // Fold every word so any reordering or bit flip inside the
                // batch changes the digest.
                let mut acc = 0u64;
                for p in packets {
                    acc = acc.rotate_left(7) ^ p;
                }
                (22, u64::from(win.0) ^ (packets.len() as u64), acc)
            }
            Body::P2pEager { tag, .. } => (15, *tag, 0),
            Body::P2pRts { tag, size, token } => (16, *tag ^ (*size as u64), *token),
            Body::P2pCts { token, data_token } => (17, *token, *data_token),
            Body::P2pData { data_token, .. } => (18, *data_token, 0),
            Body::BarrierMsg { seq, round } => (19, *seq, u64::from(*round)),
            Body::Rel { seq, inner, .. } => (20, *seq, inner.digest()),
            Body::RelAck { cum } => (21, *cum, 0),
        };
        // FNV-1a over the three words plus the wire size.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in [ty, a, b, self.payload_len() as u64] {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

impl Wire for Body {
    fn payload_len(&self) -> usize {
        match self {
            Body::PutData { payload, .. }
            | Body::AccData { payload, .. }
            | Body::GetResp { payload, .. }
            | Body::FetchResp { payload, .. }
            | Body::P2pEager { payload, .. }
            | Body::P2pData { payload, .. } => payload.len(),
            Body::FetchReq { operand, fetch, .. } => {
                operand.len()
                    + match fetch {
                        FetchKind::CompareAndSwap { compare } => compare.len(),
                        _ => 0,
                    }
            }
            // Control packets are priced by the fixed header alone; the
            // intranode 64-bit packet adds its word, a batched push the
            // sum of its words.
            Body::Fifo64 { .. } => 8,
            Body::Fifo64Batch { packets, .. } => 8 * packets.len(),
            // A reliability frame carries its inner message plus the
            // 16-byte sequence/checksum trailer; acks are pure control.
            Body::Rel { inner, .. } => inner.payload_len() + 16,
            _ => 0,
        }
    }

    fn corrupt_in_transit(&mut self) {
        // Model in-transit corruption as a checksum mismatch on framed
        // traffic: the receiver recomputes the inner digest, sees the
        // flip, and drops the frame for retransmit. Unframed traffic has
        // no integrity check — corruption of it is silent, exactly the
        // failure mode the reliability sublayer exists to close.
        if let Body::Rel { checksum, .. } = self {
            *checksum ^= 1;
        }
    }

    fn duplicate(&self) -> Option<Self> {
        Some(self.clone())
    }
}

// ---------------------------------------------------------------------
// 64-bit intranode packet encoding (§VII.D)
//
// Layout: [63:60 type] [59:52 win] [51:32 src rank] [31:0 id]
// ---------------------------------------------------------------------

/// A decoded intranode synchronization packet.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SyncPacket {
    /// Lock request (exclusive).
    LockReqExcl {
        /// Window.
        win: WinId,
        /// Requesting origin.
        origin: Rank,
        /// Origin's access id.
        access_id: u64,
    },
    /// Lock request (shared).
    LockReqShared {
        /// Window.
        win: WinId,
        /// Requesting origin.
        origin: Rank,
        /// Origin's access id.
        access_id: u64,
    },
    /// Exposure-match grant.
    GrantExposure {
        /// Window.
        win: WinId,
        /// Granting peer.
        granter: Rank,
        /// Granted access id.
        id: u64,
    },
    /// Lock grant.
    GrantLock {
        /// Window.
        win: WinId,
        /// Granting peer.
        granter: Rank,
        /// Granted access id.
        id: u64,
    },
    /// GATS epoch-done notification.
    GatsDone {
        /// Window.
        win: WinId,
        /// Origin closing its access epoch.
        origin: Rank,
        /// Closed access id.
        access_id: u64,
    },
    /// Lock release.
    Unlock {
        /// Window.
        win: WinId,
        /// Origin releasing the lock.
        origin: Rank,
        /// Access id of the released lock epoch.
        access_id: u64,
    },
}

const TY_LOCK_EXCL: u64 = 1;
const TY_LOCK_SHARED: u64 = 2;
const TY_GRANT_EXPO: u64 = 3;
const TY_GRANT_LOCK: u64 = 4;
const TY_GATS_DONE: u64 = 5;
const TY_UNLOCK: u64 = 6;

fn pack(ty: u64, win: WinId, rank: Rank, id: u64) -> u64 {
    assert!(u64::from(win.0) < 256, "64-bit packet: window id must be < 256");
    assert!(rank.idx() < (1 << 20), "64-bit packet: rank must be < 2^20");
    assert!(id < (1 << 32), "64-bit packet: id must be < 2^32");
    (ty << 60) | (u64::from(win.0) << 52) | ((rank.idx() as u64) << 32) | id
}

impl SyncPacket {
    /// Encode into one 64-bit word.
    pub fn encode(self) -> u64 {
        match self {
            SyncPacket::LockReqExcl {
                win,
                origin,
                access_id,
            } => pack(TY_LOCK_EXCL, win, origin, access_id),
            SyncPacket::LockReqShared {
                win,
                origin,
                access_id,
            } => pack(TY_LOCK_SHARED, win, origin, access_id),
            SyncPacket::GrantExposure { win, granter, id } => pack(TY_GRANT_EXPO, win, granter, id),
            SyncPacket::GrantLock { win, granter, id } => pack(TY_GRANT_LOCK, win, granter, id),
            SyncPacket::GatsDone {
                win,
                origin,
                access_id,
            } => pack(TY_GATS_DONE, win, origin, access_id),
            SyncPacket::Unlock {
                win,
                origin,
                access_id,
            } => pack(TY_UNLOCK, win, origin, access_id),
        }
    }

    /// Decode a 64-bit word. Returns `None` for an unknown type nibble.
    pub fn decode(w: u64) -> Option<SyncPacket> {
        let ty = w >> 60;
        let win = WinId(((w >> 52) & 0xFF) as u32);
        let rank = Rank(((w >> 32) & 0xF_FFFF) as usize);
        let id = w & 0xFFFF_FFFF;
        Some(match ty {
            TY_LOCK_EXCL => SyncPacket::LockReqExcl {
                win,
                origin: rank,
                access_id: id,
            },
            TY_LOCK_SHARED => SyncPacket::LockReqShared {
                win,
                origin: rank,
                access_id: id,
            },
            TY_GRANT_EXPO => SyncPacket::GrantExposure {
                win,
                granter: rank,
                id,
            },
            TY_GRANT_LOCK => SyncPacket::GrantLock {
                win,
                granter: rank,
                id,
            },
            TY_GATS_DONE => SyncPacket::GatsDone {
                win,
                origin: rank,
                access_id: id,
            },
            TY_UNLOCK => SyncPacket::Unlock {
                win,
                origin: rank,
                access_id: id,
            },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_packet_roundtrip() {
        let cases = [
            SyncPacket::LockReqExcl {
                win: WinId(3),
                origin: Rank(17),
                access_id: 123456,
            },
            SyncPacket::LockReqShared {
                win: WinId(255),
                origin: Rank(0),
                access_id: 0,
            },
            SyncPacket::GrantExposure {
                win: WinId(0),
                granter: Rank((1 << 20) - 1),
                id: (1 << 32) - 1,
            },
            SyncPacket::GrantLock {
                win: WinId(9),
                granter: Rank(2047),
                id: 7,
            },
            SyncPacket::GatsDone {
                win: WinId(1),
                origin: Rank(42),
                access_id: 99,
            },
            SyncPacket::Unlock {
                win: WinId(2),
                origin: Rank(511),
                access_id: 1000,
            },
        ];
        for c in cases {
            assert_eq!(SyncPacket::decode(c.encode()), Some(c));
        }
    }

    #[test]
    fn unknown_type_decodes_to_none() {
        assert_eq!(SyncPacket::decode(0), None);
        assert_eq!(SyncPacket::decode(0xF << 60), None);
    }

    #[test]
    #[should_panic(expected = "window id must be < 256")]
    fn oversized_window_rejected() {
        let _ = SyncPacket::GatsDone {
            win: WinId(256),
            origin: Rank(0),
            access_id: 0,
        }
        .encode();
    }

    #[test]
    fn wire_sizes() {
        use mpisim_net::Payload;
        let put = Body::PutData {
            win: WinId(0),
            tag: EpochTag::Gats { access_id: 1 },
            disp: 0,
            layout: Layout::Contig,
            payload: Payload::Synthetic(4096),
        };
        assert_eq!(put.payload_len(), 4096);
        let grant = Body::Grant {
            win: WinId(0),
            id: 1,
            kind: GrantKind::Exposure,
        };
        assert_eq!(grant.payload_len(), 0);
        let fifo = Body::Fifo64 {
            win: WinId(0),
            packet: 0,
        };
        assert_eq!(fifo.payload_len(), 8);
        let batch = Body::Fifo64Batch {
            win: WinId(0),
            packets: vec![1, 2, 3],
        };
        assert_eq!(batch.payload_len(), 24);
        // Word order matters on the wire: a reordered batch must not
        // digest identically.
        let swapped = Body::Fifo64Batch {
            win: WinId(0),
            packets: vec![2, 1, 3],
        };
        assert_ne!(batch.digest(), swapped.digest());
        let cas = Body::FetchReq {
            win: WinId(0),
            tag: EpochTag::Lock { access_id: 1 },
            fetch: FetchKind::CompareAndSwap {
                compare: vec![0; 8],
            },
            disp: 0,
            dt: Datatype::U64,
            op: ReduceOp::Replace,
            operand: Payload::copy_from_slice(&[0; 8]),
            token: 0,
        };
        assert_eq!(cas.payload_len(), 16);
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    #[test]
    fn contig_extent_equals_len() {
        assert_eq!(Layout::Contig.extent(100), 100);
        assert_eq!(Layout::Contig.packed_len(100), 100);
    }

    #[test]
    fn vector_extent_and_packed() {
        let v = Layout::Vector { count: 3, blocklen: 4, stride: 10 };
        assert_eq!(v.packed_len(0), 12);
        assert_eq!(v.extent(12), 2 * 10 + 4);
        let empty = Layout::Vector { count: 0, blocklen: 4, stride: 10 };
        assert_eq!(empty.extent(0), 0);
        // stride == blocklen degenerates to contiguous coverage
        let tight = Layout::Vector { count: 5, blocklen: 8, stride: 8 };
        assert_eq!(tight.extent(40), 40);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A vector layout's extent always fits count disjoint blocks:
        /// extent >= packed length, with equality iff stride == blocklen.
        #[test]
        fn vector_extent_bounds(count in 1usize..50, blocklen in 1usize..64, pad in 0usize..32) {
            let stride = blocklen + pad;
            let l = Layout::Vector { count, blocklen, stride };
            let packed = l.packed_len(0);
            prop_assert_eq!(packed, count * blocklen);
            prop_assert!(l.extent(packed) >= packed);
            if pad == 0 {
                prop_assert_eq!(l.extent(packed), packed);
            }
        }

        #[test]
        fn packet_roundtrip_all_fields(
            ty in 1u64..=6,
            win in 0u32..256,
            rank in 0usize..(1 << 20),
            id in 0u64..(1u64 << 32),
        ) {
            let p = match ty {
                1 => SyncPacket::LockReqExcl { win: WinId(win), origin: Rank(rank), access_id: id },
                2 => SyncPacket::LockReqShared { win: WinId(win), origin: Rank(rank), access_id: id },
                3 => SyncPacket::GrantExposure { win: WinId(win), granter: Rank(rank), id },
                4 => SyncPacket::GrantLock { win: WinId(win), granter: Rank(rank), id },
                5 => SyncPacket::GatsDone { win: WinId(win), origin: Rank(rank), access_id: id },
                _ => SyncPacket::Unlock { win: WinId(win), origin: Rank(rank), access_id: id },
            };
            prop_assert_eq!(SyncPacket::decode(p.encode()), Some(p));
        }
    }
}
