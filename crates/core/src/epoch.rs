//! Epoch objects — the middleware-side representation of RMA epochs.
//!
//! Following §VI/§VII of the paper, an epoch distinguishes its
//! *application-level lifetime* (open → closed) from its *internal
//! lifetime* (activated → completed). An epoch created while another is
//! still active stays **deferred**: its RMA calls and even its closing are
//! *recorded* and replayed when the progress engine activates it.

use std::collections::{BTreeMap, HashMap, VecDeque};

use mpisim_net::Payload;
use mpisim_sim::SimTime;

use crate::datatype::{Datatype, ReduceOp};
use crate::msg::FetchKind;
use crate::types::{EpochId, Group, LockKind, Rank, Req};

/// The five epoch kinds of MPI-3 RMA.
#[derive(Clone, Debug)]
pub enum EpochKind {
    /// Origin-side GATS access epoch (`start`/`complete`).
    GatsAccess {
        /// Targets of the access epoch.
        group: Group,
    },
    /// Target-side GATS exposure epoch (`post`/`wait`).
    GatsExposure {
        /// Origins allowed to access.
        group: Group,
    },
    /// Passive-target epoch toward a single target (`lock`/`unlock`).
    Lock {
        /// The locked target.
        target: Rank,
        /// Exclusive or shared.
        lock: LockKind,
    },
    /// Passive-target epoch toward every rank (`lock_all`/`unlock_all`);
    /// always shared.
    LockAll,
    /// Fence epoch: simultaneously an access and an exposure epoch on every
    /// rank of the window.
    Fence {
        /// Window-global fence sequence number.
        seq: u64,
    },
}

/// Which side of a communication an epoch represents, for the reorder-flag
/// predicate of §VI.B.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Side {
    /// Origin side (access).
    Access,
    /// Target side (exposure).
    Exposure,
    /// Both at once (fence).
    Both,
}

impl EpochKind {
    /// The epoch's side.
    pub fn side(&self) -> Side {
        match self {
            EpochKind::GatsAccess { .. } | EpochKind::Lock { .. } | EpochKind::LockAll => {
                Side::Access
            }
            EpochKind::GatsExposure { .. } => Side::Exposure,
            EpochKind::Fence { .. } => Side::Both,
        }
    }

    /// Whether the reorder flags are forbidden across this epoch (§VI.B:
    /// flags never apply when either adjacent epoch is `lock_all` or
    /// fence-based).
    pub fn excluded_from_reorder(&self) -> bool {
        matches!(self, EpochKind::LockAll | EpochKind::Fence { .. })
    }

    /// Whether this is a passive-target epoch (flushes allowed).
    pub fn is_passive(&self) -> bool {
        matches!(self, EpochKind::Lock { .. } | EpochKind::LockAll)
    }

    /// Short name for traces and diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            EpochKind::GatsAccess { .. } => "gats-access",
            EpochKind::GatsExposure { .. } => "gats-exposure",
            EpochKind::Lock { .. } => "lock",
            EpochKind::LockAll => "lock-all",
            EpochKind::Fence { .. } => "fence",
        }
    }
}

/// A recorded RMA operation (not yet on the wire).
#[derive(Debug)]
pub struct OpDesc {
    /// Monotonic age within the window (flush stamping, §VII.C).
    pub age: u64,
    /// Target rank.
    pub target: Rank,
    /// Byte displacement into the target window.
    pub disp: usize,
    /// The operation.
    pub kind: OpKind,
    /// Request handle for request-based variants and fetch results.
    pub req: Option<Req>,
}

/// The payload-level variants of an RMA operation.
#[derive(Debug)]
pub enum OpKind {
    /// Put `payload` at the target.
    Put {
        /// Data to write (packed).
        payload: Payload,
        /// Target-side layout.
        layout: crate::msg::Layout,
    },
    /// Get `len` packed bytes from the target.
    Get {
        /// Packed bytes to read.
        len: usize,
        /// Target-side layout to gather from.
        layout: crate::msg::Layout,
    },
    /// Accumulate `payload` into the target.
    Acc {
        /// Element datatype.
        dt: Datatype,
        /// Reduction operator.
        op: ReduceOp,
        /// Operand data.
        payload: Payload,
    },
    /// Fetch-style atomic returning previous contents.
    Fetch {
        /// Which fetch flavour.
        fetch: FetchKind,
        /// Element datatype.
        dt: Datatype,
        /// Reduction operator.
        op: ReduceOp,
        /// Operand data.
        operand: Payload,
    },
}

impl OpKind {
    /// Whether the op sends a payload whose local completion must be
    /// tracked before the origin buffer is reusable.
    pub fn sends_payload(&self) -> bool {
        !matches!(self, OpKind::Get { .. })
    }

    /// Whether the op awaits a response message.
    pub fn expects_response(&self) -> bool {
        matches!(self, OpKind::Get { .. } | OpKind::Fetch { .. })
    }
}

/// An issued RMA op that has not fully completed.
#[derive(Debug)]
pub struct LiveOp {
    /// Target rank.
    pub target: Rank,
    /// Awaiting local completion (origin buffer reuse).
    pub needs_local: bool,
    /// Awaiting a get/fetch response.
    pub needs_resp: bool,
    /// Awaiting the remote acknowledgement (tracked in passive epochs for
    /// `unlock`/`flush` remote-completion semantics).
    pub needs_ack: bool,
    /// Request completed on local completion (request-based ops) or with
    /// data on response arrival (get/fetch).
    pub req: Option<Req>,
}

impl LiveOp {
    /// Fully complete?
    pub fn done(&self) -> bool {
        !self.needs_local && !self.needs_resp && !self.needs_ack
    }

    /// Locally complete (buffer reusable, responses in)?
    pub fn locally_done(&self) -> bool {
        !self.needs_local && !self.needs_resp
    }
}

/// Per-target progress of an access-side epoch.
#[derive(Debug, Default)]
pub struct TargetState {
    /// Access id toward this target (`A_i` of §VII.B); 0 = unassigned.
    pub access_id: u64,
    /// Whether the target granted this access (`A_i ≤ g_r`).
    pub granted: bool,
    /// Recorded or rendezvous-stalled ops not yet on the wire.
    pub unsent: u64,
    /// Data-plane messages sent to this target (fence accounting).
    pub data_msgs_sent: u64,
    /// Whether the per-target done packet has been sent.
    pub done_sent: bool,
    /// Whether the unlock packet has been sent (passive epochs).
    pub unlock_sent: bool,
}

/// The epoch object (§VII.A): created inactive, possibly deferred, recording
/// application-level events until activation.
#[derive(Debug)]
pub struct EpochObj {
    /// Identifier within this rank's side of the window.
    pub id: EpochId,
    /// Kind and parameters.
    pub kind: EpochKind,
    /// Internal lifetime started (progress engine activated it).
    pub activated: bool,
    /// Application-level lifetime ended (closing routine invoked).
    pub closed: bool,
    /// Internal lifetime ended (all completion conditions met).
    pub complete: bool,
    /// The epoch-closing request, if the epoch was closed.
    pub close_req: Option<Req>,
    /// Virtual time at which the closing routine ran (stall-watchdog
    /// deadline anchor; `None` while the application may still add ops).
    pub closed_at: Option<SimTime>,
    /// Recorded RMA calls awaiting activation/grant ("epoch recording",
    /// §VII.A).
    pub pending_ops: VecDeque<OpDesc>,
    /// Access-side per-target progress.
    pub targets: BTreeMap<Rank, TargetState>,
    /// Exposure-side: origin → expected done id.
    pub exposure_origins: BTreeMap<Rank, u64>,
    /// Issued-but-incomplete ops, by age.
    pub live_ops: HashMap<u64, LiveOp>,
    /// Baseline (lazy) behaviour: hold activation until the closing call.
    pub lazy_hold: bool,
    /// A flush forced this lazy epoch out of deferral mid-epoch: the lock
    /// was requested early and recorded ops may issue before the closing
    /// call (MVAPICH behaviour — flush triggers the lazy lock request).
    pub flush_forced: bool,
}

impl EpochObj {
    /// Create a fresh (inactive, deferred) epoch object.
    pub fn new(id: EpochId, kind: EpochKind) -> Self {
        let mut e = EpochObj {
            id,
            kind,
            activated: false,
            closed: false,
            complete: false,
            close_req: None,
            closed_at: None,
            pending_ops: VecDeque::new(),
            targets: BTreeMap::new(),
            exposure_origins: BTreeMap::new(),
            live_ops: HashMap::new(),
            lazy_hold: false,
            flush_forced: false,
        };
        e.prefill_targets();
        e
    }

    /// Reinitialize a recycled epoch object in place (arena reuse, see
    /// [`crate::window::WinRank::new_epoch`]): every field ends up exactly
    /// as [`EpochObj::new`] would leave it, but `pending_ops` and
    /// `live_ops` keep their allocated capacity.
    pub fn reset(&mut self, id: EpochId, kind: EpochKind) {
        self.id = id;
        self.kind = kind;
        self.activated = false;
        self.closed = false;
        self.complete = false;
        self.close_req = None;
        self.closed_at = None;
        self.pending_ops.clear();
        self.targets.clear();
        self.exposure_origins.clear();
        self.live_ops.clear();
        self.lazy_hold = false;
        self.flush_forced = false;
        self.prefill_targets();
    }

    /// Seed the per-target progress map from the kind's target set.
    fn prefill_targets(&mut self) {
        match &self.kind {
            EpochKind::GatsAccess { group } => {
                for r in group.ranks() {
                    self.targets.insert(*r, TargetState::default());
                }
            }
            EpochKind::Lock { target, .. } => {
                self.targets.insert(*target, TargetState::default());
            }
            _ => {}
        }
    }

    /// Whether this epoch may issue RMA toward `target` (open access epochs
    /// only; LockAll and Fence cover every rank).
    pub fn covers_target(&self, target: Rank) -> bool {
        match &self.kind {
            EpochKind::GatsAccess { .. } | EpochKind::Lock { .. } => {
                self.targets.contains_key(&target)
            }
            EpochKind::LockAll | EpochKind::Fence { .. } => true,
            EpochKind::GatsExposure { .. } => false,
        }
    }

    /// Count of live ops that still block local completion.
    pub fn live_local(&self) -> usize {
        self.live_ops.values().filter(|o| !o.locally_done()).count()
    }

    /// Whether every live op is fully done (including acks).
    pub fn live_all_done(&self) -> bool {
        self.live_ops.values().all(|o| o.done())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sides_and_exclusions() {
        let acc = EpochKind::GatsAccess {
            group: Group::new([1]),
        };
        assert_eq!(acc.side(), Side::Access);
        assert!(!acc.excluded_from_reorder());
        let exp = EpochKind::GatsExposure {
            group: Group::new([0]),
        };
        assert_eq!(exp.side(), Side::Exposure);
        assert!(EpochKind::LockAll.excluded_from_reorder());
        assert!(EpochKind::Fence { seq: 1 }.excluded_from_reorder());
        assert_eq!(EpochKind::Fence { seq: 1 }.side(), Side::Both);
        assert!(EpochKind::Lock {
            target: Rank(0),
            lock: LockKind::Shared
        }
        .is_passive());
        assert!(EpochKind::LockAll.is_passive());
        assert!(!acc.is_passive());
    }

    #[test]
    fn new_epoch_prefills_targets() {
        let e = EpochObj::new(
            EpochId(1),
            EpochKind::GatsAccess {
                group: Group::new([1, 3]),
            },
        );
        assert_eq!(e.targets.len(), 2);
        assert!(e.covers_target(Rank(3)));
        assert!(!e.covers_target(Rank(2)));
        let l = EpochObj::new(
            EpochId(2),
            EpochKind::Lock {
                target: Rank(5),
                lock: LockKind::Exclusive,
            },
        );
        assert!(l.covers_target(Rank(5)));
        assert!(!l.covers_target(Rank(4)));
        let la = EpochObj::new(EpochId(3), EpochKind::LockAll);
        assert!(la.covers_target(Rank(17)));
    }

    #[test]
    fn live_op_states() {
        let mut e = EpochObj::new(EpochId(1), EpochKind::LockAll);
        e.live_ops.insert(
            1,
            LiveOp {
                target: Rank(0),
                needs_local: true,
                needs_resp: false,
                needs_ack: true,
                req: None,
            },
        );
        assert_eq!(e.live_local(), 1);
        assert!(!e.live_all_done());
        e.live_ops.get_mut(&1).unwrap().needs_local = false;
        assert_eq!(e.live_local(), 0);
        assert!(!e.live_all_done());
        e.live_ops.get_mut(&1).unwrap().needs_ack = false;
        assert!(e.live_all_done());
    }

    #[test]
    fn op_kind_flags() {
        let put = OpKind::Put {
            payload: Payload::Synthetic(8),
            layout: crate::msg::Layout::Contig,
        };
        assert!(put.sends_payload() && !put.expects_response());
        let get = OpKind::Get { len: 8, layout: crate::msg::Layout::Contig };
        assert!(!get.sends_payload() && get.expects_response());
        let fetch = OpKind::Fetch {
            fetch: FetchKind::FetchAndOp,
            dt: Datatype::U64,
            op: ReduceOp::Sum,
            operand: Payload::Synthetic(8),
        };
        assert!(fetch.sends_payload() && fetch.expects_response());
    }
}
