//! Request objects — the internal implementation of the `MPI_REQUEST`
//! handles used by the test/wait family (§VII.C).
//!
//! Requests are specialized at creation as epoch-opening (dummy, completed
//! immediately — the paper's rule for all nonblocking epoch-opening
//! routines), epoch-closing, flush, communication (request-based RMA),
//! two-sided, or barrier requests. A slot-plus-nonce scheme makes stale
//! handles detectable.

use bytes::Bytes;
use mpisim_sim::Signal;

use crate::error::{RmaError, RmaResult};
use crate::types::Req;

/// What a request stands for (diagnostics; completion logic is uniform).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReqKind {
    /// Dummy epoch-opening request: complete at creation (§VII.C).
    EpochOpen,
    /// Epoch-closing request (icomplete/iwait/iunlock/ifence/...).
    EpochClose,
    /// Flush request, age-stamped.
    Flush,
    /// Request-based RMA operation (rput/rget/...), or a fetch result.
    Comm,
    /// Two-sided send/recv.
    P2p,
    /// Barrier.
    Barrier,
}

struct Slot {
    nonce: u32,
    state: Option<ReqState>,
}

struct ReqState {
    kind: ReqKind,
    done: bool,
    data: Option<Bytes>,
    waiters: Vec<Signal>,
}

/// One request-lifecycle transition, recorded when logging is enabled.
/// Consumed by the conformance harness's auditor: a handle must go
/// `Alloc → Complete → Consume`, complete effectively once, and be
/// consumed exactly once — application-visible completion happens only at
/// test/wait, which is the sole caller of `consume` (§VII.C).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReqEvent {
    /// Allocated pending. Dummy epoch-open requests log `Alloc`
    /// immediately followed by `Complete` (complete at creation).
    Alloc(ReqKind),
    /// Transitioned to complete (first effective completion only;
    /// idempotent re-completions are not logged).
    Complete,
    /// Consumed by test/wait; the slot is freed.
    Consume,
}

/// Table of live requests. One per job, inside the engine state.
#[derive(Default)]
pub struct ReqTable {
    slots: Vec<Slot>,
    free: Vec<u32>,
    logging: bool,
    log: Vec<(Req, ReqEvent)>,
}

fn unpack(r: Req) -> (usize, u32) {
    ((r.0 >> 32) as usize, r.0 as u32)
}

fn pack(idx: usize, nonce: u32) -> Req {
    Req(((idx as u64) << 32) | u64::from(nonce))
}

impl ReqTable {
    /// Create an empty table.
    pub fn new() -> Self {
        ReqTable::default()
    }

    /// Enable or disable lifecycle logging (see [`ReqEvent`]).
    pub fn set_logging(&mut self, on: bool) {
        self.logging = on;
    }

    /// Drain the recorded lifecycle log.
    pub fn take_log(&mut self) -> Vec<(Req, ReqEvent)> {
        std::mem::take(&mut self.log)
    }

    /// Allocate a pending request.
    pub fn alloc(&mut self, kind: ReqKind) -> Req {
        let state = ReqState {
            kind,
            done: false,
            data: None,
            waiters: Vec::new(),
        };
        let r = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slots[idx as usize];
                slot.nonce = slot.nonce.wrapping_add(1);
                slot.state = Some(state);
                pack(idx as usize, slot.nonce)
            }
            None => {
                self.slots.push(Slot {
                    nonce: 0,
                    state: Some(state),
                });
                pack(self.slots.len() - 1, 0)
            }
        };
        if self.logging {
            self.log.push((r, ReqEvent::Alloc(kind)));
        }
        r
    }

    /// Allocate a request that is already complete (the dummy epoch-opening
    /// request of §VII.C).
    pub fn alloc_done(&mut self, kind: ReqKind) -> Req {
        let r = self.alloc(kind);
        self.complete(r, None);
        r
    }

    fn get(&self, r: Req) -> Option<&ReqState> {
        let (idx, nonce) = unpack(r);
        let slot = self.slots.get(idx)?;
        if slot.nonce != nonce {
            return None;
        }
        slot.state.as_ref()
    }

    fn get_mut(&mut self, r: Req) -> Option<&mut ReqState> {
        let (idx, nonce) = unpack(r);
        let slot = self.slots.get_mut(idx)?;
        if slot.nonce != nonce {
            return None;
        }
        slot.state.as_mut()
    }

    /// Mark a request complete, attaching optional result data, and wake
    /// every waiter. Completing an already-complete request is a no-op for
    /// `data == None` (idempotent completion notifications are common).
    pub fn complete(&mut self, r: Req, data: Option<Bytes>) {
        let st = self
            .get_mut(r)
            .expect("engine completed a request that does not exist");
        if st.done && data.is_none() {
            return;
        }
        let transition = !st.done;
        st.done = true;
        if data.is_some() {
            st.data = data;
        }
        for w in st.waiters.drain(..) {
            w.fire();
        }
        if self.logging && transition {
            self.log.push((r, ReqEvent::Complete));
        }
    }

    /// Whether the request is complete. Errors on stale handles.
    pub fn is_done(&self, r: Req) -> RmaResult<bool> {
        self.get(r).map(|s| s.done).ok_or(RmaError::InvalidRequest)
    }

    /// The request's kind. Errors on stale handles.
    pub fn kind(&self, r: Req) -> RmaResult<ReqKind> {
        self.get(r).map(|s| s.kind).ok_or(RmaError::InvalidRequest)
    }

    /// Register a signal to fire when `r` completes (fires immediately if
    /// already complete).
    pub fn add_waiter(&mut self, r: Req, sig: Signal) -> RmaResult<()> {
        let st = self.get_mut(r).ok_or(RmaError::InvalidRequest)?;
        if st.done {
            sig.fire();
        } else {
            st.waiters.push(sig);
        }
        Ok(())
    }

    /// Consume a *completed* request, returning its result data. Errors if
    /// the handle is stale; panics if the request is not complete (callers
    /// check or wait first).
    pub fn consume(&mut self, r: Req) -> RmaResult<Option<Bytes>> {
        let (idx, nonce) = unpack(r);
        let slot = self.slots.get_mut(idx).ok_or(RmaError::InvalidRequest)?;
        if slot.nonce != nonce || slot.state.is_none() {
            return Err(RmaError::InvalidRequest);
        }
        let st = slot.state.take().unwrap();
        assert!(st.done, "consume() on an incomplete request");
        self.free.push(idx as u32);
        if self.logging {
            self.log.push((r, ReqEvent::Consume));
        }
        Ok(st.data)
    }

    /// Number of live (unconsumed) requests — used by leak-check tests.
    pub fn live(&self) -> usize {
        self.slots.iter().filter(|s| s.state.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut t = ReqTable::new();
        let r = t.alloc(ReqKind::EpochClose);
        assert!(!t.is_done(r).unwrap());
        t.complete(r, Some(Bytes::from_static(b"xy")));
        assert!(t.is_done(r).unwrap());
        assert_eq!(t.consume(r).unwrap().unwrap().as_ref(), b"xy");
        // Handle is now stale.
        assert_eq!(t.is_done(r), Err(RmaError::InvalidRequest));
    }

    #[test]
    fn alloc_done_is_complete_at_creation() {
        let mut t = ReqTable::new();
        let r = t.alloc_done(ReqKind::EpochOpen);
        assert!(t.is_done(r).unwrap());
        assert_eq!(t.kind(r).unwrap(), ReqKind::EpochOpen);
    }

    #[test]
    fn slot_reuse_invalidates_old_handle() {
        let mut t = ReqTable::new();
        let r1 = t.alloc(ReqKind::Comm);
        t.complete(r1, None);
        t.consume(r1).unwrap();
        let r2 = t.alloc(ReqKind::Comm);
        assert_ne!(r1, r2);
        assert_eq!(t.is_done(r1), Err(RmaError::InvalidRequest));
        assert!(!t.is_done(r2).unwrap());
    }

    #[test]
    fn waiter_fires_on_completion_and_immediately_if_done() {
        let mut t = ReqTable::new();
        let r = t.alloc(ReqKind::P2p);
        let s = Signal::new();
        t.add_waiter(r, s.clone()).unwrap();
        assert!(!s.is_fired());
        t.complete(r, None);
        assert!(s.is_fired());
        let s2 = Signal::new();
        t.add_waiter(r, s2.clone()).unwrap();
        assert!(s2.is_fired());
    }

    #[test]
    fn idempotent_completion() {
        let mut t = ReqTable::new();
        let r = t.alloc(ReqKind::Flush);
        t.complete(r, None);
        t.complete(r, None); // no panic
        assert!(t.is_done(r).unwrap());
    }

    #[test]
    fn log_records_lifecycle_in_order() {
        let mut t = ReqTable::new();
        t.set_logging(true);
        let r = t.alloc(ReqKind::Comm);
        t.complete(r, None);
        t.complete(r, None); // idempotent: not logged twice
        t.consume(r).unwrap();
        let d = t.alloc_done(ReqKind::EpochOpen);
        assert_eq!(
            t.take_log(),
            vec![
                (r, ReqEvent::Alloc(ReqKind::Comm)),
                (r, ReqEvent::Complete),
                (r, ReqEvent::Consume),
                (d, ReqEvent::Alloc(ReqKind::EpochOpen)),
                (d, ReqEvent::Complete),
            ]
        );
        assert!(t.take_log().is_empty());
    }

    #[test]
    fn live_count_tracks_alloc_and_consume() {
        let mut t = ReqTable::new();
        assert_eq!(t.live(), 0);
        let a = t.alloc(ReqKind::Comm);
        let b = t.alloc(ReqKind::Comm);
        assert_eq!(t.live(), 2);
        t.complete(a, None);
        t.consume(a).unwrap();
        assert_eq!(t.live(), 1);
        t.complete(b, None);
        t.consume(b).unwrap();
        assert_eq!(t.live(), 0);
    }
}
