//! Job-level configuration: synchronization strategy, window info keys, and
//! modeled software overheads.

use mpisim_net::NetParams;
use mpisim_sim::{ExecMode, SimTime};

/// Which RMA engine behaviour the job runs with.
///
/// The paper's evaluation compares three series; the first two map to this
/// enum, and the third is the `Redesigned` engine driven through the
/// nonblocking API:
///
/// * **"MVAPICH"** → [`SyncStrategy::LazyBaseline`]: lazy lock acquisition
///   (the whole passive-target epoch degenerates to the `unlock` call), RMA
///   issued at the epoch-closing routine, and all internode targets must be
///   ready before communication is issued to any of them (§VIII.B).
/// * **"New"** → [`SyncStrategy::Redesigned`] with blocking calls.
/// * **"New nonblocking"** → [`SyncStrategy::Redesigned`] with the
///   `i`-routines.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SyncStrategy {
    /// Vanilla-MVAPICH-like behaviour (the paper's baseline series).
    LazyBaseline,
    /// The paper's redesigned engine: eager per-target issue, deferred
    /// epochs, nonblocking synchronizations available.
    Redesigned,
}

/// Per-window info-object flags (§VI.B): the four reorder flags that allow
/// the progress engine to activate an epoch while the immediately preceding
/// one is still active. All default to off, which guarantees
/// memory-consistency safety.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct WinInfo {
    /// `MPI_WIN_ACCESS_AFTER_ACCESS_REORDER`: an origin-side epoch may
    /// progress while the immediately preceding origin-side epoch is active.
    pub access_after_access: bool,
    /// `MPI_WIN_ACCESS_AFTER_EXPOSURE_REORDER`: an origin-side epoch may
    /// progress while the immediately preceding exposure epoch is active.
    pub access_after_exposure: bool,
    /// `MPI_WIN_EXPOSURE_AFTER_EXPOSURE_REORDER`: a target-side epoch may
    /// progress while the immediately preceding target-side epoch is active.
    pub exposure_after_exposure: bool,
    /// `MPI_WIN_EXPOSURE_AFTER_ACCESS_REORDER`: a target-side epoch may
    /// progress while the immediately preceding origin-side epoch is active.
    pub exposure_after_access: bool,
    /// **Extension (the paper's §X future work):** let the four reorder
    /// flags also apply across *fence* epochs. A fence epoch is both an
    /// access and an exposure epoch, so the pairwise predicate requires
    /// the flags of both sides. The barrier semantics of the closed fence
    /// are still honoured for the fence's own completion — only the
    /// *activation* of the adjacent epoch may overlap it. Off by default;
    /// the programmer asserts disjoint memory accesses, exactly as for
    /// the four base flags (§VI.C). `lock_all` adjacency remains excluded
    /// unconditionally (recursive-locking / lock-and-exposed hazards,
    /// §VI.B).
    pub unsafe_fence_reorder: bool,
}

impl WinInfo {
    /// All four reorder flags enabled (the programmer asserts disjoint
    /// memory accesses across concurrently progressed epochs). The fence
    /// extension stays off.
    pub fn all_reorder() -> Self {
        WinInfo {
            access_after_access: true,
            access_after_exposure: true,
            exposure_after_exposure: true,
            exposure_after_access: true,
            unsafe_fence_reorder: false,
        }
    }

    /// Only `A_A_A_R` enabled.
    pub fn aaar() -> Self {
        WinInfo {
            access_after_access: true,
            ..WinInfo::default()
        }
    }
}

/// Modeled software overheads of the middleware itself.
#[derive(Clone, Debug)]
pub struct Overheads {
    /// CPU cost charged on entry to every MPI call (the ε of §IV.C).
    pub call_entry: SimTime,
    /// Extra CPU cost to post one RMA operation.
    pub per_op: SimTime,
}

impl Default for Overheads {
    fn default() -> Self {
        Overheads {
            call_entry: SimTime::from_nanos(300),
            per_op: SimTime::from_nanos(150),
        }
    }
}

/// Tuning of the ack/retransmit reliability sublayer (see DESIGN.md §11).
///
/// Present (`Some`) = every internode message travels as a
/// sequence-numbered [`crate::msg::Body::Rel`] frame with cumulative acks,
/// timeout-driven retransmit, duplicate suppression, and checksum
/// validation. Absent = messages ride the fabric raw, the pre-fault-model
/// behaviour.
#[derive(Clone, Debug)]
pub struct Reliability {
    /// Initial retransmit timeout (doubled per retry).
    pub rto: SimTime,
    /// Backoff ceiling: the per-retry delay never exceeds this.
    pub max_backoff: SimTime,
    /// Retransmit attempts before the frame is abandoned and surfaced as
    /// a `RetriesExhausted` (or `PeerCrash`) degradation.
    pub max_retries: u32,
    /// Delayed-ack window (TCP-style): after the first unacknowledged
    /// delivery the receiver holds its cumulative ack this long, so a
    /// burst of frames is covered by a single ack instead of one per
    /// frame. Zero = ack on the next sweep (the pre-coalescing
    /// behaviour). Must stay well below `rto`, or every frame would
    /// spuriously retransmit before its ack leaves.
    pub ack_delay: SimTime,
}

impl Default for Reliability {
    fn default() -> Self {
        // RTO ≈ 13× the calibrated one-way latency; 7 doublings reach the
        // 2 ms cap, so the default budget rides out the CI transient
        // partition (heals at 2 ms) with retries to spare.
        Reliability {
            rto: SimTime::from_micros(20),
            max_backoff: SimTime::from_millis(2),
            max_retries: 12,
            // 1/20 of the RTO: bursts coalesce, retransmit timers don't
            // notice.
            ack_delay: SimTime::from_micros(1),
        }
    }
}

/// Tuning of the epoch-aligned crash-recovery subsystem (DESIGN.md §16).
///
/// Present (`Some`) = every rank checkpoints its window contents and
/// ω-triples into an in-simulation stable store at epoch-commit points
/// and journals later window writes into a redo log; a rank crashed by
/// the fault plan's `crash_at_commit` list is restarted from its last
/// checkpoint after a bounded outage. Requires the reliability sublayer
/// (the outage is bridged by retransmission, like a transient partition).
#[derive(Clone, Debug)]
pub struct RecoveryCfg {
    /// Checkpoint cadence: cut a fresh snapshot every this-many epoch
    /// commits (1 = every commit). The initial `win_allocate` baseline is
    /// always kept, so sparse cadences still have a restore point.
    pub ckpt_every: u64,
    /// Outage duration: virtual time between the crash and the restart.
    /// Must stay well inside the reliability retry budget so retransmits
    /// bridge the outage.
    pub restart_after: SimTime,
    /// Validation backdoor: restore the raw checkpoint *without* redo-log
    /// replay — a deliberately stale restore the conformance harness's
    /// `--inject bad-recovery` self-test requires the differential check
    /// to catch. Never set outside the harness.
    pub plant_stale: bool,
}

impl Default for RecoveryCfg {
    fn default() -> Self {
        // 1 ms outage: ~7 doublings of the default 20 µs RTO land a
        // retransmit just after the NIC is back, well inside the 12-retry
        // budget.
        RecoveryCfg {
            ckpt_every: 1,
            restart_after: SimTime::from_millis(1),
            plant_stale: false,
        }
    }
}

/// Everything needed to run one simulated MPI job.
#[derive(Clone, Debug)]
pub struct JobConfig {
    /// Number of ranks.
    pub n_ranks: usize,
    /// Ranks per node (block placement).
    pub cores_per_node: usize,
    /// Network cost model.
    pub net: NetParams,
    /// Engine strategy (baseline vs redesigned).
    pub strategy: SyncStrategy,
    /// Deterministic seed.
    pub seed: u64,
    /// Software overheads.
    pub overheads: Overheads,
    /// Eager/rendezvous threshold for two-sided and accumulate payloads,
    /// bytes. The paper observes no overlap for accumulates above 8 KB
    /// because of the internal rendezvous (§VIII.A).
    pub rndv_threshold: usize,
    /// Per-process stack size for rank threads.
    pub stack_size: usize,
    /// Event cap (runaway backstop).
    pub event_cap: u64,
    /// Record epoch lifecycle traces (see [`crate::trace`]).
    pub trace: bool,
    /// Seeded tie-break perturbation for same-time simulator events
    /// (`None` = FIFO order). Each seed selects one legal alternative
    /// schedule; the conformance harness sweeps this to explore the
    /// schedule space (see `Sim::set_tiebreak_seed`).
    pub tiebreak_seed: Option<u64>,
    /// Named fault to inject into the engine, used only by the conformance
    /// harness to prove it catches real bugs. `None` (the default) reads
    /// the `MPISIM_CHECK_INJECT` environment variable as a fallback, so a
    /// fault can also be smuggled in without touching any call site;
    /// `Some("")` disables injection unconditionally. Recognized names:
    /// `"skip-grant"`, `"double-acc"`.
    pub fault: Option<String>,
    /// Ack/retransmit reliability sublayer for internode traffic
    /// (`None` = off, the pre-fault-model behaviour). Required for clean
    /// runs whenever `net.faults` injects loss, duplication, reordering,
    /// or corruption.
    pub reliability: Option<Reliability>,
    /// Epoch-aligned checkpointing and crash recovery (`None` = off). See
    /// [`RecoveryCfg`].
    pub recovery: Option<RecoveryCfg>,
    /// Epoch stall watchdog: the sim-time budget an open epoch or pending
    /// request may go without progress before it is cancelled and
    /// surfaced as a structured `StallReport` (`None` = no watchdog; a
    /// genuinely stuck schedule then surfaces as a simulator deadlock).
    pub watchdog: Option<SimTime>,
    /// How rank processes execute (see `mpisim_sim::ExecMode`). The
    /// default is pooled fiber execution where supported; thread-per-rank
    /// remains available as the differential baseline for the determinism
    /// cross-check.
    pub exec: ExecMode,
    /// Validation backdoor: deliberately nondeterministic event tie-breaks
    /// (see `Sim::set_nondet_tiebreak`). Exists solely so the determinism
    /// cross-check can prove it would catch a nondeterministic kernel.
    pub nondet_tiebreak: bool,
    /// Bounded spin before a baton handoff parks on its condvar (`None` =
    /// auto-detect from machine parallelism; `Some(0)` disables spinning).
    /// Only thread-per-rank and pooled-with-workers modes hand off batons;
    /// inline pooled execution never parks.
    pub handoff_spin: Option<u32>,
}

impl JobConfig {
    /// A job of `n_ranks` on the calibrated QDR-InfiniBand-like cluster with
    /// 16 cores per node and the redesigned engine.
    pub fn new(n_ranks: usize) -> Self {
        JobConfig {
            n_ranks,
            cores_per_node: 16,
            net: NetParams::qdr_infiniband(),
            strategy: SyncStrategy::Redesigned,
            seed: 0xC0FFEE,
            overheads: Overheads::default(),
            rndv_threshold: 8 * 1024,
            stack_size: mpisim_sim::DEFAULT_STACK_SIZE,
            event_cap: mpisim_sim::DEFAULT_EVENT_CAP,
            trace: false,
            tiebreak_seed: None,
            fault: None,
            reliability: None,
            recovery: None,
            watchdog: None,
            exec: ExecMode::default(),
            nondet_tiebreak: false,
            handoff_spin: None,
        }
    }

    /// Same, but every rank on its own node (all channels internode) — the
    /// configuration used by the paper's microbenchmarks.
    pub fn all_internode(n_ranks: usize) -> Self {
        JobConfig {
            cores_per_node: 1,
            ..JobConfig::new(n_ranks)
        }
    }

    /// Switch to the lazy baseline strategy.
    pub fn with_strategy(mut self, s: SyncStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable the reliability sublayer with default tuning.
    pub fn with_reliability(mut self) -> Self {
        self.reliability = Some(Reliability::default());
        self
    }

    /// Arm epoch-aligned checkpointing and crash recovery with default
    /// tuning (checkpoint every commit, 1 ms restart outage).
    pub fn with_recovery(mut self) -> Self {
        self.recovery = Some(RecoveryCfg::default());
        self
    }

    /// Arm the epoch stall watchdog with the given progress budget.
    pub fn with_watchdog(mut self, budget: SimTime) -> Self {
        self.watchdog = Some(budget);
        self
    }

    /// Select the rank execution mode.
    pub fn with_exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = JobConfig::new(8);
        assert_eq!(c.n_ranks, 8);
        assert_eq!(c.strategy, SyncStrategy::Redesigned);
        assert_eq!(c.rndv_threshold, 8192);
        let c2 = JobConfig::all_internode(4);
        assert_eq!(c2.cores_per_node, 1);
    }

    #[test]
    fn info_constructors() {
        assert!(!WinInfo::default().access_after_access);
        assert!(WinInfo::aaar().access_after_access);
        assert!(!WinInfo::aaar().exposure_after_access);
        let all = WinInfo::all_reorder();
        assert!(
            all.access_after_access
                && all.access_after_exposure
                && all.exposure_after_exposure
                && all.exposure_after_access
        );
    }
}
