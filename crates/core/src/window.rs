//! Per-rank window state: exposed memory, the ω matching triples, the
//! deferred-epoch queue, target-side grant sequencing, the lock manager,
//! fence bookkeeping, and flush requests.

use std::collections::{BTreeMap, HashMap, VecDeque};

use mpisim_net::U64Fifo;

use crate::config::WinInfo;
use crate::epoch::{EpochKind, EpochObj};
use crate::lock::LockMgr;
use crate::types::{EpochId, Rank, Req};

/// Capacity of each intranode notification FIFO, packets.
pub const FIFO_CAPACITY: usize = 1024;

/// Retired epoch objects kept around for reuse, per (window, rank) side.
/// Steady-state workloads rarely hold more than a handful of epochs open,
/// so a small cap bounds the arena without ever forcing a fresh
/// allocation in practice.
pub const EPOCH_POOL_CAP: usize = 32;

/// Target-side grant sequencing toward one origin (§VII.B).
///
/// Grants to an origin must be emitted in that origin's access-id order:
/// grant `k+1` cannot be emitted before grant `k`. Exposure grants consume
/// the next id positionally; lock grants carry their id explicitly in the
/// lock request.
#[derive(Debug, Default)]
pub struct GrantSeq {
    /// Exposure grants emitted so far (the origin's `g_r` mirrors this).
    pub g_sent: u64,
    /// Activated exposures whose grant has not been emitted yet.
    pub exposure_credits: u64,
    /// Lock plane: received, ungranted lock requests by lock access id.
    pub pending_locks: BTreeMap<u64, crate::types::LockKind>,
    /// Lock plane: lock grants emitted so far (the origin's `g_lock`
    /// mirrors this).
    pub gl_sent: u64,
}

/// An outstanding (nonblocking) flush request, age-stamped per §VII.C.
#[derive(Debug)]
pub struct FlushState {
    /// The passive epochs being flushed (several for `flush_all` when
    /// multiple single-target lock epochs are open).
    pub epochs: Vec<EpochId>,
    /// Specific target, or `None` for the `_all` variants.
    pub target: Option<Rank>,
    /// Age of the RMA call that immediately precedes the flush.
    pub stamp: u64,
    /// Local-only flush (`flush_local` family).
    pub local_only: bool,
    /// Completion counter: incomplete covered ops ("assigned from the
    /// number of RMA calls yet to complete", §VII.C).
    pub remaining: u64,
    /// Request completed when `remaining` reaches zero.
    pub req: Req,
}

/// One rank's side of one RMA window.
pub struct WinRank {
    /// The exposed memory region.
    pub mem: Vec<u8>,
    /// Info-object flags.
    pub info: WinInfo,

    /// All epochs not yet retired, by id.
    pub epochs: HashMap<u64, EpochObj>,
    /// Epoch ids in open order, not yet internally complete (the deferred
    /// epoch queue plus the active set).
    pub order: VecDeque<EpochId>,
    /// Next epoch id to assign.
    pub next_epoch: u64,
    /// Application-level currently open GATS access epoch.
    pub cur_gats_access: Option<EpochId>,
    /// Application-level currently open exposure epoch.
    pub cur_exposure: Option<EpochId>,
    /// Application-level currently open fence epoch.
    pub cur_fence: Option<EpochId>,
    /// Open single-target lock epochs by target (MPI allows several at
    /// once, to distinct targets).
    pub open_locks: BTreeMap<Rank, EpochId>,
    /// Open lock-all epoch, if any.
    pub cur_lock_all: Option<EpochId>,

    // ---- ω triples (§VII.B), one slot per peer ----
    /// Accesses requested from me to peer (`a_l`).
    pub a: Vec<u64>,
    /// Exposures opened from me to peer (`e_l`).
    pub e: Vec<u64>,
    /// Accesses granted to me by peer (`g_r`; updated one-sidedly by the
    /// peer via grant packets).
    pub g: Vec<u64>,
    /// Lock-plane request counter: lock epochs opened from me toward peer.
    /// Kept separate from the GATS triple so exposure grants can never be
    /// confused with lock grants when both planes are in flight (see
    /// DESIGN.md, "deviation: split matching planes").
    pub a_lock: Vec<u64>,
    /// Lock-plane grants received from peer.
    pub g_lock: Vec<u64>,
    /// Highest GATS done id received from each origin.
    pub gats_done_recv: Vec<u64>,

    /// Target-side grant sequencing per origin.
    pub grant_seq: Vec<GrantSeq>,
    /// Origins whose grant sequence may have emission work pending
    /// (deduplicated work list; ping-pongs with a sweep scratch buffer
    /// while the grant pump drains it).
    pub grant_dirty: Vec<Rank>,
    /// Target-side lock manager.
    pub lock_mgr: LockMgr,

    // ---- fence bookkeeping (window-level: data can arrive before the
    // local fence epoch object exists) ----
    /// Data messages received per (origin, fence seq).
    pub fence_arrivals: HashMap<(usize, u64), u64>,
    /// FenceDone announcements received: (origin, seq) → ops they sent me.
    pub fence_dones: HashMap<(usize, u64), u64>,
    /// Next fence sequence this rank will open.
    pub next_fence_seq: u64,

    /// Monotonic RMA-call age for flush stamping.
    pub next_age: u64,
    /// Outstanding nonblocking flushes.
    pub flushes: Vec<FlushState>,

    /// Lock grants still owed to epochs the watchdog cancelled, as
    /// `(granter, access_id)`. When such a grant arrives late there is no
    /// epoch left to unblock; it is answered with an immediate unlock so
    /// the granter's queue keeps moving.
    pub cancelled_lock_grants: Vec<(Rank, u64)>,

    /// Inbound intranode notification FIFOs, one per same-node peer.
    /// Sweep step 5 never scans this map: the engine's pending-FIFO index
    /// records exactly which (window, peer) rings hold packets, so only
    /// those are drained.
    pub fifos_in: BTreeMap<Rank, U64Fifo>,

    /// Arena of retired epoch objects awaiting reuse (capped at
    /// [`EPOCH_POOL_CAP`]). Epochs churn once per fence phase per rank;
    /// recycling them keeps the op-record containers' capacity across
    /// epochs instead of reallocating per phase.
    pub epoch_pool: Vec<EpochObj>,
}

impl WinRank {
    /// Create this rank's side of a window with `size` bytes of exposed
    /// memory in a job of `n_ranks`.
    pub fn new(size: usize, info: WinInfo, n_ranks: usize) -> Self {
        WinRank {
            mem: vec![0; size],
            info,
            epochs: HashMap::new(),
            order: VecDeque::new(),
            next_epoch: 1,
            cur_gats_access: None,
            cur_exposure: None,
            cur_fence: None,
            open_locks: BTreeMap::new(),
            cur_lock_all: None,
            a: vec![0; n_ranks],
            e: vec![0; n_ranks],
            g: vec![0; n_ranks],
            a_lock: vec![0; n_ranks],
            g_lock: vec![0; n_ranks],
            gats_done_recv: vec![0; n_ranks],
            grant_seq: (0..n_ranks).map(|_| GrantSeq::default()).collect(),
            grant_dirty: Vec::new(),
            lock_mgr: LockMgr::default(),
            fence_arrivals: HashMap::new(),
            fence_dones: HashMap::new(),
            next_fence_seq: 0,
            next_age: 1,
            flushes: Vec::new(),
            cancelled_lock_grants: Vec::new(),
            fifos_in: BTreeMap::new(),
            epoch_pool: Vec::new(),
        }
    }

    /// Allocate the next epoch id.
    pub fn alloc_epoch_id(&mut self) -> EpochId {
        let id = EpochId(self.next_epoch);
        self.next_epoch += 1;
        id
    }

    /// Insert a freshly created epoch at the tail of the open order.
    pub fn push_epoch(&mut self, e: EpochObj) {
        let id = e.id;
        self.epochs.insert(id.0, e);
        self.order.push_back(id);
    }

    /// Build an epoch object for `(id, kind)`, reusing a retired one from
    /// the arena when available (the PR-3 `Payload`/`Bytes` pattern:
    /// recycle the allocation, reinitialize the state).
    pub fn new_epoch(&mut self, id: EpochId, kind: EpochKind) -> EpochObj {
        match self.epoch_pool.pop() {
            Some(mut e) => {
                e.reset(id, kind);
                e
            }
            None => EpochObj::new(id, kind),
        }
    }

    /// Immutable epoch lookup.
    pub fn epoch(&self, id: EpochId) -> &EpochObj {
        &self.epochs[&id.0]
    }

    /// Mutable epoch lookup.
    pub fn epoch_mut(&mut self, id: EpochId) -> &mut EpochObj {
        self.epochs.get_mut(&id.0).expect("unknown epoch id")
    }

    /// Retire an internally complete epoch: remove it from the order and
    /// recycle the object into the arena for the next `new_epoch`.
    pub fn retire(&mut self, id: EpochId) {
        self.order.retain(|e| *e != id);
        if let Some(e) = self.epochs.remove(&id.0) {
            if self.epoch_pool.len() < EPOCH_POOL_CAP {
                self.epoch_pool.push(e);
            }
        }
    }

    /// The epoch immediately preceding `id` in open order, if any.
    pub fn preceding(&self, id: EpochId) -> Option<EpochId> {
        let pos = self.order.iter().position(|e| *e == id)?;
        if pos == 0 {
            None
        } else {
            Some(self.order[pos - 1])
        }
    }

    /// Next RMA-call age.
    pub fn alloc_age(&mut self) -> u64 {
        let a = self.next_age;
        self.next_age += 1;
        a
    }

    /// The application-level open access epoch that covers RMA toward
    /// `target`, resolved in the order single-target lock → lock_all →
    /// GATS access → fence (concurrent coverage of the same target by more
    /// than one of these is erroneous in MPI and unreachable through the
    /// API checks).
    pub fn open_access_covering(&self, target: Rank) -> Option<EpochId> {
        if let Some(id) = self.open_locks.get(&target) {
            return Some(*id);
        }
        if let Some(id) = self.cur_lock_all {
            return Some(id);
        }
        if let Some(id) = self.cur_gats_access {
            if self.epoch(id).covers_target(target) {
                return Some(id);
            }
        }
        self.cur_fence
    }

    /// The inbound FIFO from `peer`, created on first use.
    pub fn fifo_from(&mut self, peer: Rank) -> &mut U64Fifo {
        self.fifos_in
            .entry(peer)
            .or_insert_with(|| U64Fifo::new(FIFO_CAPACITY))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch::EpochKind;
    use crate::types::Group;

    fn mk() -> WinRank {
        WinRank::new(64, WinInfo::default(), 4)
    }

    #[test]
    fn epoch_order_and_preceding() {
        let mut w = mk();
        let a = w.alloc_epoch_id();
        w.push_epoch(EpochObj::new(a, EpochKind::LockAll));
        let b = w.alloc_epoch_id();
        w.push_epoch(EpochObj::new(
            b,
            EpochKind::GatsAccess {
                group: Group::new([1]),
            },
        ));
        assert_eq!(w.preceding(a), None);
        assert_eq!(w.preceding(b), Some(a));
        w.retire(a);
        assert_eq!(w.preceding(b), None);
        assert_eq!(w.order.len(), 1);
    }

    #[test]
    fn ages_are_monotonic() {
        let mut w = mk();
        let a1 = w.alloc_age();
        let a2 = w.alloc_age();
        assert!(a2 > a1);
    }

    #[test]
    fn fifo_created_on_demand() {
        let mut w = mk();
        assert!(w.fifos_in.is_empty());
        w.fifo_from(Rank(2)).push(42);
        assert_eq!(w.fifos_in.len(), 1);
        assert_eq!(w.fifo_from(Rank(2)).pop(), Some(42));
    }

    #[test]
    fn memory_initialized_zeroed() {
        let w = mk();
        assert_eq!(w.mem.len(), 64);
        assert!(w.mem.iter().all(|b| *b == 0));
    }
}
