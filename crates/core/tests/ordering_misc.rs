//! Ordering guarantees and miscellaneous semantics not covered elsewhere:
//! accumulate ordering between a pair, flush corner cases, window
//! lifecycle errors, and multi-window interleavings.

use std::sync::{Arc, Mutex};

use mpisim_core::{
    run_job, Datatype, Group, JobConfig, LockKind, Rank, ReduceOp, RmaError,
};
use mpisim_sim::SimTime;

#[test]
fn accumulates_between_a_pair_apply_in_order() {
    // MPI orders accumulates between the same origin/target pair: Replace
    // then Sum must yield replace+sum, never sum-then-replace.
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.write_local(win, 0, &100u64.to_le_bytes()).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.accumulate(win, Rank(1), 0, Datatype::U64, ReduceOp::Replace, &7u64.to_le_bytes())
                .unwrap();
            env.accumulate(win, Rank(1), 0, Datatype::U64, ReduceOp::Sum, &1u64.to_le_bytes())
                .unwrap();
            env.unlock(win, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            let v = u64::from_le_bytes(env.read_local(win, 0, 8).unwrap().try_into().unwrap());
            assert_eq!(v, 8, "Replace(7) then Sum(1) must give 8");
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn put_then_get_same_epoch_sees_the_put() {
    // In-order channels make a get observe a preceding put of the same
    // epoch to the same target (stronger than MPI requires, matching the
    // paper's in-order InfiniBand channels).
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, &[0xEE; 8]).unwrap();
            let r = env.get(win, Rank(1), 0, 8).unwrap();
            env.unlock(win, Rank(1)).unwrap();
            assert_eq!(env.wait_data(r).unwrap().as_ref(), &[0xEE; 8]);
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn flush_with_nothing_outstanding_completes_immediately() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Shared).unwrap();
            let t0 = env.now();
            env.flush(win, Rank(1)).unwrap();
            env.flush_local_all(win).unwrap();
            let r = env.iflush_all(win).unwrap();
            assert!(env.test(r).unwrap(), "empty iflush must be complete at creation");
            assert!((env.now() - t0).as_micros_f64() < 10.0);
            env.unlock(win, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn iflush_local_all_spans_open_locks() {
    run_job(JobConfig::all_internode(3), |env| {
        let win = env.win_allocate(1 << 20).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Shared).unwrap();
            env.lock(win, Rank(2), LockKind::Shared).unwrap();
            env.put_synthetic(win, Rank(1), 0, 1 << 20).unwrap();
            env.put_synthetic(win, Rank(2), 0, 1 << 20).unwrap();
            let r = env.iflush_local_all(win).unwrap();
            env.wait(r).unwrap();
            // Both buffers now reusable; epochs still open.
            env.unlock(win, Rank(1)).unwrap();
            env.unlock(win, Rank(2)).unwrap();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn win_free_rejects_open_epochs() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        env.lock(win, Rank(1), LockKind::Shared).unwrap();
        let err = env.win_free(win).unwrap_err();
        assert!(matches!(err, RmaError::AlreadyInEpoch { .. }));
        env.unlock(win, Rank(1)).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn exposure_group_with_multiple_origins_and_staggered_arrivals() {
    run_job(JobConfig::all_internode(4), |env| {
        let win = env.win_allocate(32).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            // One exposure epoch for three origins arriving at 0/200/400 µs.
            env.post(win, Group::new([1, 2, 3])).unwrap();
            env.wait_epoch(win).unwrap();
            for s in 1..4usize {
                assert_eq!(env.read_local(win, s * 8, 8).unwrap(), vec![s as u8; 8]);
            }
        } else {
            let me = env.rank().idx();
            env.compute(SimTime::from_micros(200 * (me as u64 - 1)));
            env.start(win, Group::single(Rank(0))).unwrap();
            env.put(win, Rank(0), me * 8, &[me as u8; 8]).unwrap();
            env.complete(win).unwrap();
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn interleaved_epochs_on_two_windows_do_not_serialize() {
    // Epoch ordering is per window: an incomplete epoch on window A must
    // not defer epochs on window B.
    let t = Arc::new(Mutex::new(0u64));
    let t2 = t.clone();
    run_job(JobConfig::all_internode(3), move |env| {
        let wa = env.win_allocate(1 << 20).unwrap();
        let wb = env.win_allocate(1 << 20).unwrap();
        env.barrier().unwrap();
        match env.rank().idx() {
            0 => {
                // Epoch on A toward the late rank 1...
                env.start(wa, Group::single(Rank(1))).unwrap();
                env.put_synthetic(wa, Rank(1), 0, 1 << 20).unwrap();
                let ra = env.icomplete(wa).unwrap();
                // ...must not hold back the epoch on B toward punctual 2.
                env.start(wb, Group::single(Rank(2))).unwrap();
                env.put_synthetic(wb, Rank(2), 0, 1 << 20).unwrap();
                let rb = env.icomplete(wb).unwrap();
                env.wait(rb).unwrap();
                env.wait(ra).unwrap();
            }
            1 => {
                env.compute(SimTime::from_micros(1000));
                env.post(wa, Group::single(Rank(0))).unwrap();
                env.wait_epoch(wa).unwrap();
            }
            _ => {
                let t0 = env.now();
                env.post(wb, Group::single(Rank(0))).unwrap();
                env.wait_epoch(wb).unwrap();
                *t2.lock().unwrap() = (env.now() - t0).as_nanos();
            }
        }
        env.barrier().unwrap();
        env.win_free(wa).unwrap();
        env.win_free(wb).unwrap();
    })
    .unwrap();
    let us = *t.lock().unwrap() as f64 / 1000.0;
    assert!(
        us < 800.0,
        "window B's epoch absorbed window A's delay: {us} µs"
    );
}

#[test]
fn test_polling_on_closing_request() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(1 << 20).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put_synthetic(win, Rank(1), 0, 1 << 20).unwrap();
            let r = env.iunlock(win, Rank(1)).unwrap();
            let mut polls = 0;
            while !env.test(r).unwrap() {
                polls += 1;
                env.compute(SimTime::from_micros(25));
            }
            assert!(polls > 3, "1 MB epoch should need several polls, got {polls}");
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn many_small_epochs_back_to_back_complete_in_order_without_flags() {
    // Nonblocking epochs without flags serialize internally but must all
    // complete; their requests fire in order.
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(256).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            let mut reqs = Vec::new();
            for i in 0..16u8 {
                let _ = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
                env.put(win, Rank(1), i as usize * 8, &[i; 8]).unwrap();
                reqs.push(env.iunlock(win, Rank(1)).unwrap());
            }
            env.wait_all(reqs).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            for i in 0..16u8 {
                assert_eq!(env.read_local(win, i as usize * 8, 8).unwrap(), vec![i; 8]);
            }
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}
