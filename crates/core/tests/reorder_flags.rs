//! Integration tests: the §VI.B info-object reorder flags and their effect
//! on out-of-order epoch progression (the shapes of Figs 7–11).

use std::sync::{Arc, Mutex};

use mpisim_core::{run_job, Group, JobConfig, LockKind, Rank, WinInfo};
use mpisim_sim::SimTime;

const MB: usize = 1 << 20;

fn us(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Fig 7 setting: one origin, two targets; T0 posts 1000 µs late. Returns
/// (T1 epoch length, origin cumulative) in µs.
fn aaar_gats(flag: bool) -> (f64, f64) {
    let out = Arc::new(Mutex::new((0u64, 0u64)));
    let o = out.clone();
    let info = if flag { WinInfo::aaar() } else { WinInfo::default() };
    run_job(JobConfig::all_internode(3), move |env| {
        let win = env.win_allocate_with(MB, info).unwrap();
        env.barrier().unwrap();
        let t0 = env.now();
        match env.rank().idx() {
            0 => {
                // Two access epochs back to back, nonblocking.
                env.start(win, Group::single(Rank(1))).unwrap();
                env.put_synthetic(win, Rank(1), 0, MB).unwrap();
                let r1 = env.icomplete(win).unwrap();
                env.start(win, Group::single(Rank(2))).unwrap();
                env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                let r2 = env.icomplete(win).unwrap();
                env.wait(r1).unwrap();
                env.wait(r2).unwrap();
                o.lock().unwrap().1 = (env.now() - t0).as_nanos();
            }
            1 => {
                // Late target T0.
                env.compute(SimTime::from_micros(1000));
                env.post(win, Group::single(Rank(0))).unwrap();
                env.wait_epoch(win).unwrap();
            }
            _ => {
                // Punctual target T1.
                env.post(win, Group::single(Rank(0))).unwrap();
                env.wait_epoch(win).unwrap();
                o.lock().unwrap().0 = (env.now() - t0).as_nanos();
            }
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let v = *out.lock().unwrap();
    (us(v.0), us(v.1))
}

#[test]
fn aaar_gats_unblocks_second_target() {
    let (t1_off, cum_off) = aaar_gats(false);
    let (t1_on, cum_on) = aaar_gats(true);
    // Flag off: T0's delay propagates through the origin to T1.
    assert!(
        t1_off > 1200.0,
        "without A_A_A_R, T1 should absorb T0's 1000 µs delay, got {t1_off} µs"
    );
    // Flag on: T1 sees only its own transfer.
    assert!(
        t1_on < 800.0,
        "with A_A_A_R, T1 must not wait for T0, got {t1_on} µs"
    );
    // Origin cumulative shrinks to roughly the late epoch alone.
    assert!(
        cum_on < cum_off,
        "origin cumulative should improve: {cum_on} vs {cum_off} µs"
    );
}

/// Fig 8 setting: O0 holds T0's lock for 1000 µs; O1 locks T0 then T1.
/// Returns O1's cumulative latency for both epochs, µs.
fn aaar_lock(flag: bool) -> f64 {
    let out = Arc::new(Mutex::new(0u64));
    let o = out.clone();
    let info = if flag { WinInfo::aaar() } else { WinInfo::default() };
    run_job(JobConfig::all_internode(4), move |env| {
        let win = env.win_allocate_with(MB, info).unwrap();
        env.barrier().unwrap();
        match env.rank().idx() {
            0 => {
                // O0 grabs T0's lock first and works inside the epoch.
                env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
                env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                env.compute(SimTime::from_micros(1000));
                env.unlock(win, Rank(2)).unwrap();
            }
            1 => {
                // O1 requests T0 right after, then a subsequent lock on T1.
                env.compute(SimTime::from_micros(50));
                let t0 = env.now();
                let _ = env.ilock(win, Rank(2), LockKind::Exclusive).unwrap();
                env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                let r1 = env.iunlock(win, Rank(2)).unwrap();
                let _ = env.ilock(win, Rank(3), LockKind::Exclusive).unwrap();
                env.put_synthetic(win, Rank(3), 0, MB).unwrap();
                let r2 = env.iunlock(win, Rank(3)).unwrap();
                env.wait(r1).unwrap();
                env.wait(r2).unwrap();
                *o.lock().unwrap() = (env.now() - t0).as_nanos();
            }
            _ => {}
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let v = *out.lock().unwrap();
    us(v)
}

#[test]
fn aaar_lock_progresses_second_epoch_out_of_order() {
    let off = aaar_lock(false);
    let on = aaar_lock(true);
    // Off: both epochs serialize behind O0's 1000 µs hold.
    assert!(off > 1500.0, "without A_A_A_R expected serialization, got {off} µs");
    // On: the T1 epoch completes while the T0 epoch is still delayed; the
    // cumulative latency is about the first epoch alone (paper: ≈1340 µs).
    assert!(
        on < off - 200.0,
        "A_A_A_R should cut O1's cumulative latency: {on} vs {off} µs"
    );
}

/// Fig 9 setting: P0 (late origin) → P2 (target then origin) → P1 (target).
/// Returns (P1 epoch µs, P2 cumulative µs).
fn aaer(flag: bool) -> (f64, f64) {
    let out = Arc::new(Mutex::new((0u64, 0u64)));
    let o = out.clone();
    let info = if flag {
        WinInfo {
            access_after_exposure: true,
            ..WinInfo::default()
        }
    } else {
        WinInfo::default()
    };
    run_job(JobConfig::all_internode(3), move |env| {
        let win = env.win_allocate_with(MB, info).unwrap();
        env.barrier().unwrap();
        let t0 = env.now();
        match env.rank().idx() {
            0 => {
                // Late origin toward P2.
                env.compute(SimTime::from_micros(1000));
                env.start(win, Group::single(Rank(2))).unwrap();
                env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                env.complete(win).unwrap();
            }
            1 => {
                // Final target.
                env.post(win, Group::single(Rank(2))).unwrap();
                env.wait_epoch(win).unwrap();
                o.lock().unwrap().0 = (env.now() - t0).as_nanos();
            }
            _ => {
                // P2: exposure for P0 first, then access toward P1.
                let _ = env.ipost(win, Group::single(Rank(0))).unwrap();
                let r1 = env.iwait(win).unwrap();
                env.start(win, Group::single(Rank(1))).unwrap();
                env.put_synthetic(win, Rank(1), 0, MB).unwrap();
                let r2 = env.icomplete(win).unwrap();
                env.wait(r1).unwrap();
                env.wait(r2).unwrap();
                o.lock().unwrap().1 = (env.now() - t0).as_nanos();
            }
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let v = *out.lock().unwrap();
    (us(v.0), us(v.1))
}

#[test]
fn aaer_detaches_access_from_stuck_exposure() {
    let (p1_off, _) = aaer(false);
    let (p1_on, p2_on) = aaer(true);
    assert!(
        p1_off > 1200.0,
        "without A_A_E_R, P0's delay should reach P1 transitively, got {p1_off} µs"
    );
    assert!(
        p1_on < 800.0,
        "with A_A_E_R, P1 must not absorb P0's delay, got {p1_on} µs"
    );
    assert!(p2_on > 1000.0, "P2 still waits for the late P0: {p2_on} µs");
}

/// Fig 10 setting: two origins, one target; O0 is late; the target's two
/// exposures serialize unless E_A_E_R. Returns (O1 epoch µs, target
/// cumulative µs).
fn eaer(flag: bool) -> (f64, f64) {
    let out = Arc::new(Mutex::new((0u64, 0u64)));
    let o = out.clone();
    let info = if flag {
        WinInfo {
            exposure_after_exposure: true,
            ..WinInfo::default()
        }
    } else {
        WinInfo::default()
    };
    run_job(JobConfig::all_internode(3), move |env| {
        let win = env.win_allocate_with(MB, info).unwrap();
        env.barrier().unwrap();
        let t0 = env.now();
        match env.rank().idx() {
            0 => {
                // Late origin O0.
                env.compute(SimTime::from_micros(1000));
                env.start(win, Group::single(Rank(2))).unwrap();
                env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                env.complete(win).unwrap();
            }
            1 => {
                // Punctual origin O1 matched by the target's second
                // exposure.
                env.start(win, Group::single(Rank(2))).unwrap();
                env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                env.complete(win).unwrap();
                o.lock().unwrap().0 = (env.now() - t0).as_nanos();
            }
            _ => {
                // Target: first exposure for O0, second for O1.
                let _ = env.ipost(win, Group::single(Rank(0))).unwrap();
                let r1 = env.iwait(win).unwrap();
                let _ = env.ipost(win, Group::single(Rank(1))).unwrap();
                let r2 = env.iwait(win).unwrap();
                env.wait(r1).unwrap();
                env.wait(r2).unwrap();
                o.lock().unwrap().1 = (env.now() - t0).as_nanos();
            }
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let v = *out.lock().unwrap();
    (us(v.0), us(v.1))
}

#[test]
fn eaer_detaches_second_exposure() {
    let (o1_off, _) = eaer(false);
    let (o1_on, tgt_on) = eaer(true);
    assert!(
        o1_off > 1200.0,
        "without E_A_E_R, O0's delay propagates to O1, got {o1_off} µs"
    );
    assert!(
        o1_on < 800.0,
        "with E_A_E_R, O1 completes independently, got {o1_on} µs"
    );
    assert!(tgt_on > 1000.0, "target still waits for late O0: {tgt_on} µs");
}

/// Fig 11 setting: P2 is origin toward late target P0, then target for P1.
/// Returns P1's epoch length, µs.
fn eaar(flag: bool) -> f64 {
    let out = Arc::new(Mutex::new(0u64));
    let o = out.clone();
    let info = if flag {
        WinInfo {
            exposure_after_access: true,
            ..WinInfo::default()
        }
    } else {
        WinInfo::default()
    };
    run_job(JobConfig::all_internode(3), move |env| {
        let win = env.win_allocate_with(MB, info).unwrap();
        env.barrier().unwrap();
        let t0 = env.now();
        match env.rank().idx() {
            0 => {
                // Late target for P2's access epoch.
                env.compute(SimTime::from_micros(1000));
                env.post(win, Group::single(Rank(2))).unwrap();
                env.wait_epoch(win).unwrap();
            }
            1 => {
                // Origin toward P2 (P2's exposure is its second epoch).
                env.start(win, Group::single(Rank(2))).unwrap();
                env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                env.complete(win).unwrap();
                *o.lock().unwrap() = (env.now() - t0).as_nanos();
            }
            _ => {
                // P2: access toward P0 first, then exposure for P1.
                env.start(win, Group::single(Rank(0))).unwrap();
                env.put_synthetic(win, Rank(0), 0, MB).unwrap();
                let r1 = env.icomplete(win).unwrap();
                let _ = env.ipost(win, Group::single(Rank(1))).unwrap();
                let r2 = env.iwait(win).unwrap();
                env.wait(r1).unwrap();
                env.wait(r2).unwrap();
            }
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let v = *out.lock().unwrap();
    us(v)
}

#[test]
fn eaar_detaches_exposure_from_stuck_access() {
    let off = eaar(false);
    let on = eaar(true);
    assert!(
        off > 1200.0,
        "without E_A_A_R, P0's delay reaches P1 transitively, got {off} µs"
    );
    assert!(on < 800.0, "with E_A_A_R, P1 is unaffected, got {on} µs");
}

#[test]
fn flags_never_apply_across_fence() {
    // §VI.B: reorder flags are ignored when either adjacent epoch is a
    // fence. A GATS access epoch opened after an incomplete fence epoch
    // must stay deferred even with every flag on.
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate_with(64, WinInfo::all_reorder()).unwrap();
        env.fence(win).unwrap();
        if env.rank().idx() == 0 {
            env.put(win, Rank(1), 0, &[3u8; 8]).unwrap();
        }
        // Close the fence epoch nonblockingly, then immediately try a GATS
        // epoch: it must wait for the fence's barrier semantics (so the
        // data below can never overtake the fence data).
        let rf = env.ifence(win).unwrap();
        if env.rank().idx() == 0 {
            env.start(win, Group::single(Rank(1))).unwrap();
            env.put(win, Rank(1), 0, &[4u8; 8]).unwrap();
            let rc = env.icomplete(win).unwrap();
            env.wait(rf).unwrap();
            env.wait(rc).unwrap();
        } else {
            env.post(win, Group::single(Rank(0))).unwrap();
            env.wait_epoch(win).unwrap();
            env.wait(rf).unwrap();
            assert_eq!(env.read_local(win, 0, 8).unwrap(), vec![4u8; 8]);
        }
        // Drain the trailing fence epoch.
        env.fence(win).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}
