//! Property tests for engine-counter conservation laws over randomized
//! mixed workloads, fault-free and under seeded light loss.
//!
//! Note on the FIFO law: decode errors are counted *within* the drain
//! (`fifo_decode_errors <= fifo_drained`), so the conservation law at
//! clean termination is `fifo_packets == fifo_drained` — a corrupt word
//! is still a drained word, not a separate leg of the ledger.

use mpisim_core::{run_job, JobConfig, JobReport, LockKind, Rank};
use mpisim_net::FaultPlan;
use mpisim_sim::SimTime;
use proptest::prelude::*;

/// Mixed workload crossing all three synchronization planes: fence
/// phases of neighbour puts, a shared-lock deposit row, and an
/// exclusive lock/put/unlock cycle per rank.
fn mixed_job(cfg: JobConfig, rounds: usize) -> JobReport {
    run_job(cfg, move |env| {
        let win = env.win_allocate(512).unwrap();
        env.barrier().unwrap();
        let me = env.rank().idx();
        let n = env.n_ranks();
        let next = Rank((me + 1) % n);
        env.lock(win, Rank(0), LockKind::Shared).unwrap();
        env.put(win, Rank(0), me * 8, &[me as u8; 8]).unwrap();
        env.unlock(win, Rank(0)).unwrap();
        env.fence(win).unwrap();
        for r in 0..rounds {
            env.put(win, next, 256 + r * 8, &[(me + r) as u8; 8]).unwrap();
            env.fence(win).unwrap();
        }
        env.lock(win, next, LockKind::Exclusive).unwrap();
        env.put(win, next, 128, &[0xAB; 4]).unwrap();
        env.unlock(win, next).unwrap();
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap()
}

/// The conservation laws that must hold at job termination regardless
/// of workload shape.
fn assert_conserved(report: &JobReport) {
    let s = &report.engine;
    // Every FIFO word pushed was drained; decode errors are a subset of
    // the drain, not an extra term (see module doc).
    assert_eq!(s.fifo_packets, s.fifo_drained, "{s:?}");
    assert!(s.fifo_decode_errors <= s.fifo_drained, "{s:?}");
    // Every opened epoch is accounted for exactly once.
    assert_eq!(
        s.epochs_opened,
        s.epochs_completed + s.epochs_cancelled + s.dormant_retired,
        "{s:?}"
    );
    assert!(s.epochs_deferred <= s.epochs_opened, "{s:?}");
    // Step runs only happen inside sweeps, and a job that did any work
    // swept at least once per step it ran.
    if s.sweeps == 0 {
        assert_eq!(s.step_runs, [0; 7], "{s:?}");
    }
    for (i, &runs) in s.step_runs.iter().enumerate() {
        assert!(runs == 0 || s.sweeps > 0, "step {i} ran outside any sweep: {s:?}");
    }
    // Issue scans cover at least the ops they issued.
    assert!(s.ops_issued <= s.issue_scans.max(s.ops_issued), "{s:?}");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Fault-free, intranode: the notification-FIFO plane carries all
    /// sync traffic, nothing is cancelled.
    #[test]
    fn conservation_fault_free_intranode(n in 2usize..5, rounds in 1usize..4) {
        let report = mixed_job(JobConfig::new(n), rounds);
        prop_assert!(report.is_clean(), "{:?}", report.degradations);
        let s = &report.engine;
        assert_conserved(&report);
        prop_assert_eq!(s.epochs_cancelled, 0);
        prop_assert!(s.fifo_packets > 0, "intranode sync must ride the FIFO: {:?}", s);
        prop_assert_eq!(s.fifo_decode_errors, 0);
    }

    /// Fault-free, internode: same laws with the sync plane on framed
    /// messages instead of the FIFO.
    #[test]
    fn conservation_fault_free_internode(n in 2usize..5, rounds in 1usize..4) {
        let report = mixed_job(JobConfig::all_internode(n), rounds);
        prop_assert!(report.is_clean(), "{:?}", report.degradations);
        assert_conserved(&report);
        prop_assert_eq!(report.engine.epochs_cancelled, 0);
    }

    /// Seeded light loss with the reliability sublayer and watchdog on:
    /// conservation still holds, and recovery is clean — exactly-once
    /// delivery (DESIGN.md §11) with no cancellations.
    #[test]
    fn conservation_under_light_loss(n in 2usize..5, rounds in 1usize..3, seed in 0u64..64) {
        let mut cfg = JobConfig::all_internode(n);
        cfg.net.faults = Some(FaultPlan::light_loss(seed));
        let cfg = cfg.with_reliability().with_watchdog(SimTime::from_millis(50));
        let report = mixed_job(cfg, rounds);
        let s = &report.engine;
        assert_conserved(&report);
        prop_assert_eq!(s.epochs_cancelled, 0, "light loss must recover, not cancel: {:?}", s);
        prop_assert_eq!(s.rel_delivered, s.rel_frames_sent, "channel quiescence: {:?}", s);
    }
}
