//! Integration tests: two-sided messaging and the dissemination barrier.

use std::sync::{Arc, Mutex};

use mpisim_core::{run_job, JobConfig, Rank};
use mpisim_sim::SimTime;

#[test]
fn eager_send_recv() {
    run_job(JobConfig::all_internode(2), |env| {
        if env.rank().idx() == 0 {
            env.send(Rank(1), 7, b"small message").unwrap();
        } else {
            let data = env.recv(Rank(0), 7).unwrap();
            assert_eq!(data.as_ref(), b"small message");
        }
    })
    .unwrap();
}

#[test]
fn rendezvous_send_recv_large() {
    run_job(JobConfig::all_internode(2), |env| {
        let big = vec![0xAB; 64 * 1024]; // above the 8 KB threshold
        if env.rank().idx() == 0 {
            env.send(Rank(1), 1, &big).unwrap();
        } else {
            let data = env.recv(Rank(0), 1).unwrap();
            assert_eq!(data.len(), 64 * 1024);
            assert!(data.iter().all(|b| *b == 0xAB));
        }
    })
    .unwrap();
}

#[test]
fn unexpected_messages_match_later_recvs() {
    run_job(JobConfig::all_internode(2), |env| {
        if env.rank().idx() == 0 {
            for i in 0..4u8 {
                env.send(Rank(1), u64::from(i), &[i; 4]).unwrap();
            }
        } else {
            // Receive in reverse tag order, long after arrival.
            env.compute(SimTime::from_micros(500));
            for i in (0..4u8).rev() {
                let d = env.recv(Rank(0), u64::from(i)).unwrap();
                assert_eq!(d.as_ref(), &[i; 4]);
            }
        }
    })
    .unwrap();
}

#[test]
fn same_tag_messages_do_not_overtake() {
    run_job(JobConfig::all_internode(2), |env| {
        if env.rank().idx() == 0 {
            for i in 0..8u8 {
                env.send(Rank(1), 3, &[i]).unwrap();
            }
        } else {
            for i in 0..8u8 {
                let d = env.recv(Rank(0), 3).unwrap();
                assert_eq!(d.as_ref(), &[i], "message {i} overtaken");
            }
        }
    })
    .unwrap();
}

#[test]
fn isend_irecv_overlap() {
    run_job(JobConfig::all_internode(2), |env| {
        let me = env.rank().idx();
        let other = Rank(1 - me);
        // Full exchange posted before any wait: must not deadlock.
        let s = env.isend(other, 9, &[me as u8; 1024]).unwrap();
        let r = env.irecv(other, 9).unwrap();
        let data = env.wait_data(r).unwrap();
        env.wait(s).unwrap();
        assert_eq!(data.as_ref(), &[(1 - me) as u8; 1024][..]);
    })
    .unwrap();
}

#[test]
fn two_sided_1mb_takes_about_340us() {
    // The paper quotes ≈340 µs for a 1 MB transfer on its testbed; the
    // two-sided path adds only the rendezvous handshake.
    let t = Arc::new(Mutex::new(0u64));
    let tt = t.clone();
    run_job(JobConfig::all_internode(2), move |env| {
        if env.rank().idx() == 0 {
            let t0 = env.now();
            env.send(Rank(1), 0, &vec![1u8; 1 << 20]).unwrap();
            // Blocking send returns at local completion.
            *tt.lock().unwrap() = (env.now() - t0).as_nanos();
        } else {
            let _ = env.recv(Rank(0), 0).unwrap();
        }
    })
    .unwrap();
    let us = *t.lock().unwrap() as f64 / 1000.0;
    assert!(
        (330.0..400.0).contains(&us),
        "1 MB send took {us} µs, expected ≈340-350 µs"
    );
}

#[test]
fn barrier_synchronizes_everyone() {
    let times = Arc::new(Mutex::new(Vec::new()));
    let tt = times.clone();
    run_job(JobConfig::all_internode(8), move |env| {
        // Stagger arrivals by rank.
        env.compute(SimTime::from_micros(10 * env.rank().idx() as u64));
        env.barrier().unwrap();
        tt.lock().unwrap().push(env.now().as_nanos());
    })
    .unwrap();
    let times = times.lock().unwrap();
    let earliest = *times.iter().min().unwrap();
    // Nobody exits before the latest arrival (70 µs).
    assert!(earliest >= 70_000, "barrier exited at {earliest}ns");
}

#[test]
fn repeated_barriers_with_generations() {
    run_job(JobConfig::all_internode(5), |env| {
        for _ in 0..10 {
            env.barrier().unwrap();
        }
    })
    .unwrap();
}

#[test]
fn barrier_on_single_rank_is_trivial() {
    run_job(JobConfig::all_internode(1), |env| {
        env.barrier().unwrap();
        env.barrier().unwrap();
    })
    .unwrap();
}

#[test]
fn ibarrier_overlaps_computation() {
    let t = Arc::new(Mutex::new(0u64));
    let tt = t.clone();
    run_job(JobConfig::all_internode(2), move |env| {
        if env.rank().idx() == 0 {
            let r = env.ibarrier();
            env.compute(SimTime::from_micros(300));
            env.wait(r).unwrap();
            *tt.lock().unwrap() = env.now().as_nanos();
        } else {
            env.compute(SimTime::from_micros(100));
            env.barrier().unwrap();
        }
    })
    .unwrap();
    // Rank 0's total is its own 300 µs of work, not 100+300.
    let us = *t.lock().unwrap() as f64 / 1000.0;
    assert!(us < 350.0, "ibarrier failed to overlap: {us} µs");
}
