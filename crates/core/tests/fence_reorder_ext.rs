//! Tests for the `unsafe_fence_reorder` extension — the paper's §X future
//! work: enabling the progress-engine optimization flags for fence epochs.

use std::sync::{Arc, Mutex};

use mpisim_core::{run_job, Group, JobConfig, Rank, WinInfo};
use mpisim_sim::SimTime;

const MB: usize = 1 << 20;

/// One rank delays its closing fence; another rank wants to run an
/// independent GATS epoch (disjoint memory) right after ifence. Returns
/// the punctual GATS target's epoch length, µs.
fn gats_after_fence(fence_reorder: bool) -> f64 {
    let info = WinInfo {
        access_after_access: true,
        access_after_exposure: true,
        exposure_after_exposure: true,
        exposure_after_access: true,
        unsafe_fence_reorder: fence_reorder,
    };
    let out = Arc::new(Mutex::new(0.0f64));
    let o2 = out.clone();
    run_job(JobConfig::all_internode(3), move |env| {
        let win = env.win_allocate_with(MB, info).unwrap();
        env.barrier().unwrap();
        env.fence(win).unwrap(); // opening fence
        let t0 = env.now();
        match env.rank().idx() {
            0 => {
                // Delays the fence barrier for everyone.
                env.compute(SimTime::from_micros(1000));
                env.fence(win).unwrap();
                // Participate in nothing else.
            }
            1 => {
                // Closes the fence nonblockingly, then opens a GATS access
                // epoch toward rank 2 (disjoint region).
                let rf = env.ifence(win).unwrap();
                env.start(win, Group::single(Rank(2))).unwrap();
                env.put_synthetic(win, Rank(2), 0, MB).unwrap();
                let rc = env.icomplete(win).unwrap();
                env.wait(rc).unwrap();
                env.wait(rf).unwrap();
            }
            _ => {
                let rf = env.ifence(win).unwrap();
                env.post(win, Group::single(Rank(1))).unwrap();
                env.wait_epoch(win).unwrap();
                *o2.lock().unwrap() = (env.now() - t0).as_micros_f64();
                env.wait(rf).unwrap();
            }
        }
        // Drain the trailing fence phase collectively.
        env.fence(win).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let v = *out.lock().unwrap();
    v
}

#[test]
fn fence_reorder_unblocks_subsequent_gats_epoch() {
    let off = gats_after_fence(false);
    let on = gats_after_fence(true);
    // Without the extension, the GATS epoch waits for the fence barrier
    // (rank 0 is 1000 µs late).
    assert!(
        off > 1200.0,
        "without unsafe_fence_reorder the GATS epoch should wait for the \
         fence barrier, got {off} µs"
    );
    // With it, the GATS epoch overlaps the barrier wait.
    assert!(
        on < 800.0,
        "with unsafe_fence_reorder the GATS epoch should complete during \
         the fence barrier, got {on} µs"
    );
}

#[test]
fn fence_barrier_itself_still_holds_under_extension() {
    // The extension must not weaken the fence's own completion: the
    // ifence request still completes only after every rank fences.
    let done_at = Arc::new(Mutex::new(0u64));
    let d2 = done_at.clone();
    let info = WinInfo {
        unsafe_fence_reorder: true,
        ..WinInfo::all_reorder()
    };
    run_job(JobConfig::all_internode(2), move |env| {
        let win = env.win_allocate_with(64, info).unwrap();
        env.fence(win).unwrap();
        if env.rank().idx() == 0 {
            let r = env.ifence(win).unwrap();
            env.wait(r).unwrap();
            *d2.lock().unwrap() = env.now().as_nanos();
        } else {
            env.compute(SimTime::from_micros(700));
            env.fence(win).unwrap();
        }
        env.fence(win).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    assert!(
        *done_at.lock().unwrap() >= 700_000,
        "ifence completed before the late rank fenced"
    );
}

#[test]
fn lock_all_remains_excluded_even_with_everything_on() {
    // lock_all adjacency must stay serialized regardless of flags: a
    // lock_all epoch after a pending lock epoch to the same target waits.
    let info = WinInfo {
        unsafe_fence_reorder: true,
        ..WinInfo::all_reorder()
    };
    run_job(JobConfig::all_internode(2), move |env| {
        let win = env.win_allocate_with(64, info).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            let _ = env
                .ilock(win, Rank(1), mpisim_core::LockKind::Exclusive)
                .unwrap();
            env.put(win, Rank(1), 0, &[1u8; 8]).unwrap();
            let r1 = env.iunlock(win, Rank(1)).unwrap();
            // lock_all epoch queued behind: it must not activate while the
            // exclusive lock epoch is still active (it would deadlock if
            // it could recursively request the same target's lock before
            // the unlock is processed — exactly the §VI.B hazard).
            env.lock_all(win).unwrap();
            env.put(win, Rank(1), 8, &[2u8; 8]).unwrap();
            env.unlock_all(win).unwrap();
            env.wait(r1).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            assert_eq!(env.read_local(win, 0, 8).unwrap(), vec![1u8; 8]);
            assert_eq!(env.read_local(win, 8, 8).unwrap(), vec![2u8; 8]);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}
