//! Integration tests: passive-target epochs (lock/unlock, lock_all).

use std::sync::{Arc, Mutex};

use mpisim_core::{run_job, Datatype, JobConfig, LockKind, Rank, ReduceOp, SyncStrategy};
use mpisim_sim::SimTime;

#[test]
fn exclusive_lock_put() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(16).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, b"locked-write").unwrap();
            env.unlock(win, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            assert_eq!(env.read_local(win, 0, 12).unwrap(), b"locked-write");
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn exclusive_locks_serialize_atomic_increments() {
    // Read-modify-write under an exclusive lock must never lose updates.
    run_job(JobConfig::all_internode(4), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        for _ in 0..5 {
            env.lock(win, Rank(0), LockKind::Exclusive).unwrap();
            let r = env.get(win, Rank(0), 0, 8).unwrap();
            env.flush(win, Rank(0)).unwrap();
            let cur = u64::from_le_bytes(env.wait_data(r).unwrap().as_ref().try_into().unwrap());
            env.put(win, Rank(0), 0, &(cur + 1).to_le_bytes()).unwrap();
            env.unlock(win, Rank(0)).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            let got = env.read_local(win, 0, 8).unwrap();
            assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), 20);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn shared_locks_coexist_exclusive_waits() {
    let order = Arc::new(Mutex::new(Vec::<(usize, u64)>::new()));
    let ord = order.clone();
    run_job(JobConfig::all_internode(4), move |env| {
        let win = env.win_allocate(8).unwrap();
        env.write_local(win, 0, &7u64.to_le_bytes()).unwrap();
        env.barrier().unwrap();
        match env.rank().idx() {
            1 | 2 => {
                // Two shared readers hold the lock for 200 µs.
                env.lock(win, Rank(0), LockKind::Shared).unwrap();
                let r = env.get(win, Rank(0), 0, 8).unwrap();
                env.flush(win, Rank(0)).unwrap();
                let v = u64::from_le_bytes(env.wait_data(r).unwrap().as_ref().try_into().unwrap());
                assert_eq!(v, 7);
                ord.lock().unwrap().push((env.rank().idx(), env.now().as_nanos()));
                env.compute(SimTime::from_micros(200));
                env.unlock(win, Rank(0)).unwrap();
            }
            3 => {
                // A later exclusive writer must wait for both readers.
                env.compute(SimTime::from_micros(50));
                env.lock(win, Rank(0), LockKind::Exclusive).unwrap();
                env.put(win, Rank(0), 0, &9u64.to_le_bytes()).unwrap();
                env.unlock(win, Rank(0)).unwrap();
                ord.lock().unwrap().push((3, env.now().as_nanos()));
            }
            _ => {}
        }
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            let got = env.read_local(win, 0, 8).unwrap();
            assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), 9);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
    let log = order.lock().unwrap();
    let readers_done = log
        .iter()
        .filter(|(r, _)| *r == 1 || *r == 2)
        .map(|(_, t)| *t)
        .max()
        .unwrap();
    let writer_done = log.iter().find(|(r, _)| *r == 3).unwrap().1;
    assert!(
        writer_done > readers_done + 200_000,
        "exclusive writer finished at {writer_done}ns, before shared holders released \
         (readers locked at {readers_done}ns + 200µs hold)"
    );
}

#[test]
fn lock_all_fetch_and_op_from_everyone() {
    run_job(JobConfig::all_internode(4), |env| {
        let n = env.n_ranks();
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        env.lock_all(win).unwrap();
        let mut reqs = Vec::new();
        for t in 0..n {
            reqs.push(
                env.fetch_and_op(win, Rank(t), 0, Datatype::U64, ReduceOp::Sum, &1u64.to_le_bytes())
                    .unwrap(),
            );
        }
        env.unlock_all(win).unwrap();
        for r in reqs {
            let _old = env.wait_data(r).unwrap();
        }
        env.barrier().unwrap();
        let got = env.read_local(win, 0, 8).unwrap();
        assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), n as u64);
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn self_lock_works() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        let me = env.rank();
        env.lock(win, me, LockKind::Exclusive).unwrap();
        env.put(win, me, 0, &[5u8; 8]).unwrap();
        env.unlock(win, me).unwrap();
        assert_eq!(env.read_local(win, 0, 8).unwrap(), vec![5u8; 8]);
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn concurrent_locks_to_distinct_targets() {
    run_job(JobConfig::all_internode(3), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            // MPI allows holding locks to several targets at once.
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, &[1u8; 8]).unwrap();
            env.put(win, Rank(2), 0, &[2u8; 8]).unwrap();
            env.unlock(win, Rank(2)).unwrap();
            env.unlock(win, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        match env.rank().idx() {
            1 => assert_eq!(env.read_local(win, 0, 8).unwrap(), vec![1u8; 8]),
            2 => assert_eq!(env.read_local(win, 0, 8).unwrap(), vec![2u8; 8]),
            _ => {}
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn late_unlock_shapes_blocking_vs_nonblocking() {
    // The paper's new inefficiency pattern (§III, Fig 6): a holder that
    // works 1000 µs before unlocking delays the next requester — unless the
    // epoch is closed early with IUNLOCK.
    fn second_lock_latency(nonblocking: bool) -> f64 {
        let t = Arc::new(Mutex::new((0u64, 0u64)));
        let tt = t.clone();
        run_job(JobConfig::all_internode(3), move |env| {
            let win = env.win_allocate(1 << 20).unwrap();
            env.barrier().unwrap();
            match env.rank().idx() {
                0 => {
                    // First holder.
                    env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
                    env.put_synthetic(win, Rank(2), 0, 1 << 20).unwrap();
                    if nonblocking {
                        // Close early, then overlap the work (Fig 1b).
                        let r = env.iunlock(win, Rank(2)).unwrap();
                        env.compute(SimTime::from_micros(1000));
                        env.wait(r).unwrap();
                    } else {
                        env.compute(SimTime::from_micros(1000));
                        env.unlock(win, Rank(2)).unwrap();
                    }
                }
                1 => {
                    // Second requester, slightly later.
                    env.compute(SimTime::from_micros(50));
                    let t0 = env.now();
                    env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
                    env.put_synthetic(win, Rank(2), 0, 1 << 20).unwrap();
                    env.unlock(win, Rank(2)).unwrap();
                    tt.lock().unwrap().1 = (env.now() - t0).as_nanos();
                }
                _ => {}
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        let v = t.lock().unwrap().1 as f64 / 1000.0;
        v
    }
    let blocking = second_lock_latency(false);
    let nonblocking = second_lock_latency(true);
    assert!(
        blocking > 1200.0,
        "blocking Late Unlock should delay the second lock past 1.2 ms, got {blocking} µs"
    );
    assert!(
        nonblocking < 800.0,
        "iunlock should spare the second requester the 1000 µs work, got {nonblocking} µs"
    );
}

#[test]
fn writers_are_not_starved_by_reader_streams() {
    // FIFO fairness at the lock manager: a shared request arriving after a
    // queued exclusive request waits behind it.
    let order = Arc::new(Mutex::new(Vec::<(&'static str, u64)>::new()));
    let ord = order.clone();
    run_job(JobConfig::all_internode(4), move |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        match env.rank().idx() {
            1 => {
                // First reader holds 300 µs.
                env.lock(win, Rank(0), LockKind::Shared).unwrap();
                env.compute(SimTime::from_micros(300));
                env.unlock(win, Rank(0)).unwrap();
            }
            2 => {
                // Writer arrives while the reader holds.
                env.compute(SimTime::from_micros(50));
                env.lock(win, Rank(0), LockKind::Exclusive).unwrap();
                ord.lock().unwrap().push(("writer", env.now().as_nanos()));
                env.compute(SimTime::from_micros(50));
                env.unlock(win, Rank(0)).unwrap();
            }
            3 => {
                // Second reader arrives after the writer queued: although
                // the lock is held shared (compatible), FIFO fairness makes
                // it wait behind the writer.
                env.compute(SimTime::from_micros(150));
                env.lock(win, Rank(0), LockKind::Shared).unwrap();
                ord.lock().unwrap().push(("reader2", env.now().as_nanos()));
                env.unlock(win, Rank(0)).unwrap();
            }
            _ => {}
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let log = order.lock().unwrap();
    let w = log.iter().find(|e| e.0 == "writer").unwrap().1;
    let r2 = log.iter().find(|e| e.0 == "reader2").unwrap().1;
    assert!(
        r2 > w,
        "late reader ({r2}ns) overtook the queued writer ({w}ns): starvation hazard"
    );
}

#[test]
fn lazy_baseline_has_no_lock_overlap() {
    // MVAPICH's lazy lock acquisition (§VIII.A): the epoch degenerates to
    // the unlock call, so in-epoch work cannot overlap the transfer.
    fn epoch_length(strategy: SyncStrategy) -> f64 {
        let t = Arc::new(Mutex::new(0u64));
        let tt = t.clone();
        run_job(JobConfig::all_internode(2).with_strategy(strategy), move |env| {
            let win = env.win_allocate(1 << 20).unwrap();
            env.barrier().unwrap();
            if env.rank().idx() == 0 {
                let t0 = env.now();
                env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
                env.put_synthetic(win, Rank(1), 0, 1 << 20).unwrap();
                env.compute(SimTime::from_micros(1000));
                env.unlock(win, Rank(1)).unwrap();
                *tt.lock().unwrap() = (env.now() - t0).as_nanos();
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        let v = *t.lock().unwrap() as f64 / 1000.0;
        v
    }
    let lazy = epoch_length(SyncStrategy::LazyBaseline);
    let eager = epoch_length(SyncStrategy::Redesigned);
    // Lazy: 1000 µs work + ≈340 µs transfer serialized ⇒ ≈1340 µs.
    // Eager: transfer overlaps the work ⇒ ≈1010 µs.
    assert!(
        (1250.0..1500.0).contains(&lazy),
        "lazy first-lock epoch took {lazy} µs, expected ≈1340 µs"
    );
    assert!(
        (950.0..1150.0).contains(&eager),
        "eager first-lock epoch took {eager} µs, expected ≈1010 µs"
    );
}
