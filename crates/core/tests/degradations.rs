//! Unit suite for the `JobReport::degradations` surface: `is_clean()`,
//! ordering stability, and the `kind()`/`Debug`/`Display` rendering of
//! every [`Degradation`] variant, including the recovery variants.

use mpisim_core::{
    Degradation, JobConfig, ProtocolError, Rank, RecoveryReport, StallReport, WinId,
};
use mpisim_sim::SimTime;

/// One exemplar of every `Degradation` variant, in a fixed order.
fn all_variants() -> Vec<Degradation> {
    vec![
        Degradation::FifoDecode(ProtocolError {
            rank: Rank(0),
            win: WinId(0),
            src: Rank(1),
            raw: 0xF000_0000_0000_0000,
            detail: "corrupt 64-bit sync packet",
        }),
        Degradation::ChecksumFail { rank: Rank(2), src: Rank(3), seq: 7 },
        Degradation::RetriesExhausted { rank: Rank(1), dst: Rank(0), seq: 9, retries: 12 },
        Degradation::PeerCrash { rank: Rank(0), peer: Rank(2), seq: 4 },
        Degradation::EpochStall(StallReport {
            rank: Rank(1),
            win: WinId(0),
            epoch: 3,
            kind: "lock",
            closed_at: SimTime::from_micros(10),
            cancelled_at: SimTime::from_millis(20),
            omega: vec![(1, 0, 1), (0, 0, 0)],
            omega_lock: vec![(2, 1), (0, 0)],
            oldest_unacked: Some((Rank(0), 5)),
            live_ops: 1,
            pending_ops: 2,
        }),
        Degradation::Recovered(RecoveryReport {
            rank: Rank(1),
            win: WinId(0),
            crash_commit: 2,
            crash_at: SimTime::from_micros(500),
            restored_at: SimTime::from_micros(1_500),
            ckpt_commit: 2,
            ckpt_at: SimTime::from_micros(499),
            replayed_ops: 3,
            replayed_bytes: 48,
            omega_regressions: 0,
            stale: false,
        }),
    ]
}

#[test]
fn every_variant_has_a_stable_kind_label() {
    let kinds: Vec<&'static str> = all_variants().iter().map(|d| d.kind()).collect();
    assert_eq!(
        kinds,
        vec![
            "fifo-decode",
            "checksum-fail",
            "retries-exhausted",
            "peer-crash",
            "epoch-stall",
            "recovered",
        ]
    );
}

#[test]
fn display_mentions_the_kind_and_the_provenance() {
    for d in all_variants() {
        let msg = d.to_string();
        assert!(
            msg.starts_with(d.kind()),
            "Display of {:?} must lead with its kind label, got {msg:?}",
            d.kind()
        );
    }
    // Spot-check the load-bearing provenance of each rendering.
    let v = all_variants();
    assert!(v[0].to_string().contains("0xf000000000000000"), "{}", v[0]);
    assert!(v[1].to_string().contains("frame #7"), "{}", v[1]);
    assert!(v[2].to_string().contains("12 retransmits"), "{}", v[2]);
    assert!(v[3].to_string().contains("2 is down"), "{}", v[3]);
    assert!(v[4].to_string().contains("epoch #3"), "{}", v[4]);
    let rec = v[5].to_string();
    assert!(
        rec.contains("crashed at commit 2") && rec.contains("3 replayed ops"),
        "{rec}"
    );
    assert!(!rec.contains("STALE"), "healthy restore must not read stale: {rec}");
}

#[test]
fn stale_and_regressed_recoveries_render_loudly() {
    let Degradation::Recovered(mut r) = all_variants().pop().unwrap() else {
        unreachable!()
    };
    r.stale = true;
    r.omega_regressions = 2;
    let msg = Degradation::Recovered(r).to_string();
    assert!(msg.contains("STALE"), "{msg}");
    assert!(msg.contains("REGRESSED"), "{msg}");
}

#[test]
fn debug_rendering_is_nonempty_and_names_the_variant() {
    let names = [
        "FifoDecode",
        "ChecksumFail",
        "RetriesExhausted",
        "PeerCrash",
        "EpochStall",
        "Recovered",
    ];
    for (d, name) in all_variants().iter().zip(names) {
        let dbg = format!("{d:?}");
        assert!(dbg.contains(name), "Debug of {name} was {dbg:?}");
    }
}

#[test]
fn is_clean_is_exactly_no_degradations() {
    let report = mpisim_core::run_job(JobConfig::new(2), |env| {
        let win = env.win_allocate(32).unwrap();
        env.fence(win).unwrap();
        if env.rank().idx() == 0 {
            env.put(win, Rank(1), 0, &[9]).unwrap();
        }
        env.fence(win).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    assert!(report.degradations.is_empty());
    assert!(report.is_clean());
    assert!(report.recoveries.is_empty());
}

#[test]
fn degradations_preserve_recording_order() {
    // The report surfaces events in the order the engine recorded them;
    // a clone round-trip (the report is assembled by draining the engine)
    // must not reorder or drop anything.
    let v = all_variants();
    let cloned: Vec<Degradation> = v.clone();
    assert_eq!(v.len(), cloned.len());
    for (a, b) in v.iter().zip(cloned.iter()) {
        assert_eq!(a.kind(), b.kind());
        assert_eq!(a.to_string(), b.to_string());
    }
}
