//! Integration tests: the flush family and atomic RMA operations.

use std::sync::{Arc, Mutex};

use mpisim_core::{run_job, Datatype, JobConfig, LockKind, Rank, ReduceOp};
use mpisim_sim::SimTime;

#[test]
fn flush_completes_prior_ops_without_closing_epoch() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(16).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, &[1u8; 8]).unwrap();
            env.flush(win, Rank(1)).unwrap();
            // After flush the first put is remotely complete; read it back
            // within the same epoch.
            let r = env.get(win, Rank(1), 0, 8).unwrap();
            env.flush(win, Rank(1)).unwrap();
            assert_eq!(env.wait_data(r).unwrap().as_ref(), &[1u8; 8]);
            // The epoch is still open: issue another op.
            env.put(win, Rank(1), 8, &[2u8; 8]).unwrap();
            env.unlock(win, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            assert_eq!(env.read_local(win, 8, 8).unwrap(), vec![2u8; 8]);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn iflush_age_stamping_covers_only_prior_ops() {
    // §VII.C: "new RMA calls can be issued after an MPI_WIN_IFLUSH call
    // that is yet to complete" — the flush must not wait for them.
    let t = Arc::new(Mutex::new((0u64, 0u64)));
    let tt = t.clone();
    run_job(JobConfig::all_internode(2), move |env| {
        let win = env.win_allocate(4 << 20).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            // Small op, then iflush, then a huge op the flush must ignore.
            env.put(win, Rank(1), 0, &[9u8; 64]).unwrap();
            let f = env.iflush(win, Rank(1)).unwrap();
            env.put_synthetic(win, Rank(1), 64, 2 << 20).unwrap();
            let t0 = env.now();
            env.wait(f).unwrap();
            let flush_wait = (env.now() - t0).as_nanos();
            let t1 = env.now();
            env.unlock(win, Rank(1)).unwrap();
            let unlock_wait = (env.now() - t1).as_nanos();
            *tt.lock().unwrap() = (flush_wait, unlock_wait);
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let (flush_us, unlock_us) = {
        let v = t.lock().unwrap();
        (v.0 as f64 / 1000.0, v.1 as f64 / 1000.0)
    };
    // The flush covers only the 64-byte put: quick. The unlock covers the
    // 2 MB put: hundreds of µs.
    assert!(
        flush_us < 300.0,
        "iflush waited for ops younger than its stamp: {flush_us} µs"
    );
    assert!(
        unlock_us > 400.0,
        "unlock should wait out the 2 MB transfer: {unlock_us} µs"
    );
}

#[test]
fn flush_local_vs_flush_remote_semantics() {
    let t = Arc::new(Mutex::new((0u64, 0u64)));
    let tt = t.clone();
    run_job(JobConfig::all_internode(2), move |env| {
        let win = env.win_allocate(2 << 20).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put_synthetic(win, Rank(1), 0, 1 << 20).unwrap();
            let t0 = env.now();
            env.flush_local(win, Rank(1)).unwrap();
            let local = (env.now() - t0).as_nanos();
            let t1 = env.now();
            env.flush(win, Rank(1)).unwrap();
            let remote = (env.now() - t1).as_nanos();
            env.unlock(win, Rank(1)).unwrap();
            *tt.lock().unwrap() = (local, remote);
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let (local, remote) = *t.lock().unwrap();
    // flush_local returns at local completion; the full flush additionally
    // covers the remote delivery + ack.
    assert!(remote > 0, "remote flush had nothing left to wait for");
    assert!(
        local + remote > local,
        "sanity: remote flush waited {remote}ns after local {local}ns"
    );
}

#[test]
fn flush_all_covers_multiple_lock_epochs() {
    run_job(JobConfig::all_internode(3), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Shared).unwrap();
            env.lock(win, Rank(2), LockKind::Shared).unwrap();
            env.put(win, Rank(1), 0, &[1u8; 8]).unwrap();
            env.put(win, Rank(2), 0, &[2u8; 8]).unwrap();
            env.flush_all(win).unwrap();
            // After flush_all both targets hold the data (remotely
            // complete) even though both epochs remain open.
            let r1 = env.get(win, Rank(1), 0, 8).unwrap();
            let r2 = env.get(win, Rank(2), 0, 8).unwrap();
            env.flush_all(win).unwrap();
            assert_eq!(env.wait_data(r1).unwrap().as_ref(), &[1u8; 8]);
            assert_eq!(env.wait_data(r2).unwrap().as_ref(), &[2u8; 8]);
            env.unlock(win, Rank(1)).unwrap();
            env.unlock(win, Rank(2)).unwrap();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn fetch_and_op_serializes_concurrent_counters() {
    // The transactional pattern of §IV.B in miniature: concurrent atomic
    // increments under shared lock_all must not lose updates.
    run_job(JobConfig::all_internode(6), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        env.lock_all(win).unwrap();
        let mut reqs = Vec::new();
        for _ in 0..10 {
            reqs.push(
                env.fetch_and_op(win, Rank(0), 0, Datatype::U64, ReduceOp::Sum, &1u64.to_le_bytes())
                    .unwrap(),
            );
        }
        env.unlock_all(win).unwrap();
        let mut olds: Vec<u64> = reqs
            .into_iter()
            .map(|r| {
                u64::from_le_bytes(env.wait_data(r).unwrap().as_ref().try_into().unwrap())
            })
            .collect();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            let final_v = u64::from_le_bytes(
                env.read_local(win, 0, 8).unwrap().try_into().unwrap(),
            );
            assert_eq!(final_v, 60, "6 ranks × 10 increments");
        }
        // Each rank's observed old values are strictly increasing (its own
        // ops are ordered within its epoch).
        let sorted = {
            let mut s = olds.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(olds, sorted);
        olds.dedup();
        assert_eq!(olds.len(), 10, "an old value was observed twice by one rank");
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn compare_and_swap_elects_exactly_one_winner() {
    let winners = Arc::new(Mutex::new(0usize));
    let w2 = winners.clone();
    run_job(JobConfig::all_internode(5), move |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        env.lock_all(win).unwrap();
        let me = env.rank().idx() as u64 + 1;
        let r = env
            .compare_and_swap(win, Rank(0), 0, Datatype::U64, &0u64.to_le_bytes(), &me.to_le_bytes())
            .unwrap();
        env.unlock_all(win).unwrap();
        let old = u64::from_le_bytes(env.wait_data(r).unwrap().as_ref().try_into().unwrap());
        if old == 0 {
            *w2.lock().unwrap() += 1;
        }
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            let v = u64::from_le_bytes(env.read_local(win, 0, 8).unwrap().try_into().unwrap());
            assert!((1..=5).contains(&v));
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
    assert_eq!(*winners.lock().unwrap(), 1, "CAS must elect exactly one winner");
}

#[test]
fn get_accumulate_returns_previous_contents() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(16).unwrap();
        env.write_local(win, 0, &5u64.to_le_bytes()).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            let r = env
                .get_accumulate(win, Rank(1), 0, Datatype::U64, ReduceOp::Sum, &3u64.to_le_bytes())
                .unwrap();
            env.unlock(win, Rank(1)).unwrap();
            let old = u64::from_le_bytes(env.wait_data(r).unwrap().as_ref().try_into().unwrap());
            assert_eq!(old, 5);
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            let v = u64::from_le_bytes(env.read_local(win, 0, 8).unwrap().try_into().unwrap());
            assert_eq!(v, 8);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn large_accumulate_uses_rendezvous_and_stays_correct() {
    run_job(JobConfig::all_internode(2), |env| {
        let n = 4096usize; // 32 KB of u64 > 8 KB threshold
        let win = env.win_allocate(n * 8).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            let ones: Vec<u8> = mpisim_core::datatype::u64s_to_bytes(&vec![1u64; n]);
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.accumulate(win, Rank(1), 0, Datatype::U64, ReduceOp::Sum, &ones).unwrap();
            env.accumulate(win, Rank(1), 0, Datatype::U64, ReduceOp::Sum, &ones).unwrap();
            env.unlock(win, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            let got = mpisim_core::datatype::bytes_to_u64s(&env.read_local(win, 0, n * 8).unwrap());
            assert!(got.iter().all(|v| *v == 2), "rendezvous accumulate lost data");
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn no_overlap_for_large_accumulate() {
    // §VIII.A: accumulates above 8 KB cannot overlap because of the
    // internal rendezvous. We verify the epoch cannot complete before the
    // rendezvous round trip even when closed early.
    let t = Arc::new(Mutex::new(0u64));
    let tt = t.clone();
    run_job(JobConfig::all_internode(2), move |env| {
        let win = env.win_allocate(1 << 20).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            let t0 = env.now();
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.accumulate_synthetic(win, Rank(1), 0, Datatype::U64, ReduceOp::Sum, 1 << 20)
                .unwrap();
            env.unlock(win, Rank(1)).unwrap();
            *tt.lock().unwrap() = (env.now() - t0).as_nanos();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let us = *t.lock().unwrap() as f64 / 1000.0;
    // 1 MB at ≈340 µs plus the RTS/CTS round trip and ack.
    assert!(us > 340.0, "large accumulate finished implausibly fast: {us} µs");
}

#[test]
fn rput_request_completes_at_local_completion() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(1 << 20).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Shared).unwrap();
            let r = env.rput(win, Rank(1), 0, &vec![7u8; 1 << 16]).unwrap();
            env.wait(r).unwrap(); // local completion inside the epoch
            env.unlock(win, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            assert_eq!(env.read_local(win, 0, 4).unwrap(), vec![7u8; 4]);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn noop_fetch_reads_atomically() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.write_local(win, 0, &33u64.to_le_bytes()).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Shared).unwrap();
            let r = env
                .fetch_and_op(win, Rank(1), 0, Datatype::U64, ReduceOp::NoOp, &0u64.to_le_bytes())
                .unwrap();
            env.unlock(win, Rank(1)).unwrap();
            let v = u64::from_le_bytes(env.wait_data(r).unwrap().as_ref().try_into().unwrap());
            assert_eq!(v, 33);
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            // NoOp must not modify the target.
            let v = u64::from_le_bytes(env.read_local(win, 0, 8).unwrap().try_into().unwrap());
            assert_eq!(v, 33);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn synthetic_payloads_time_like_real_ones() {
    fn run(synthetic: bool) -> u64 {
        let t = Arc::new(Mutex::new(0u64));
        let tt = t.clone();
        run_job(JobConfig::all_internode(2), move |env| {
            let win = env.win_allocate(1 << 20).unwrap();
            env.barrier().unwrap();
            if env.rank().idx() == 0 {
                let t0 = env.now();
                env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
                if synthetic {
                    env.put_synthetic(win, Rank(1), 0, 1 << 20).unwrap();
                } else {
                    env.put(win, Rank(1), 0, &vec![1u8; 1 << 20]).unwrap();
                }
                env.unlock(win, Rank(1)).unwrap();
                *tt.lock().unwrap() = (env.now() - t0).as_nanos();
            }
            env.barrier().unwrap();
            env.win_free(win).unwrap();
        })
        .unwrap();
        let v = *t.lock().unwrap();
        v
    }
    assert_eq!(run(true), run(false), "synthetic and real payloads must cost the same time");
}

#[test]
fn compute_time_does_not_count_as_mpi_time() {
    run_job(JobConfig::all_internode(2), |env| {
        env.compute(SimTime::from_micros(500));
        env.barrier().unwrap();
        let s = env.stats();
        assert_eq!(s.compute_time, SimTime::from_micros(500));
        assert!(s.mpi_time < SimTime::from_micros(200));
        assert!(s.calls >= 1);
    })
    .unwrap();
}
