//! Integration tests: general active-target synchronization (GATS).

use std::sync::{Arc, Mutex};

use mpisim_core::{run_job, Group, JobConfig, Rank, SyncStrategy};
use mpisim_sim::SimTime;

#[test]
fn start_put_complete_post_wait() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(32).unwrap();
        if env.rank().idx() == 0 {
            env.start(win, Group::single(Rank(1))).unwrap();
            env.put(win, Rank(1), 0, b"gats-data").unwrap();
            env.complete(win).unwrap();
        } else {
            env.post(win, Group::single(Rank(0))).unwrap();
            env.wait_epoch(win).unwrap();
            assert_eq!(env.read_local(win, 0, 9).unwrap(), b"gats-data");
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn multiple_epochs_fifo_matching() {
    // Rule 3 of §VI.A: access and exposure epochs match FIFO per pair.
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(64).unwrap();
        if env.rank().idx() == 0 {
            for i in 0..5u8 {
                env.start(win, Group::single(Rank(1))).unwrap();
                env.put(win, Rank(1), i as usize * 8, &[i + 1; 8]).unwrap();
                env.complete(win).unwrap();
            }
        } else {
            for i in 0..5u8 {
                env.post(win, Group::single(Rank(0))).unwrap();
                env.wait_epoch(win).unwrap();
                // The i-th exposure matches the i-th access: its data (and
                // all previous epochs' data) must be visible.
                assert_eq!(env.read_local(win, i as usize * 8, 8).unwrap(), vec![i + 1; 8]);
            }
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn exposure_posted_far_ahead_persists() {
    // §VII.B: "when a target grants access to an origin that is several
    // epochs late, the granted access notification must persist."
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        if env.rank().idx() == 1 {
            // Target posts immediately.
            env.post(win, Group::single(Rank(0))).unwrap();
            env.wait_epoch(win).unwrap();
            assert_eq!(env.read_local(win, 0, 3).unwrap(), b"abc");
        } else {
            // Origin arrives 2 ms later; the grant must still be there.
            env.compute(SimTime::from_millis(2));
            env.start(win, Group::single(Rank(1))).unwrap();
            env.put(win, Rank(1), 0, b"abc").unwrap();
            env.complete(win).unwrap();
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn one_origin_many_targets() {
    run_job(JobConfig::all_internode(4), |env| {
        let win = env.win_allocate(8).unwrap();
        if env.rank().idx() == 0 {
            env.start(win, Group::new([1, 2, 3])).unwrap();
            for t in 1..4usize {
                env.put(win, Rank(t), 0, &[t as u8; 8]).unwrap();
            }
            env.complete(win).unwrap();
        } else {
            env.post(win, Group::single(Rank(0))).unwrap();
            env.wait_epoch(win).unwrap();
            assert_eq!(
                env.read_local(win, 0, 8).unwrap(),
                vec![env.rank().idx() as u8; 8]
            );
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn many_origins_one_target() {
    run_job(JobConfig::all_internode(4), |env| {
        let win = env.win_allocate(32).unwrap();
        if env.rank().idx() == 0 {
            env.post(win, Group::new([1, 2, 3])).unwrap();
            env.wait_epoch(win).unwrap();
            for s in 1..4usize {
                assert_eq!(env.read_local(win, s * 8, 8).unwrap(), vec![s as u8; 8]);
            }
        } else {
            let me = env.rank().idx();
            env.start(win, Group::single(Rank(0))).unwrap();
            env.put(win, Rank(0), me * 8, &[me as u8; 8]).unwrap();
            env.complete(win).unwrap();
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn win_test_polls_exposure() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        if env.rank().idx() == 0 {
            env.compute(SimTime::from_micros(300));
            env.start(win, Group::single(Rank(1))).unwrap();
            env.put(win, Rank(1), 0, &[9; 8]).unwrap();
            env.complete(win).unwrap();
        } else {
            env.post(win, Group::single(Rank(0))).unwrap();
            let mut polls = 0u32;
            while !env.test_epoch(win).unwrap() {
                polls += 1;
                env.compute(SimTime::from_micros(10));
            }
            assert!(polls > 0, "origin was late, test must fail at least once");
            assert_eq!(env.read_local(win, 0, 8).unwrap(), vec![9; 8]);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn late_post_blocks_blocking_complete() {
    // The Late Post inefficiency (§III): with blocking synchronization the
    // origin's `complete` absorbs the target's lateness.
    let t_complete = Arc::new(Mutex::new(0u64));
    let tc = t_complete.clone();
    run_job(JobConfig::all_internode(2), move |env| {
        let win = env.win_allocate(1 << 20).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            env.compute(SimTime::from_micros(1000)); // late post
            env.post(win, Group::single(Rank(0))).unwrap();
            env.wait_epoch(win).unwrap();
        } else {
            env.start(win, Group::single(Rank(1))).unwrap();
            env.put_synthetic(win, Rank(1), 0, 1 << 20).unwrap();
            env.complete(win).unwrap();
            *tc.lock().unwrap() = env.now().as_nanos();
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
    let t = *t_complete.lock().unwrap() as f64 / 1000.0; // µs
    assert!(
        (1300.0..1500.0).contains(&t),
        "blocking complete under Late Post took {t} µs, expected ≈1340 µs"
    );
}

#[test]
fn icomplete_escapes_late_post() {
    // With MPI_WIN_ICOMPLETE the origin returns in ε and can proceed
    // (Eq. 2 of §IV.C.1).
    let t_call = Arc::new(Mutex::new(0u64));
    let tc = t_call.clone();
    run_job(JobConfig::all_internode(2), move |env| {
        let win = env.win_allocate(1 << 20).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            env.compute(SimTime::from_micros(1000));
            env.post(win, Group::single(Rank(0))).unwrap();
            env.wait_epoch(win).unwrap();
        } else {
            let t0 = env.now();
            env.start(win, Group::single(Rank(1))).unwrap();
            env.put_synthetic(win, Rank(1), 0, 1 << 20).unwrap();
            let req = env.icomplete(win).unwrap();
            *tc.lock().unwrap() = (env.now() - t0).as_nanos();
            env.wait(req).unwrap();
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
    let t = *t_call.lock().unwrap() as f64 / 1000.0;
    assert!(
        t < 20.0,
        "istart+put+icomplete took {t} µs, expected only ε-class overhead"
    );
}

#[test]
fn gats_lazy_baseline_waits_for_all_targets() {
    // §VIII.B: the baseline issues nothing until every internode target is
    // ready; the redesigned engine issues per-target as grants arrive. We
    // check the observable consequence: with one late target, the punctual
    // target still receives its data early under Redesigned but late under
    // LazyBaseline.
    fn run(strategy: SyncStrategy) -> u64 {
        let t_recv = Arc::new(Mutex::new(0u64));
        let tr = t_recv.clone();
        run_job(
            JobConfig::all_internode(3).with_strategy(strategy),
            move |env| {
                let win = env.win_allocate(1 << 20).unwrap();
                env.barrier().unwrap();
                match env.rank().idx() {
                    0 => {
                        env.start(win, Group::new([1, 2])).unwrap();
                        env.put_synthetic(win, Rank(1), 0, 1 << 20).unwrap();
                        env.put_synthetic(win, Rank(2), 0, 1 << 20).unwrap();
                        env.complete(win).unwrap();
                    }
                    1 => {
                        // Punctual target.
                        env.post(win, Group::single(Rank(0))).unwrap();
                        env.wait_epoch(win).unwrap();
                        *tr.lock().unwrap() = env.now().as_nanos();
                    }
                    _ => {
                        // Late target.
                        env.compute(SimTime::from_micros(1000));
                        env.post(win, Group::single(Rank(0))).unwrap();
                        env.wait_epoch(win).unwrap();
                    }
                }
                env.win_free(win).unwrap();
            },
        )
        .unwrap();
        let v = *t_recv.lock().unwrap();
        v
    }
    let eager = run(SyncStrategy::Redesigned);
    let lazy = run(SyncStrategy::LazyBaseline);
    assert!(
        eager + 500_000 < lazy,
        "punctual target completed at {eager}ns (eager) vs {lazy}ns (lazy): \
         eager per-target issue should beat wait-for-all-targets by ≈1ms"
    );
}
