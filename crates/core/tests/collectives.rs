//! Integration tests: binomial-tree collectives over the two-sided
//! substrate, including cooperation with RMA phases.

use mpisim_core::{run_job, Datatype, JobConfig, LockKind, Rank, ReduceOp};
use mpisim_sim::SimTime;

#[test]
fn bcast_from_every_root_and_size() {
    for n in [1usize, 2, 3, 5, 8] {
        run_job(JobConfig::all_internode(n), move |env| {
            for root in 0..env.n_ranks() {
                let payload = vec![root as u8; 3 + root];
                let data = if env.rank().idx() == root { payload.clone() } else { vec![] };
                let got = env.bcast(Rank(root), &data).unwrap();
                assert_eq!(got.as_ref(), payload.as_slice(), "root {root}, n {n}");
            }
        })
        .unwrap();
    }
}

#[test]
fn bcast_large_payload_uses_rendezvous() {
    run_job(JobConfig::all_internode(4), |env| {
        let data = if env.rank().idx() == 0 { vec![7u8; 64 * 1024] } else { vec![] };
        let got = env.bcast(Rank(0), &data).unwrap();
        assert_eq!(got.len(), 64 * 1024);
        assert!(got.iter().all(|b| *b == 7));
    })
    .unwrap();
}

#[test]
fn reduce_sums_at_every_root() {
    for n in [1usize, 2, 4, 7] {
        run_job(JobConfig::all_internode(n), move |env| {
            let me = env.rank().idx() as u64;
            let contrib = mpisim_core::datatype::u64s_to_bytes(&[me + 1, 10 * (me + 1)]);
            for root in 0..env.n_ranks() {
                let r = env
                    .reduce(Rank(root), Datatype::U64, ReduceOp::Sum, &contrib)
                    .unwrap();
                if env.rank().idx() == root {
                    let vals = mpisim_core::datatype::bytes_to_u64s(&r.unwrap());
                    let expect: u64 = (1..=n as u64).sum();
                    assert_eq!(vals, vec![expect, 10 * expect]);
                } else {
                    assert!(r.is_none());
                }
            }
        })
        .unwrap();
    }
}

#[test]
fn reduce_max_min_f64() {
    run_job(JobConfig::all_internode(5), |env| {
        let me = env.rank().idx() as f64;
        let contrib = mpisim_core::datatype::f64s_to_bytes(&[me, -me]);
        let mx = env.allreduce(Datatype::F64, ReduceOp::Max, &contrib).unwrap();
        let vals = mpisim_core::datatype::bytes_to_f64s(&mx);
        assert_eq!(vals, vec![4.0, 0.0]);
        let mn = env.allreduce(Datatype::F64, ReduceOp::Min, &contrib).unwrap();
        let vals = mpisim_core::datatype::bytes_to_f64s(&mn);
        assert_eq!(vals, vec![0.0, -4.0]);
    })
    .unwrap();
}

#[test]
fn allreduce_agrees_on_every_rank() {
    run_job(JobConfig::all_internode(6), |env| {
        let me = env.rank().idx() as u64;
        let got = env
            .allreduce(
                Datatype::U64,
                ReduceOp::Sum,
                &mpisim_core::datatype::u64s_to_bytes(&[1 << me]),
            )
            .unwrap();
        let v = mpisim_core::datatype::bytes_to_u64s(&got);
        assert_eq!(v, vec![0b111111]);
    })
    .unwrap();
}

#[test]
fn gather_orders_by_rank() {
    run_job(JobConfig::all_internode(5), |env| {
        let me = env.rank().idx();
        // Staggered arrival to exercise out-of-order receives.
        env.compute(SimTime::from_micros(((me * 37) % 100) as u64));
        let mine = vec![me as u8; me + 1];
        let got = env.gather(Rank(2), &mine).unwrap();
        if me == 2 {
            let bufs = got.unwrap();
            assert_eq!(bufs.len(), 5);
            for (r, b) in bufs.iter().enumerate() {
                assert_eq!(b.as_ref(), vec![r as u8; r + 1].as_slice());
            }
        } else {
            assert!(got.is_none());
        }
    })
    .unwrap();
}

#[test]
fn collectives_interleave_with_rma_phases() {
    run_job(JobConfig::all_internode(4), |env| {
        let me = env.rank().idx();
        let n = env.n_ranks();
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        // RMA phase: everyone adds its rank+1 into rank 0's slot.
        env.lock(win, Rank(0), LockKind::Shared).unwrap();
        env.accumulate(win, Rank(0), 0, Datatype::U64, ReduceOp::Sum, &(me as u64 + 1).to_le_bytes())
            .unwrap();
        env.unlock(win, Rank(0)).unwrap();
        env.barrier().unwrap();
        // Collective phase: rank 0 broadcasts the accumulated total.
        let data = if me == 0 { env.read_local(win, 0, 8).unwrap() } else { vec![] };
        let total = env.bcast(Rank(0), &data).unwrap();
        let v = u64::from_le_bytes(total.as_ref().try_into().unwrap());
        assert_eq!(v, (1..=n as u64).sum::<u64>());
        // And everyone validates via an allreduce cross-check.
        let check = env
            .allreduce(Datatype::U64, ReduceOp::Max, &v.to_le_bytes())
            .unwrap();
        assert_eq!(mpisim_core::datatype::bytes_to_u64s(&check), vec![v]);
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn back_to_back_collectives_do_not_cross_tags() {
    run_job(JobConfig::all_internode(3), |env| {
        for i in 0..20u8 {
            let data = if env.rank().idx() == (i % 3) as usize { vec![i; 4] } else { vec![] };
            let got = env.bcast(Rank((i % 3) as usize), &data).unwrap();
            assert_eq!(got.as_ref(), &[i; 4]);
        }
    })
    .unwrap();
}

#[test]
fn invalid_root_rejected() {
    run_job(JobConfig::all_internode(2), |env| {
        assert!(env.bcast(Rank(9), &[1]).is_err());
        assert!(env
            .reduce(Rank(9), Datatype::U64, ReduceOp::Sum, &[0; 8])
            .is_err());
        assert!(env.gather(Rank(9), &[1]).is_err());
    })
    .unwrap();
}
