//! Integration tests: fence-based active-target epochs.

use mpisim_core::{run_job, Datatype, JobConfig, Rank, ReduceOp, SyncStrategy};

#[test]
fn fence_put_roundtrip() {
    run_job(JobConfig::all_internode(4), |env| {
        let n = env.n_ranks();
        let me = env.rank().idx();
        let win = env.win_allocate(8 * n).unwrap();
        env.fence(win).unwrap();
        // Everyone puts its rank into slot `me` of the right neighbour.
        let dst = Rank((me + 1) % n);
        env.put(win, dst, 8 * me, &(me as u64).to_le_bytes()).unwrap();
        env.fence(win).unwrap();
        // After the fence, the left neighbour's value must be visible.
        let left = (me + n - 1) % n;
        let got = env.read_local(win, 8 * left, 8).unwrap();
        assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), left as u64);
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn fence_many_rounds_accumulate() {
    run_job(JobConfig::all_internode(3), |env| {
        let win = env.win_allocate(8).unwrap();
        env.fence(win).unwrap();
        for _round in 0..10 {
            // All ranks accumulate 1 into rank 0's counter.
            env.accumulate(win, Rank(0), 0, Datatype::U64, ReduceOp::Sum, &1u64.to_le_bytes())
                .unwrap();
            env.fence(win).unwrap();
        }
        if env.rank().idx() == 0 {
            let got = env.read_local(win, 0, 8).unwrap();
            assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), 30);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn fence_barrier_semantics_blocks_until_all_arrive() {
    use std::sync::{Arc, Mutex};
    let exit_times = Arc::new(Mutex::new(vec![0u64; 2]));
    let et = exit_times.clone();
    run_job(JobConfig::all_internode(2), move |env| {
        let win = env.win_allocate(64).unwrap();
        env.fence(win).unwrap();
        if env.rank().idx() == 1 {
            // Rank 1 is late to its closing fence.
            env.compute(mpisim_sim::SimTime::from_micros(500));
        }
        env.fence(win).unwrap();
        et.lock().unwrap()[env.rank().idx()] = env.now().as_nanos();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let t = exit_times.lock().unwrap();
    // Rank 0's closing fence cannot exit before rank 1 reaches its own.
    assert!(
        t[0] >= 500_000,
        "rank0 exited its fence at {}ns, before the late rank arrived",
        t[0]
    );
}

#[test]
fn fence_get_reads_remote_data() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(16).unwrap();
        env.write_local(win, 0, &[7u8; 16]).unwrap();
        env.fence(win).unwrap();
        let req = if env.rank().idx() == 0 {
            Some(env.get(win, Rank(1), 4, 8).unwrap())
        } else {
            None
        };
        env.fence(win).unwrap();
        if let Some(r) = req {
            let data = env.wait_data(r).unwrap();
            assert_eq!(data.as_ref(), &[7u8; 8]);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn fence_with_only_gets_completes_and_counts() {
    // Gets are request messages at the target; fence completion counting
    // must include them or the target's fence would wait forever.
    run_job(JobConfig::all_internode(3), |env| {
        let win = env.win_allocate(16).unwrap();
        env.write_local(win, 0, &(env.rank().idx() as u64 + 7).to_le_bytes())
            .unwrap();
        env.fence(win).unwrap();
        let reqs: Vec<_> = (0..env.n_ranks())
            .filter(|t| *t != env.rank().idx())
            .map(|t| env.get(win, Rank(t), 0, 8).unwrap())
            .collect();
        env.fence(win).unwrap();
        for (i, r) in reqs.into_iter().enumerate() {
            let v = u64::from_le_bytes(env.wait_data(r).unwrap().as_ref().try_into().unwrap());
            assert!((7..7 + 3).contains(&v), "get {i} returned {v}");
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn fence_works_under_lazy_baseline() {
    run_job(
        JobConfig::all_internode(3).with_strategy(SyncStrategy::LazyBaseline),
        |env| {
            let n = env.n_ranks();
            let me = env.rank().idx();
            let win = env.win_allocate(8 * n).unwrap();
            env.fence(win).unwrap();
            for t in 0..n {
                if t != me {
                    env.put(win, Rank(t), 8 * me, &(me as u64 + 100).to_le_bytes())
                        .unwrap();
                }
            }
            env.fence(win).unwrap();
            for s in 0..n {
                if s != me {
                    let got = env.read_local(win, 8 * s, 8).unwrap();
                    assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), s as u64 + 100);
                }
            }
            env.win_free(win).unwrap();
        },
    )
    .unwrap();
}

#[test]
fn ifence_overlaps_but_preserves_barrier() {
    // Nonblocking fence: the closing request completes only after all
    // peers fence, but the call itself returns immediately.
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(64).unwrap();
        env.fence(win).unwrap();
        if env.rank().idx() == 0 {
            env.put(win, Rank(1), 0, &[1u8; 32]).unwrap();
            let t0 = env.now();
            let req = env.ifence(win).unwrap();
            let call_cost = env.now() - t0;
            assert!(
                call_cost.as_micros_f64() < 5.0,
                "ifence blocked for {call_cost}"
            );
            env.wait(req).unwrap();
        } else {
            env.compute(mpisim_sim::SimTime::from_micros(200));
            env.fence(win).unwrap();
        }
        // Retire the fence phase so the window can be freed: both sides
        // close their trailing fence epoch.
        env.fence(win).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn empty_fences_are_cheap() {
    let report = run_job(JobConfig::all_internode(4), |env| {
        let win = env.win_allocate(8).unwrap();
        for _ in 0..5 {
            env.fence(win).unwrap();
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
    // 5 empty fences over 4 internode ranks should stay well under a ms.
    assert!(report.final_time.as_micros_f64() < 1000.0);
}
