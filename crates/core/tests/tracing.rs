//! Tests for epoch lifecycle tracing: the trace must make the paper's
//! deferral and close-vs-complete distinctions directly observable.

use mpisim_core::trace::{render_timeline, summarize, EpochEvent};
use mpisim_core::{run_job, JobConfig, LockKind, Rank};
use mpisim_sim::SimTime;

fn traced(n: usize) -> JobConfig {
    let mut c = JobConfig::all_internode(n);
    c.trace = true;
    c
}

#[test]
fn trace_captures_all_four_transitions() {
    let report = run_job(traced(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, &[1u8; 8]).unwrap();
            env.unlock(win, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let lock_epochs: Vec<_> = summarize(&report.trace)
        .into_iter()
        .filter(|s| s.kind == "lock")
        .collect();
    assert_eq!(lock_epochs.len(), 1);
    let e = &lock_epochs[0];
    assert!(e.opened.is_some() && e.activated.is_some());
    assert!(e.closed.is_some() && e.completed.is_some());
    assert!(e.opened <= e.activated);
    assert!(e.closed <= e.completed);
    // Blocking unlock: the app-level close and internal completion are a
    // few control-packet round trips apart at most (the call waited).
    assert!(e.close_to_complete().unwrap() < SimTime::from_micros(20));
}

#[test]
fn trace_shows_deferral_of_back_to_back_epochs() {
    let report = run_job(traced(2), |env| {
        let win = env.win_allocate(1 << 20).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            let _ = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put_synthetic(win, Rank(1), 0, 1 << 20).unwrap();
            let r1 = env.iunlock(win, Rank(1)).unwrap();
            let _ = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put_synthetic(win, Rank(1), 0, 1 << 20).unwrap();
            let r2 = env.iunlock(win, Rank(1)).unwrap();
            env.wait(r1).unwrap();
            env.wait(r2).unwrap();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let locks: Vec<_> = summarize(&report.trace)
        .into_iter()
        .filter(|s| s.kind == "lock" && s.rank == 0)
        .collect();
    assert_eq!(locks.len(), 2);
    // First epoch activates immediately; second defers until the first
    // completes (~340 µs of transfer + acks).
    assert!(locks[0].deferral().unwrap() < SimTime::from_micros(5));
    assert!(
        locks[1].deferral().unwrap() > SimTime::from_micros(200),
        "second epoch should defer ≈ one transfer: {:?}",
        locks[1].deferral()
    );
    // Nonblocking close: closed long before completed for epoch 1.
    assert!(locks[0].close_to_complete().unwrap() > SimTime::from_micros(200));
}

#[test]
fn trace_disabled_by_default() {
    let report = run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.fence(win).unwrap();
        env.fence(win).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    assert!(report.trace.is_empty());
}

#[test]
fn timeline_renders_every_epoch_row() {
    let report = run_job(traced(3), |env| {
        let win = env.win_allocate(64).unwrap();
        env.fence(win).unwrap();
        env.put(win, Rank((env.rank().idx() + 1) % 3), 0, &[1u8; 8]).unwrap();
        env.fence(win).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    let txt = render_timeline(&report.trace);
    assert!(txt.contains("fence"));
    assert!(txt.contains("r0"));
    assert!(txt.contains("r2"));
    // Rows = number of distinct epochs.
    let epochs = summarize(&report.trace).len();
    assert_eq!(txt.lines().count(), epochs + 1); // + header
}

#[test]
fn events_are_time_ordered_per_epoch() {
    let report = run_job(traced(2), |env| {
        let win = env.win_allocate(32).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            for _ in 0..3 {
                env.lock(win, Rank(1), LockKind::Shared).unwrap();
                env.put(win, Rank(1), 0, &[3u8; 4]).unwrap();
                env.unlock(win, Rank(1)).unwrap();
            }
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
    for s in summarize(&report.trace) {
        let times = [s.opened, s.activated, s.closed, s.completed];
        let present: Vec<_> = times.iter().flatten().collect();
        assert!(present.windows(2).all(|w| w[0] <= w[1]), "{s:?}");
    }
    // Raw record stream is globally time-ordered too.
    assert!(report
        .trace
        .windows(2)
        .all(|w| w[0].time <= w[1].time));
    let _ = EpochEvent::Opened; // silence unused import in cfg permutations
}
