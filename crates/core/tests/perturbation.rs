//! Robustness under network perturbation: with deterministic latency
//! jitter injected into every message, protocol correctness must be
//! unchanged (only timing moves), and the engine's introspection counters
//! must stay consistent.

use std::sync::{Arc, Mutex};

use mpisim_core::{run_job, Datatype, Group, JobConfig, LockKind, Rank, ReduceOp};
use mpisim_sim::SimTime;

fn noisy(n: usize, seed: u64) -> JobConfig {
    let mut cfg = JobConfig::all_internode(n).with_seed(seed);
    cfg.net.jitter = SimTime::from_micros(37);
    cfg
}

#[test]
fn mixed_epochs_survive_jitter() {
    for seed in [1u64, 2, 3] {
        run_job(noisy(4, seed), |env| {
            let me = env.rank().idx();
            let n = env.n_ranks();
            let win = env.win_allocate(8 * n).unwrap();
            env.barrier().unwrap();
            // Lock phase.
            for off in 1..n {
                let t = Rank((me + off) % n);
                env.lock(win, t, LockKind::Exclusive).unwrap();
                env.accumulate(win, t, 0, Datatype::U64, ReduceOp::Sum, &1u64.to_le_bytes())
                    .unwrap();
                env.unlock(win, t).unwrap();
            }
            env.barrier().unwrap();
            let v = u64::from_le_bytes(env.read_local(win, 0, 8).unwrap().try_into().unwrap());
            assert_eq!(v, (n - 1) as u64);
            // GATS phase.
            if me == 0 {
                env.start(win, Group::new(1..n)).unwrap();
                for t in 1..n {
                    env.put(win, Rank(t), 8, &[9u8; 8]).unwrap();
                }
                env.complete(win).unwrap();
            } else {
                env.post(win, Group::single(Rank(0))).unwrap();
                env.wait_epoch(win).unwrap();
                assert_eq!(env.read_local(win, 8, 8).unwrap(), vec![9u8; 8]);
            }
            env.win_free(win).unwrap();
        })
        .unwrap();
    }
}

#[test]
fn jitter_changes_timing_not_results() {
    fn run(jitter_us: u64) -> (u64, Vec<u8>) {
        let data = Arc::new(Mutex::new(Vec::new()));
        let d2 = data.clone();
        let mut cfg = JobConfig::all_internode(3).with_seed(11);
        cfg.net.jitter = SimTime::from_micros(jitter_us);
        let report = run_job(cfg, move |env| {
            let win = env.win_allocate(16).unwrap();
            env.barrier().unwrap();
            if env.rank().idx() == 0 {
                env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
                env.put(win, Rank(2), 0, &[5u8; 16]).unwrap();
                env.unlock(win, Rank(2)).unwrap();
            }
            env.barrier().unwrap();
            if env.rank().idx() == 2 {
                *d2.lock().unwrap() = env.read_local(win, 0, 16).unwrap();
            }
            env.win_free(win).unwrap();
        })
        .unwrap();
        let v = data.lock().unwrap().clone();
        (report.final_time.as_nanos(), v)
    }
    let (t0, d0) = run(0);
    let (t1, d1) = run(80);
    assert_eq!(d0, d1, "payload must be identical under jitter");
    assert_ne!(t0, t1, "jitter should perturb the schedule");
}

#[test]
fn engine_stats_are_consistent() {
    let stats = Arc::new(Mutex::new(None));
    let s2 = stats.clone();
    run_job(JobConfig::all_internode(3), move |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            // Two back-to-back nonblocking lock epochs (the second defers).
            let _ = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, &[1u8; 8]).unwrap();
            let r1 = env.iunlock(win, Rank(1)).unwrap();
            let _ = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 8, &[2u8; 8]).unwrap();
            let r2 = env.iunlock(win, Rank(1)).unwrap();
            env.wait(r1).unwrap();
            env.wait(r2).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            *s2.lock().unwrap() = Some(env.engine().engine_stats());
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
    let s = stats.lock().unwrap().unwrap();
    assert!(s.epochs_opened >= 2, "{s:?}");
    assert_eq!(
        s.epochs_activated, s.epochs_completed,
        "every activated epoch completed: {s:?}"
    );
    assert!(s.epochs_activated >= 2, "{s:?}");
    assert!(
        s.epochs_deferred >= 1,
        "the second back-to-back lock epoch must have been deferred: {s:?}"
    );
    assert!(s.lock_grants >= 2, "{s:?}");
    assert!(s.sweeps > 0);
}
