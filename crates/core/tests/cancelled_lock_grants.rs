//! Regression tests for the PR-5 watchdog-cancellation protocol fixes:
//! a cancelled lock epoch must give back what it owes the lock plane —
//! grants it already holds are released immediately, and grants still in
//! flight are bounced with an unlock when they finally land — and a
//! blocking flush inside a lazy-deferred lock epoch must force lock
//! acquisition instead of self-deadlocking.

use std::sync::{Arc, Mutex};

use mpisim_core::{
    run_job, Degradation, JobConfig, LockKind, Rank, Reliability, SyncStrategy,
};
use mpisim_net::{FaultPlan, Partition};
use mpisim_sim::SimTime;

/// A queued lock request whose epoch the watchdog cancelled is granted
/// *after* the cancellation. The late grant must be bounced with an
/// immediate unlock so the target's lock queue keeps moving — proven by
/// a third requester behind the dead one acquiring the lock and landing
/// its data.
#[test]
fn late_grant_after_cancellation_is_bounced() {
    let budget = SimTime::from_millis(1);
    let cfg = JobConfig::new(3).with_watchdog(budget);
    let report = run_job(cfg, |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        match env.rank().idx() {
            1 => {
                // Grab rank 2's lock first and sit on it far past the
                // watchdog budget, so rank 0's request stays queued.
                env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
                env.compute(SimTime::from_millis(5));
                env.unlock(win, Rank(2)).unwrap();
                // Re-queue behind rank 0's now-dead request: this only
                // completes if rank 0 bounces its late grant.
                env.lock(win, Rank(2), LockKind::Exclusive).unwrap();
                env.put(win, Rank(2), 0, b"after-bounce").unwrap();
                env.unlock(win, Rank(2)).unwrap();
            }
            0 => {
                // Ensure rank 1's request reaches the target first.
                env.compute(SimTime::from_micros(100));
                let l = env.ilock(win, Rank(2), LockKind::Exclusive).unwrap();
                env.put(win, Rank(2), 32, &[7; 4]).unwrap();
                let u = env.iunlock(win, Rank(2)).unwrap();
                // These return only because the watchdog cancels the
                // closed-but-ungranted epoch.
                env.wait(l).unwrap();
                env.wait(u).unwrap();
            }
            _ => {}
        }
        env.barrier().unwrap();
        if env.rank().idx() == 2 {
            assert_eq!(env.read_local(win, 0, 12).unwrap(), b"after-bounce");
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
    assert!(!report.is_clean());
    let stalls: Vec<_> = report
        .degradations
        .iter()
        .filter_map(|d| match d {
            Degradation::EpochStall(r) => Some(r),
            _ => None,
        })
        .collect();
    assert_eq!(stalls.len(), 1, "{:?}", report.degradations);
    assert_eq!(stalls[0].kind, "lock");
    assert_eq!(stalls[0].rank, Rank(0));
    assert_eq!(report.engine.epochs_cancelled, 1);
    // The bounce and rank 1's own unlocks all landed at the target.
    assert!(report.engine.unlocks_applied >= 3, "{:?}", report.engine);
}

/// A cancelled lock_all epoch that already holds grants from reachable
/// peers must release them. Rank 1's own subsequent exclusive lock of
/// its window only completes if rank 0's cancelled epoch let go.
#[test]
fn cancelled_epoch_releases_grants_it_holds() {
    let mut plan = FaultPlan::none(5);
    plan.partitions.push(Partition {
        a: Rank(0),
        b: Rank(2),
        from: SimTime::from_micros(50),
        until: SimTime::from_secs(1_000),
    });
    let mut cfg = JobConfig::all_internode(3);
    cfg.net.faults = Some(plan);
    cfg.reliability = Some(Reliability {
        rto: SimTime::from_micros(20),
        max_backoff: SimTime::from_micros(80),
        max_retries: 4,
        ..Reliability::default()
    });
    let budget = SimTime::from_millis(1);
    cfg = cfg.with_watchdog(budget);
    let unlocked_at = Arc::new(Mutex::new(SimTime::ZERO));
    let ua = unlocked_at.clone();
    let report = run_job(cfg, move |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        match env.rank().idx() {
            0 => {
                env.compute(SimTime::from_micros(100)); // step past the cut
                // lock_all: grants from self and rank 1 arrive, the one
                // from partitioned rank 2 never does.
                let l = env.ilock_all(win).unwrap();
                env.put(win, Rank(1), 0, &[9; 4]).unwrap();
                let u = env.iunlock_all(win).unwrap();
                env.wait(l).unwrap();
                env.wait(u).unwrap(); // returns via watchdog cancellation
            }
            1 => {
                // Wait until well after rank 0 was cancelled, then take
                // our own lock: it only gets granted if the cancelled
                // epoch released the grant it held on us.
                env.compute(SimTime::from_millis(3));
                env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
                env.unlock(win, Rank(1)).unwrap();
                *ua.lock().unwrap() = env.now();
            }
            _ => {}
        }
        // No closing collective: the partition never heals.
    })
    .unwrap();
    assert!(!report.is_clean());
    let stalls: Vec<_> = report
        .degradations
        .iter()
        .filter_map(|d| match d {
            Degradation::EpochStall(r) => Some(r),
            _ => None,
        })
        .collect();
    // Exactly rank 0's lock_all stalled; rank 1's lock was NOT wedged by
    // a leaked grant (it would have been cancelled too).
    assert_eq!(stalls.len(), 1, "{:?}", report.degradations);
    assert_eq!(stalls[0].kind, "lock-all");
    assert_eq!(stalls[0].rank, Rank(0));
    assert_eq!(report.engine.epochs_cancelled, 1);
    let t = *unlocked_at.lock().unwrap();
    assert!(
        t >= SimTime::from_millis(3) && t < SimTime::from_millis(4),
        "rank 1's lock must complete promptly after the release, got {t:?}"
    );
}

/// MVAPICH-style lazy baseline: the lock epoch is deferred whole until
/// unlock, but a blocking flush demands remote completion *now*. The
/// flush must force lock acquisition and issue the covered ops instead
/// of waiting on an epoch that will never activate on its own.
#[test]
fn blocking_flush_forces_lazy_lock_acquisition() {
    let seen_at_flush = Arc::new(Mutex::new(Vec::new()));
    let seen = seen_at_flush.clone();
    let report = run_job(
        JobConfig::all_internode(2).with_strategy(SyncStrategy::LazyBaseline),
        move |env| {
            let win = env.win_allocate(64).unwrap();
            env.barrier().unwrap();
            if env.rank().idx() == 0 {
                env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
                env.put(win, Rank(1), 0, b"flushed").unwrap();
                // Self-deadlock hazard: under the lazy baseline nothing
                // else ever activates this epoch.
                env.flush(win, Rank(1)).unwrap();
                env.compute(SimTime::from_millis(1));
                env.put(win, Rank(1), 32, b"unlocked").unwrap();
                env.unlock(win, Rank(1)).unwrap();
            } else {
                // Read mid-epoch, long before rank 0's unlock at ~1 ms:
                // only a forced flush can have landed the bytes by now.
                env.compute(SimTime::from_micros(500));
                *seen.lock().unwrap() = env.read_local(win, 0, 7).unwrap();
            }
            env.barrier().unwrap();
            if env.rank().idx() == 1 {
                assert_eq!(env.read_local(win, 0, 7).unwrap(), b"flushed");
                assert_eq!(env.read_local(win, 32, 8).unwrap(), b"unlocked");
            }
            env.win_free(win).unwrap();
        },
    )
    .unwrap();
    assert!(report.is_clean(), "{:?}", report.degradations);
    assert_eq!(*seen_at_flush.lock().unwrap(), b"flushed");
    assert_eq!(report.engine.epochs_cancelled, 0);
}
