//! Strided (vector-datatype) put/get tests.

use mpisim_core::{run_job, JobConfig, LockKind, Rank, RmaError};

#[test]
fn strided_put_scatters_blocks() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            // 3 blocks of 4 bytes, stride 16, starting at disp 2.
            let packed: Vec<u8> = (1..=12).collect();
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put_strided(win, Rank(1), 2, 3, 4, 16, &packed).unwrap();
            env.unlock(win, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            let mem = env.read_local(win, 0, 64).unwrap();
            assert_eq!(&mem[2..6], &[1, 2, 3, 4]);
            assert_eq!(&mem[18..22], &[5, 6, 7, 8]);
            assert_eq!(&mem[34..38], &[9, 10, 11, 12]);
            // Gaps untouched.
            assert_eq!(&mem[6..18], &[0u8; 12]);
            assert_eq!(mem[0], 0);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn strided_get_gathers_blocks() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(64).unwrap();
        // Target pre-fills a strided pattern.
        if env.rank().idx() == 1 {
            for b in 0..4 {
                env.write_local(win, b * 10, &[b as u8 + 1; 2]).unwrap();
            }
        }
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Shared).unwrap();
            let r = env.get_strided(win, Rank(1), 0, 4, 2, 10).unwrap();
            env.unlock(win, Rank(1)).unwrap();
            let data = env.wait_data(r).unwrap();
            assert_eq!(data.as_ref(), &[1, 1, 2, 2, 3, 3, 4, 4]);
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn strided_roundtrip_matrix_column() {
    // The classic use: writing a column of a row-major matrix.
    const COLS: usize = 8;
    const ROWS: usize = 6;
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(ROWS * COLS).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            // Write column 3: one byte per row, stride = row length.
            let col: Vec<u8> = (0..ROWS as u8).map(|r| 0xA0 + r).collect();
            env.lock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put_strided(win, Rank(1), 3, ROWS, 1, COLS, &col).unwrap();
            // Read it back through the strided gather.
            let r = env.get_strided(win, Rank(1), 3, ROWS, 1, COLS).unwrap();
            env.unlock(win, Rank(1)).unwrap();
            let got = env.wait_data(r).unwrap();
            assert_eq!(got.as_ref(), col.as_slice());
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            let mem = env.read_local(win, 0, ROWS * COLS).unwrap();
            for r in 0..ROWS {
                for c in 0..COLS {
                    let expect = if c == 3 { 0xA0 + r as u8 } else { 0 };
                    assert_eq!(mem[r * COLS + c], expect, "({r},{c})");
                }
            }
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn invalid_vector_layouts_rejected() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        env.lock(win, Rank(1), LockKind::Shared).unwrap();
        // stride < blocklen
        assert!(matches!(
            env.put_strided(win, Rank(1), 0, 2, 8, 4, &[0; 16]).unwrap_err(),
            RmaError::DatatypeMismatch { .. }
        ));
        // data length mismatch
        assert!(env.put_strided(win, Rank(1), 0, 2, 8, 8, &[0; 15]).is_err());
        assert!(env.get_strided(win, Rank(1), 0, 2, 8, 4).is_err());
        env.unlock(win, Rank(1)).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn strided_works_in_gats_and_fence_epochs() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(64).unwrap();
        env.fence(win).unwrap();
        if env.rank().idx() == 0 {
            env.put_strided(win, Rank(1), 0, 2, 3, 8, &[9u8; 6]).unwrap();
        }
        env.fence(win).unwrap();
        if env.rank().idx() == 1 {
            let mem = env.read_local(win, 0, 16).unwrap();
            assert_eq!(&mem[0..3], &[9, 9, 9]);
            assert_eq!(&mem[8..11], &[9, 9, 9]);
            assert_eq!(mem[3], 0);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}
