//! End-to-end tests of the ack/retransmit reliability sublayer and the
//! epoch stall watchdog under seeded unreliable-interconnect fault plans.
//!
//! Clean-recovery tests assert the channel quiescence invariant from
//! DESIGN.md §11 — every frame pushed is eventually delivered exactly
//! once (`rel_delivered == rel_frames_sent`) — on top of data
//! correctness. Degraded-termination tests assert the job *ends* with
//! structured degradations instead of hanging.

use mpisim_core::{
    run_job, Degradation, JobConfig, JobReport, LockKind, Rank, Reliability,
};
use mpisim_net::{FaultPlan, Partition};
use mpisim_sim::{SimError, SimTime};

/// All-internode job with the given fault plan and the sublayer on.
fn faulty_cfg(n: usize, plan: FaultPlan) -> JobConfig {
    let mut cfg = JobConfig::all_internode(n);
    cfg.net.faults = Some(plan);
    cfg.with_reliability()
}

/// A workload crossing every message class the sublayer frames: barrier
/// bootstrap, passive-target locks with puts, and two fence phases, with
/// full data verification at the end.
fn mixed_job(cfg: JobConfig) -> Result<JobReport, SimError> {
    run_job(cfg, |env| {
        let win = env.win_allocate(256).unwrap();
        env.barrier().unwrap();
        let me = env.rank().idx();
        let n = env.n_ranks();
        let next = Rank((me + 1) % n);
        // Passive target: everyone deposits a byte row at rank 0.
        env.lock(win, Rank(0), LockKind::Shared).unwrap();
        env.put(win, Rank(0), me * 8, &[me as u8; 8]).unwrap();
        env.unlock(win, Rank(0)).unwrap();
        // Active target: several fence phases of neighbour puts (enough
        // traffic that probabilistic fault plans actually strike).
        let rounds = 6usize;
        env.fence(win).unwrap();
        for round in 1..=rounds {
            env.put(win, next, 128 + me * 4, &[(me * 10 + round) as u8; 4]).unwrap();
            env.fence(win).unwrap();
        }
        let prev = (me + n - 1) % n;
        assert_eq!(
            env.read_local(win, 128 + prev * 4, 4).unwrap(),
            vec![(prev * 10 + rounds) as u8; 4],
            "fence deposit from the left neighbour must survive the faults"
        );
        env.barrier().unwrap();
        if me == 0 {
            for r in 0..n {
                assert_eq!(
                    env.read_local(win, r * 8, 8).unwrap(),
                    vec![r as u8; 8],
                    "passive deposit from rank {r} must survive the faults"
                );
            }
        }
        env.win_free(win).unwrap();
    })
}

/// `pushed == acked + retransmit-pending` at quiescence; on a clean run
/// the pending term is zero, so every unique frame was delivered once.
fn assert_quiescent_channels(report: &JobReport) {
    let e = &report.engine;
    assert!(e.rel_frames_sent > 0, "job must actually use the framed path");
    assert_eq!(
        e.rel_delivered, e.rel_frames_sent,
        "every framed message must be delivered exactly once at quiescence"
    );
}

#[test]
fn light_loss_recovers_every_message() {
    let report = mixed_job(faulty_cfg(4, FaultPlan::light_loss(11))).unwrap();
    assert!(report.is_clean(), "{:?}", report.degradations);
    assert!(report.net.fault_drops > 0, "the plan must actually drop something");
    assert!(
        report.engine.rel_retransmits > 0,
        "dropped frames can only be recovered by retransmission"
    );
    assert_quiescent_channels(&report);
    assert_eq!(report.live_requests, 0);
}

#[test]
fn heavy_dup_reorder_is_deduplicated_and_resequenced() {
    let report = mixed_job(faulty_cfg(4, FaultPlan::heavy_dup_reorder(23))).unwrap();
    assert!(report.is_clean(), "{:?}", report.degradations);
    assert!(report.net.fault_dups > 0 && report.net.fault_reorders > 0);
    let e = &report.engine;
    assert!(e.rel_dups_dropped > 0, "injected duplicates must be suppressed");
    assert!(
        e.rel_ooo_buffered > 0,
        "reordered frames must cross the dedup-window boundary into the ooo buffer"
    );
    assert_quiescent_channels(&report);
}

#[test]
fn transient_partition_heals_through_backoff() {
    // The partition heals at 2 ms; the default backoff schedule must keep
    // probing long enough to carry every frame across the heal.
    let report = mixed_job(faulty_cfg(4, FaultPlan::transient_partition(7))).unwrap();
    assert!(report.is_clean(), "{:?}", report.degradations);
    assert!(report.net.fault_partition_drops > 0, "the cut must hit live traffic");
    assert!(report.engine.rel_retransmits > 0);
    assert_quiescent_channels(&report);
}

#[test]
fn retransmit_racing_ack_is_deduplicated_and_acked() {
    // No faults at all: an RTO far below the round-trip time forces
    // spurious retransmits, so the receiver sees genuine duplicates of
    // frames it already delivered and must drop-but-re-ack them.
    let mut cfg = JobConfig::all_internode(2);
    cfg.reliability = Some(Reliability {
        rto: SimTime::from_nanos(800),
        max_backoff: SimTime::from_micros(100),
        max_retries: 30,
        // Immediate acks: the test wants the retransmit to race the ack
        // itself, not the delayed-ack hold.
        ack_delay: SimTime::from_nanos(0),
    });
    let report = mixed_job(cfg).unwrap();
    assert!(report.is_clean(), "{:?}", report.degradations);
    let e = &report.engine;
    assert!(e.rel_retransmits > 0, "sub-RTT timeout must spuriously retransmit");
    assert!(
        e.rel_dups_dropped > 0,
        "the retransmitted duplicate must be dropped and re-acked, not re-delivered"
    );
    assert_quiescent_channels(&report);
    assert_eq!(report.live_requests, 0);
}

#[test]
fn unhealed_partition_exhausts_backoff_and_trips_watchdog() {
    // A partition that never heals: the frame toward rank 1 burns its
    // whole retry budget (backoff capped), is abandoned, and the closed
    // lock epoch is cancelled by the watchdog within [budget, 2*budget].
    let mut plan = FaultPlan::none(5);
    plan.partitions.push(Partition {
        a: Rank(0),
        b: Rank(1),
        from: SimTime::from_micros(50),
        until: SimTime::from_secs(1_000),
    });
    let mut cfg = JobConfig::all_internode(2);
    cfg.net.faults = Some(plan);
    cfg.reliability = Some(Reliability {
        rto: SimTime::from_micros(20),
        max_backoff: SimTime::from_micros(80),
        max_retries: 4,
        ..Reliability::default()
    });
    let budget = SimTime::from_millis(1);
    cfg = cfg.with_watchdog(budget);
    let report = run_job(cfg, |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.compute(SimTime::from_micros(100)); // step past the cut
            let l = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, &[7; 4]).unwrap();
            let u = env.iunlock(win, Rank(1)).unwrap();
            env.wait(l).unwrap();
            env.wait(u).unwrap(); // returns only because the watchdog cancels
        }
        // No closing collective: rank 1 exits and the job ends degraded.
    })
    .unwrap();
    assert!(!report.is_clean());
    let exhausted: Vec<_> = report
        .degradations
        .iter()
        .filter_map(|d| match d {
            Degradation::RetriesExhausted { retries, dst, .. } => Some((*retries, *dst)),
            _ => None,
        })
        .collect();
    assert!(!exhausted.is_empty(), "{:?}", report.degradations);
    for (retries, dst) in &exhausted {
        assert_eq!(*retries, 4, "frames must burn the exact retry budget");
        assert_eq!(*dst, Rank(1));
    }
    let stalls: Vec<_> = report
        .degradations
        .iter()
        .filter_map(|d| match d {
            Degradation::EpochStall(r) => Some(r),
            _ => None,
        })
        .collect();
    assert!(!stalls.is_empty(), "{:?}", report.degradations);
    for r in &stalls {
        assert_eq!(r.kind, "lock");
        assert_eq!(r.rank, Rank(0));
        let waited = r.cancelled_at.saturating_sub(r.closed_at);
        assert!(
            waited >= budget && waited <= budget + budget,
            "cancel must land within [budget, 2*budget] of the close, got {waited:?}"
        );
    }
    assert!(report.engine.epochs_cancelled >= 1);
    assert!(report.engine.retries_exhausted >= 1);
}

#[test]
fn crashed_peer_during_lock_all_is_cancelled_not_hung() {
    // Rank 2's NIC dies while every rank holds a shared lock-all epoch;
    // frames toward it are abandoned as peer-crash degradations and the
    // stalled epochs are cancelled, so the job terminates.
    let mut plan = FaultPlan::none(9);
    plan.crashes.push((Rank(2), SimTime::from_micros(400)));
    let mut cfg = JobConfig::all_internode(3);
    cfg.net.faults = Some(plan);
    cfg.reliability = Some(Reliability {
        rto: SimTime::from_micros(20),
        max_backoff: SimTime::from_micros(80),
        max_retries: 4,
        ..Reliability::default()
    });
    cfg = cfg.with_watchdog(SimTime::from_millis(1));
    let report = run_job(cfg, |env| {
        let win = env.win_allocate(128).unwrap();
        env.barrier().unwrap();
        let me = env.rank().idx();
        let la = env.ilock_all(win).unwrap();
        env.wait(la).unwrap();
        env.compute(SimTime::from_micros(600)); // hold the lock across the crash
        let next = Rank((me + 1) % 3);
        env.put(win, next, me * 8, &[me as u8; 8]).unwrap();
        let u = env.iunlock_all(win).unwrap();
        env.wait(u).unwrap(); // stalled epochs return via cancellation
        // No post-crash collectives: the job ends degraded.
    })
    .unwrap();
    assert!(!report.is_clean());
    assert!(
        report.degradations.iter().any(|d| d.kind() == "peer-crash"),
        "abandonment toward a crashed NIC must be classified as peer-crash: {:?}",
        report.degradations
    );
    let stalled_lock_all = report.degradations.iter().any(|d| {
        matches!(d, Degradation::EpochStall(r) if r.kind == "lock-all")
    });
    assert!(stalled_lock_all, "{:?}", report.degradations);
    assert!(report.engine.epochs_cancelled >= 1);
    assert!(report.net.fault_crash_drops > 0);
}
