//! Integration tests: §VI.A semantics rules, error detection, and
//! determinism.


use mpisim_core::{run_job, Group, JobConfig, LockKind, Rank, RmaError, WinId};
use mpisim_sim::SimTime;

// ---------------------------------------------------------------------
// rule 1: any combination of blocking and nonblocking routines
// ---------------------------------------------------------------------

#[test]
fn mixed_blocking_and_nonblocking_epoch_routines() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(32).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            // Nonblocking open + blocking close.
            let _ = env.istart(win, Group::single(Rank(1))).unwrap();
            env.put(win, Rank(1), 0, &[1u8; 8]).unwrap();
            env.complete(win).unwrap();
            // Blocking open + nonblocking close.
            env.start(win, Group::single(Rank(1))).unwrap();
            env.put(win, Rank(1), 8, &[2u8; 8]).unwrap();
            let r = env.icomplete(win).unwrap();
            env.wait(r).unwrap();
        } else {
            let r0 = env.ipost(win, Group::single(Rank(0))).unwrap();
            env.wait(r0).unwrap(); // dummy: completes immediately
            env.wait_epoch(win).unwrap();
            env.post(win, Group::single(Rank(0))).unwrap();
            let r = env.iwait(win).unwrap();
            env.wait(r).unwrap();
            assert_eq!(env.read_local(win, 0, 8).unwrap(), vec![1u8; 8]);
            assert_eq!(env.read_local(win, 8, 8).unwrap(), vec![2u8; 8]);
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// rule: epoch-opening requests are dummies, complete at creation (§VII.C)
// ---------------------------------------------------------------------

#[test]
fn opening_requests_complete_immediately_even_when_deferred() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            // First epoch still in flight...
            let _ = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, &[1u8; 8]).unwrap();
            let r1 = env.iunlock(win, Rank(1)).unwrap();
            // ...second epoch is deferred inside the engine, but its
            // opening request is already complete.
            let open2 = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
            assert!(env.test(open2).unwrap(), "opening request must be complete at creation");
            env.put(win, Rank(1), 0, &[2u8; 8]).unwrap();
            let r2 = env.iunlock(win, Rank(1)).unwrap();
            env.wait(r1).unwrap();
            env.wait(r2).unwrap();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// rule 2: buffers unsafe until completion detected — we verify the
// positive direction: after wait, data is there.
// ---------------------------------------------------------------------

#[test]
fn deferred_epoch_records_and_replays() {
    // Epoch 2 is opened, written, and closed while epoch 1 is still
    // active: everything is recorded and replayed on activation (§VII.A).
    run_job(JobConfig::all_internode(3), |env| {
        let win = env.win_allocate(16).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            let _ = env.ilock(win, Rank(1), LockKind::Exclusive).unwrap();
            env.put(win, Rank(1), 0, &[1u8; 16]).unwrap();
            let r1 = env.iunlock(win, Rank(1)).unwrap();
            let _ = env.ilock(win, Rank(2), LockKind::Exclusive).unwrap();
            env.put(win, Rank(2), 0, &[2u8; 16]).unwrap();
            let r2 = env.iunlock(win, Rank(2)).unwrap();
            env.wait(r1).unwrap();
            env.wait(r2).unwrap();
        }
        env.barrier().unwrap();
        match env.rank().idx() {
            1 => assert_eq!(env.read_local(win, 0, 16).unwrap(), vec![1u8; 16]),
            2 => assert_eq!(env.read_local(win, 0, 16).unwrap(), vec![2u8; 16]),
            _ => {}
        }
        env.win_free(win).unwrap();
    })
    .unwrap();
}

// ---------------------------------------------------------------------
// error detection
// ---------------------------------------------------------------------

#[test]
fn rma_outside_epoch_is_rejected() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        let err = env.put(win, Rank(1), 0, &[1]).unwrap_err();
        assert!(matches!(err, RmaError::NoEpoch { .. }), "got {err:?}");
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn mismatched_closes_are_rejected() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        assert!(matches!(
            env.complete(win).unwrap_err(),
            RmaError::EpochMismatch { .. }
        ));
        assert!(matches!(
            env.wait_epoch(win).unwrap_err(),
            RmaError::EpochMismatch { .. }
        ));
        assert!(matches!(
            env.unlock(win, Rank(1)).unwrap_err(),
            RmaError::EpochMismatch { .. }
        ));
        assert!(matches!(
            env.unlock_all(win).unwrap_err(),
            RmaError::EpochMismatch { .. }
        ));
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn overlapping_conflicting_epochs_rejected() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            env.lock(win, Rank(1), LockKind::Shared).unwrap();
            // lock + lock to the same target, lock_all, GATS, fence: all
            // conflict with the open lock epoch.
            assert!(env.lock(win, Rank(1), LockKind::Shared).is_err());
            assert!(env.lock_all(win).is_err());
            assert!(env.start(win, Group::single(Rank(1))).is_err());
            assert!(env.fence(win).is_err());
            env.unlock(win, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn invalid_rank_and_window_rejected() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        assert!(matches!(
            env.lock(win, Rank(99), LockKind::Shared).unwrap_err(),
            RmaError::InvalidRank(99)
        ));
        env.lock(win, Rank(1), LockKind::Shared).unwrap();
        assert!(matches!(
            env.put(WinId(42), Rank(1), 0, &[1]).unwrap_err(),
            RmaError::InvalidWindow(_)
        ));
        env.unlock(win, Rank(1)).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn datatype_mismatch_rejected() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(64).unwrap();
        env.barrier().unwrap();
        env.lock(win, Rank(1), LockKind::Shared).unwrap();
        // 7 bytes is not a multiple of 8.
        assert!(env
            .accumulate(win, Rank(1), 0, mpisim_core::Datatype::U64, mpisim_core::ReduceOp::Sum, &[0; 7])
            .is_err());
        // fetch_and_op on two elements.
        assert!(env
            .fetch_and_op(win, Rank(1), 0, mpisim_core::Datatype::U64, mpisim_core::ReduceOp::Sum, &[0; 16])
            .is_err());
        env.unlock(win, Rank(1)).unwrap();
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn stale_request_handles_rejected() {
    run_job(JobConfig::all_internode(2), |env| {
        let r = env.ibarrier();
        env.wait(r).unwrap();
        // Consumed: a second wait must error, not hang.
        assert!(matches!(env.wait(r).unwrap_err(), RmaError::InvalidRequest));
        assert!(matches!(env.test(r).unwrap_err(), RmaError::InvalidRequest));
    })
    .unwrap();
}

#[test]
fn wait_any_returns_first_completion() {
    run_job(JobConfig::all_internode(3), |env| {
        if env.rank().idx() == 0 {
            // Two receives: rank 2 sends first (after 100 µs), rank 1
            // later (after 400 µs).
            let r1 = env.irecv(Rank(1), 1).unwrap();
            let r2 = env.irecv(Rank(2), 2).unwrap();
            let reqs = [r1, r2];
            let first = env.wait_any(&reqs).unwrap();
            assert_eq!(first, 1, "rank 2's message should complete first");
            let t_first = env.now();
            let second = env.wait_any(&[r1]).unwrap();
            assert_eq!(second, 0);
            assert!(env.now() > t_first);
        } else if env.rank().idx() == 1 {
            env.compute(SimTime::from_micros(400));
            env.send(Rank(0), 1, b"slow").unwrap();
        } else {
            env.compute(SimTime::from_micros(100));
            env.send(Rank(0), 2, b"fast").unwrap();
        }
    })
    .unwrap();
}

#[test]
fn wait_any_on_empty_or_stale_errors() {
    run_job(JobConfig::all_internode(1), |env| {
        assert!(matches!(
            env.wait_any(&[]).unwrap_err(),
            RmaError::InvalidRequest
        ));
        let r = env.ibarrier();
        env.wait(r).unwrap();
        assert!(matches!(
            env.wait_any(&[r]).unwrap_err(),
            RmaError::InvalidRequest
        ));
    })
    .unwrap();
}

#[test]
fn flush_outside_passive_epoch_rejected() {
    run_job(JobConfig::all_internode(2), |env| {
        let win = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        assert!(matches!(
            env.flush(win, Rank(1)).unwrap_err(),
            RmaError::NotPassiveEpoch
        ));
        env.win_free(win).unwrap();
    })
    .unwrap();
}

#[test]
fn deadlocked_program_is_reported_not_hung() {
    let err = run_job(JobConfig::all_internode(2), |env| {
        if env.rank().idx() == 0 {
            // Recv that never matches.
            let _ = env.recv(Rank(1), 999);
        }
    })
    .unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("deadlock"), "got: {msg}");
    assert!(msg.contains("rank0"), "got: {msg}");
}

// ---------------------------------------------------------------------
// determinism
// ---------------------------------------------------------------------

#[test]
fn identical_seeds_produce_identical_schedules() {
    fn run_once(seed: u64) -> (u64, u64) {
        let report = run_job(
            JobConfig::all_internode(6).with_seed(seed),
            |env| {
                let win = env.win_allocate(64).unwrap();
                env.barrier().unwrap();
                let me = env.rank().idx();
                let n = env.n_ranks();
                for round in 0..4 {
                    let t = Rank((me + round + 1) % n);
                    env.lock(win, t, LockKind::Exclusive).unwrap();
                    env.put(win, t, 0, &[round as u8; 8]).unwrap();
                    env.unlock(win, t).unwrap();
                    env.compute(SimTime::from_micros((me as u64 * 7 + 3) % 20));
                }
                env.barrier().unwrap();
                env.win_free(win).unwrap();
            },
        )
        .unwrap();
        (report.final_time.as_nanos(), report.sim.events_executed)
    }
    let a = run_once(11);
    let b = run_once(11);
    assert_eq!(a, b, "same seed must reproduce the schedule exactly");
}

#[test]
fn per_rank_times_propagate_to_report() {
    let report = run_job(JobConfig::all_internode(3), |env| {
        env.compute(SimTime::from_micros(100));
        env.barrier().unwrap();
    })
    .unwrap();
    assert_eq!(report.ranks.len(), 3);
    for r in &report.ranks {
        assert_eq!(r.compute_time, SimTime::from_micros(100));
        assert!(r.calls >= 1);
    }
    assert!(report.net.msgs_sent > 0);
    assert!(report.final_time >= SimTime::from_micros(100));
}

// ---------------------------------------------------------------------
// window lifecycle
// ---------------------------------------------------------------------

#[test]
fn multiple_windows_are_independent() {
    run_job(JobConfig::all_internode(2), |env| {
        let w1 = env.win_allocate(8).unwrap();
        let w2 = env.win_allocate(8).unwrap();
        env.barrier().unwrap();
        if env.rank().idx() == 0 {
            // Concurrent epochs on different windows are fine.
            env.lock(w1, Rank(1), LockKind::Exclusive).unwrap();
            env.lock(w2, Rank(1), LockKind::Exclusive).unwrap();
            env.put(w1, Rank(1), 0, &[1u8; 8]).unwrap();
            env.put(w2, Rank(1), 0, &[2u8; 8]).unwrap();
            env.unlock(w2, Rank(1)).unwrap();
            env.unlock(w1, Rank(1)).unwrap();
        }
        env.barrier().unwrap();
        if env.rank().idx() == 1 {
            assert_eq!(env.read_local(w1, 0, 8).unwrap(), vec![1u8; 8]);
            assert_eq!(env.read_local(w2, 0, 8).unwrap(), vec![2u8; 8]);
        }
        env.win_free(w1).unwrap();
        env.win_free(w2).unwrap();
    })
    .unwrap();
}

#[test]
fn local_reads_and_writes_are_bounds_checked() {
    run_job(JobConfig::all_internode(1), |env| {
        let win = env.win_allocate(8).unwrap();
        assert!(env.read_local(win, 4, 8).is_err());
        assert!(env.write_local(win, 8, &[1]).is_err());
        env.write_local(win, 0, &[1; 8]).unwrap();
        assert_eq!(env.read_local(win, 0, 8).unwrap(), vec![1; 8]);
        env.win_free(win).unwrap();
    })
    .unwrap();
}
