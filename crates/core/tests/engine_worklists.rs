//! Integration tests for the work-list-driven progress engine: the
//! pending-FIFO index and per-step dispatch must do exactly the work the
//! job generates — no more (idle steps never scan) and no less (every
//! pushed sync packet is drained by quiescence).

use mpisim_core::{run_job, JobConfig, JobReport, LockKind, Rank};
use mpisim_sim::SimError;

/// A mixed intranode workload: passive-target locks (exclusive and
/// shared), a GATS epoch, and a fence epoch, so every sync-packet kind
/// flows through the per-window-pair FIFOs.
fn mixed_job(cfg: JobConfig) -> Result<JobReport, SimError> {
    run_job(cfg, |env| {
        let win = env.win_allocate(256).unwrap();
        env.barrier().unwrap();
        let me = env.rank().idx();
        let n = env.n_ranks();
        // Passive target: everyone locks rank 0 and deposits a byte.
        env.lock(win, Rank(0), LockKind::Shared).unwrap();
        env.put(win, Rank(0), me * 8, &[me as u8; 8]).unwrap();
        env.unlock(win, Rank(0)).unwrap();
        // Exclusive ring: lock the right neighbour.
        let next = Rank((me + 1) % n);
        env.lock(win, next, LockKind::Exclusive).unwrap();
        env.put(win, next, 128, &[0xAB; 4]).unwrap();
        env.unlock(win, next).unwrap();
        env.barrier().unwrap();
        // Active target: a fence phase with puts from every rank.
        env.fence(win).unwrap();
        env.put(win, next, 160 + me * 4, &[me as u8; 4]).unwrap();
        env.fence(win).unwrap();
        env.win_free(win).unwrap();
    })
}

#[test]
fn fifo_packets_balance_at_quiescence() {
    let report = mixed_job(JobConfig::new(4)).unwrap();
    let e = &report.engine;
    assert!(e.fifo_packets > 0, "intranode job must use the FIFO path");
    assert_eq!(
        e.fifo_packets, e.fifo_drained,
        "every successfully pushed sync packet must be drained by quiescence"
    );
    assert_eq!(e.fifo_decode_errors, 0);
    assert!(report.is_clean(), "{:?}", report.degradations);
    assert_eq!(report.live_requests, 0);
}

#[test]
fn fifo_balance_holds_under_fault_injection() {
    // Faults that complete (skip-grant deadlocks by design): the engine's
    // bookkeeping must stay balanced even while semantics are corrupted.
    for fault in ["double-acc", "hb-race"] {
        let mut cfg = JobConfig::new(4);
        cfg.fault = Some(fault.into());
        let report = mixed_job(cfg).unwrap();
        let e = &report.engine;
        assert_eq!(
            e.fifo_packets, e.fifo_drained,
            "fault {fault:?}: pushed != drained"
        );
        // These faults corrupt data, not the sync-packet wire format.
        assert_eq!(e.fifo_decode_errors, 0, "fault {fault:?}");
        assert!(report.is_clean(), "fault {fault:?}");
    }
}

#[test]
fn step_counters_account_for_real_work_only() {
    let report = mixed_job(JobConfig::new(4)).unwrap();
    let e = &report.engine;
    // The drain step ran, and item-level counters agree with it.
    assert!(e.step_runs[4] > 0, "FIFO drain step never ran: {:?}", e.step_runs);
    assert!(e.fifo_drained > 0);
    assert!(e.ops_issued > 0, "no RMA ops issued");
    assert!(e.issue_scans > 0, "ops were issued without any issue-step scan");
    // Per-step dispatch means no step can run more often than the sweep
    // loop itself iterates; each executed step is counted at most once
    // per iteration.
    let max_step = *e.step_runs.iter().max().unwrap();
    assert!(
        max_step <= e.sweeps,
        "a step ran {max_step} times in {} sweep iterations",
        e.sweeps
    );
    // Work-list gating: step 5 only runs when the pending-FIFO index is
    // non-empty, and every indexed ring holds at least one packet, so
    // each execution drains something — no empty scans. This holds in
    // both placements (all-internode still routes self-sync, e.g. a rank
    // locking itself, through its own FIFO).
    let internode = mixed_job(JobConfig::all_internode(4)).unwrap();
    for (label, rep) in [("intranode", &report), ("internode", &internode)] {
        let e = &rep.engine;
        assert_eq!(e.fifo_packets, e.fifo_drained, "{label}: pushed != drained");
        assert!(
            e.step_runs[4] <= e.fifo_drained,
            "{label}: drain step ran {} times but drained only {} packets",
            e.step_runs[4],
            e.fifo_drained
        );
    }
    assert!(
        internode.engine.fifo_packets < report.engine.fifo_packets,
        "all-internode placement should shift most sync off the FIFO path"
    );
}
