//! Cluster topology and network parameters.

use mpisim_sim::SimTime;

use crate::fault::FaultPlan;

/// A process rank within the simulated job (dense, zero-based).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Rank(pub usize);

impl Rank {
    /// The rank as a usize index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Placement of ranks onto nodes: rank `r` lives on node `r / cores_per_node`
/// (block placement, the common MPI default).
#[derive(Clone, Debug)]
pub struct Topology {
    n_ranks: usize,
    cores_per_node: usize,
}

impl Topology {
    /// Create a topology for `n_ranks` ranks with `cores_per_node` ranks per
    /// node.
    pub fn new(n_ranks: usize, cores_per_node: usize) -> Self {
        assert!(n_ranks > 0, "topology needs at least one rank");
        assert!(cores_per_node > 0, "cores_per_node must be positive");
        Topology {
            n_ranks,
            cores_per_node,
        }
    }

    /// One rank per node: every channel is internode.
    pub fn all_internode(n_ranks: usize) -> Self {
        Topology::new(n_ranks, 1)
    }

    /// Total ranks in the job.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Ranks per node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: Rank) -> usize {
        rank.0 / self.cores_per_node
    }

    /// Number of nodes in use.
    pub fn n_nodes(&self) -> usize {
        self.n_ranks.div_ceil(self.cores_per_node)
    }

    /// Whether two ranks share a node (intranode channel).
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

/// First-order network cost model: per-message latency `α`, bandwidth `β`,
/// store-and-forward links with per-NIC serialization, and credit-based flow
/// control on internode channels.
#[derive(Clone, Debug)]
pub struct NetParams {
    /// One-way internode latency (α) for any message.
    pub inter_latency: SimTime,
    /// Internode bandwidth in bytes/second (β).
    pub inter_bw: f64,
    /// One-way intranode (shared-memory) latency.
    pub intra_latency: SimTime,
    /// Intranode copy bandwidth in bytes/second.
    pub intra_bw: f64,
    /// Modeled wire size of a message header / control packet, bytes.
    pub header_bytes: usize,
    /// Outstanding-message cap per internode channel (send-queue depth /
    /// flow-control credits). `0` means unlimited.
    pub channel_credits: u32,
    /// Outstanding-message cap across all internode channels of one rank
    /// (models HCA send-queue exhaustion). `0` means unlimited.
    pub rank_credits: u32,
    /// Maximum deterministic per-message latency jitter (uniform in
    /// `[0, jitter]`, drawn from a seeded stream). Zero disables it.
    /// Per-channel delivery order is preserved regardless.
    pub jitter: SimTime,
    /// Unreliable-interconnect fault schedule (`None` = the fabric is
    /// perfectly reliable and in order, the pre-fault-model behaviour).
    /// Faults apply to internode channels only.
    pub faults: Option<FaultPlan>,
}

impl NetParams {
    /// Parameters calibrated against the paper's testbed (Mellanox ConnectX
    /// QDR InfiniBand, Nehalem nodes): a 1 MB put completes in ≈340 µs, as
    /// quoted in §VIII.A.
    pub fn qdr_infiniband() -> Self {
        NetParams {
            inter_latency: SimTime::from_nanos(1_500),
            inter_bw: 3.1e9,
            intra_latency: SimTime::from_nanos(300),
            intra_bw: 6.0e9,
            header_bytes: 64,
            channel_credits: 16,
            rank_credits: 256,
            jitter: SimTime::ZERO,
            faults: None,
        }
    }

    /// An idealized network with no flow-control limits; useful in unit
    /// tests that focus on middleware logic rather than contention.
    pub fn unlimited() -> Self {
        NetParams {
            channel_credits: 0,
            rank_credits: 0,
            ..NetParams::qdr_infiniband()
        }
    }

    /// Deterministic adversarial parameter set number `index`, used by the
    /// conformance harness to stress schedules without changing semantics.
    ///
    /// Cycles through the cross product of four jitter magnitudes (off,
    /// sub-latency, ≈latency, ≫latency) and four flow-control settings
    /// (calibrated, starved-to-one-credit, nearly starved, unlimited) — 16
    /// distinct profiles; higher indices wrap. Credit starvation only delays
    /// sends (the backlog drains on acknowledgement), and jitter preserves
    /// per-channel delivery order, so every profile is a legal network.
    pub fn perturbation_profile(index: u64) -> Self {
        const JITTER_NS: [u64; 4] = [0, 200, 2_000, 20_000];
        const CREDITS: [(u32, u32); 4] = [(16, 256), (1, 2), (2, 4), (0, 0)];
        let jitter = JITTER_NS[(index % 4) as usize];
        let (channel_credits, rank_credits) = CREDITS[((index / 4) % 4) as usize];
        NetParams {
            jitter: SimTime::from_nanos(jitter),
            channel_credits,
            rank_credits,
            ..NetParams::qdr_infiniband()
        }
    }

    /// Serialization time of `bytes` on an internode link.
    pub fn inter_ser(&self, bytes: usize) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.inter_bw)
    }

    /// Serialization time of `bytes` on an intranode channel.
    pub fn intra_ser(&self, bytes: usize) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.intra_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_placement() {
        let t = Topology::new(10, 4);
        assert_eq!(t.node_of(Rank(0)), 0);
        assert_eq!(t.node_of(Rank(3)), 0);
        assert_eq!(t.node_of(Rank(4)), 1);
        assert_eq!(t.node_of(Rank(9)), 2);
        assert_eq!(t.n_nodes(), 3);
        assert!(t.same_node(Rank(0), Rank(3)));
        assert!(!t.same_node(Rank(3), Rank(4)));
    }

    #[test]
    fn all_internode_separates_everyone() {
        let t = Topology::all_internode(5);
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(t.same_node(Rank(a), Rank(b)), a == b);
            }
        }
    }

    #[test]
    fn qdr_calibration_one_mb_around_340us() {
        let p = NetParams::qdr_infiniband();
        let total = p.inter_latency + p.inter_ser(1 << 20);
        let us = total.as_micros_f64();
        assert!(
            (330.0..345.0).contains(&us),
            "1MB transfer modeled at {us} µs, expected ≈340 µs"
        );
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_topology_rejected() {
        let _ = Topology::new(0, 1);
    }

    #[test]
    fn perturbation_profiles_are_distinct_and_wrap() {
        let mut seen = Vec::new();
        for i in 0..16u64 {
            let p = NetParams::perturbation_profile(i);
            let key = (p.jitter, p.channel_credits, p.rank_credits);
            assert!(!seen.contains(&key), "profile {i} duplicates an earlier one");
            seen.push(key);
        }
        // Index 0 is the calibrated baseline; indices wrap mod 16.
        assert_eq!(NetParams::perturbation_profile(0).jitter, SimTime::ZERO);
        assert_eq!(NetParams::perturbation_profile(0).channel_credits, 16);
        let a = NetParams::perturbation_profile(3);
        let b = NetParams::perturbation_profile(19);
        assert_eq!((a.jitter, a.channel_credits), (b.jitter, b.channel_credits));
    }
}
