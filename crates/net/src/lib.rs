//! # mpisim-net — simulated cluster interconnect
//!
//! The network substrate under the nonblocking-RMA middleware: an
//! InfiniBand-flavoured cost model (per-message latency, NIC bandwidth,
//! in-order channels, credit-based flow control) plus the intranode 64-bit
//! notification FIFO described in the paper's design section (§VII.D).
//!
//! The model is calibrated so a 1 MB transfer takes ≈340 µs of virtual
//! time, matching the figure the paper quotes for its QDR InfiniBand
//! testbed; see [`NetParams::qdr_infiniband`].

#![warn(missing_docs)]

mod fault;
mod fifo;
mod network;
mod params;
mod payload;

pub use fault::{FaultKind, FaultLog, FaultPlan, FaultRecord, Partition};
pub use fifo::U64Fifo;
pub use network::{NetStats, Network, Packet, Wire};
pub use params::{NetParams, Rank, Topology};
pub use payload::Payload;
