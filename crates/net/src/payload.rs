//! Message payloads: real bytes (validated end to end) or synthetic
//! (size-only, for paper-scale runs where carrying data would dominate
//! simulation cost without changing timing).

use bytes::Bytes;

/// The body of a data-bearing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// Actual data, copied into target memory on delivery.
    Bytes(Bytes),
    /// A size-only stand-in: times like real data, delivers no bytes.
    Synthetic(usize),
}

impl Payload {
    /// Wire length in bytes.
    pub fn len(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::Synthetic(n) => *n,
        }
    }

    /// Whether the payload is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the real bytes, if any.
    pub fn bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Bytes(b) => Some(b),
            Payload::Synthetic(_) => None,
        }
    }

    /// Take the real bytes by value, if any — avoids the refcount bump
    /// (and, for unique buffers, the deep copy) a `bytes().cloned()`
    /// round trip would cost.
    pub fn into_bytes(self) -> Option<Bytes> {
        match self {
            Payload::Bytes(b) => Some(b),
            Payload::Synthetic(_) => None,
        }
    }

    /// Build a payload from a slice (copies).
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Payload::Bytes(Bytes::copy_from_slice(data))
    }

    /// Adopt an owned buffer without copying it.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Payload::Bytes(Bytes::from(data))
    }

    /// An empty real payload.
    pub fn empty() -> Self {
        Payload::Bytes(Bytes::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths() {
        assert_eq!(Payload::copy_from_slice(&[1, 2, 3]).len(), 3);
        assert_eq!(Payload::Synthetic(1 << 20).len(), 1 << 20);
        assert!(Payload::empty().is_empty());
        assert!(!Payload::Synthetic(1).is_empty());
    }

    #[test]
    fn bytes_accessor() {
        let p = Payload::copy_from_slice(b"hi");
        assert_eq!(p.bytes().unwrap().as_ref(), b"hi");
        assert!(Payload::Synthetic(2).bytes().is_none());
    }

    #[test]
    fn from_vec_and_into_bytes_round_trip() {
        let p = Payload::from_vec(vec![9, 8, 7]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.into_bytes().unwrap().as_ref(), &[9, 8, 7]);
        assert!(Payload::Synthetic(4).into_bytes().is_none());
    }
}
