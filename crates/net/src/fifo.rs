//! The intranode notification channel of the paper's design (§VII.D):
//! "There is one two-way shared-memory wait-free FIFO between any two RMA
//! windows. That notification channel deals only with 64-bit packets that
//! are used to encode and send intranode lock/unlock requests as well as
//! epoch completion packets."
//!
//! [`U64Fifo`] is that bounded single-producer/single-consumer ring of
//! 64-bit packets. In the cooperative simulation the producer and consumer
//! never run concurrently, so plain indices suffice; the structure,
//! capacity semantics, and overflow behaviour match the shared-memory ring
//! the paper describes.

/// A bounded FIFO of 64-bit packets.
#[derive(Debug)]
pub struct U64Fifo {
    buf: Box<[u64]>,
    head: usize,
    tail: usize,
    len: usize,
}

impl U64Fifo {
    /// Create a FIFO holding up to `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        U64Fifo {
            buf: vec![0; capacity].into_boxed_slice(),
            head: 0,
            tail: 0,
            len: 0,
        }
    }

    /// Number of packets currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the FIFO is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the FIFO is full.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len == self.buf.len()
    }

    /// Capacity in packets.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Enqueue a packet. Returns `false` (leaving the FIFO unchanged) if
    /// full — the producer must retry later, exactly like a full
    /// shared-memory ring. Never allocates: this sits on the progress
    /// engine's per-packet hot path.
    #[inline]
    pub fn push(&mut self, packet: u64) -> bool {
        if self.is_full() {
            return false;
        }
        self.buf[self.tail] = packet;
        self.tail = (self.tail + 1) % self.buf.len();
        self.len += 1;
        true
    }

    /// Dequeue the oldest packet, if any. Never allocates (hot path of
    /// sweep step 5).
    #[inline]
    pub fn pop(&mut self) -> Option<u64> {
        if self.is_empty() {
            return None;
        }
        let v = self.buf[self.head];
        self.head = (self.head + 1) % self.buf.len();
        self.len -= 1;
        Some(v)
    }

    /// Drain every queued packet into `out`.
    pub fn drain_into(&mut self, out: &mut Vec<u64>) {
        while let Some(v) = self.pop() {
            out.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_ordering() {
        let mut f = U64Fifo::new(4);
        assert!(f.push(1) && f.push(2) && f.push(3));
        assert_eq!(f.pop(), Some(1));
        assert!(f.push(4) && f.push(5));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(4));
        assert_eq!(f.pop(), Some(5));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn full_push_rejected_without_loss() {
        let mut f = U64Fifo::new(2);
        assert!(f.push(10));
        assert!(f.push(11));
        assert!(f.is_full());
        assert!(!f.push(12));
        assert_eq!(f.pop(), Some(10));
        assert!(f.push(12));
        assert_eq!(f.pop(), Some(11));
        assert_eq!(f.pop(), Some(12));
    }

    #[test]
    fn wraparound_many_times() {
        let mut f = U64Fifo::new(3);
        for round in 0..100u64 {
            assert!(f.push(round * 2));
            assert!(f.push(round * 2 + 1));
            assert_eq!(f.pop(), Some(round * 2));
            assert_eq!(f.pop(), Some(round * 2 + 1));
        }
        assert!(f.is_empty());
    }

    #[test]
    fn drain_into_collects_all() {
        let mut f = U64Fifo::new(8);
        for i in 0..5 {
            f.push(i);
        }
        let mut out = Vec::new();
        f.drain_into(&mut out);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = U64Fifo::new(0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The FIFO behaves exactly like a bounded VecDeque oracle for any
        /// interleaving of pushes and pops.
        #[test]
        fn matches_vecdeque_oracle(
            cap in 1usize..16,
            ops in proptest::collection::vec((any::<bool>(), any::<u64>()), 0..200)
        ) {
            let mut fifo = U64Fifo::new(cap);
            let mut oracle = std::collections::VecDeque::new();
            for (is_push, v) in ops {
                if is_push {
                    let ok = fifo.push(v);
                    prop_assert_eq!(ok, oracle.len() < cap);
                    if ok {
                        oracle.push_back(v);
                    }
                } else {
                    prop_assert_eq!(fifo.pop(), oracle.pop_front());
                }
                prop_assert_eq!(fifo.len(), oracle.len());
                prop_assert_eq!(fifo.is_empty(), oracle.is_empty());
            }
        }
    }
}
