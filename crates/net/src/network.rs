//! The simulated interconnect.
//!
//! Store-and-forward cost model per message of `s` wire bytes between ranks
//! `src → dst`:
//!
//! * egress serialization occupies the source NIC for `s/β`, starting when
//!   the NIC is free (`egress_free`);
//! * the message then travels one hop of latency `α`;
//! * reception occupies the destination NIC for `s/β` and finishes at the
//!   delivery time (`ingress_free` tracks this);
//! * messages on the same `(src, dst)` channel deliver in order;
//! * internode channels carry finite *credits* (send-queue depth); a rank
//!   also has a global outstanding cap. Exhausted credits queue the send in
//!   a backlog drained as acknowledgements return — this is the mechanism
//!   behind the flow-control ceiling the paper hits at 512 processes
//!   (§VIII.B).
//!
//! Local completion (origin buffer reusable) is reported when the last byte
//! leaves the source NIC, distinct from delivery at the target.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use mpisim_sim::{mix64, seeded_rng, SimHandle, SimTime};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::fault::{FaultKind, FaultLog, FaultPlan, FaultRecord};
use crate::params::{NetParams, Rank, Topology};

/// Implemented by the middleware's message body type so the network can
/// price it (and, under a fault plan, corrupt or duplicate it).
pub trait Wire: Send + 'static {
    /// Payload bytes carried beyond the fixed header.
    fn payload_len(&self) -> usize;

    /// Flip bits in transit (bit-corruption fault). The default is a
    /// no-op: bodies that cannot express corruption are simply immune.
    fn corrupt_in_transit(&mut self) {}

    /// Clone the body for a duplicate delivery. The default (`None`)
    /// makes the body immune to duplication faults.
    fn duplicate(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }
}

/// An addressed message.
#[derive(Debug)]
pub struct Packet<M> {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Middleware-defined body.
    pub body: M,
}

/// Aggregate counters exposed for instrumentation and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// Messages handed to the network.
    pub msgs_sent: u64,
    /// Messages delivered to the handler.
    pub msgs_delivered: u64,
    /// Total wire bytes transmitted (header + payload).
    pub bytes_sent: u64,
    /// Sends that had to wait in a credit backlog.
    pub credit_stalls: u64,
    /// Largest backlog depth observed on any rank.
    pub max_backlog: usize,
    /// Total faults injected by the active [`FaultPlan`].
    pub faults_injected: u64,
    /// Random drops injected.
    pub fault_drops: u64,
    /// Duplicate deliveries injected.
    pub fault_dups: u64,
    /// Bodies corrupted in transit.
    pub fault_corrupts: u64,
    /// Messages held back past later channel traffic.
    pub fault_reorders: u64,
    /// Order-preserving extra delays injected.
    pub fault_delays: u64,
    /// Messages cut by a transient partition.
    pub fault_partition_drops: u64,
    /// Messages discarded at a crashed NIC.
    pub fault_crash_drops: u64,
}

struct SendReq<M> {
    pkt: Packet<M>,
    on_local: Option<Box<dyn FnOnce() + Send>>,
    on_remote: Option<Box<dyn FnOnce() + Send>>,
}

#[derive(Default)]
struct ChannelState {
    last_delivery: SimTime,
    in_flight: u32,
}

/// One message's drawn fault outcome.
#[derive(Default)]
struct FaultDraw {
    /// Discarded in the fabric (drop / partition / crash).
    lost: Option<FaultKind>,
    /// Deliver a second copy.
    dup: bool,
    /// Offset of the duplicate after the primary delivery.
    dup_extra: SimTime,
    /// Corrupt the body before delivery.
    corrupt: bool,
    /// Late handoff past the in-order clamp (reordering).
    reorder_extra: SimTime,
    /// Order-preserving extra latency.
    delay_extra: SimTime,
}

struct RankState<M> {
    egress_free: SimTime,
    ingress_free: SimTime,
    in_flight: u32,
    backlog: VecDeque<SendReq<M>>,
}

impl<M> Default for RankState<M> {
    fn default() -> Self {
        RankState {
            egress_free: SimTime::ZERO,
            ingress_free: SimTime::ZERO,
            in_flight: 0,
            backlog: VecDeque::new(),
        }
    }
}

struct NetInner<M> {
    channels: HashMap<(Rank, Rank), ChannelState>,
    ranks: Vec<RankState<M>>,
    stats: NetStats,
    jitter_rng: rand::rngs::SmallRng,
    /// Per-channel fault decision streams, lazily seeded from
    /// `(plan.seed, src, dst)` so a plan replays identically.
    fault_rngs: HashMap<(Rank, Rank), SmallRng>,
    /// Replayable, bounded log of every injected fault.
    fault_log: FaultLog,
    /// Dynamically downed NICs (engine-driven crash/restart). Unlike the
    /// static `FaultPlan::crashes` list this is toggled at run time, so a
    /// rank can come back up after a recovery restart.
    downs: Vec<bool>,
}

type Handler<M> = Arc<dyn Fn(Packet<M>) + Send + Sync>;

/// The simulated network fabric. Cheap to share (`Arc`).
pub struct Network<M: Wire> {
    inner: Mutex<NetInner<M>>,
    handler: Mutex<Option<Handler<M>>>,
    handle: SimHandle,
    params: NetParams,
    topo: Topology,
}

impl<M: Wire> Network<M> {
    /// Create a network over `topo` with cost model `params`.
    pub fn new(handle: SimHandle, params: NetParams, topo: Topology) -> Arc<Self> {
        let n = topo.n_ranks();
        Arc::new(Network {
            inner: Mutex::new(NetInner {
                channels: HashMap::new(),
                ranks: (0..n).map(|_| RankState::default()).collect(),
                stats: NetStats::default(),
                jitter_rng: seeded_rng(handle.seed(), 0x0021_77E2),
                fault_rngs: HashMap::new(),
                fault_log: FaultLog::default(),
                downs: vec![false; n],
            }),
            handler: Mutex::new(None),
            handle,
            params,
            topo,
        })
    }

    /// Install the delivery handler (called once per delivered packet, on
    /// the scheduler thread, with no network lock held).
    pub fn set_handler(&self, h: impl Fn(Packet<M>) + Send + Sync + 'static) {
        *self.handler.lock() = Some(Arc::new(h));
    }

    /// The topology this network spans.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The cost-model parameters.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Snapshot of the aggregate counters.
    pub fn stats(&self) -> NetStats {
        self.inner.lock().stats
    }

    /// Snapshot of the retained portion of the replayable fault log.
    pub fn fault_log(&self) -> Vec<FaultRecord> {
        self.inner.lock().fault_log.iter().cloned().collect()
    }

    /// Drain the retained fault records (the dropped-record counter is
    /// preserved).
    pub fn take_fault_log(&self) -> Vec<FaultRecord> {
        self.inner.lock().fault_log.take()
    }

    /// Records evicted from the bounded fault log to cap memory.
    pub fn fault_log_dropped(&self) -> u64 {
        self.inner.lock().fault_log.dropped()
    }

    /// Take rank's NIC off the fabric: every internode message to or from
    /// it is discarded (recorded as [`FaultKind::CrashDrop`]) until
    /// [`Network::nic_up`] brings it back.
    pub fn nic_down(&self, rank: Rank) {
        self.inner.lock().downs[rank.idx()] = true;
    }

    /// Bring a downed NIC back onto the fabric.
    pub fn nic_up(&self, rank: Rank) {
        self.inner.lock().downs[rank.idx()] = false;
    }

    /// Is this rank's NIC currently down?
    pub fn nic_is_down(&self, rank: Rank) -> bool {
        self.inner.lock().downs[rank.idx()]
    }

    /// Send a packet, fire-and-forget.
    pub fn send(self: &Arc<Self>, pkt: Packet<M>) {
        self.send_req(SendReq {
            pkt,
            on_local: None,
            on_remote: None,
        });
    }

    /// Send a packet and invoke `on_local` at the virtual time the origin
    /// buffer becomes reusable (last byte left the source NIC).
    pub fn send_with_completion(
        self: &Arc<Self>,
        pkt: Packet<M>,
        on_local: impl FnOnce() + Send + 'static,
    ) {
        self.send_req(SendReq {
            pkt,
            on_local: Some(Box::new(on_local)),
            on_remote: None,
        });
    }

    /// Send a packet with both completion callbacks: `on_local` when the
    /// origin buffer is reusable, and `on_remote` when the origin learns of
    /// remote completion (the hardware acknowledgement: delivery plus one
    /// return latency internode, delivery time intranode).
    pub fn send_tracked(
        self: &Arc<Self>,
        pkt: Packet<M>,
        on_local: impl FnOnce() + Send + 'static,
        on_remote: impl FnOnce() + Send + 'static,
    ) {
        self.send_req(SendReq {
            pkt,
            on_local: Some(Box::new(on_local)),
            on_remote: Some(Box::new(on_remote)),
        });
    }

    fn send_req(self: &Arc<Self>, req: SendReq<M>) {
        let now = self.handle.now();
        let mut inner = self.inner.lock();
        inner.stats.msgs_sent += 1;
        let src = req.pkt.src;
        let internode = !self.topo.same_node(src, req.pkt.dst);
        if internode && !self.has_credits(&inner, src, req.pkt.dst) {
            inner.stats.credit_stalls += 1;
            inner.ranks[src.idx()].backlog.push_back(req);
            let depth = inner.ranks[src.idx()].backlog.len();
            inner.stats.max_backlog = inner.stats.max_backlog.max(depth);
            return;
        }
        self.transmit(&mut inner, now, req);
    }

    fn has_credits(&self, inner: &NetInner<M>, src: Rank, dst: Rank) -> bool {
        let chan_ok = self.params.channel_credits == 0
            || inner
                .channels
                .get(&(src, dst))
                .is_none_or(|c| c.in_flight < self.params.channel_credits);
        let rank_ok = self.params.rank_credits == 0
            || inner.ranks[src.idx()].in_flight < self.params.rank_credits;
        chan_ok && rank_ok
    }

    /// Compute the timing of one message and schedule its local-completion,
    /// delivery, and (internode) credit-return events.
    ///
    /// The packet moves by value from the sender into the delivery
    /// closure and on into the handler: the network never clones or
    /// copies a payload in transit (payload sharing, where it happens,
    /// is a refcount bump inside [`bytes::Bytes`]).
    fn transmit(self: &Arc<Self>, inner: &mut NetInner<M>, now: SimTime, req: SendReq<M>) {
        let SendReq {
            mut pkt,
            on_local,
            on_remote,
        } = req;
        let (src, dst) = (pkt.src, pkt.dst);
        let internode = !self.topo.same_node(src, dst);
        let wire = self.params.header_bytes + pkt.body.payload_len();

        // Fault decisions, drawn before timing: internode channels only,
        // never self-sends, from the per-channel replayable stream.
        let plan = self
            .params
            .faults
            .as_ref()
            .filter(|p| internode && src != dst && p.is_active());
        let faults = plan.map(|p| Self::decide_faults(inner, now, src, dst, p));
        let mut faults = faults.unwrap_or_default();
        let slowdown = plan.map(|p| p.slowdown(src)).unwrap_or(1.0);

        // A dynamically downed NIC (engine-driven crash/restart) discards
        // every internode message touching it, fault plan or not.
        if internode
            && src != dst
            && faults.lost.is_none()
            && (inner.downs[src.idx()] || inner.downs[dst.idx()])
        {
            faults.lost = Some(FaultKind::CrashDrop);
            inner.stats.faults_injected += 1;
            inner.stats.fault_crash_drops += 1;
            inner.fault_log.push(FaultRecord { at: now, src, dst, kind: FaultKind::CrashDrop });
        }

        let (alpha, ser) = if internode {
            (self.params.inter_latency, self.params.inter_ser(wire))
        } else {
            (self.params.intra_latency, self.params.intra_ser(wire))
        };
        let scale = |t: SimTime| SimTime::from_nanos((t.as_nanos() as f64 * slowdown) as u64);
        let (alpha, ser) = if slowdown > 1.0 { (scale(alpha), scale(ser)) } else { (alpha, ser) };

        inner.stats.bytes_sent += wire as u64;

        let start = now.max(inner.ranks[src.idx()].egress_free);
        let local_complete = start + ser;
        inner.ranks[src.idx()].egress_free = local_complete;

        let mut arrive = local_complete + alpha + faults.delay_extra;
        if !self.params.jitter.is_zero() {
            let j = inner.jitter_rng.gen_range(0..=self.params.jitter.as_nanos());
            arrive += SimTime::from_nanos(j);
        }

        if internode {
            let chan = inner.channels.entry((src, dst)).or_default();
            chan.in_flight += 1;
            inner.ranks[src.idx()].in_flight += 1;
        }

        // Origin-side effects happen regardless of in-fabric loss: the
        // message did leave the NIC, and the credit slot is reclaimed at
        // the nominal acknowledgement time (a NIC-level timeout) so a
        // lossy fabric can never deadlock flow control.
        if let Some(cb) = on_local {
            self.handle.schedule_at(local_complete, cb);
        }

        if let Some(kind) = faults.lost {
            // The message vanishes in the fabric: no delivery, no remote
            // acknowledgement, destination clamps untouched.
            drop(on_remote);
            let ack_at = arrive + self.params.inter_latency;
            if internode {
                let net = self.clone();
                self.handle.schedule_at(ack_at, move || net.return_credit(src, dst));
            }
            debug_assert!(matches!(
                kind,
                FaultKind::Drop | FaultKind::PartitionDrop | FaultKind::CrashDrop
            ));
            return;
        }

        if faults.corrupt {
            pkt.body.corrupt_in_transit();
        }

        // Per-channel order clamps always use the *nominal* delivery time;
        // a reordered message is then handed to the handler late, so later
        // channel traffic can legally overtake it.
        let ingress_ready = inner.ranks[dst.idx()].ingress_free + ser;
        let chan = inner.channels.entry((src, dst)).or_default();
        let delivery = arrive.max(ingress_ready).max(chan.last_delivery);
        chan.last_delivery = delivery;
        inner.ranks[dst.idx()].ingress_free = delivery;
        let handoff = delivery + faults.reorder_extra;

        if faults.dup {
            if let Some(body) = pkt.body.duplicate() {
                let net = self.clone();
                let twin = Packet { src, dst, body };
                self.handle.schedule_at(handoff + faults.dup_extra, move || net.deliver(twin));
            }
        }

        let net = self.clone();
        self.handle.schedule_at(handoff, move || net.deliver(pkt));

        let ack_at = if internode {
            handoff + self.params.inter_latency
        } else {
            handoff
        };
        if let Some(cb) = on_remote {
            self.handle.schedule_at(ack_at, cb);
        }
        if internode {
            // Credits return after the acknowledgement travels back.
            let net = self.clone();
            self.handle.schedule_at(ack_at, move || net.return_credit(src, dst));
        }
    }

    /// Hand one packet to the installed handler (delivery time).
    fn deliver(self: &Arc<Self>, pkt: Packet<M>) {
        let handler = {
            let mut inner = self.inner.lock();
            inner.stats.msgs_delivered += 1;
            self.handler.lock().clone()
        };
        if let Some(h) = handler {
            h(pkt);
        }
    }

    /// Draw this message's fault outcome from the channel's seeded stream,
    /// recording every injection in the stats and the replayable log.
    fn decide_faults(
        inner: &mut NetInner<M>,
        now: SimTime,
        src: Rank,
        dst: Rank,
        plan: &FaultPlan,
    ) -> FaultDraw {
        let mut draw = FaultDraw::default();
        let record = |inner: &mut NetInner<M>, kind: FaultKind| {
            inner.stats.faults_injected += 1;
            match kind {
                FaultKind::Drop => inner.stats.fault_drops += 1,
                FaultKind::Duplicate => inner.stats.fault_dups += 1,
                FaultKind::Corrupt => inner.stats.fault_corrupts += 1,
                FaultKind::Reorder => inner.stats.fault_reorders += 1,
                FaultKind::Delay => inner.stats.fault_delays += 1,
                FaultKind::PartitionDrop => inner.stats.fault_partition_drops += 1,
                FaultKind::CrashDrop => inner.stats.fault_crash_drops += 1,
            }
            inner.fault_log.push(FaultRecord { at: now, src, dst, kind });
        };

        if plan.crashed(src, dst, now) {
            draw.lost = Some(FaultKind::CrashDrop);
            record(inner, FaultKind::CrashDrop);
            return draw;
        }
        if plan.partitioned(src, dst, now) {
            draw.lost = Some(FaultKind::PartitionDrop);
            record(inner, FaultKind::PartitionDrop);
            return draw;
        }

        let seed = plan.seed;
        let rng = inner
            .fault_rngs
            .entry((src, dst))
            .or_insert_with(|| {
                seeded_rng(seed, mix64(0xFA17, ((src.idx() as u64) << 32) | dst.idx() as u64))
            });
        if plan.drop_p > 0.0 && rng.gen_bool(plan.drop_p) {
            draw.lost = Some(FaultKind::Drop);
            record(inner, FaultKind::Drop);
            return draw;
        }
        let mut hits = Vec::new();
        if plan.dup_p > 0.0 && rng.gen_bool(plan.dup_p) {
            draw.dup = true;
            draw.dup_extra = SimTime::from_nanos(rng.gen_range(1..=2_000));
            hits.push(FaultKind::Duplicate);
        }
        if plan.corrupt_p > 0.0 && rng.gen_bool(plan.corrupt_p) {
            draw.corrupt = true;
            hits.push(FaultKind::Corrupt);
        }
        if plan.reorder_p > 0.0 && rng.gen_bool(plan.reorder_p) {
            let window = plan.reorder_window.as_nanos().max(1);
            draw.reorder_extra = SimTime::from_nanos(rng.gen_range(1..=window));
            hits.push(FaultKind::Reorder);
        } else if plan.delay_p > 0.0 && rng.gen_bool(plan.delay_p) {
            let cap = plan.max_delay.as_nanos().max(1);
            draw.delay_extra = SimTime::from_nanos(rng.gen_range(1..=cap));
            hits.push(FaultKind::Delay);
        }
        for kind in hits {
            record(inner, kind);
        }
        draw
    }

    fn return_credit(self: &Arc<Self>, src: Rank, dst: Rank) {
        let now = self.handle.now();
        let mut inner = self.inner.lock();
        if let Some(c) = inner.channels.get_mut(&(src, dst)) {
            debug_assert!(c.in_flight > 0);
            c.in_flight -= 1;
        }
        debug_assert!(inner.ranks[src.idx()].in_flight > 0);
        inner.ranks[src.idx()].in_flight -= 1;

        // Drain this rank's backlog in FIFO order, skipping entries whose
        // channel is still out of credits (per-channel order is preserved
        // because eligibility is checked in queue order).
        let mut remaining = VecDeque::new();
        while let Some(req) = inner.ranks[src.idx()].backlog.pop_front() {
            if self.params.rank_credits != 0
                && inner.ranks[src.idx()].in_flight >= self.params.rank_credits
            {
                remaining.push_back(req);
                // Rank-level credits exhausted: nothing further can go.
                while let Some(r) = inner.ranks[src.idx()].backlog.pop_front() {
                    remaining.push_back(r);
                }
                break;
            }
            if self.has_credits(&inner, src, req.pkt.dst) {
                self.transmit(&mut inner, now, req);
            } else {
                remaining.push_back(req);
            }
        }
        inner.ranks[src.idx()].backlog = remaining;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::Payload;
    use mpisim_sim::Sim;

    struct Body {
        tag: u64,
        payload: Payload,
    }

    impl Wire for Body {
        fn payload_len(&self) -> usize {
            self.payload.len()
        }
    }

    fn ctrl(tag: u64) -> Body {
        Body {
            tag,
            payload: Payload::empty(),
        }
    }

    fn data(tag: u64, n: usize) -> Body {
        Body {
            tag,
            payload: Payload::Synthetic(n),
        }
    }

    type Log = Arc<Mutex<Vec<(u64, u64)>>>; // (tag, time ns)

    fn collect_deliveries(net: &Arc<Network<Body>>, h: &SimHandle) -> Log {
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let l = log.clone();
        let h = h.clone();
        net.set_handler(move |pkt: Packet<Body>| {
            l.lock().push((pkt.body.tag, h.now().as_nanos()));
        });
        log
    }

    #[test]
    fn single_message_timing() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let p = NetParams::qdr_infiniband();
        let net = Network::new(h.clone(), p.clone(), Topology::all_internode(2));
        let log = collect_deliveries(&net, &h);
        net.send(Packet {
            src: Rank(0),
            dst: Rank(1),
            body: ctrl(7),
        });
        sim.run().unwrap();
        let expected = (p.inter_ser(p.header_bytes) + p.inter_latency).as_nanos();
        assert_eq!(*log.lock(), vec![(7, expected)]);
    }

    #[test]
    fn intranode_is_faster_than_internode() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let net = Network::new(
            h.clone(),
            NetParams::qdr_infiniband(),
            Topology::new(4, 2), // ranks 0,1 on node 0; 2,3 on node 1
        );
        let log = collect_deliveries(&net, &h);
        net.send(Packet {
            src: Rank(0),
            dst: Rank(1),
            body: data(1, 4096),
        });
        net.send(Packet {
            src: Rank(2),
            dst: Rank(0),
            body: data(2, 4096),
        });
        sim.run().unwrap();
        let log = log.lock();
        let t_intra = log.iter().find(|e| e.0 == 1).unwrap().1;
        let t_inter = log.iter().find(|e| e.0 == 2).unwrap().1;
        assert!(t_intra < t_inter, "intra {t_intra} should beat inter {t_inter}");
    }

    #[test]
    fn per_channel_delivery_is_in_order() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let net = Network::new(
            h.clone(),
            NetParams::unlimited(),
            Topology::all_internode(2),
        );
        let log = collect_deliveries(&net, &h);
        // A large message followed by small ones: order must hold.
        net.send(Packet {
            src: Rank(0),
            dst: Rank(1),
            body: data(0, 1 << 20),
        });
        for i in 1..5 {
            net.send(Packet {
                src: Rank(0),
                dst: Rank(1),
                body: ctrl(i),
            });
        }
        sim.run().unwrap();
        let tags: Vec<u64> = log.lock().iter().map(|e| e.0).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn egress_bandwidth_serializes_two_large_sends() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let p = NetParams::unlimited();
        let net = Network::new(h.clone(), p.clone(), Topology::all_internode(3));
        let log = collect_deliveries(&net, &h);
        // Rank 0 sends 1MB to two different targets back to back: the second
        // must wait for the first to leave the NIC.
        net.send(Packet {
            src: Rank(0),
            dst: Rank(1),
            body: data(1, 1 << 20),
        });
        net.send(Packet {
            src: Rank(0),
            dst: Rank(2),
            body: data(2, 1 << 20),
        });
        sim.run().unwrap();
        let log = log.lock();
        let t1 = log.iter().find(|e| e.0 == 1).unwrap().1;
        let t2 = log.iter().find(|e| e.0 == 2).unwrap().1;
        let ser = p.inter_ser((1 << 20) + p.header_bytes).as_nanos();
        assert_eq!(t2 - t1, ser, "second transfer delayed by one serialization");
    }

    #[test]
    fn local_completion_precedes_delivery() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let net = Network::new(
            h.clone(),
            NetParams::qdr_infiniband(),
            Topology::all_internode(2),
        );
        let log = collect_deliveries(&net, &h);
        let local_t = Arc::new(Mutex::new(0u64));
        let (lt, hh) = (local_t.clone(), h.clone());
        net.send_with_completion(
            Packet {
                src: Rank(0),
                dst: Rank(1),
                body: data(9, 1 << 16),
            },
            move || *lt.lock() = hh.now().as_nanos(),
        );
        sim.run().unwrap();
        let deliver = log.lock()[0].1;
        let local = *local_t.lock();
        assert!(local > 0 && local < deliver);
    }

    #[test]
    fn channel_credits_throttle_and_recover() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let mut p = NetParams::qdr_infiniband();
        p.channel_credits = 2;
        p.rank_credits = 0;
        let net = Network::new(h.clone(), p, Topology::all_internode(2));
        let log = collect_deliveries(&net, &h);
        for i in 0..10 {
            net.send(Packet {
                src: Rank(0),
                dst: Rank(1),
                body: ctrl(i),
            });
        }
        sim.run().unwrap();
        // All ten must eventually deliver, in order, despite only 2 credits.
        let tags: Vec<u64> = log.lock().iter().map(|e| e.0).collect();
        assert_eq!(tags, (0..10).collect::<Vec<_>>());
        assert!(net.stats().credit_stalls >= 8);
    }

    #[test]
    fn rank_credits_cap_total_outstanding() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let mut p = NetParams::qdr_infiniband();
        p.channel_credits = 0;
        p.rank_credits = 1;
        let net = Network::new(h.clone(), p, Topology::all_internode(4));
        let log = collect_deliveries(&net, &h);
        for (i, dst) in [1usize, 2, 3, 1, 2, 3].iter().enumerate() {
            net.send(Packet {
                src: Rank(0),
                dst: Rank(*dst),
                body: ctrl(i as u64),
            });
        }
        sim.run().unwrap();
        assert_eq!(log.lock().len(), 6);
        assert!(net.stats().credit_stalls >= 5);
    }

    #[test]
    fn backlog_skips_blocked_channel_but_keeps_its_order() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let mut p = NetParams::qdr_infiniband();
        p.channel_credits = 1;
        p.rank_credits = 0;
        let net = Network::new(h.clone(), p, Topology::all_internode(3));
        let log = collect_deliveries(&net, &h);
        // Channel 0->1 gets three sends (two will queue); 0->2 one send that
        // must not be blocked behind them forever.
        for i in 0..3 {
            net.send(Packet {
                src: Rank(0),
                dst: Rank(1),
                body: ctrl(i),
            });
        }
        net.send(Packet {
            src: Rank(0),
            dst: Rank(2),
            body: ctrl(100),
        });
        sim.run().unwrap();
        let to1: Vec<u64> = log
            .lock()
            .iter()
            .map(|e| e.0)
            .filter(|t| *t < 100)
            .collect();
        assert_eq!(to1, vec![0, 1, 2]);
        assert_eq!(log.lock().len(), 4);
    }

    #[test]
    fn incast_serializes_at_the_receiver_nic() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let p = NetParams::unlimited();
        let net = Network::new(h.clone(), p.clone(), Topology::all_internode(4));
        let log = collect_deliveries(&net, &h);
        // Three senders hit rank 0 with 256 KB each at t=0.
        for s in 1..4u64 {
            net.send(Packet {
                src: Rank(s as usize),
                dst: Rank(0),
                body: data(s, 256 * 1024),
            });
        }
        sim.run().unwrap();
        let mut times: Vec<u64> = log.lock().iter().map(|e| e.1).collect();
        times.sort_unstable();
        let ser = p.inter_ser(256 * 1024 + p.header_bytes).as_nanos();
        // Receiver link occupancy: consecutive deliveries at least one
        // serialization apart.
        assert!(times[1] - times[0] >= ser);
        assert!(times[2] - times[1] >= ser);
    }

    #[test]
    fn self_send_is_delivered() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let net = Network::new(
            h.clone(),
            NetParams::qdr_infiniband(),
            Topology::all_internode(1),
        );
        let log = collect_deliveries(&net, &h);
        net.send(Packet {
            src: Rank(0),
            dst: Rank(0),
            body: ctrl(5),
        });
        sim.run().unwrap();
        assert_eq!(log.lock().len(), 1);
    }

    #[test]
    fn jitter_perturbs_but_keeps_channel_order_and_determinism() {
        fn run(seed: u64, jitter_us: u64) -> Vec<(u64, u64)> {
            let sim = Sim::new(seed);
            let h = sim.handle();
            let mut p = NetParams::unlimited();
            p.jitter = SimTime::from_micros(jitter_us);
            let net = Network::new(h.clone(), p, Topology::all_internode(3));
            let log = collect_deliveries(&net, &h);
            for i in 0..6 {
                net.send(Packet {
                    src: Rank(0),
                    dst: Rank(1 + (i as usize % 2)),
                    body: ctrl(i),
                });
            }
            sim.run().unwrap();
            let v = log.lock().clone();
            v
        }
        let jittered = run(42, 50);
        // Per-channel order preserved despite jitter.
        let chan1: Vec<u64> = jittered.iter().map(|e| e.0).filter(|t| t % 2 == 0).collect();
        assert_eq!(chan1, vec![0, 2, 4]);
        // Deterministic: same seed, same schedule.
        assert_eq!(jittered, run(42, 50));
        // And jitter actually changes timing vs the clean run.
        let clean = run(42, 0);
        assert_ne!(
            jittered.iter().map(|e| e.1).collect::<Vec<_>>(),
            clean.iter().map(|e| e.1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn drop_storm_loses_messages_but_returns_credits() {
        let sim = Sim::new(11);
        let h = sim.handle();
        let mut p = NetParams::qdr_infiniband();
        p.channel_credits = 2;
        p.faults = Some(crate::FaultPlan::drop_storm(5));
        let net = Network::new(h.clone(), p, Topology::all_internode(2));
        let log = collect_deliveries(&net, &h);
        for i in 0..40 {
            net.send(Packet { src: Rank(0), dst: Rank(1), body: ctrl(i) });
        }
        sim.run().unwrap();
        let s = net.stats();
        assert!(s.fault_drops > 0, "a 35% storm over 40 sends must drop something");
        assert_eq!(log.lock().len() as u64, 40 - s.fault_drops);
        assert_eq!(net.fault_log().len() as u64, s.faults_injected);
        // Dropped messages still return their credit: everything launched.
        assert_eq!(s.msgs_sent, 40);
    }

    #[test]
    fn duplicates_need_body_support_and_deliver_twice() {
        struct CloneBody(u64);
        impl Wire for CloneBody {
            fn payload_len(&self) -> usize {
                0
            }
            fn duplicate(&self) -> Option<Self> {
                Some(CloneBody(self.0))
            }
        }
        let sim = Sim::new(3);
        let h = sim.handle();
        let mut p = NetParams::qdr_infiniband();
        p.faults = Some(crate::FaultPlan::dup_storm(9));
        let net = Network::new(h.clone(), p, Topology::all_internode(2));
        let log: Log = Arc::new(Mutex::new(Vec::new()));
        let (l, hh) = (log.clone(), h.clone());
        net.set_handler(move |pkt: Packet<CloneBody>| {
            l.lock().push((pkt.body.0, hh.now().as_nanos()));
        });
        for i in 0..30 {
            net.send(Packet { src: Rank(0), dst: Rank(1), body: CloneBody(i) });
        }
        sim.run().unwrap();
        let s = net.stats();
        assert!(s.fault_dups > 0);
        assert_eq!(log.lock().len() as u64, 30 + s.fault_dups);
    }

    #[test]
    fn partition_cuts_only_inside_its_window() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let mut p = NetParams::qdr_infiniband();
        p.faults = Some(crate::FaultPlan::transient_partition(1));
        let net = Network::new(h.clone(), p, Topology::all_internode(2));
        let log = collect_deliveries(&net, &h);
        // One message before the cut, one inside it, one after the heal.
        net.send(Packet { src: Rank(0), dst: Rank(1), body: ctrl(0) });
        let n2 = net.clone();
        h.schedule_at(SimTime::from_micros(100), move || {
            n2.send(Packet { src: Rank(0), dst: Rank(1), body: ctrl(1) });
        });
        let n3 = net.clone();
        h.schedule_at(SimTime::from_micros(3_000), move || {
            n3.send(Packet { src: Rank(0), dst: Rank(1), body: ctrl(2) });
        });
        sim.run().unwrap();
        let tags: Vec<u64> = log.lock().iter().map(|e| e.0).collect();
        assert_eq!(tags, vec![0, 2]);
        assert_eq!(net.stats().fault_partition_drops, 1);
    }

    #[test]
    fn reorder_lets_later_traffic_overtake_but_replays_identically() {
        fn run(seed: u64) -> Vec<u64> {
            let sim = Sim::new(seed);
            let h = sim.handle();
            let mut p = NetParams::qdr_infiniband();
            p.faults = Some(crate::FaultPlan::heavy_dup_reorder(13));
            let net = Network::new(h.clone(), p, Topology::all_internode(2));
            let log = collect_deliveries(&net, &h);
            for i in 0..40 {
                net.send(Packet { src: Rank(0), dst: Rank(1), body: ctrl(i) });
            }
            sim.run().unwrap();
            assert!(net.stats().fault_reorders > 0);
            let v = log.lock().iter().map(|e| e.0).collect();
            v
        }
        let a = run(21);
        assert_ne!(a, (0..40).collect::<Vec<u64>>(), "reorders must be visible");
        assert_eq!(a, run(21), "same seeds must replay the same schedule");
    }

    #[test]
    fn crashed_nic_discards_all_later_traffic() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let mut p = NetParams::qdr_infiniband();
        let mut plan = crate::FaultPlan::none(1);
        plan.crashes.push((Rank(1), SimTime::from_micros(50)));
        p.faults = Some(plan);
        let net = Network::new(h.clone(), p, Topology::all_internode(3));
        let log = collect_deliveries(&net, &h);
        net.send(Packet { src: Rank(0), dst: Rank(1), body: ctrl(0) });
        let n2 = net.clone();
        h.schedule_at(SimTime::from_micros(60), move || {
            n2.send(Packet { src: Rank(0), dst: Rank(1), body: ctrl(1) });
            n2.send(Packet { src: Rank(1), dst: Rank(2), body: ctrl(2) });
            n2.send(Packet { src: Rank(0), dst: Rank(2), body: ctrl(3) });
        });
        sim.run().unwrap();
        let tags: Vec<u64> = log.lock().iter().map(|e| e.0).collect();
        assert_eq!(tags, vec![0, 3], "post-crash traffic touching rank 1 is gone");
        assert_eq!(net.stats().fault_crash_drops, 2);
    }

    #[test]
    fn dynamic_nic_down_drops_and_up_restores_delivery() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let net = Network::new(
            h.clone(),
            NetParams::qdr_infiniband(),
            Topology::all_internode(3),
        );
        let log = collect_deliveries(&net, &h);
        // Before the outage: delivered.
        net.send(Packet { src: Rank(0), dst: Rank(1), body: ctrl(0) });
        let n2 = net.clone();
        h.schedule_at(SimTime::from_micros(50), move || n2.nic_down(Rank(1)));
        let n3 = net.clone();
        h.schedule_at(SimTime::from_micros(60), move || {
            n3.send(Packet { src: Rank(0), dst: Rank(1), body: ctrl(1) });
            n3.send(Packet { src: Rank(1), dst: Rank(2), body: ctrl(2) });
            n3.send(Packet { src: Rank(0), dst: Rank(2), body: ctrl(3) });
        });
        let n4 = net.clone();
        h.schedule_at(SimTime::from_micros(500), move || n4.nic_up(Rank(1)));
        let n5 = net.clone();
        h.schedule_at(SimTime::from_micros(600), move || {
            n5.send(Packet { src: Rank(0), dst: Rank(1), body: ctrl(4) });
        });
        sim.run().unwrap();
        let tags: Vec<u64> = log.lock().iter().map(|e| e.0).collect();
        assert_eq!(tags, vec![0, 3, 4], "outage drops both directions, heal restores");
        assert_eq!(net.stats().fault_crash_drops, 2);
        assert_eq!(net.fault_log_dropped(), 0);
        assert!(!net.nic_is_down(Rank(1)));
    }

    #[test]
    fn stats_count_bytes_and_messages() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let p = NetParams::unlimited();
        let net = Network::new(h.clone(), p.clone(), Topology::all_internode(2));
        let _log = collect_deliveries(&net, &h);
        net.send(Packet {
            src: Rank(0),
            dst: Rank(1),
            body: data(0, 1000),
        });
        sim.run().unwrap();
        let s = net.stats();
        assert_eq!(s.msgs_sent, 1);
        assert_eq!(s.msgs_delivered, 1);
        assert_eq!(s.bytes_sent, (1000 + p.header_bytes) as u64);
    }
}
