//! Seeded unreliable-interconnect fault model.
//!
//! A [`FaultPlan`] describes, per internode channel, the misbehaviour the
//! simulated fabric injects: message drops, duplicates, bounded reorders,
//! bit corruption, extra delivery delay, transient `(src, dst)` partitions,
//! and per-rank slowdown or crash-at-time. Every decision is drawn from a
//! per-channel RNG seeded from `(plan.seed, src, dst)`, so a plan replays
//! identically for a given simulation — and every injected fault is both
//! counted in [`crate::NetStats`] and appended to a replayable
//! [`FaultRecord`] log.
//!
//! Intranode channels (shared memory) are never faulted: the model targets
//! the interconnect, exactly where the middleware's reliability sublayer
//! operates.

use mpisim_sim::SimTime;

use crate::params::Rank;

/// A transient bidirectional partition between two ranks.
#[derive(Clone, Debug)]
pub struct Partition {
    /// One side of the cut.
    pub a: Rank,
    /// The other side.
    pub b: Rank,
    /// Partition begins (inclusive).
    pub from: SimTime,
    /// Partition heals (exclusive).
    pub until: SimTime,
}

impl Partition {
    /// Whether a message `src → dst` departing at `now` is cut.
    pub fn cuts(&self, src: Rank, dst: Rank, now: SimTime) -> bool {
        let pair = (src == self.a && dst == self.b) || (src == self.b && dst == self.a);
        pair && now >= self.from && now < self.until
    }
}

/// The kind of one injected fault.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Message silently discarded.
    Drop,
    /// Message delivered twice.
    Duplicate,
    /// Message body corrupted in transit.
    Corrupt,
    /// Message delivered late, letting later channel traffic overtake it.
    Reorder,
    /// Message delivered late without reordering (extra latency).
    Delay,
    /// Message discarded by an active transient partition.
    PartitionDrop,
    /// Message discarded because a rank's NIC crashed.
    CrashDrop,
}

impl FaultKind {
    /// Short label for logs.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "dup",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Reorder => "reorder",
            FaultKind::Delay => "delay",
            FaultKind::PartitionDrop => "partition-drop",
            FaultKind::CrashDrop => "crash-drop",
        }
    }
}

/// One replayable fault-log entry.
#[derive(Clone, Debug)]
pub struct FaultRecord {
    /// Virtual time the faulted message entered the fabric.
    pub at: SimTime,
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// What was injected.
    pub kind: FaultKind,
}

impl std::fmt::Display for FaultRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} ns] {} -> {}: {}",
            self.at.as_nanos(),
            self.src,
            self.dst,
            self.kind.label()
        )
    }
}

/// Bounded replay log of injected faults: a ring buffer that keeps the
/// most recent [`FaultLog::DEFAULT_CAP`] records and counts what it had to
/// drop. Long fault sweeps (storm plans over big jobs) previously grew the
/// log without limit; the ring bounds memory while the
/// [`FaultLog::dropped`] counter keeps the totals auditable — the number
/// of faults *injected* is always `retained + dropped`.
#[derive(Clone, Debug)]
pub struct FaultLog {
    records: std::collections::VecDeque<FaultRecord>,
    cap: usize,
    dropped: u64,
}

impl Default for FaultLog {
    fn default() -> Self {
        FaultLog::with_capacity(Self::DEFAULT_CAP)
    }
}

impl FaultLog {
    /// Default ring capacity: ample for every conformance sweep while
    /// bounding a storm plan's footprint to a few hundred KiB.
    pub const DEFAULT_CAP: usize = 16_384;

    /// An empty log bounded to `cap` retained records.
    pub fn with_capacity(cap: usize) -> Self {
        FaultLog { records: std::collections::VecDeque::new(), cap: cap.max(1), dropped: 0 }
    }

    /// Append a record, evicting the oldest once the ring is full.
    pub fn push(&mut self, rec: FaultRecord) {
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec);
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was ever recorded (dropped records count as
    /// recorded, so an overflowed log is never "empty").
    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.dropped == 0
    }

    /// Records evicted to honour the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total records ever pushed (retained + evicted).
    pub fn total(&self) -> u64 {
        self.records.len() as u64 + self.dropped
    }

    /// Iterate the retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &FaultRecord> {
        self.records.iter()
    }

    /// Drain the retained records (oldest first), keeping the dropped
    /// counter.
    pub fn take(&mut self) -> Vec<FaultRecord> {
        self.records.drain(..).collect()
    }
}

/// A seeded per-channel fault schedule for the simulated interconnect.
///
/// Probabilities are evaluated in the order drop → duplicate → corrupt →
/// reorder → delay, one independent draw each, from a deterministic
/// per-channel stream; a dropped message draws nothing further. Partitions
/// and crashes are checked first and are fully deterministic.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Root seed of every per-channel decision stream.
    pub seed: u64,
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub dup_p: f64,
    /// Probability a message body is corrupted in transit.
    pub corrupt_p: f64,
    /// Probability a message is held back so later traffic overtakes it.
    pub reorder_p: f64,
    /// Maximum hold-back of a reordered message (uniform in `(0, window]`).
    pub reorder_window: SimTime,
    /// Probability of extra (order-preserving) delivery delay.
    pub delay_p: f64,
    /// Maximum extra delay (uniform in `(0, max_delay]`).
    pub max_delay: SimTime,
    /// Transient bidirectional partitions.
    pub partitions: Vec<Partition>,
    /// Per-rank NIC death: all traffic to or from the rank is discarded
    /// from the given time on (the rank itself keeps running — stalls are
    /// the middleware watchdog's problem).
    pub crashes: Vec<(Rank, SimTime)>,
    /// Per-rank NIC death keyed to *protocol progress* instead of wall
    /// time: `(rank, n)` crashes the rank's NIC the moment it completes
    /// its `n`-th epoch commit (1-based). The network layer cannot see
    /// epoch commits, so the middleware engine reads this list and drives
    /// [`crate::Network::nic_down`] when the counted commit happens; with
    /// a recovery config armed it also schedules the restart. This is what
    /// makes "crash any rank at any commit point" an exact, replayable
    /// schedule rather than a time guess.
    pub crash_at_commit: Vec<(Rank, u64)>,
    /// Per-rank NIC slowdown factors (> 1 multiplies both serialization
    /// and latency of messages the rank sends).
    pub slowdowns: Vec<(Rank, f64)>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a mutation base).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            dup_p: 0.0,
            corrupt_p: 0.0,
            reorder_p: 0.0,
            reorder_window: SimTime::ZERO,
            delay_p: 0.0,
            max_delay: SimTime::ZERO,
            partitions: Vec::new(),
            crashes: Vec::new(),
            crash_at_commit: Vec::new(),
            slowdowns: Vec::new(),
        }
    }

    /// Light random loss: ~2% drops plus occasional extra delay. The
    /// reliability sublayer must recover every message.
    pub fn light_loss(seed: u64) -> Self {
        FaultPlan {
            drop_p: 0.02,
            delay_p: 0.05,
            max_delay: SimTime::from_micros(30),
            ..FaultPlan::none(seed)
        }
    }

    /// Heavy duplication and reordering (no loss): stresses the dedup
    /// window and in-order restore.
    pub fn heavy_dup_reorder(seed: u64) -> Self {
        FaultPlan {
            dup_p: 0.15,
            reorder_p: 0.20,
            reorder_window: SimTime::from_micros(40),
            ..FaultPlan::none(seed)
        }
    }

    /// A transient bidirectional partition between ranks 0 and 1 early in
    /// the run; retransmits must carry traffic across the heal.
    pub fn transient_partition(seed: u64) -> Self {
        FaultPlan {
            partitions: vec![Partition {
                a: Rank(0),
                b: Rank(1),
                from: SimTime::from_micros(20),
                until: SimTime::from_micros(2_000),
            }],
            ..FaultPlan::none(seed)
        }
    }

    /// Aggressive loss (~35% drops): with the reliability sublayer off,
    /// essentially no multi-message exchange survives.
    pub fn drop_storm(seed: u64) -> Self {
        FaultPlan { drop_p: 0.35, ..FaultPlan::none(seed) }
    }

    /// Aggressive duplication (~50% of messages delivered twice): without
    /// dedup, grant sequencing and fence accounting break.
    pub fn dup_storm(seed: u64) -> Self {
        FaultPlan { dup_p: 0.5, ..FaultPlan::none(seed) }
    }

    /// Resolve a plan by its CLI name.
    pub fn by_name(name: &str, seed: u64) -> Option<Self> {
        match name {
            "light-loss" => Some(FaultPlan::light_loss(seed)),
            "heavy-dup-reorder" => Some(FaultPlan::heavy_dup_reorder(seed)),
            "partition" | "transient-partition" => Some(FaultPlan::transient_partition(seed)),
            "drop-storm" => Some(FaultPlan::drop_storm(seed)),
            "dup-storm" => Some(FaultPlan::dup_storm(seed)),
            _ => None,
        }
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.corrupt_p > 0.0
            || self.reorder_p > 0.0
            || self.delay_p > 0.0
            || !self.partitions.is_empty()
            || !self.crashes.is_empty()
            || !self.crash_at_commit.is_empty()
            || !self.slowdowns.is_empty()
    }

    /// The commit count (1-based) at which `rank`'s NIC crashes, if the
    /// plan schedules a commit-triggered crash for it.
    pub fn crash_commit(&self, rank: Rank) -> Option<u64> {
        self.crash_at_commit.iter().find(|(r, _)| *r == rank).map(|(_, n)| *n)
    }

    /// The time `rank`'s NIC crashes, if the plan crashes it.
    pub fn crash_time(&self, rank: Rank) -> Option<SimTime> {
        self.crashes.iter().find(|(r, _)| *r == rank).map(|(_, t)| *t)
    }

    /// Whether a message `src → dst` departing at `now` touches a crashed
    /// NIC.
    pub fn crashed(&self, src: Rank, dst: Rank, now: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|(r, t)| (*r == src || *r == dst) && now >= *t)
    }

    /// Whether an active partition cuts `src → dst` at `now`.
    pub fn partitioned(&self, src: Rank, dst: Rank, now: SimTime) -> bool {
        self.partitions.iter().any(|p| p.cuts(src, dst, now))
    }

    /// The slowdown factor applied to messages `rank` sends (1.0 = none).
    pub fn slowdown(&self, rank: Rank) -> f64 {
        self.slowdowns
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|(_, f)| *f)
            .unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_bidirectional_and_bounded() {
        let p = FaultPlan::transient_partition(1);
        let (t0, tin, tend) =
            (SimTime::from_micros(10), SimTime::from_micros(100), SimTime::from_micros(3_000));
        assert!(!p.partitioned(Rank(0), Rank(1), t0));
        assert!(p.partitioned(Rank(0), Rank(1), tin));
        assert!(p.partitioned(Rank(1), Rank(0), tin));
        assert!(!p.partitioned(Rank(0), Rank(2), tin));
        assert!(!p.partitioned(Rank(0), Rank(1), tend));
    }

    #[test]
    fn crash_cuts_both_directions_from_its_time() {
        let mut p = FaultPlan::none(3);
        p.crashes.push((Rank(2), SimTime::from_micros(5)));
        assert!(!p.crashed(Rank(2), Rank(0), SimTime::from_micros(4)));
        assert!(p.crashed(Rank(2), Rank(0), SimTime::from_micros(5)));
        assert!(p.crashed(Rank(0), Rank(2), SimTime::from_micros(9)));
        assert!(!p.crashed(Rank(0), Rank(1), SimTime::from_micros(9)));
        assert_eq!(p.crash_time(Rank(2)), Some(SimTime::from_micros(5)));
        assert_eq!(p.crash_time(Rank(0)), None);
    }

    #[test]
    fn fault_log_ring_bounds_memory_and_counts_evictions() {
        let mut log = FaultLog::with_capacity(4);
        let rec = |i: u64| FaultRecord {
            at: SimTime::from_nanos(i),
            src: Rank(0),
            dst: Rank(1),
            kind: FaultKind::Drop,
        };
        for i in 0..10 {
            log.push(rec(i));
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.dropped(), 6);
        assert_eq!(log.total(), 10);
        // Oldest evicted first: the ring retains the most recent records.
        let kept: Vec<u64> = log.iter().map(|r| r.at.as_nanos()).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
        assert!(!log.is_empty());
        let drained = log.take();
        assert_eq!(drained.len(), 4);
        assert_eq!(log.len(), 0);
        assert_eq!(log.dropped(), 6, "draining keeps the eviction count");
    }

    #[test]
    fn crash_at_commit_lookup_and_activity() {
        let mut p = FaultPlan::none(3);
        assert!(!p.is_active());
        p.crash_at_commit.push((Rank(1), 3));
        assert!(p.is_active(), "a commit-triggered crash makes the plan active");
        assert_eq!(p.crash_commit(Rank(1)), Some(3));
        assert_eq!(p.crash_commit(Rank(0)), None);
    }

    #[test]
    fn named_plans_resolve_and_are_active() {
        for name in ["light-loss", "heavy-dup-reorder", "partition", "drop-storm", "dup-storm"] {
            let plan = FaultPlan::by_name(name, 7).unwrap_or_else(|| panic!("{name}"));
            assert!(plan.is_active(), "{name} must inject something");
        }
        assert!(FaultPlan::by_name("nope", 7).is_none());
        assert!(!FaultPlan::none(7).is_active());
    }
}
