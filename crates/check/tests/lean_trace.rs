//! Pay-for-use tracing must be *observation only*: running the
//! conformance corpus with no trace sink attached (the lean
//! production-shaped path) must produce byte-identical verdicts —
//! memories, get results, virtual time, degradations, and every engine
//! counter — to the full-trace run. Anything else means the tracing
//! hooks leak into engine behaviour.

use mpisim_check::{execute, generate, Family, RunSpec, SyncStrategy};
use mpisim_check::run::execute_with_trace;

#[test]
fn lean_and_full_trace_runs_are_observably_identical() {
    for family in Family::ALL {
        for idx in 0..8u64 {
            let program = generate(family, idx);
            for nonblocking in [false, true] {
                let spec = RunSpec::baseline(SyncStrategy::Redesigned, nonblocking);
                let full = execute(&program, &spec)
                    .unwrap_or_else(|f| panic!("{family:?} #{idx} full: {f}"));
                let lean = execute_with_trace(&program, &spec, false)
                    .unwrap_or_else(|f| panic!("{family:?} #{idx} lean: {f}"));
                let tag = format!("{family:?} #{idx} nb={nonblocking}");
                assert_eq!(lean.mems, full.mems, "{tag}: window memories diverged");
                assert_eq!(lean.gets, full.gets, "{tag}: get results diverged");
                assert_eq!(
                    lean.report.final_time, full.report.final_time,
                    "{tag}: virtual time diverged"
                );
                assert_eq!(
                    lean.report.is_clean(),
                    full.report.is_clean(),
                    "{tag}: verdict diverged"
                );
                assert_eq!(
                    lean.report.degradations.len(),
                    full.report.degradations.len(),
                    "{tag}: degradations diverged"
                );
                assert_eq!(
                    lean.report.engine, full.report.engine,
                    "{tag}: engine counters diverged"
                );
                // The sink itself is the only allowed difference.
                assert!(lean.report.trace.is_empty(), "{tag}: lean run recorded a trace");
                assert!(lean.report.sync_trace.is_empty());
                assert!(!full.report.trace.is_empty(), "{tag}: full run recorded nothing");
            }
        }
    }
}

/// The lazy-baseline strategy exercises different activation paths;
/// spot-check trace equivalence there too.
#[test]
fn lean_trace_identical_under_lazy_baseline() {
    for idx in 0..4u64 {
        let program = generate(Family::MixedSerial, idx);
        let spec = RunSpec::baseline(SyncStrategy::LazyBaseline, false);
        let full = execute(&program, &spec).unwrap();
        let lean = execute_with_trace(&program, &spec, false).unwrap();
        assert_eq!(lean.mems, full.mems);
        assert_eq!(lean.report.engine, full.report.engine);
        assert_eq!(lean.report.final_time, full.report.final_time);
    }
}
