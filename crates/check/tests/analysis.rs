//! Integration of the `mpisim-analyze` layers into the conformance
//! pipeline: the positive corpus must be clean under both the static
//! analyzer and the dynamic race detector, and the planted `hb-race`
//! fault must be caught by the race detector — and *only* by the race
//! detector (the oracle and the trace audit cannot see it).

use mpisim_check::{
    generate, lower, verify_with, Epoch, Family, FailureKind, Op, Program, RunSpec, SyncStrategy,
    VerifyOpts,
};

const STATIC_ONLY: VerifyOpts =
    VerifyOpts { static_analysis: true, races: false, fault_plan: None, reliable: false };

/// Satellite acceptance: 3 families × ≥16 seeds, zero false positives
/// from the static analyzer (both close modes).
#[test]
fn positive_corpus_is_static_clean() {
    for family in Family::ALL {
        for idx in 0..16 {
            let program = generate(family, idx);
            for nonblocking in [false, true] {
                let diags = mpisim_analyze::analyze(&lower(&program, nonblocking));
                assert!(diags.is_empty(), "{family:?} #{idx} nb={nonblocking}: {diags:?}");
            }
        }
    }
}

/// Zero false positives from the race detector on executed clean runs:
/// every traced schedule of the positive corpus is HB-race-free.
#[test]
fn positive_corpus_is_race_free() {
    for family in Family::ALL {
        for idx in 0..16 {
            let program = generate(family, idx);
            for nonblocking in [false, true] {
                let spec = RunSpec::baseline(SyncStrategy::Redesigned, nonblocking);
                verify_with(&program, &spec, VerifyOpts::default()).unwrap_or_else(|f| {
                    panic!("{family:?} #{idx} nb={nonblocking}: {f}")
                });
            }
        }
    }
}

fn lock_put_program() -> Program {
    Program::SingleOrigin {
        n_ranks: 2,
        reorder: false,
        epochs: vec![Epoch::Lock {
            target: 1,
            ops: vec![Op::Put { target: 1, disp: 0, val: 7, len: 8 }],
        }],
    }
}

fn hb_race_spec() -> RunSpec {
    let mut spec = RunSpec::baseline(SyncStrategy::Redesigned, false);
    spec.fault = Some("hb-race".into());
    spec
}

/// The planted fault makes the target read its own window bytes as RMA
/// data arrives — unordered against the origin's put. The vector-clock
/// detector must flag it.
#[test]
fn hb_race_plant_is_caught_by_race_detector() {
    let err = verify_with(&lock_put_program(), &hb_race_spec(), VerifyOpts::default())
        .expect_err("planted unsynchronized access must be detected");
    assert!(matches!(err.kind, FailureKind::Races(_)), "wrong failure kind: {err}");
}

/// With the race detector disabled the same planted fault slips through
/// every other layer: the read is side-effect free (oracle clean) and
/// breaks no ω-triple counter invariant (audit clean). This is what makes
/// the CLI's `--inject hb-race --no-race-detect` self-test fail loudly.
#[test]
fn hb_race_plant_is_invisible_without_race_detector() {
    verify_with(&lock_put_program(), &hb_race_spec(), STATIC_ONLY)
        .expect("the plant must be invisible to oracle + audit");
}

/// The same program without the fault is clean under every layer — the
/// detection above is the plant, not a false positive.
#[test]
fn lock_put_program_is_clean_without_plant() {
    let spec = RunSpec::baseline(SyncStrategy::Redesigned, false);
    verify_with(&lock_put_program(), &spec, VerifyOpts::default()).unwrap();
}

/// The fence plane catches the plant too: fence-epoch data arrives before
/// the fence-completion announcements join the clocks.
#[test]
fn hb_race_plant_caught_in_fence_epochs() {
    let program = Program::SingleOrigin {
        n_ranks: 2,
        reorder: false,
        epochs: vec![Epoch::Fence(vec![Op::Put { target: 1, disp: 0, val: 3, len: 4 }])],
    };
    let err = verify_with(&program, &hb_race_spec(), VerifyOpts::default())
        .expect_err("fence-plane plant must be detected");
    assert!(matches!(err.kind, FailureKind::Races(_)), "wrong failure kind: {err}");
}
