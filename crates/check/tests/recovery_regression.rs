//! Pinned crash-recovery regressions found by `crossval_recovery`.

use mpisim_check::program::{generate, oracle, Family};
use mpisim_check::run::{execute, RunSpec};
use mpisim_core::SyncStrategy;

/// MultiWindow #1, crash rank 0 at its first commit. Rank 0 owns no
/// operations, so its later commits land *during* its own outage
/// (their network dependencies were satisfied before the crash). The
/// every-commit checkpoint cadence then fires mid-outage; cutting that
/// checkpoint from the wiped volatile bytes folded the wipe into the
/// stable store, truncated the redo log that could have repaired it,
/// and made the scheduled restore install 0xDB over the whole window.
/// The checkpoint path must freshen crashed memory first, like every
/// other memory-touching path.
#[test]
fn mid_outage_checkpoint_must_not_snapshot_the_wipe() {
    let program = generate(Family::MultiWindow, 1);
    let expected = oracle(&program);
    let mut spec = RunSpec::baseline(SyncStrategy::Redesigned, false);
    spec.sim_seed = 8;
    spec.crash_at = Some((0, 1));
    let out = execute(&program, &spec).expect("crash run failed");
    assert!(!out.report.recoveries.is_empty(), "the crash never recovered");
    for r in &out.report.recoveries {
        assert!(!r.stale, "restore flagged stale: {r}");
        assert_eq!(r.omega_regressions, 0, "omega regressed: {r}");
    }
    assert_eq!(out.mems, expected.mems, "final memories diverge from the oracle");
    assert_eq!(out.gets, expected.gets, "get results diverge from the oracle");
}
