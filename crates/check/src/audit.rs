//! Trace-invariant auditor: replay the traces of a finished job and check
//! the protocol invariants of the paper's ω-triple design (§VII.B–D).
//!
//! The engine's sync trace is appended under the global virtual clock, so
//! vector order is chronological; every "X before Y" check below is a scan
//! in that order. Audited invariants:
//!
//! * **I1 — positional grant emission.** Per (granter, origin, window,
//!   plane) the `GrantSent` ids are exactly 1, 2, 3, … — grants are
//!   sequenced per origin, never skipped or duplicated.
//! * **I2 — monotone grant application.** Per (origin, granter, window,
//!   plane) the `GrantApplied` ids are exactly 1, 2, 3, …, and no grant is
//!   applied before the matching send was traced (`id ≤ #sent so far`).
//! * **I3 — grant gate.** No RMA data is issued toward a peer before the
//!   epoch's positional access id is covered: `A_i ≤ g_r` at issue time.
//!   Fence epochs pre-grant through exposure credits and carry no access
//!   id, so they are exempt.
//! * **I4 — FIFO epoch matching.** Per (rank, window) epochs *activate* in
//!   the order they were opened (reorder flags permit overlap, not
//!   reordering of activation).
//! * **I5 — epoch lifecycle.** Every closed epoch completes, with
//!   `opened ≤ activated ≤ completed` and `opened ≤ closed`; the only
//!   epochs allowed to die unclosed are dormant trailing fences
//!   (deviation 4) — opened, usually activated (an empty fence activates
//!   immediately), never closed — and their count must match the engine's
//!   `dormant_retired` counter exactly.
//! * **I6 — request discipline.** Every request goes `Alloc → Complete →
//!   Consume` with exactly one effective completion and at most one
//!   consume; application-visible completion only exists at test/wait, the
//!   sole caller of consume (§VII.C). No request leaks past the job.
//! * **I7 — conservation.** `opened == completed + dormant_retired` and
//!   `activated == completed + dormant_activated` in the engine counters,
//!   where `dormant_activated` is the subset of dormant fences the trace
//!   shows activating.

use std::collections::HashMap;

use mpisim_core::request::ReqEvent;
use mpisim_core::trace::{EpochEvent, Plane, SyncEvent};
use mpisim_core::JobReport;

/// One invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Short invariant code (`"I1-grant-seq"`, …).
    pub invariant: &'static str,
    /// Human-readable description of what was observed.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Audit a finished job's traces. Returns every violation found (empty =
/// all invariants hold).
pub fn audit(report: &JobReport) -> Vec<Violation> {
    let mut v = Vec::new();
    audit_sync_plane(report, &mut v);
    audit_epoch_lifecycle(report, &mut v);
    audit_requests(report, &mut v);
    audit_conservation(report, &mut v);
    v
}

type PeerKey = (usize, usize, u32, Plane);

fn audit_sync_plane(report: &JobReport, out: &mut Vec<Violation>) {
    // I1 / I2 / I3 in one chronological scan.
    let mut sent: HashMap<PeerKey, u64> = HashMap::new();
    let mut applied: HashMap<PeerKey, u64> = HashMap::new();
    // (rank, win, plane, epoch, peer) -> positional access id.
    let mut access: HashMap<(usize, u32, Plane, u64, usize), u64> = HashMap::new();
    for r in &report.sync_trace {
        let me = r.rank.idx();
        let peer = r.peer.idx();
        let win = r.win.0;
        match r.event {
            SyncEvent::GrantSent { id } => {
                let k = (me, peer, win, r.plane);
                let prev = sent.entry(k).or_insert(0);
                if id != *prev + 1 {
                    out.push(Violation {
                        invariant: "I1-grant-seq",
                        detail: format!(
                            "r{me}→r{peer} w{win} {:?}: grant id {id} after id {prev} \
                             (must be consecutive from 1)",
                            r.plane
                        ),
                    });
                }
                *prev = (*prev).max(id);
            }
            SyncEvent::GrantApplied { id } => {
                let k = (me, peer, win, r.plane);
                let prev = applied.entry(k).or_insert(0);
                if id != *prev + 1 {
                    out.push(Violation {
                        invariant: "I2-apply-seq",
                        detail: format!(
                            "r{me} from r{peer} w{win} {:?}: applied grant {id} after {prev}",
                            r.plane
                        ),
                    });
                }
                let sent_so_far = sent.get(&(peer, me, win, r.plane)).copied().unwrap_or(0);
                if id > sent_so_far {
                    out.push(Violation {
                        invariant: "I2-apply-before-send",
                        detail: format!(
                            "r{me} applied grant {id} from r{peer} w{win} {:?} but only \
                             {sent_so_far} were sent",
                            r.plane
                        ),
                    });
                }
                *prev = (*prev).max(id);
            }
            SyncEvent::AccessAssigned { epoch, id } => {
                access.insert((me, win, r.plane, epoch, peer), id);
            }
            SyncEvent::DataIssued { epoch, .. } => {
                // Fences carry no access id toward the peer: exempt.
                if let Some(&aid) = access.get(&(me, win, r.plane, epoch, peer)) {
                    let g = applied.get(&(me, peer, win, r.plane)).copied().unwrap_or(0);
                    if aid > g {
                        out.push(Violation {
                            invariant: "I3-grant-gate",
                            detail: format!(
                                "r{me} issued data of epoch {epoch} to r{peer} w{win} {:?} \
                                 with A_i={aid} > g_r={g}",
                                r.plane
                            ),
                        });
                    }
                }
            }
            // Close/fence HB-edge events are consumed by the race detector
            // (mpisim-analyze), not by the grant-plane invariants.
            SyncEvent::EpochDoneSent { .. }
            | SyncEvent::EpochDoneApplied { .. }
            | SyncEvent::FenceDoneSent { .. }
            | SyncEvent::FenceDoneApplied { .. }
            | SyncEvent::LocalAccess { .. } => {}
        }
    }
}

fn audit_epoch_lifecycle(report: &JobReport, out: &mut Vec<Violation>) {
    // I4: per (rank, win), activation order == open order (epoch ids are
    // assigned at open in increasing order).
    let mut last_activated: HashMap<(usize, u32), u64> = HashMap::new();
    for r in &report.trace {
        if r.event == EpochEvent::Activated {
            let k = (r.rank.idx(), r.win.0);
            if let Some(&prev) = last_activated.get(&k) {
                if r.epoch <= prev {
                    out.push(Violation {
                        invariant: "I4-fifo-activation",
                        detail: format!(
                            "r{} w{} activated epoch {} after epoch {}",
                            r.rank.idx(),
                            r.win.0,
                            r.epoch,
                            prev
                        ),
                    });
                }
            }
            last_activated.insert(k, r.epoch);
        }
    }

    // I5: per-epoch lifecycle from the folded summaries. A *dormant*
    // trailing fence (deviation 4) is opened — and, having no operations,
    // usually activated — but never closed by the application; win_free
    // retires it instead of completing it.
    let mut dormant = 0u64;
    let mut dormant_activated = 0u64;
    for s in mpisim_core::trace::summarize(&report.trace) {
        let tag = format!("r{} w{} e{} ({})", s.rank, s.win, s.epoch, s.kind);
        match (s.opened, s.activated, s.closed, s.completed) {
            (Some(o), activated, None, None) => {
                dormant += 1;
                if activated.is_some() {
                    dormant_activated += 1;
                }
                if s.kind != "fence" {
                    out.push(Violation {
                        invariant: "I5-dormant-kind",
                        detail: format!("{tag} was never closed or completed but is not a fence"),
                    });
                }
                if let Some(a) = activated {
                    if a < o {
                        out.push(Violation {
                            invariant: "I5-order",
                            detail: format!("{tag} activated {a} before opened {o}"),
                        });
                    }
                }
            }
            (Some(o), Some(a), closed, Some(d)) => {
                if a < o || d < a {
                    out.push(Violation {
                        invariant: "I5-order",
                        detail: format!("{tag} times out of order: open {o} act {a} done {d}"),
                    });
                }
                if let Some(c) = closed {
                    if c < o {
                        out.push(Violation {
                            invariant: "I5-order",
                            detail: format!("{tag} closed {c} before opened {o}"),
                        });
                    }
                }
            }
            _ => {
                out.push(Violation {
                    invariant: "I5-incomplete",
                    detail: format!(
                        "{tag} ended in a partial state: open={:?} act={:?} close={:?} done={:?}",
                        s.opened, s.activated, s.closed, s.completed
                    ),
                });
            }
        }
    }
    if dormant != report.engine.dormant_retired {
        out.push(Violation {
            invariant: "I5-dormant-count",
            detail: format!(
                "{dormant} dormant epochs in the trace but engine retired {}",
                report.engine.dormant_retired
            ),
        });
    }
    // Activated-but-never-completed epochs must all be dormant fences.
    let e = &report.engine;
    if e.epochs_activated != e.epochs_completed + dormant_activated {
        out.push(Violation {
            invariant: "I7-activated",
            detail: format!(
                "activated {} != completed {} + activated-dormant {dormant_activated}",
                e.epochs_activated, e.epochs_completed
            ),
        });
    }
}

fn audit_requests(report: &JobReport, out: &mut Vec<Violation>) {
    #[derive(PartialEq)]
    enum St {
        Pending,
        Done,
        Consumed,
    }
    let mut state: HashMap<u64, St> = HashMap::new();
    for (req, ev) in &report.req_events {
        let cur = state.get(&req.0);
        match ev {
            ReqEvent::Alloc(_) => {
                if cur.is_some() {
                    out.push(Violation {
                        invariant: "I6-realloc",
                        detail: format!("request {req:?} allocated twice"),
                    });
                }
                state.insert(req.0, St::Pending);
            }
            ReqEvent::Complete => match cur {
                Some(St::Pending) => {
                    state.insert(req.0, St::Done);
                }
                other => {
                    out.push(Violation {
                        invariant: "I6-complete",
                        detail: format!(
                            "request {req:?} completed while {}",
                            match other {
                                None => "never allocated",
                                Some(St::Done) => "already complete",
                                _ => "already consumed",
                            }
                        ),
                    });
                }
            },
            ReqEvent::Consume => match cur {
                Some(St::Done) => {
                    state.insert(req.0, St::Consumed);
                }
                other => {
                    out.push(Violation {
                        invariant: "I6-consume",
                        detail: format!(
                            "request {req:?} consumed while {}",
                            match other {
                                None => "never allocated",
                                Some(St::Pending) => "still pending (test/wait is the only \
                                                     legal completion point)",
                                _ => "already consumed",
                            }
                        ),
                    });
                }
            },
        }
    }
    if report.live_requests != 0 {
        out.push(Violation {
            invariant: "I6-leak",
            detail: format!("{} requests still live after the job", report.live_requests),
        });
    }
}

fn audit_conservation(report: &JobReport, out: &mut Vec<Violation>) {
    let e = &report.engine;
    if e.epochs_opened != e.epochs_completed + e.dormant_retired {
        out.push(Violation {
            invariant: "I7-balance",
            detail: format!(
                "opened {} != completed {} + dormant {}",
                e.epochs_opened, e.epochs_completed, e.dormant_retired
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{generate, Family};
    use crate::run::{execute, RunSpec};
    use mpisim_core::SyncStrategy;

    #[test]
    fn clean_runs_have_no_violations() {
        for family in Family::ALL {
            let p = generate(family, 0);
            for nonblocking in [false, true] {
                let out =
                    execute(&p, &RunSpec::baseline(SyncStrategy::Redesigned, nonblocking)).unwrap();
                let violations = audit(&out.report);
                assert!(
                    violations.is_empty(),
                    "{family:?} nonblocking={nonblocking}: {violations:?}"
                );
                assert!(!out.report.sync_trace.is_empty(), "sync trace must be recorded");
            }
        }
    }

    #[test]
    fn doctored_trace_trips_the_grant_auditor() {
        let p = generate(Family::MixedSerial, 1);
        let mut out = execute(&p, &RunSpec::baseline(SyncStrategy::Redesigned, false)).unwrap();
        // Forge a duplicate of the first grant send: I1 must object.
        let Some(first) = out
            .report
            .sync_trace
            .iter()
            .find(|r| matches!(r.event, SyncEvent::GrantSent { .. }))
            .copied()
        else {
            panic!("expected at least one grant in the trace");
        };
        out.report.sync_trace.push(first);
        let violations = audit(&out.report);
        assert!(
            violations.iter().any(|v| v.invariant == "I1-grant-seq"),
            "forged duplicate grant not caught: {violations:?}"
        );
    }
}
