//! Lower a generated [`Program`] into the analyzer's [`IrProgram`].
//!
//! The lowering mirrors [`crate::run::execute`] statement for statement —
//! the exact call sequence each rank makes, including the blocking vs
//! nonblocking close selection, the targets' cooperating fences and
//! post/wait pairs, and the trailing `wait_all` — so that a clean verdict
//! from the static analyzer speaks about precisely the program the runtime
//! will execute. `mpisim-check` runs [`mpisim_analyze::analyze`] over this
//! IR before executing anything: analyzer-clean is a precondition for
//! every conformance run (analyzer-clean ⇒ oracle-clean ∧ audit-clean is
//! the harness's soundness claim).

use mpisim_analyze::{Close, IrProgram, Stmt};
use mpisim_core::ReduceOp;

use crate::program::{Epoch, Op, Program, MULTI_WIN_BYTES, WIN_BYTES};

fn lower_op(op: &Op) -> Stmt {
    match op {
        Op::Put { target, disp, len, .. } => {
            Stmt::Put { target: *target, disp: *disp, len: *len }
        }
        Op::Get { target, disp, len } => Stmt::Get { target: *target, disp: *disp, len: *len },
        Op::AccSum { target, slot, .. } => {
            Stmt::Acc { target: *target, disp: slot * 8, len: 8, op: ReduceOp::Sum }
        }
    }
}

/// Lower `program` as it would execute with `nonblocking` epoch closes.
pub fn lower(program: &Program, nonblocking: bool) -> IrProgram {
    let close = if nonblocking { Close::Nonblocking } else { Close::Blocking };
    match program {
        Program::SingleOrigin { n_ranks, reorder, epochs } => {
            let mut p = IrProgram::new(*n_ranks, WIN_BYTES);
            // `WinInfo::all_reorder()` sets the four reorder flags but not
            // the unsafe fence-reorder extension.
            p.reorder = *reorder;
            // Rank 0 drives every epoch.
            for e in epochs {
                match e {
                    Epoch::Fence(ops) => {
                        p.ranks[0].push(Stmt::Fence(Close::Blocking));
                        p.ranks[0].extend(ops.iter().map(lower_op));
                        p.ranks[0].push(Stmt::Fence(close));
                    }
                    Epoch::Gats(ops) => {
                        p.ranks[0].push(Stmt::Start((1..*n_ranks).collect()));
                        p.ranks[0].extend(ops.iter().map(lower_op));
                        p.ranks[0].push(Stmt::Complete(close));
                    }
                    Epoch::Lock { target, ops } => {
                        p.ranks[0].push(Stmt::Lock {
                            target: *target,
                            exclusive: true,
                            nonblocking: false,
                        });
                        p.ranks[0].extend(ops.iter().map(lower_op));
                        p.ranks[0].push(Stmt::Unlock { target: *target, close });
                    }
                    Epoch::LockAll(ops) => {
                        p.ranks[0].push(Stmt::LockAll);
                        p.ranks[0].extend(ops.iter().map(lower_op));
                        p.ranks[0].push(Stmt::UnlockAll(close));
                    }
                }
            }
            p.ranks[0].push(Stmt::WaitAll);
            p.ranks[0].push(Stmt::Barrier);
            // Targets join every fence phase and expose for every GATS
            // epoch (blocking closes on their side, as in the executor).
            for r in 1..*n_ranks {
                for e in epochs {
                    match e {
                        Epoch::Fence(_) => {
                            p.ranks[r].push(Stmt::Fence(Close::Blocking));
                            p.ranks[r].push(Stmt::Fence(Close::Blocking));
                        }
                        Epoch::Gats(_) => {
                            p.ranks[r].push(Stmt::Post(vec![0]));
                            p.ranks[r].push(Stmt::WaitEpoch(Close::Blocking));
                        }
                        _ => {}
                    }
                }
                p.ranks[r].push(Stmt::Barrier);
            }
            p
        }
        Program::MultiOrigin { n_ranks, plan } => {
            let mut p = IrProgram::new(*n_ranks, MULTI_WIN_BYTES);
            // `WinInfo::aaar()`: access-after-access reorder only.
            p.reorder = true;
            for (r, txs) in plan.iter().enumerate() {
                for (target, slot, _) in txs {
                    p.ranks[r].push(Stmt::Lock {
                        target: *target,
                        exclusive: true,
                        nonblocking,
                    });
                    p.ranks[r].push(Stmt::Acc {
                        target: *target,
                        disp: slot * 8,
                        len: 8,
                        op: ReduceOp::Sum,
                    });
                    p.ranks[r].push(Stmt::Unlock { target: *target, close });
                }
                p.ranks[r].push(Stmt::WaitAll);
                p.ranks[r].push(Stmt::Barrier);
            }
            p
        }
        Program::LockAllStorm { n_ranks, rounds } => {
            let mut p = IrProgram::new(*n_ranks, MULTI_WIN_BYTES);
            // `WinInfo::default()`: no reorder flags; back-to-back
            // lock_all epochs serialize per rank (§VI.A rule 4).
            p.reorder = false;
            for (r, eps) in rounds.iter().enumerate() {
                for accs in eps {
                    p.ranks[r].push(Stmt::LockAll);
                    for (target, slot, _) in accs {
                        p.ranks[r].push(Stmt::Acc {
                            target: *target,
                            disp: slot * 8,
                            len: 8,
                            op: ReduceOp::Sum,
                        });
                    }
                    p.ranks[r].push(Stmt::UnlockAll(close));
                }
                p.ranks[r].push(Stmt::WaitAll);
                p.ranks[r].push(Stmt::Barrier);
            }
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{generate, Family};
    use mpisim_analyze::analyze;

    #[test]
    fn lowered_generated_programs_are_analyzer_clean() {
        for family in Family::ALL {
            for idx in 0..16 {
                let program = generate(family, idx);
                for nonblocking in [false, true] {
                    let ir = lower(&program, nonblocking);
                    let diags = analyze(&ir);
                    assert!(
                        diags.is_empty(),
                        "{family:?} #{idx} nb={nonblocking}: {diags:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn lowering_reflects_close_mode() {
        let program = generate(Family::MixedSerial, 0);
        let b = lower(&program, false);
        let nb = lower(&program, true);
        assert!(!b.ranks[0].contains(&Stmt::Fence(Close::Nonblocking)));
        assert_ne!(b, nb);
    }
}
