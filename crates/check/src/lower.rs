//! Lower a generated [`Program`] into the analyzer's [`IrProgram`].
//!
//! The lowering mirrors [`crate::run::execute`] statement for statement —
//! the exact call sequence each rank makes, including the blocking vs
//! nonblocking close selection, the targets' cooperating fences and
//! post/wait pairs, and the trailing `wait_all` — so that a clean verdict
//! from the static analyzer speaks about precisely the program the runtime
//! will execute. `mpisim-check` runs [`mpisim_analyze::analyze`] over this
//! IR before executing anything: analyzer-clean is a precondition for
//! every conformance run (analyzer-clean ⇒ oracle-clean ∧ audit-clean is
//! the harness's soundness claim).

use mpisim_analyze::{Close, IrProgram, Stmt};
use mpisim_core::ReduceOp;

use crate::program::{Epoch, Op, Program, MULTI_WIN_BYTES, WIN_BYTES};

fn lower_op(win: usize, op: &Op) -> Stmt {
    match op {
        Op::Put { target, disp, len, .. } => {
            Stmt::Put { win, target: *target, disp: *disp, len: *len }
        }
        Op::Get { target, disp, len } => {
            Stmt::Get { win, target: *target, disp: *disp, len: *len }
        }
        Op::AccSum { target, slot, .. } => {
            Stmt::Acc { win, target: *target, disp: slot * 8, len: 8, op: ReduceOp::Sum }
        }
    }
}

/// Lower one driven epoch on `win` into rank 0's statement stream,
/// mirroring the executor (blocking open, `close`-mode close, and — in
/// the multi-window family — a blocking flush before a lock epoch's
/// close).
fn lower_driver(stmts: &mut Vec<Stmt>, win: usize, e: &Epoch, n_ranks: usize, close: Close, flush_locks: bool) {
    match e {
        Epoch::Fence(ops) => {
            stmts.push(Stmt::Fence { win, close: Close::Blocking });
            stmts.extend(ops.iter().map(|op| lower_op(win, op)));
            stmts.push(Stmt::Fence { win, close });
        }
        Epoch::Gats(ops) => {
            stmts.push(Stmt::Start { win, group: (1..n_ranks).collect() });
            stmts.extend(ops.iter().map(|op| lower_op(win, op)));
            stmts.push(Stmt::Complete { win, close });
        }
        Epoch::Lock { target, ops } => {
            stmts.push(Stmt::Lock { win, target: *target, exclusive: true, nonblocking: false });
            stmts.extend(ops.iter().map(|op| lower_op(win, op)));
            if flush_locks {
                stmts.push(Stmt::Flush {
                    win,
                    target: Some(*target),
                    local_only: false,
                    close: Close::Blocking,
                });
            }
            stmts.push(Stmt::Unlock { win, target: *target, close });
        }
        Epoch::LockAll(ops) => {
            stmts.push(Stmt::LockAll { win });
            stmts.extend(ops.iter().map(|op| lower_op(win, op)));
            stmts.push(Stmt::UnlockAll { win, close });
        }
    }
}

/// Lower one cooperating epoch on `win` into a target rank's stream.
fn lower_target(stmts: &mut Vec<Stmt>, win: usize, e: &Epoch) {
    match e {
        Epoch::Fence(_) => {
            stmts.push(Stmt::Fence { win, close: Close::Blocking });
            stmts.push(Stmt::Fence { win, close: Close::Blocking });
        }
        Epoch::Gats(_) => {
            stmts.push(Stmt::Post { win, group: vec![0] });
            stmts.push(Stmt::WaitEpoch { win, close: Close::Blocking });
        }
        _ => {}
    }
}

/// Lower `program` as it would execute with `nonblocking` epoch closes.
pub fn lower(program: &Program, nonblocking: bool) -> IrProgram {
    let close = if nonblocking { Close::Nonblocking } else { Close::Blocking };
    match program {
        Program::SingleOrigin { n_ranks, reorder, epochs } => {
            let mut p = IrProgram::new(*n_ranks, WIN_BYTES);
            // `WinInfo::all_reorder()` sets the four reorder flags but not
            // the unsafe fence-reorder extension.
            p.reorder = *reorder;
            // Rank 0 drives every epoch.
            for e in epochs {
                lower_driver(&mut p.ranks[0], 0, e, *n_ranks, close, false);
            }
            p.ranks[0].push(Stmt::WaitAll);
            p.ranks[0].push(Stmt::Barrier);
            // Targets join every fence phase and expose for every GATS
            // epoch (blocking closes on their side, as in the executor).
            for r in 1..*n_ranks {
                for e in epochs {
                    lower_target(&mut p.ranks[r], 0, e);
                }
                p.ranks[r].push(Stmt::Barrier);
            }
            p
        }
        Program::MultiOrigin { n_ranks, plan } => {
            let mut p = IrProgram::new(*n_ranks, MULTI_WIN_BYTES);
            // `WinInfo::aaar()`: access-after-access reorder only.
            p.reorder = true;
            for (r, txs) in plan.iter().enumerate() {
                for (target, slot, _) in txs {
                    p.ranks[r].push(Stmt::Lock {
                        win: 0,
                        target: *target,
                        exclusive: true,
                        nonblocking,
                    });
                    p.ranks[r].push(Stmt::Acc {
                        win: 0,
                        target: *target,
                        disp: slot * 8,
                        len: 8,
                        op: ReduceOp::Sum,
                    });
                    p.ranks[r].push(Stmt::Unlock { win: 0, target: *target, close });
                }
                p.ranks[r].push(Stmt::WaitAll);
                p.ranks[r].push(Stmt::Barrier);
            }
            p
        }
        Program::LockAllStorm { n_ranks, rounds } => {
            let mut p = IrProgram::new(*n_ranks, MULTI_WIN_BYTES);
            // `WinInfo::default()`: no reorder flags; back-to-back
            // lock_all epochs serialize per rank (§VI.A rule 4).
            p.reorder = false;
            for (r, eps) in rounds.iter().enumerate() {
                for accs in eps {
                    p.ranks[r].push(Stmt::LockAll { win: 0 });
                    for (target, slot, _) in accs {
                        p.ranks[r].push(Stmt::Acc {
                            win: 0,
                            target: *target,
                            disp: slot * 8,
                            len: 8,
                            op: ReduceOp::Sum,
                        });
                    }
                    p.ranks[r].push(Stmt::UnlockAll { win: 0, close });
                }
                p.ranks[r].push(Stmt::WaitAll);
                p.ranks[r].push(Stmt::Barrier);
            }
            p
        }
        Program::MultiWindow { n_ranks, n_wins, epochs } => {
            let mut p = IrProgram::new(*n_ranks, WIN_BYTES);
            for _ in 1..*n_wins {
                p.add_window(WIN_BYTES);
            }
            p.reorder = false;
            for (w, e) in epochs {
                lower_driver(&mut p.ranks[0], *w, e, *n_ranks, close, true);
            }
            p.ranks[0].push(Stmt::WaitAll);
            p.ranks[0].push(Stmt::Barrier);
            for r in 1..*n_ranks {
                for (w, e) in epochs {
                    lower_target(&mut p.ranks[r], *w, e);
                }
                p.ranks[r].push(Stmt::Barrier);
            }
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{generate, Family};
    use mpisim_analyze::analyze;

    #[test]
    fn lowered_generated_programs_are_analyzer_clean() {
        for family in Family::ALL {
            for idx in 0..16 {
                let program = generate(family, idx);
                for nonblocking in [false, true] {
                    let ir = lower(&program, nonblocking);
                    let diags = analyze(&ir);
                    assert!(
                        diags.is_empty(),
                        "{family:?} #{idx} nb={nonblocking}: {diags:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn lowering_reflects_close_mode() {
        let program = generate(Family::MixedSerial, 0);
        let b = lower(&program, false);
        let nb = lower(&program, true);
        assert!(!b.ranks[0].contains(&Stmt::Fence { win: 0, close: Close::Nonblocking }));
        assert_ne!(b, nb);
    }

    #[test]
    fn multi_window_lowering_spans_windows_and_flushes_locks() {
        let program = generate(Family::MultiWindow, 0);
        let crate::program::Program::MultiWindow { n_wins, epochs, .. } = &program else {
            panic!("wrong variant")
        };
        let ir = lower(&program, false);
        assert_eq!(ir.windows.len(), *n_wins);
        let flushes = ir.ranks[0]
            .iter()
            .filter(|s| matches!(s, Stmt::Flush { .. }))
            .count();
        let locks = epochs.iter().filter(|(_, e)| matches!(e, Epoch::Lock { .. })).count();
        assert_eq!(flushes, locks);
    }
}
