//! # mpisim-check — deterministic conformance harness
//!
//! Differential testing for the nonblocking-RMA middleware: generated RMA
//! programs are executed across the full strategy × API matrix under a
//! sweep of *legal* schedule perturbations, and every run must both
//! reproduce a sequential oracle byte for byte and satisfy the ω-triple
//! protocol invariants recovered from the engine's traces.
//!
//! The schedule space is explored through three orthogonal knobs, all
//! deterministic given their seeds:
//!
//! * the simulation kernel's **tie-break seed** permutes same-virtual-time
//!   events (legal because per-channel delivery times keep FIFO order);
//! * **network perturbation profiles** sweep latency jitter × credit
//!   starvation ([`mpisim_net::NetParams::perturbation_profile`]);
//! * the **simulation seed** re-rolls every jitter stream.
//!
//! Pipeline: [`program::generate`] → static analysis of the lowered call
//! sequence ([`lower::lower`] + [`mpisim_analyze::analyze`]) →
//! [`run::execute`] → oracle comparison + [`audit::audit`] + happens-before
//! race detection ([`mpisim_analyze::detect_races`]), all via [`verify`] →
//! on failure, [`shrink::shrink`] and [`shrink::reproducer`] emit a
//! minimized ready-to-paste test.
//!
//! The harness proves it can catch real bugs by injecting them: the engine
//! recognizes the fault names `"skip-grant"` (liveness: a dropped exposure
//! grant, surfacing as deadlock), `"double-acc"` (safety: accumulates
//! applied twice, surfacing as oracle divergence), and `"hb-race"` (a
//! planted unsynchronized local window read, caught only by the race
//! detector) — see [`mpisim_core::Fault`].
//!
//! The static deadlock analyzer gets the same treatment in
//! [`crossval`]: the deadlock corpus must be flagged *and* stall under
//! the armed watchdog ([`run::exec_ir`] executes IR programs directly),
//! while analyzer-clean generated programs must run stall-free.
//!
//! The pooled execution kernel is pinned to its thread-per-rank baseline
//! in [`crossval::crossval_exec`]: a slice of the conformance corpus is
//! replayed under every execution mode and must be byte-identical in
//! verdicts, memories, stats, and traces — while `--inject nondet-exec`
//! plants a genuinely nondeterministic kernel tie-break that the same
//! comparison must catch.
//!
//! The synchronization-slack rewriter closes its own loop in
//! [`crossval::crossval_rewrites`]: every conformance program the
//! rewriter relaxes must stay analyzer-clean, reproduce the original's
//! final memory at every strategy × seed point
//! ([`run::exec_ir_with`]), and strictly reduce the engine's
//! `sync_blocked_steps` — while `--inject bad-rewrite` plants an
//! unsound relaxation that the differential comparison alone must
//! catch.
//!
//! The crash-recovery subsystem gets the same treatment in [`recovery`]:
//! crash points enumerated from a fault-free probe are replayed with one
//! rank crashed mid-job (alone and stacked on a lossy fault plan), and
//! every run must still converge byte-identically to the oracle with
//! nothing but healthy `recovered` degradations — while `--inject
//! bad-recovery` plants a stale checkpoint restore that the differential
//! comparison must observe on every planted run.

#![warn(missing_docs)]

pub mod audit;
pub mod crossval;
pub mod diff;
pub mod lower;
pub mod program;
pub mod recovery;
pub mod run;
pub mod shrink;

pub use audit::{audit, Violation};
pub use crossval::{
    crossval_clean, crossval_deadlocks, crossval_exec, crossval_flagged, crossval_rewrites,
    CrossValReport, ExecValReport, RewriteValReport,
};
pub use diff::{
    spec_for_seed, sweep_family, sweep_family_with, verify, verify_with, Failure, FailureKind,
    FoundFailure, VerifyOpts, MATRIX,
};
pub use lower::lower;
pub use mpisim_core::SyncStrategy;
pub use program::{generate, oracle, Epoch, Family, Op, Program};
pub use recovery::{crossval_recovery, crossval_recovery_bad, RecoveryValReport};
pub use run::{
    exec_ir, exec_ir_with, execute, execute_exec, ExecOpts, RunFailure, RunOutcome, RunSpec,
};
pub use shrink::{reproducer, shrink};
