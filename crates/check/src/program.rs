//! Generated RMA programs and their sequential oracles.
//!
//! Three program families, each chosen so that a *sequential* replay of the
//! operations is a valid oracle for **every** legal schedule the simulator
//! can produce under perturbation:
//!
//! * [`Family::MixedSerial`] — one origin, mixed epoch kinds, reorder flags
//!   off. The activation predicate then serializes epochs completely, so
//!   program order is the only legal order.
//! * [`Family::DisjointReorder`] — one origin, all four reorder flags on,
//!   but every epoch owns a disjoint 16-byte region of every target window.
//!   Concurrently progressing epochs touch disjoint memory, and within an
//!   epoch per-channel FIFO keeps same-target operations ordered, so the
//!   sequential replay still predicts every byte.
//! * [`Family::MultiOriginSum`] — every rank fires `Sum` accumulates at
//!   random targets through out-of-order (`A_A_A_R`) passive epochs.
//!   Addition commutes, so the final contents are schedule-independent.
//! * [`Family::LockAllStorm`] — every rank opens a sequence of `lock_all`
//!   epochs, each batching `Sum` accumulates at random targets. Shared
//!   locks from all ranks contend at every target simultaneously and
//!   back-to-back `lock_all` epochs exercise the deferral/activation
//!   machinery (§VII.A); commutativity of `Sum` keeps the sequential
//!   replay a valid oracle for every schedule.
//! * [`Family::MultiWindow`] — one origin drives mixed epochs spread over
//!   several windows (reorder flags off), with a blocking flush inside
//!   every lock epoch. Epochs on the *same* window serialize (flags off);
//!   epochs on *different* windows may overlap but touch disjoint memory,
//!   so the sequential replay stays a valid oracle. Every rank joins each
//!   window's fence phases equally, keeping the per-window fence planes
//!   collective.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Window size (bytes) for single-origin programs.
pub const WIN_BYTES: usize = 64;
/// Window size (bytes) for multi-origin programs (8 u64 slots... 4 used).
pub const MULTI_WIN_BYTES: usize = 32;
/// Bytes of window owned by each epoch in the disjoint-region family.
pub const REGION_BYTES: usize = 16;

/// One operation inside an epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// `MPI_PUT` of `len` bytes of `val` at `disp`.
    Put {
        /// Target rank.
        target: usize,
        /// Byte displacement in the target window.
        disp: usize,
        /// Fill byte.
        val: u8,
        /// Length in bytes.
        len: usize,
    },
    /// `MPI_ACCUMULATE(SUM)` of one u64 at slot `slot`.
    AccSum {
        /// Target rank.
        target: usize,
        /// u64 slot index (byte displacement `slot * 8`).
        slot: usize,
        /// Operand.
        operand: u64,
    },
    /// `MPI_GET` of `len` bytes at `disp`; the result is checked against
    /// the oracle in program order.
    Get {
        /// Target rank.
        target: usize,
        /// Byte displacement in the target window.
        disp: usize,
        /// Length in bytes.
        len: usize,
    },
}

impl Op {
    /// The rank this operation addresses.
    pub fn target(&self) -> usize {
        match self {
            Op::Put { target, .. } | Op::AccSum { target, .. } | Op::Get { target, .. } => *target,
        }
    }
}

/// One epoch of a single-origin program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Epoch {
    /// Fence-to-fence active epoch.
    Fence(Vec<Op>),
    /// start/complete GATS access epoch over all targets.
    Gats(Vec<Op>),
    /// Exclusive passive-target epoch on a single target.
    Lock {
        /// The locked rank (every op is retargeted to it).
        target: usize,
        /// Operations.
        ops: Vec<Op>,
    },
    /// lock_all passive epoch.
    LockAll(Vec<Op>),
}

impl Epoch {
    /// The operations inside this epoch.
    pub fn ops(&self) -> &[Op] {
        match self {
            Epoch::Fence(o) | Epoch::Gats(o) | Epoch::LockAll(o) => o,
            Epoch::Lock { ops, .. } => ops,
        }
    }

    /// Mutable view of the operations.
    pub fn ops_mut(&mut self) -> &mut Vec<Op> {
        match self {
            Epoch::Fence(o) | Epoch::Gats(o) | Epoch::LockAll(o) => o,
            Epoch::Lock { ops, .. } => ops,
        }
    }
}

/// A generated program family.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Family {
    /// Single origin, mixed epochs, reorder flags off (fully serial).
    MixedSerial,
    /// Single origin, all reorder flags on, per-epoch disjoint regions.
    DisjointReorder,
    /// Every rank accumulates sums through `A_A_A_R` lock epochs.
    MultiOriginSum,
    /// Every rank accumulates sums through back-to-back `lock_all` epochs.
    LockAllStorm,
    /// Single origin driving mixed epochs over several windows, with
    /// blocking flushes inside lock epochs.
    MultiWindow,
}

impl Family {
    /// All families, in sweep order.
    pub const ALL: [Family; 5] = [
        Family::MixedSerial,
        Family::DisjointReorder,
        Family::MultiOriginSum,
        Family::LockAllStorm,
        Family::MultiWindow,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Family::MixedSerial => "mixed-serial",
            Family::DisjointReorder => "disjoint-reorder",
            Family::MultiOriginSum => "multi-origin-sum",
            Family::LockAllStorm => "lock-all-storm",
            Family::MultiWindow => "multi-window",
        }
    }
}

/// A concrete generated program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Program {
    /// Rank 0 drives `epochs`; other ranks cooperate (fence / post).
    SingleOrigin {
        /// Total ranks in the job.
        n_ranks: usize,
        /// Window info: `false` = flags off, `true` = all four reorder
        /// flags on (the disjoint-region family).
        reorder: bool,
        /// The epoch sequence.
        epochs: Vec<Epoch>,
    },
    /// Every rank `r` runs `plan[r]`: a sequence of `(target, slot, v)`
    /// Sum-accumulates, each in its own exclusive-lock epoch.
    MultiOrigin {
        /// Total ranks in the job.
        n_ranks: usize,
        /// Per-rank accumulate transactions.
        plan: Vec<Vec<(usize, usize, u64)>>,
    },
    /// Every rank `r` runs `rounds[r]`: a sequence of `lock_all` epochs,
    /// each holding a batch of `(target, slot, v)` Sum-accumulates.
    LockAllStorm {
        /// Total ranks in the job.
        n_ranks: usize,
        /// Per-rank, per-epoch accumulate batches.
        rounds: StormRounds,
    },
    /// Rank 0 drives `(window, epoch)` pairs over `n_wins` windows of
    /// `WIN_BYTES` each; other ranks cooperate per window (fence / post).
    MultiWindow {
        /// Total ranks in the job.
        n_ranks: usize,
        /// Number of windows (each `WIN_BYTES`).
        n_wins: usize,
        /// The epoch sequence with its window index.
        epochs: Vec<(usize, Epoch)>,
    },
}

/// `LockAllStorm` schedule: per rank → per `lock_all` epoch → batch of
/// `(target, slot, operand)` Sum-accumulates.
pub type StormRounds = Vec<Vec<Vec<(usize, usize, u64)>>>;

impl Program {
    /// Number of ranks this program needs.
    pub fn n_ranks(&self) -> usize {
        match self {
            Program::SingleOrigin { n_ranks, .. }
            | Program::MultiOrigin { n_ranks, .. }
            | Program::LockAllStorm { n_ranks, .. }
            | Program::MultiWindow { n_ranks, .. } => *n_ranks,
        }
    }

    /// Total number of "shrinkable atoms" (epochs + ops, or transactions):
    /// the minimizer's size metric.
    pub fn weight(&self) -> usize {
        match self {
            Program::SingleOrigin { epochs, .. } => {
                epochs.len() + epochs.iter().map(|e| e.ops().len()).sum::<usize>()
            }
            Program::MultiOrigin { plan, .. } => plan.iter().map(Vec::len).sum(),
            Program::LockAllStorm { rounds, .. } => rounds
                .iter()
                .map(|eps| eps.len() + eps.iter().map(Vec::len).sum::<usize>())
                .sum(),
            Program::MultiWindow { epochs, .. } => {
                epochs.len() + epochs.iter().map(|(_, e)| e.ops().len()).sum::<usize>()
            }
        }
    }

    /// Render the program as a Rust expression that reconstructs it —
    /// pasted verbatim into generated reproducer tests.
    pub fn to_rust(&self) -> String {
        fn ops(v: &[Op]) -> String {
            let items: Vec<String> = v
                .iter()
                .map(|op| match op {
                    Op::Put { target, disp, val, len } => format!(
                        "Op::Put {{ target: {target}, disp: {disp}, val: {val}, len: {len} }}"
                    ),
                    Op::AccSum { target, slot, operand } => format!(
                        "Op::AccSum {{ target: {target}, slot: {slot}, operand: {operand} }}"
                    ),
                    Op::Get { target, disp, len } => {
                        format!("Op::Get {{ target: {target}, disp: {disp}, len: {len} }}")
                    }
                })
                .collect();
            format!("vec![{}]", items.join(", "))
        }
        match self {
            Program::SingleOrigin { n_ranks, reorder, epochs } => {
                let eps: Vec<String> = epochs
                    .iter()
                    .map(|e| match e {
                        Epoch::Fence(o) => format!("Epoch::Fence({})", ops(o)),
                        Epoch::Gats(o) => format!("Epoch::Gats({})", ops(o)),
                        Epoch::Lock { target, ops: o } => {
                            format!("Epoch::Lock {{ target: {target}, ops: {} }}", ops(o))
                        }
                        Epoch::LockAll(o) => format!("Epoch::LockAll({})", ops(o)),
                    })
                    .collect();
                format!(
                    "Program::SingleOrigin {{\n        n_ranks: {n_ranks},\n        reorder: \
                     {reorder},\n        epochs: vec![\n            {}\n        ],\n    }}",
                    eps.join(",\n            ")
                )
            }
            Program::MultiOrigin { n_ranks, plan } => {
                let rows: Vec<String> = plan
                    .iter()
                    .map(|txs| {
                        let items: Vec<String> =
                            txs.iter().map(|(t, s, v)| format!("({t}, {s}, {v})")).collect();
                        format!("vec![{}]", items.join(", "))
                    })
                    .collect();
                format!(
                    "Program::MultiOrigin {{\n        n_ranks: {n_ranks},\n        plan: vec![\n  \
                     \u{20}         {}\n        ],\n    }}",
                    rows.join(",\n            ")
                )
            }
            Program::LockAllStorm { n_ranks, rounds } => {
                let rows: Vec<String> = rounds
                    .iter()
                    .map(|eps| {
                        let inner: Vec<String> = eps
                            .iter()
                            .map(|accs| {
                                let items: Vec<String> = accs
                                    .iter()
                                    .map(|(t, s, v)| format!("({t}, {s}, {v})"))
                                    .collect();
                                format!("vec![{}]", items.join(", "))
                            })
                            .collect();
                        format!("vec![{}]", inner.join(", "))
                    })
                    .collect();
                format!(
                    "Program::LockAllStorm {{\n        n_ranks: {n_ranks},\n        rounds: \
                     vec![\n            {}\n        ],\n    }}",
                    rows.join(",\n            ")
                )
            }
            Program::MultiWindow { n_ranks, n_wins, epochs } => {
                let eps: Vec<String> = epochs
                    .iter()
                    .map(|(w, e)| {
                        let body = match e {
                            Epoch::Fence(o) => format!("Epoch::Fence({})", ops(o)),
                            Epoch::Gats(o) => format!("Epoch::Gats({})", ops(o)),
                            Epoch::Lock { target, ops: o } => {
                                format!("Epoch::Lock {{ target: {target}, ops: {} }}", ops(o))
                            }
                            Epoch::LockAll(o) => format!("Epoch::LockAll({})", ops(o)),
                        };
                        format!("({w}, {body})")
                    })
                    .collect();
                format!(
                    "Program::MultiWindow {{\n        n_ranks: {n_ranks},\n        n_wins: \
                     {n_wins},\n        epochs: vec![\n            {}\n        ],\n    }}",
                    eps.join(",\n            ")
                )
            }
        }
    }
}

/// What the program must compute, independent of schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Expected {
    /// Final window bytes per rank (`WIN_BYTES` or `MULTI_WIN_BYTES` each).
    pub mems: Vec<Vec<u8>>,
    /// Get results, in program order (single-origin only).
    pub gets: Vec<Vec<u8>>,
}

/// Sequential oracle: replay the program on a local memory model.
pub fn oracle(program: &Program) -> Expected {
    match program {
        Program::SingleOrigin { n_ranks, epochs, .. } => {
            let mut mem = vec![vec![0u8; WIN_BYTES]; *n_ranks];
            let mut gets = Vec::new();
            for e in epochs {
                for op in e.ops() {
                    match op {
                        Op::Put { target, disp, val, len } => {
                            mem[*target][*disp..disp + len].fill(*val);
                        }
                        Op::AccSum { target, slot, operand } => {
                            let d = slot * 8;
                            let cur =
                                u64::from_le_bytes(mem[*target][d..d + 8].try_into().unwrap());
                            mem[*target][d..d + 8]
                                .copy_from_slice(&cur.wrapping_add(*operand).to_le_bytes());
                        }
                        Op::Get { target, disp, len } => {
                            gets.push(mem[*target][*disp..disp + len].to_vec());
                        }
                    }
                }
            }
            Expected { mems: mem, gets }
        }
        Program::MultiOrigin { n_ranks, plan } => {
            let mut mem = vec![vec![0u8; MULTI_WIN_BYTES]; *n_ranks];
            for txs in plan {
                for (target, slot, v) in txs {
                    let d = slot * 8;
                    let cur = u64::from_le_bytes(mem[*target][d..d + 8].try_into().unwrap());
                    mem[*target][d..d + 8].copy_from_slice(&cur.wrapping_add(*v).to_le_bytes());
                }
            }
            Expected { mems: mem, gets: Vec::new() }
        }
        Program::LockAllStorm { n_ranks, rounds } => {
            let mut mem = vec![vec![0u8; MULTI_WIN_BYTES]; *n_ranks];
            for eps in rounds {
                for accs in eps {
                    for (target, slot, v) in accs {
                        let d = slot * 8;
                        let cur = u64::from_le_bytes(mem[*target][d..d + 8].try_into().unwrap());
                        mem[*target][d..d + 8].copy_from_slice(&cur.wrapping_add(*v).to_le_bytes());
                    }
                }
            }
            Expected { mems: mem, gets: Vec::new() }
        }
        Program::MultiWindow { n_ranks, n_wins, epochs } => {
            // Per-rank memory is the concatenation of that rank's windows
            // in allocation order — the executor reads them back the same
            // way.
            let mut mem = vec![vec![0u8; WIN_BYTES * n_wins]; *n_ranks];
            let mut gets = Vec::new();
            for (w, e) in epochs {
                let base = w * WIN_BYTES;
                for op in e.ops() {
                    match op {
                        Op::Put { target, disp, val, len } => {
                            mem[*target][base + disp..base + disp + len].fill(*val);
                        }
                        Op::AccSum { target, slot, operand } => {
                            let d = base + slot * 8;
                            let cur =
                                u64::from_le_bytes(mem[*target][d..d + 8].try_into().unwrap());
                            mem[*target][d..d + 8]
                                .copy_from_slice(&cur.wrapping_add(*operand).to_le_bytes());
                        }
                        Op::Get { target, disp, len } => {
                            gets.push(mem[*target][base + disp..base + disp + len].to_vec());
                        }
                    }
                }
            }
            Expected { mems: mem, gets }
        }
    }
}

fn gen_op(rng: &mut SmallRng, n_ranks: usize, region: Option<usize>) -> Op {
    // Region `Some(i)` confines the op to bytes [i*16, (i+1)*16) — the
    // disjoint-region family's safety argument under reorder flags.
    let (lo, hi) = match region {
        Some(i) => (i * REGION_BYTES, (i + 1) * REGION_BYTES),
        None => (0, WIN_BYTES),
    };
    let target = rng.gen_range(1..n_ranks);
    match rng.gen_range(0..3u32) {
        0 => {
            let len = rng.gen_range(1..8usize).min(hi - lo);
            let disp = rng.gen_range(lo..=hi - len);
            Op::Put { target, disp, val: rng.gen::<u8>(), len }
        }
        1 => {
            let slot = rng.gen_range(lo / 8..hi / 8);
            Op::AccSum { target, slot, operand: rng.gen::<u64>() }
        }
        _ => {
            let len = rng.gen_range(1..8usize).min(hi - lo);
            let disp = rng.gen_range(lo..=hi - len);
            Op::Get { target, disp, len }
        }
    }
}

fn gen_epoch(rng: &mut SmallRng, n_ranks: usize, region: Option<usize>) -> Epoch {
    let n_ops = rng.gen_range(0..5usize);
    let mut ops: Vec<Op> = (0..n_ops).map(|_| gen_op(rng, n_ranks, region)).collect();
    match rng.gen_range(0..4u32) {
        0 => Epoch::Fence(ops),
        1 => Epoch::Gats(ops),
        2 => {
            // Lock epochs address a single target: retarget every op.
            let target = rng.gen_range(1..n_ranks);
            for op in ops.iter_mut() {
                match op {
                    Op::Put { target: t, .. }
                    | Op::AccSum { target: t, .. }
                    | Op::Get { target: t, .. } => *t = target,
                }
            }
            Epoch::Lock { target, ops }
        }
        _ => Epoch::LockAll(ops),
    }
}

/// Deterministically generate the `index`-th program of a family.
pub fn generate(family: Family, index: u64) -> Program {
    let mut rng = SmallRng::seed_from_u64(0x51EE_D000 ^ (index.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
    match family {
        Family::MixedSerial => {
            let n_ranks = 3;
            let n_epochs = rng.gen_range(1..6usize);
            let epochs = (0..n_epochs).map(|_| gen_epoch(&mut rng, n_ranks, None)).collect();
            Program::SingleOrigin { n_ranks, reorder: false, epochs }
        }
        Family::DisjointReorder => {
            let n_ranks = 3;
            let n_epochs = rng.gen_range(2..=WIN_BYTES / REGION_BYTES);
            let epochs =
                (0..n_epochs).map(|i| gen_epoch(&mut rng, n_ranks, Some(i))).collect();
            Program::SingleOrigin { n_ranks, reorder: true, epochs }
        }
        Family::MultiOriginSum => {
            let n_ranks = 4;
            let plan = (0..n_ranks)
                .map(|_| {
                    let n = rng.gen_range(1..10usize);
                    (0..n)
                        .map(|_| {
                            (
                                rng.gen_range(0..n_ranks),
                                rng.gen_range(0..MULTI_WIN_BYTES / 8),
                                rng.gen_range(0..1000u64),
                            )
                        })
                        .collect()
                })
                .collect();
            Program::MultiOrigin { n_ranks, plan }
        }
        Family::LockAllStorm => {
            let n_ranks = 4;
            let rounds = (0..n_ranks)
                .map(|_| {
                    let n_epochs = rng.gen_range(1..4usize);
                    (0..n_epochs)
                        .map(|_| {
                            let n_accs = rng.gen_range(1..6usize);
                            (0..n_accs)
                                .map(|_| {
                                    (
                                        rng.gen_range(0..n_ranks),
                                        rng.gen_range(0..MULTI_WIN_BYTES / 8),
                                        rng.gen_range(0..1000u64),
                                    )
                                })
                                .collect()
                        })
                        .collect()
                })
                .collect();
            Program::LockAllStorm { n_ranks, rounds }
        }
        Family::MultiWindow => {
            let n_ranks = 3;
            let n_wins = rng.gen_range(2..4usize);
            let n_epochs = rng.gen_range(2..7usize);
            let epochs = (0..n_epochs)
                .map(|_| (rng.gen_range(0..n_wins), gen_epoch(&mut rng, n_ranks, None)))
                .collect();
            Program::MultiWindow { n_ranks, n_wins, epochs }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for f in Family::ALL {
            for i in 0..4 {
                assert_eq!(generate(f, i), generate(f, i), "{f:?} #{i}");
            }
        }
        assert_ne!(generate(Family::MixedSerial, 0), generate(Family::MixedSerial, 1));
    }

    #[test]
    fn disjoint_family_respects_regions() {
        for i in 0..16 {
            let p = generate(Family::DisjointReorder, i);
            let Program::SingleOrigin { reorder, epochs, .. } = &p else {
                panic!("wrong variant")
            };
            assert!(reorder);
            for (e_idx, e) in epochs.iter().enumerate() {
                let (lo, hi) = (e_idx * REGION_BYTES, (e_idx + 1) * REGION_BYTES);
                for op in e.ops() {
                    match op {
                        Op::Put { disp, len, .. } | Op::Get { disp, len, .. } => {
                            assert!(*disp >= lo && disp + len <= hi, "op escapes region");
                        }
                        Op::AccSum { slot, .. } => {
                            assert!(slot * 8 >= lo && (slot + 1) * 8 <= hi, "slot escapes region");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn oracle_applies_ops_in_order() {
        let p = Program::SingleOrigin {
            n_ranks: 2,
            reorder: false,
            epochs: vec![
                Epoch::Fence(vec![
                    Op::Put { target: 1, disp: 0, val: 7, len: 4 },
                    Op::AccSum { target: 1, slot: 0, operand: 1 },
                    Op::Get { target: 1, disp: 0, len: 2 },
                ]),
            ],
        };
        let exp = oracle(&p);
        let word = u64::from_le_bytes(exp.mems[1][0..8].try_into().unwrap());
        assert_eq!(word, u64::from_le_bytes([7, 7, 7, 7, 0, 0, 0, 0]) + 1);
        assert_eq!(exp.gets, vec![exp.mems[1][0..2].to_vec()]);
    }

    #[test]
    fn to_rust_round_trips_textually() {
        let p = generate(Family::MixedSerial, 3);
        let src = p.to_rust();
        assert!(src.starts_with("Program::SingleOrigin"));
        assert!(src.contains("epochs: vec!["));
        let m = generate(Family::MultiOriginSum, 0);
        assert!(m.to_rust().starts_with("Program::MultiOrigin"));
        let s = generate(Family::LockAllStorm, 0);
        assert!(s.to_rust().starts_with("Program::LockAllStorm"));
    }

    #[test]
    fn lock_all_storm_batches_are_bounded() {
        for i in 0..16 {
            let Program::LockAllStorm { n_ranks, rounds } = generate(Family::LockAllStorm, i)
            else {
                panic!("wrong variant")
            };
            assert_eq!(rounds.len(), n_ranks);
            for eps in &rounds {
                assert!(!eps.is_empty());
                for accs in eps {
                    assert!(!accs.is_empty());
                    for &(t, s, _) in accs {
                        assert!(t < n_ranks && s < MULTI_WIN_BYTES / 8);
                    }
                }
            }
        }
    }
}
