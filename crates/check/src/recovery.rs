//! Crash-recovery conformance family: crash any rank at any epoch-commit
//! point, under any fault plan — the job must still converge byte-identically
//! to the sequential oracle.
//!
//! Unlike the clean sweeps in [`crate::diff`], a crash run is *supposed* to
//! degrade: every crash is recorded as a
//! [`mpisim_core::Degradation::Recovered`] entry. The family therefore runs
//! its own verdict instead of [`crate::verify_with`]: the run must terminate,
//! reproduce the oracle's memories and get results exactly, record at least
//! one recovery, and record **only** `recovered`-kind degradations — every
//! one of them a healthy restore (no stale flag, no ω regression).
//!
//! Crash points are not guessed: a fault-free probe run first reads each
//! rank's `epochs_committed` counter from the job report, which enumerates
//! exactly the commit ordinals (1-based) at which
//! `FaultPlan::crash_at_commit` can fire. The sweep then samples
//! (rank, commit) points across that space — first, middle, and last commit
//! of every rank — and replays each point both on the pristine network and
//! under the `light-loss` fault plan, alternating blocking and nonblocking
//! epoch closes.
//!
//! A static leg rides along with the dynamic sweep: for every rank the
//! sweep crashes, the lowered program is run through the analyzer twice —
//! declared crashed **without** recovery it must trip
//! [`mpisim_analyze::Code::E012`] (unguarded remote dependency), and
//! declared crashed-then-restarted (`IrProgram::recovered`) it must be
//! analyzer-clean. The recovery-aware E-rule relaxation thereby certifies
//! statically exactly what the differential runs then demonstrate
//! dynamically.
//!
//! The family proves its teeth the same way the other harness layers do:
//! [`crossval_recovery_bad`] plants a deliberately stale restore
//! ([`RunSpec::bad_recovery`] keeps only the window-allocation baseline
//! checkpoint and skips redo-log replay at restart) and requires the
//! differential comparison to observe the divergence on **every** planted
//! run — the `--inject bad-recovery` CLI self-test exit-inverts on exactly
//! this condition.

use crate::lower::lower;
use crate::program::{generate, oracle, Family};
use crate::run::{execute, RunSpec};
use mpisim_analyze::{analyze, has_code, Code};
use mpisim_core::SyncStrategy;

/// Outcome of a crash-recovery sweep.
#[derive(Clone, Debug, Default)]
pub struct RecoveryValReport {
    /// Programs swept (across all families).
    pub programs: u64,
    /// Distinct (rank, commit) crash points exercised.
    pub crash_points: u64,
    /// Total runs executed (probes + crash runs).
    pub runs: u64,
    /// Crash runs that recorded at least one completed recovery.
    pub recovered: u64,
    /// Static-analyzer E012 relaxation checks performed: per crashed rank,
    /// the lowered program must be E012-dirty when the rank crashes
    /// without recovery and E012-clean when it is crashed-then-restarted.
    pub e012_checks: u64,
    /// Bad mode: runs where the backdoor actually planted a stale restore
    /// (the crashed rank's redo log was non-empty at restart).
    pub planted: u64,
    /// Bad mode: runs where the plant came up empty — the victim's redo
    /// log was already empty at the crash, so skipping replay lost
    /// nothing and no divergence is expected.
    pub vacuous: u64,
    /// Bad mode: planted runs whose divergence the differential check
    /// observed.
    pub planted_detected: u64,
    /// Everything that went wrong, human-readable.
    pub failures: Vec<String>,
}

/// Cap on sampled crash points per program: enough to hit several ranks at
/// early/middle/late commits without exploding the sweep.
const MAX_POINTS_PER_PROGRAM: usize = 4;

/// Fault plans each crash point is replayed under (`None` = pristine
/// network). A crash must be survivable both alone and stacked on top of
/// the loss the reliability sublayer is already repairing.
const PLANS: [Option<&str>; 2] = [None, Some("light-loss")];

/// Probe the program fault-free and return each rank's final epoch-commit
/// count — the valid crash ordinals for rank `r` are `1..=counts[r]`.
/// Commit counts are structural (they follow the program's epoch
/// schedule), so one blocking-close probe covers every later variant.
fn probe_commits(
    family: Family,
    idx: u64,
    report: &mut RecoveryValReport,
) -> Option<Vec<u64>> {
    let program = generate(family, idx);
    let mut spec = RunSpec::baseline(SyncStrategy::Redesigned, false);
    spec.sim_seed = 7 + idx;
    report.runs += 1;
    match execute(&program, &spec) {
        Ok(out) => Some(out.report.ranks.iter().map(|r| r.epochs_committed).collect()),
        Err(f) => {
            report.failures.push(format!("{family:?} #{idx}: probe run failed: {f}"));
            None
        }
    }
}

/// Sample up to [`MAX_POINTS_PER_PROGRAM`] (rank, commit) crash points from
/// the probed commit counts: first, middle, and last commit of every rank,
/// deduplicated, then strided evenly so the sample spreads across ranks.
fn sample_points(counts: &[u64]) -> Vec<(usize, u64)> {
    let mut cands = Vec::new();
    for (r, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let mut commits = vec![1, c.div_ceil(2), c];
        commits.dedup();
        for n in commits {
            cands.push((r, n));
        }
    }
    if cands.len() <= MAX_POINTS_PER_PROGRAM {
        return cands;
    }
    (0..MAX_POINTS_PER_PROGRAM)
        .map(|i| cands[i * cands.len() / MAX_POINTS_PER_PROGRAM])
        .collect()
}

/// Sweep the crash-recovery family: `programs` programs per conformance
/// family, each crashed at sampled commit points under every plan in
/// [`PLANS`]. Every crash run must converge to the oracle with nothing but
/// healthy `recovered` degradations.
pub fn crossval_recovery(programs: u64) -> RecoveryValReport {
    let mut report = RecoveryValReport::default();
    for family in Family::ALL {
        for idx in 0..programs {
            report.programs += 1;
            let Some(counts) = probe_commits(family, idx, &mut report) else {
                continue;
            };
            let program = generate(family, idx);
            let expected = oracle(&program);
            let points = sample_points(&counts);
            // Static leg — the recovery-aware E012 relaxation must agree
            // with what the sweep is about to demonstrate dynamically:
            // crashing any of these ranks *without* recovery leaves a
            // dependency hazard (every lowered program ends in a barrier
            // the dead rank never joins), and declaring the rank
            // crashed-then-restarted relaxes exactly that.
            let crash_ranks: std::collections::BTreeSet<usize> =
                points.iter().map(|&(r, _)| r).collect();
            for r in crash_ranks {
                report.e012_checks += 1;
                let mut ir = lower(&program, false);
                ir.crashed = vec![r];
                if !has_code(&analyze(&ir), Code::E012) {
                    report.failures.push(format!(
                        "{family:?} #{idx}: crashing rank {r} without recovery must \
                         trip E012"
                    ));
                }
                ir.recovered = vec![r];
                let diags = analyze(&ir);
                if !diags.is_empty() {
                    report.failures.push(format!(
                        "{family:?} #{idx}: crash of rank {r} with recovery must be \
                         analyzer-clean, got {diags:?}"
                    ));
                }
            }
            for (pi, (rank, commit)) in points.into_iter().enumerate() {
                report.crash_points += 1;
                for plan in PLANS {
                    let mut spec =
                        RunSpec::baseline(SyncStrategy::Redesigned, pi % 2 == 1);
                    spec.sim_seed = 7 + idx;
                    spec.crash_at = Some((rank, commit));
                    spec.fault_plan = plan.map(String::from);
                    report.runs += 1;
                    let tag = format!(
                        "{family:?} #{idx} crash rank {rank} at commit {commit} \
                         (plan {plan:?}, nb={})",
                        pi % 2 == 1
                    );
                    let out = match execute(&program, &spec) {
                        Ok(out) => out,
                        Err(f) => {
                            report.failures.push(format!("{tag}: {f}"));
                            continue;
                        }
                    };
                    if out.report.recoveries.is_empty() {
                        report
                            .failures
                            .push(format!("{tag}: the crash never fired or never recovered"));
                        continue;
                    }
                    report.recovered += 1;
                    let mut bad = Vec::new();
                    for d in &out.report.degradations {
                        if d.kind() != "recovered" {
                            bad.push(format!("non-recovery degradation: {d}"));
                        }
                    }
                    for r in &out.report.recoveries {
                        if r.stale || r.omega_regressions > 0 {
                            bad.push(format!("unhealthy restore: {r}"));
                        }
                    }
                    if out.report.engine.ckpt_commits == 0 {
                        bad.push("no checkpoint was ever cut".into());
                    }
                    if out.mems != expected.mems {
                        bad.push("final memories diverge from the oracle".into());
                    }
                    if out.gets != expected.gets {
                        bad.push("get results diverge from the oracle".into());
                    }
                    for b in bad {
                        report.failures.push(format!("{tag}: {b}"));
                    }
                }
            }
        }
    }
    report
}

/// Exit-inverted self-test sweep: plant a stale restore in every crash run
/// and count how many plants the differential comparison catches. The crash
/// point is each victim rank's *last* commit, so the redo log discarded by
/// the backdoor is maximal; victims are restricted to ranks whose oracle
/// window is non-zero, so losing their writes is guaranteed observable.
///
/// A plant can still come up empty: when every remote write into the
/// victim's window arrives *after* its last commit (passive-target epochs
/// bump only the origin's commit counter), the redo log is empty at the
/// crash and skipping replay loses nothing. Such runs count as `vacuous`
/// and are skipped — but every *family* must yield at least one effective
/// plant across its programs' candidate victims, and every effective
/// plant must be caught.
pub fn crossval_recovery_bad(programs: u64) -> RecoveryValReport {
    let mut report = RecoveryValReport::default();
    for family in Family::ALL {
        let mut family_effective = 0u64;
        for idx in 0..programs {
            report.programs += 1;
            let Some(counts) = probe_commits(family, idx, &mut report) else {
                continue;
            };
            let program = generate(family, idx);
            let expected = oracle(&program);
            // Victims: ranks that both commit epochs and end with non-zero
            // window bytes (their writes are observable when lost).
            let victims: Vec<usize> = (0..program.n_ranks())
                .filter(|&r| counts[r] > 0 && expected.mems[r].iter().any(|&b| b != 0))
                .take(4)
                .collect();
            if victims.is_empty() {
                report
                    .failures
                    .push(format!("{family:?} #{idx}: no plantable victim rank"));
                continue;
            }
            let mut effective = 0u64;
            for rank in victims {
                report.crash_points += 1;
                let mut spec = RunSpec::baseline(SyncStrategy::Redesigned, false);
                spec.sim_seed = 7 + idx;
                spec.crash_at = Some((rank, counts[rank]));
                spec.bad_recovery = true;
                report.runs += 1;
                let tag = format!(
                    "{family:?} #{idx} stale-restore rank {rank} at commit {}",
                    counts[rank]
                );
                let out = match execute(&program, &spec) {
                    Ok(out) => out,
                    Err(f) => {
                        report.failures.push(format!("{tag}: {f}"));
                        continue;
                    }
                };
                if !out.report.recoveries.iter().any(|r| r.stale) {
                    // The victim's redo log was empty at the crash: the
                    // stale restore lost nothing, so there is no
                    // divergence for the differential check to catch.
                    report.vacuous += 1;
                    continue;
                }
                effective += 1;
                report.planted += 1;
                if out.mems != expected.mems || out.gets != expected.gets {
                    report.planted_detected += 1;
                } else {
                    report.failures.push(format!(
                        "{tag}: planted stale restore did not diverge from the oracle"
                    ));
                }
                if effective >= 2 {
                    break;
                }
            }
            family_effective += effective;
        }
        if family_effective == 0 {
            report.failures.push(format!(
                "{family:?}: no program/victim produced an effective plant"
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_sampling_spreads_across_ranks_and_commits() {
        // Three ranks with enough commits for first/middle/last each: the
        // cap must keep the sample small but multi-rank.
        let pts = sample_points(&[6, 4, 5]);
        assert_eq!(pts.len(), MAX_POINTS_PER_PROGRAM);
        let ranks: std::collections::BTreeSet<usize> =
            pts.iter().map(|(r, _)| *r).collect();
        assert!(ranks.len() >= 2, "sample must span ranks: {pts:?}");
        // A rank that never commits is never a crash point.
        assert!(sample_points(&[0, 0]).is_empty());
        // One commit yields exactly one candidate, not three duplicates.
        assert_eq!(sample_points(&[1]), vec![(0, 1)]);
    }

    #[test]
    fn one_program_crash_sweep_is_green() {
        let mut report = RecoveryValReport::default();
        let counts = probe_commits(Family::MixedSerial, 0, &mut report).unwrap();
        let program = generate(Family::MixedSerial, 0);
        let expected = oracle(&program);
        let (rank, commit) = sample_points(&counts)[0];
        let mut spec = RunSpec::baseline(SyncStrategy::Redesigned, false);
        spec.crash_at = Some((rank, commit));
        let out = execute(&program, &spec).unwrap();
        assert!(!out.report.recoveries.is_empty(), "the crash must fire");
        assert!(out.report.degradations.iter().all(|d| d.kind() == "recovered"));
        assert_eq!(out.mems, expected.mems);
        assert_eq!(out.gets, expected.gets);
    }

    #[test]
    fn e012_relaxation_matches_the_crash_model() {
        // The static leg's two assertions, spelled out on one program:
        // a crash without recovery is a dependency hazard, a crash with
        // recovery is analyzer-clean.
        let program = generate(Family::MixedSerial, 0);
        let mut ir = lower(&program, false);
        ir.crashed = vec![1];
        assert!(has_code(&analyze(&ir), Code::E012));
        ir.recovered = vec![1];
        assert!(analyze(&ir).is_empty());
    }

    #[test]
    fn planted_stale_restore_is_detected() {
        let r = crossval_recovery_bad(1);
        assert!(r.planted > 0, "self-test needs at least one plant: {:?}", r.failures);
        assert_eq!(
            r.planted, r.planted_detected,
            "every stale restore must diverge: {:?}",
            r.failures
        );
    }
}
