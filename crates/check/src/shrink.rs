//! Failing-case minimizer: given a failing (program, spec) pair, greedily
//! remove epochs, then operations, then perturbation knobs while the
//! failure persists, and emit a ready-to-paste reproducer test.
//!
//! Every candidate is re-verified with [`verify`], so the minimized pair is
//! guaranteed to still fail — the reproducer compiles into a test that
//! fails while the bug exists and passes once it is fixed.

use crate::diff::verify;
use crate::program::Program;
use crate::run::RunSpec;

/// Upper bound on re-verification runs during shrinking (each is a full
/// simulation; generated programs are small, so this is generous).
const SHRINK_BUDGET: usize = 200;

struct Shrinker {
    budget: usize,
}

impl Shrinker {
    fn fails(&mut self, program: &Program, spec: &RunSpec) -> bool {
        if self.budget == 0 {
            return false; // out of budget: treat as "don't take this step"
        }
        self.budget -= 1;
        verify(program, spec).is_err()
    }
}

fn drop_epoch(p: &Program, idx: usize) -> Option<Program> {
    match p {
        Program::SingleOrigin { n_ranks, reorder, epochs } => {
            if epochs.len() <= 1 || idx >= epochs.len() {
                return None;
            }
            let mut e = epochs.clone();
            e.remove(idx);
            Some(Program::SingleOrigin { n_ranks: *n_ranks, reorder: *reorder, epochs: e })
        }
        Program::MultiOrigin { n_ranks, plan } => {
            // Flat index over all (rank, tx) pairs.
            let mut i = idx;
            for (r, txs) in plan.iter().enumerate() {
                if i < txs.len() {
                    if plan.iter().map(Vec::len).sum::<usize>() <= 1 {
                        return None;
                    }
                    let mut pl = plan.clone();
                    pl[r].remove(i);
                    return Some(Program::MultiOrigin { n_ranks: *n_ranks, plan: pl });
                }
                i -= txs.len();
            }
            None
        }
        Program::LockAllStorm { n_ranks, rounds } => {
            // Flat index over all (rank, epoch) pairs.
            let mut i = idx;
            for (r, eps) in rounds.iter().enumerate() {
                if i < eps.len() {
                    if rounds.iter().map(Vec::len).sum::<usize>() <= 1 {
                        return None;
                    }
                    let mut rs = rounds.clone();
                    rs[r].remove(i);
                    return Some(Program::LockAllStorm { n_ranks: *n_ranks, rounds: rs });
                }
                i -= eps.len();
            }
            None
        }
        Program::MultiWindow { n_ranks, n_wins, epochs } => {
            if epochs.len() <= 1 || idx >= epochs.len() {
                return None;
            }
            let mut e = epochs.clone();
            e.remove(idx);
            Some(Program::MultiWindow { n_ranks: *n_ranks, n_wins: *n_wins, epochs: e })
        }
    }
}

fn epoch_slots(p: &Program) -> usize {
    match p {
        Program::SingleOrigin { epochs, .. } => epochs.len(),
        Program::MultiOrigin { plan, .. } => plan.iter().map(Vec::len).sum(),
        Program::LockAllStorm { rounds, .. } => rounds.iter().map(Vec::len).sum(),
        Program::MultiWindow { epochs, .. } => epochs.len(),
    }
}

fn drop_op(p: &Program, epoch: usize, op: usize) -> Option<Program> {
    match p {
        Program::SingleOrigin { n_ranks, reorder, epochs } => {
            let ops = epochs.get(epoch)?.ops();
            if op >= ops.len() {
                return None;
            }
            let mut e = epochs.clone();
            e[epoch].ops_mut().remove(op);
            Some(Program::SingleOrigin { n_ranks: *n_ranks, reorder: *reorder, epochs: e })
        }
        Program::MultiOrigin { .. } => None, // transactions are single-op
        Program::MultiWindow { n_ranks, n_wins, epochs } => {
            let ops = epochs.get(epoch).map(|(_, e)| e.ops())?;
            if op >= ops.len() {
                return None;
            }
            let mut e = epochs.clone();
            e[epoch].1.ops_mut().remove(op);
            Some(Program::MultiWindow { n_ranks: *n_ranks, n_wins: *n_wins, epochs: e })
        }
        Program::LockAllStorm { n_ranks, rounds } => {
            // `epoch` is the same flat (rank, epoch) index as drop_epoch's.
            let mut i = epoch;
            for (r, eps) in rounds.iter().enumerate() {
                if i < eps.len() {
                    if op >= eps[i].len() || eps[i].len() <= 1 {
                        return None; // keep epochs non-empty; drop_epoch removes them
                    }
                    let mut rs = rounds.clone();
                    rs[r][i].remove(op);
                    return Some(Program::LockAllStorm { n_ranks: *n_ranks, rounds: rs });
                }
                i -= eps.len();
            }
            None
        }
    }
}

/// Greedily minimize a failing pair. Panics if the input pair does not
/// fail (nothing to shrink).
pub fn shrink(program: &Program, spec: &RunSpec) -> (Program, RunSpec) {
    let mut sh = Shrinker { budget: SHRINK_BUDGET };
    assert!(
        sh.fails(program, spec),
        "shrink() called on a passing (program, spec) pair"
    );
    let mut p = program.clone();
    let mut s = spec.clone();

    // 1. Remove whole epochs / transactions, scanning to fixpoint.
    loop {
        let mut changed = false;
        let mut idx = 0;
        while idx < epoch_slots(&p) {
            if let Some(cand) = drop_epoch(&p, idx) {
                if sh.fails(&cand, &s) {
                    p = cand;
                    changed = true;
                    continue; // same index now names the next epoch
                }
            }
            idx += 1;
        }
        if !changed {
            break;
        }
    }

    // 2. Remove individual operations inside surviving epochs.
    if matches!(
        p,
        Program::SingleOrigin { .. } | Program::LockAllStorm { .. } | Program::MultiWindow { .. }
    ) {
        loop {
            let mut changed = false;
            let n_epochs = epoch_slots(&p);
            for e in 0..n_epochs {
                let mut o = 0;
                while let Some(cand) = drop_op(&p, e, o) {
                    if sh.fails(&cand, &s) {
                        p = cand;
                        changed = true;
                    } else {
                        o += 1;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    // 3. Simplify the spec: prefer the unperturbed schedule if it still
    // reproduces the failure.
    for simpler in [
        RunSpec { net_profile: 0, ..s.clone() },
        RunSpec { tiebreak_seed: None, ..s.clone() },
        RunSpec { sim_seed: 7, ..s.clone() },
    ] {
        if simpler != s && sh.fails(&p, &simpler) {
            s = simpler;
        }
    }
    let both = RunSpec { net_profile: 0, tiebreak_seed: None, sim_seed: 7, ..s.clone() };
    if both != s && sh.fails(&p, &both) {
        s = both;
    }

    (p, s)
}

/// Render a ready-to-paste reproducer test for a failing pair.
pub fn reproducer(program: &Program, spec: &RunSpec) -> String {
    format!(
        "#[test]\nfn shrunk_reproducer() {{\n    #[allow(unused_imports)]\n    use \
         mpisim_check::program::{{Epoch, Op, Program}};\n    use mpisim_check::run::RunSpec;\n    \
         use mpisim_check::SyncStrategy;\n\n    let program = {};\n    let spec = {};\n    // \
         Fails while the bug is present; passes once it is fixed.\n    \
         mpisim_check::verify(&program, &spec).unwrap();\n}}\n",
        program.to_rust(),
        spec.to_rust()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Epoch, Op};
    use mpisim_core::SyncStrategy;

    /// The double-acc fault only needs one accumulate; everything else in
    /// the program must shrink away.
    #[test]
    fn shrinks_double_acc_to_a_single_accumulate() {
        let program = Program::SingleOrigin {
            n_ranks: 3,
            reorder: false,
            epochs: vec![
                Epoch::Fence(vec![Op::Put { target: 1, disp: 0, val: 3, len: 4 }]),
                Epoch::Lock {
                    target: 1,
                    ops: vec![
                        Op::Put { target: 1, disp: 8, val: 9, len: 2 },
                        Op::AccSum { target: 1, slot: 3, operand: 11 },
                    ],
                },
                Epoch::Gats(vec![Op::Get { target: 2, disp: 0, len: 4 }]),
            ],
        };
        let spec = RunSpec {
            net_profile: 9,
            tiebreak_seed: Some(4),
            sim_seed: 21,
            fault: Some("double-acc".into()),
            ..RunSpec::baseline(SyncStrategy::Redesigned, true)
        };
        let (p, s) = shrink(&program, &spec);
        assert!(verify(&p, &s).is_err(), "shrunk pair must still fail");
        assert_eq!(p.weight(), 2, "one epoch + one accumulate, got {p:?}");
        let Program::SingleOrigin { epochs, .. } = &p else { panic!() };
        assert!(matches!(epochs[0].ops(), [Op::AccSum { .. }]));
        // The perturbation knobs are irrelevant to this bug: all reset.
        assert_eq!(s.net_profile, 0);
        assert_eq!(s.tiebreak_seed, None);
        let repro = reproducer(&p, &s);
        assert!(repro.contains("fn shrunk_reproducer"));
        assert!(repro.contains("Op::AccSum"));
        assert!(repro.contains("double-acc"));
    }
}
