//! `mpisim-check` CLI: sweep the conformance matrix and report.
//!
//! ```text
//! mpisim-check [--seeds N] [--programs N] [--deadlocks N] [--rewrites N]
//!              [--recoveries N] [--inject FAULT] [--faults PLAN]
//!              [--no-race-detect]
//! ```
//!
//! * `--seeds N` — perturbed schedules per (program, matrix point);
//!   default 16.
//! * `--programs N` — generated programs per family; default 4.
//! * `--deadlocks N` — deadlock cross-validation sweep width: N programs
//!   per deadlock-corpus family are checked both ways (analyzer must flag
//!   them AND the stall watchdog must cancel at least one epoch at
//!   runtime), and a slice of the clean families is executed under the
//!   armed watchdog and must produce zero stalls; default 13. `--inject
//!   deadlock` runs only the flagged side as an exit-inverted self-test:
//!   status 0 iff every corpus deadlock was caught by both layers.
//!   `--inject value-deadlock` narrows to the value-dependent family:
//!   status 0 iff every doomed spin is flagged E018 *and* stalls the
//!   watchdog, while the satisfiable twin of every program is
//!   analyzer-clean and runs stall-free.
//! * `--execs N` — execution-mode determinism sweep width: N conformance
//!   programs per family (both close modes) are replayed under
//!   thread-per-rank and both pooled fiber modes, and the runs must be
//!   byte-identical in verdicts, memories, stats, and traces; default 2.
//!   `--inject nondet-exec` plants the kernel's deliberately
//!   nondeterministic tie-break instead and exit-inverts: status 0 iff
//!   the comparison observed the divergence.
//! * `--rewrites N` — rewrite-equivalence sweep width: N conformance
//!   programs per family are lowered with blocking closes, run through
//!   the synchronization-slack rewriter, and every program where it
//!   fires must stay analyzer-clean, reproduce the original's final
//!   memory at every strategy × seed point with zero stalls, and
//!   strictly reduce `sync_blocked_steps`; default 6. `--inject
//!   bad-rewrite` plants one unsound deletion per program instead and
//!   exit-inverts: status 0 iff the differential check caught every
//!   plant.
//! * `--recoveries N` — crash-recovery sweep width: N conformance
//!   programs per family are probed for their per-rank epoch-commit
//!   counts, then crashed at sampled (rank, commit) points — alone and
//!   stacked on the `light-loss` plan — and every run must converge
//!   byte-identically to the oracle with nothing but healthy `recovered`
//!   degradations; default 1. `--inject bad-recovery` plants a stale
//!   checkpoint restore (redo-log replay skipped) instead and
//!   exit-inverts: status 0 iff every planted stale restore was observed
//!   to diverge.
//! * `--inject FAULT` — self-test mode: inject the named fault into every
//!   run, *require* the sweep to catch it, and print the shrunk
//!   reproducer. Exit status inverts: 0 if the bug was caught, 1 if it
//!   slipped through. Engine faults (`skip-grant`, `double-acc`,
//!   `hb-race`) plant a protocol bug; network storms (`drop-storm`,
//!   `dup-storm`, `partition`) batter the interconnect with the
//!   reliability sublayer deliberately OFF — proving the fault plans have
//!   teeth, and that the sublayer is what `--faults` is actually testing.
//! * `--faults PLAN` — clean-sweep mode under an unreliable interconnect:
//!   apply the named fault plan (`light-loss`, `heavy-dup-reorder`,
//!   `transient-partition`) to every run with the reliability sublayer
//!   and the stall watchdog ON. Normal exit semantics: every run must be
//!   conformant *and* degradation-free.
//! * `--no-race-detect` — disable the happens-before race detector. With
//!   `--inject hb-race` this must make the self-test fail loudly: the
//!   planted unsynchronized read is invisible to the oracle and the trace
//!   audit, so only the race detector can catch it.
//!
//! Without `--inject`, exit status 0 means every run of every family
//! passed static analysis, matched its oracle, passed the trace audit,
//! and was race-free.

use std::process::ExitCode;

use mpisim_check::{reproducer, shrink, sweep_family_with, Family, VerifyOpts};

struct Args {
    seeds: u64,
    programs: u64,
    deadlocks: u64,
    rewrites: u64,
    execs: u64,
    recoveries: u64,
    inject: Option<String>,
    faults: Option<String>,
    race_detect: bool,
}

/// Canonical `&'static` name for a network fault plan accepted by the
/// CLI, or `None` for engine-fault names and typos.
fn canonical_plan(name: &str) -> Option<&'static str> {
    match name {
        "light-loss" => Some("light-loss"),
        "heavy-dup-reorder" => Some("heavy-dup-reorder"),
        "partition" | "transient-partition" => Some("transient-partition"),
        "drop-storm" => Some("drop-storm"),
        "dup-storm" => Some("dup-storm"),
        _ => None,
    }
}

fn parse_args() -> Result<Args, String> {
    // Four programs per family is the smallest count whose generated set
    // exercises every epoch kind at least twice per family — enough for
    // both injected-fault self-tests to trip.
    let mut args = Args {
        seeds: 16,
        programs: 4,
        deadlocks: 13,
        rewrites: 6,
        execs: 2,
        recoveries: 1,
        inject: None,
        faults: None,
        race_detect: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seeds" => {
                args.seeds =
                    value("--seeds")?.parse().map_err(|e| format!("--seeds: {e}"))?;
            }
            "--programs" => {
                args.programs =
                    value("--programs")?.parse().map_err(|e| format!("--programs: {e}"))?;
            }
            "--deadlocks" => {
                args.deadlocks =
                    value("--deadlocks")?.parse().map_err(|e| format!("--deadlocks: {e}"))?;
            }
            "--rewrites" => {
                args.rewrites =
                    value("--rewrites")?.parse().map_err(|e| format!("--rewrites: {e}"))?;
            }
            "--execs" => {
                args.execs = value("--execs")?.parse().map_err(|e| format!("--execs: {e}"))?;
            }
            "--recoveries" => {
                args.recoveries =
                    value("--recoveries")?.parse().map_err(|e| format!("--recoveries: {e}"))?;
            }
            "--inject" => args.inject = Some(value("--inject")?),
            "--faults" => args.faults = Some(value("--faults")?),
            "--no-race-detect" => args.race_detect = false,
            "--help" | "-h" => {
                return Err("usage: mpisim-check [--seeds N] [--programs N] [--deadlocks N] \
                            [--rewrites N] [--execs N] [--recoveries N] [--inject FAULT] \
                            [--faults PLAN] [--no-race-detect]"
                    .to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.seeds == 0 || args.programs == 0 {
        return Err("--seeds and --programs must be at least 1".into());
    }
    if let Some(plan) = &args.faults {
        if canonical_plan(plan).is_none() {
            return Err(format!(
                "--faults: unknown plan {plan:?} (try light-loss, heavy-dup-reorder, \
                 transient-partition)"
            ));
        }
        if args.inject.is_some() {
            return Err("--faults and --inject are mutually exclusive".into());
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    // `--inject deadlock` is the analyzer ↔ watchdog self-test: every
    // deadlock-corpus program must be flagged statically AND stall
    // dynamically. Exit status inverts like the other injects: 0 iff the
    // planted deadlocks were all caught.
    if args.inject.as_deref() == Some("deadlock") {
        let mut failures = Vec::new();
        let runs = mpisim_check::crossval_flagged(args.deadlocks, &mut failures);
        println!(
            "mpisim-check: deadlock self-test, {runs} corpus programs ({} per family)",
            args.deadlocks
        );
        return if failures.is_empty() {
            println!(
                "self-test passed: every corpus deadlock was flagged statically and \
                 stalled dynamically"
            );
            ExitCode::SUCCESS
        } else {
            for f in &failures {
                eprintln!("  {f}");
            }
            eprintln!("self-test failed: {} deadlock(s) escaped detection", failures.len());
            ExitCode::FAILURE
        };
    }

    // `--inject value-deadlock` is the value-domain self-test: every
    // corpus program whose spin expectation no reachable write can ever
    // produce must be flagged E018 statically AND stall the watchdog
    // dynamically — and the satisfiable twin of the same shape must be
    // analyzer-clean and run stall-free. Exit status inverts: 0 iff both
    // directions hold for every seed.
    if args.inject.as_deref() == Some("value-deadlock") {
        use mpisim_analyze::{
            analyze, generate_negative, generate_value_clean, has_code, Code, NegFamily,
        };
        let stall_count = |report: &mpisim_core::JobReport| {
            report
                .degradations
                .iter()
                .filter(|d| matches!(d, mpisim_core::Degradation::EpochStall(_)))
                .count()
        };
        let mut failures = Vec::new();
        let seeds = args.deadlocks.max(1);
        for seed in 0..seeds {
            let case = generate_negative(NegFamily::ValueDeadlock, seed);
            let diags = analyze(&case.program);
            if !has_code(&diags, Code::E018) {
                failures.push(format!("seed {seed}: analyzer missed E018 (got {diags:?})"));
            } else {
                match mpisim_check::exec_ir(&case.program, true, 7 + seed) {
                    Ok(report) if stall_count(&report) == 0 => failures.push(format!(
                        "seed {seed}: E018-flagged program ran stall-free (static false \
                         positive?)"
                    )),
                    Ok(_) => {}
                    Err(f) => failures.push(format!(
                        "seed {seed}: watchdog failed to terminate the doomed spin: {f}"
                    )),
                }
            }
            let clean = generate_value_clean(seed);
            let diags = analyze(&clean);
            if !diags.is_empty() {
                failures.push(format!(
                    "seed {seed}: satisfiable twin flagged: {diags:?} (value domain too \
                     coarse?)"
                ));
                continue;
            }
            match mpisim_check::exec_ir(&clean, true, 7 + seed) {
                Ok(report) if stall_count(&report) > 0 => failures.push(format!(
                    "seed {seed}: satisfiable twin stalled {} time(s)",
                    stall_count(&report)
                )),
                Ok(_) => {}
                Err(f) => failures.push(format!("seed {seed}: satisfiable twin failed: {f}")),
            }
        }
        println!(
            "mpisim-check: value-deadlock self-test, {} doomed + {} satisfiable programs",
            seeds, seeds
        );
        return if failures.is_empty() {
            println!(
                "self-test passed: every doomed spin was flagged E018 and stalled; every \
                 satisfiable twin was clean and stall-free"
            );
            ExitCode::SUCCESS
        } else {
            for f in &failures {
                eprintln!("  {f}");
            }
            eprintln!("self-test failed: {} disagreement(s)", failures.len());
            ExitCode::FAILURE
        };
    }

    // `--inject nondet-exec` is the pooled-execution determinism
    // self-test: every run enables the kernel's deliberately
    // nondeterministic tie-break, so the thread-vs-pooled comparison MUST
    // observe divergence. Exit status inverts: 0 iff the planted
    // nondeterminism was detected.
    if args.inject.as_deref() == Some("nondet-exec") {
        let r = mpisim_check::crossval_exec(args.execs.max(1), true);
        println!(
            "mpisim-check: nondet-exec self-test, {} points ({} per family), {} runs, \
             {} divergence(s) over {} point(s)",
            r.programs,
            args.execs.max(1),
            r.runs,
            r.diverged,
            r.detected
        );
        return if r.detected > 0 {
            println!(
                "self-test passed: the planted nondeterministic tie-break was caught by \
                 the execution-mode comparison"
            );
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "self-test failed: planted kernel nondeterminism produced no observable \
                 divergence — the determinism cross-check is blind"
            );
            ExitCode::FAILURE
        };
    }

    // `--inject bad-rewrite` is the slack-rewriter self-test: the sound
    // rewrite is applied, then one synchronization statement is deleted
    // outright; the differential comparison (runs, stalls, final memory)
    // must catch every planted program. Exit status inverts: 0 iff every
    // planted unsound rewrite was detected.
    if args.inject.as_deref() == Some("bad-rewrite") {
        let r = mpisim_check::crossval_rewrites(
            args.rewrites.max(1),
            mpisim_analyze::RewriteMode::PlantUnsound,
        );
        println!(
            "mpisim-check: bad-rewrite self-test, {} programs ({} per family), {} planted, \
             {} caught",
            r.programs,
            args.rewrites.max(1),
            r.planted,
            r.planted_detected
        );
        return if r.failures.is_empty() && r.planted > 0 && r.planted_detected == r.planted {
            println!(
                "self-test passed: every planted unsound relaxation was caught by the \
                 differential check"
            );
            ExitCode::SUCCESS
        } else {
            for f in &r.failures {
                eprintln!("  {f}");
            }
            eprintln!(
                "self-test failed: {}/{} planted rewrites caught, {} other failure(s)",
                r.planted_detected,
                r.planted,
                r.failures.len()
            );
            ExitCode::FAILURE
        };
    }

    // `--inject bad-recovery` is the crash-recovery self-test: every crash
    // run restores the crashed rank from a deliberately stale checkpoint
    // (redo-log replay skipped), and the differential comparison against
    // the oracle must observe the divergence. Exit status inverts: 0 iff
    // every planted stale restore was detected.
    if args.inject.as_deref() == Some("bad-recovery") {
        let r = mpisim_check::crossval_recovery_bad(args.recoveries.max(1));
        println!(
            "mpisim-check: bad-recovery self-test, {} programs ({} per family), {} runs, \
             {} planted stale restore(s) ({} vacuous skipped), {} caught",
            r.programs,
            args.recoveries.max(1),
            r.runs,
            r.planted,
            r.vacuous,
            r.planted_detected
        );
        return if r.failures.is_empty() && r.planted > 0 && r.planted_detected == r.planted {
            println!(
                "self-test passed: every planted stale restore diverged from the oracle \
                 and was caught by the differential check"
            );
            ExitCode::SUCCESS
        } else {
            for f in &r.failures {
                eprintln!("  {f}");
            }
            eprintln!(
                "self-test failed: {}/{} planted stale restores caught, {} other failure(s)",
                r.planted_detected,
                r.planted,
                r.failures.len()
            );
            ExitCode::FAILURE
        };
    }

    println!(
        "mpisim-check: {} programs/family x {} schedules x {} matrix points{}{}",
        args.programs,
        args.seeds,
        mpisim_check::MATRIX.len(),
        match &args.inject {
            Some(f) => format!("  [injecting fault: {f}]"),
            None => String::new(),
        },
        match &args.faults {
            Some(p) => format!("  [fault plan: {p}, reliability sublayer + watchdog ON]"),
            None => String::new(),
        }
    );

    let mut opts = VerifyOpts {
        static_analysis: true,
        races: args.race_detect,
        ..VerifyOpts::default()
    };
    // A storm name under --inject is a *network* self-test: batter the
    // interconnect with the sublayer off and require a detected failure.
    // Everything else under --inject is an engine fault passed through to
    // the job config.
    let mut engine_fault = None;
    if let Some(name) = &args.inject {
        match canonical_plan(name) {
            Some(plan) => opts.fault_plan = Some(plan),
            None => engine_fault = Some(name.clone()),
        }
    }
    if let Some(plan) = &args.faults {
        opts.fault_plan = canonical_plan(plan);
        opts.reliable = true;
    }
    let mut total_runs = 0;
    let mut all_failures = Vec::new();
    for family in Family::ALL {
        let report = sweep_family_with(family, args.programs, args.seeds, &engine_fault, opts);
        println!(
            "  {:<18} {:>4} runs, {:>2} schedules/program: {}",
            family.label(),
            report.runs,
            report.schedules,
            if report.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("{} FAILURE(S)", report.failures.len())
            }
        );
        total_runs += report.runs;
        all_failures.extend(report.failures);
    }
    // Deadlock cross-validation rides along with every clean sweep (it is
    // meaningless under injected faults or lossy plans, which perturb the
    // dynamics the watchdog oracle observes).
    let mut crossval_failures = Vec::new();
    if args.inject.is_none() && args.faults.is_none() && args.deadlocks > 0 {
        let r = mpisim_check::crossval_deadlocks(args.deadlocks);
        println!(
            "  {:<18} {:>4} flagged + {} clean watchdog runs: {}",
            "deadlock-crossval",
            r.flagged_runs,
            r.clean_runs,
            if r.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("{} DISAGREEMENT(S)", r.failures.len())
            }
        );
        total_runs += r.flagged_runs + r.clean_runs;
        crossval_failures = r.failures;
    }
    // The execution-mode determinism sweep rides along with clean sweeps:
    // pooled fiber execution must be indistinguishable from the
    // thread-per-rank baseline on every replayed point.
    if args.inject.is_none() && args.faults.is_none() && args.execs > 0 {
        let r = mpisim_check::crossval_exec(args.execs, false);
        println!(
            "  {:<18} {:>4} points x 3 exec modes ({} runs): {}",
            "exec-crossval",
            r.programs,
            r.runs,
            if r.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("{} DIVERGENCE(S)", r.failures.len())
            }
        );
        total_runs += r.runs;
        crossval_failures.extend(r.failures);
    }
    // The rewrite-equivalence sweep also rides along with clean sweeps:
    // every program the slack rewriter fires on must stay equivalent,
    // E-clean, and strictly cheaper in blocked host work.
    if args.inject.is_none() && args.faults.is_none() && args.rewrites > 0 {
        let r = mpisim_check::crossval_rewrites(
            args.rewrites,
            mpisim_analyze::RewriteMode::Sound,
        );
        println!(
            "  {:<18} {:>4} programs, {} rewritten, {} points, {} blocked steps saved: {}",
            "slack-rewrite",
            r.programs,
            r.fired,
            r.points,
            r.blocked_steps_saved,
            if r.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("{} VIOLATION(S)", r.failures.len())
            }
        );
        total_runs += r.points * 2;
        crossval_failures.extend(r.failures);
    }
    // The crash-recovery sweep rides along with clean sweeps too: sampled
    // (rank, commit) crash points, with and without a lossy plan stacked
    // on top, must all converge to the oracle with healthy recoveries.
    if args.inject.is_none() && args.faults.is_none() && args.recoveries > 0 {
        let r = mpisim_check::crossval_recovery(args.recoveries);
        println!(
            "  {:<18} {:>4} crash points over {} programs ({} runs, {} recovered, \
             {} E012-relaxation checks): {}",
            "crash-recovery",
            r.crash_points,
            r.programs,
            r.runs,
            r.recovered,
            r.e012_checks,
            if r.failures.is_empty() {
                "ok".to_string()
            } else {
                format!("{} FAILURE(S)", r.failures.len())
            }
        );
        total_runs += r.runs;
        crossval_failures.extend(r.failures);
    }
    println!(
        "total: {total_runs} runs, {} failure(s)",
        all_failures.len() + crossval_failures.len()
    );
    for f in &crossval_failures {
        println!("crossval: {f}");
    }

    if let Some(first) = all_failures.first() {
        println!("\nfirst failure ({}):\n{}", first.spec.to_rust(), first.failure);
        println!("\nshrinking…");
        let (p, s) = shrink(&first.program, &first.spec);
        println!("minimized to weight {} — reproducer:\n", p.weight());
        println!("{}", reproducer(&p, &s));
    }

    match (&args.inject, all_failures.is_empty() && crossval_failures.is_empty()) {
        // Clean sweep requested, clean result.
        (None, true) => ExitCode::SUCCESS,
        (None, false) => ExitCode::FAILURE,
        // Self-test: the injected bug MUST be caught.
        (Some(f), true) => {
            eprintln!("self-test failed: injected fault {f:?} was not detected");
            ExitCode::FAILURE
        }
        (Some(f), false) => {
            println!("self-test passed: injected fault {f:?} was detected and shrunk");
            ExitCode::SUCCESS
        }
    }
}
