//! Drive one generated program through the real runtime under one point of
//! the exploration matrix: strategy × API flavour × network perturbation ×
//! tie-break seed, with tracing always on so every run can be audited.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};

use mpisim_core::{
    run_job, Datatype, ExecMode, Group, JobConfig, JobReport, LockKind, Rank, RecoveryCfg,
    ReduceOp, RmaResult, SyncStrategy, WinInfo,
};
use mpisim_net::NetParams;
use mpisim_sim::SimTime;

use crate::program::{Epoch, Op, Program, StormRounds, MULTI_WIN_BYTES, WIN_BYTES};

/// One point of the exploration matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSpec {
    /// Engine strategy.
    pub strategy: SyncStrategy,
    /// Close every epoch with the `i`-routines and wait at the end.
    pub nonblocking: bool,
    /// Index into [`NetParams::perturbation_profile`] (latency jitter ×
    /// credit starvation grid).
    pub net_profile: u64,
    /// Kernel tie-break perturbation (`None` = FIFO).
    pub tiebreak_seed: Option<u64>,
    /// Simulation seed.
    pub sim_seed: u64,
    /// Injected engine fault (`None` = none). Always passed explicitly to
    /// the job so the `MPISIM_CHECK_INJECT` env fallback never interferes
    /// with harness runs.
    pub fault: Option<String>,
    /// Named network fault plan ([`mpisim_net::FaultPlan::by_name`],
    /// seeded from `sim_seed`). When set, every rank is placed on its own
    /// node so the plan's internode faults actually strike the traffic.
    pub fault_plan: Option<String>,
    /// Run with the ack/retransmit reliability sublayer and the epoch
    /// stall watchdog on. Required for clean runs under any lossy
    /// `fault_plan`; left off in storm self-tests to prove the harness
    /// detects unprotected fault damage.
    pub reliable: bool,
    /// Crash one rank at one epoch-commit point: `(rank, commit)` crashes
    /// the rank's NIC the moment it completes its `commit`-th epoch commit
    /// (1-based, rank-wide ordinal). Setting this arms the full recovery
    /// stack: checkpointing, the reliability sublayer, the watchdog, and
    /// one-rank-per-node placement (a crash must cut real internode
    /// traffic).
    pub crash_at: Option<(usize, u64)>,
    /// Validation backdoor for the `--inject bad-recovery` self-test:
    /// checkpoint only at window allocation and restore the crashed rank
    /// *without* redo-log replay, so the restored window is deliberately
    /// stale and the differential check must observe the divergence.
    pub bad_recovery: bool,
}

impl RunSpec {
    /// The unperturbed baseline point.
    pub fn baseline(strategy: SyncStrategy, nonblocking: bool) -> Self {
        RunSpec {
            strategy,
            nonblocking,
            net_profile: 0,
            tiebreak_seed: None,
            sim_seed: 7,
            fault: None,
            fault_plan: None,
            reliable: false,
            crash_at: None,
            bad_recovery: false,
        }
    }

    /// Render as a Rust expression (for generated reproducer tests).
    pub fn to_rust(&self) -> String {
        let strategy = match self.strategy {
            SyncStrategy::LazyBaseline => "SyncStrategy::LazyBaseline",
            SyncStrategy::Redesigned => "SyncStrategy::Redesigned",
        };
        let fault = match &self.fault {
            Some(f) => format!("Some({f:?}.to_string())"),
            None => "None".into(),
        };
        let fault_plan = match &self.fault_plan {
            Some(p) => format!("Some({p:?}.to_string())"),
            None => "None".into(),
        };
        format!(
            "RunSpec {{\n        strategy: {strategy},\n        nonblocking: {},\n        \
             net_profile: {},\n        tiebreak_seed: {:?},\n        sim_seed: {},\n        \
             fault: {fault},\n        fault_plan: {fault_plan},\n        reliable: {},\n        \
             crash_at: {:?},\n        bad_recovery: {},\n    }}",
            self.nonblocking,
            self.net_profile,
            self.tiebreak_seed,
            self.sim_seed,
            self.reliable,
            self.crash_at,
            self.bad_recovery
        )
    }
}

/// What a successful run produced.
#[derive(Debug)]
pub struct RunOutcome {
    /// Final window bytes per rank.
    pub mems: Vec<Vec<u8>>,
    /// Get results in program order (single-origin programs).
    pub gets: Vec<Vec<u8>>,
    /// The full job report (traces, stats) for auditing.
    pub report: JobReport,
}

/// How a run failed before producing a result.
#[derive(Clone, Debug)]
pub enum RunFailure {
    /// The simulation deadlocked (or hit the event cap).
    Deadlock(String),
    /// A rank panicked (failed assertion, engine invariant, …).
    Panic(String),
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFailure::Deadlock(m) => write!(f, "deadlock: {m}"),
            RunFailure::Panic(m) => write!(f, "panic: {m}"),
        }
    }
}

/// Kernel execution-mode overrides for the determinism cross-check.
/// Orthogonal to [`RunSpec`]: every matrix point can be replayed under any
/// exec mode, and the results must be indistinguishable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecOpts {
    /// How rank processes execute (thread-per-rank vs pooled fibers).
    pub exec: ExecMode,
    /// Plant the kernel's deliberately nondeterministic tie-break
    /// (validation backdoor) — the cross-check must then *fail*.
    pub nondet_tiebreak: bool,
}

fn job_config(n_ranks: usize, spec: &RunSpec, trace: bool, eo: ExecOpts) -> JobConfig {
    let mut cfg = JobConfig::new(n_ranks).with_seed(spec.sim_seed).with_strategy(spec.strategy);
    cfg.net = NetParams::perturbation_profile(spec.net_profile);
    cfg.tiebreak_seed = spec.tiebreak_seed;
    cfg.trace = trace;
    cfg.exec = eo.exec;
    cfg.nondet_tiebreak = eo.nondet_tiebreak;
    // `Some("")` disables the env-var fallback: harness runs are hermetic.
    cfg.fault = Some(spec.fault.clone().unwrap_or_default());
    if let Some(plan) = &spec.fault_plan {
        // One rank per node: the default 16-cores-per-node placement would
        // keep every channel intranode, where the fault model (and the
        // sublayer's framing) never applies.
        cfg.cores_per_node = 1;
        cfg.net.faults = Some(
            mpisim_net::FaultPlan::by_name(plan, spec.sim_seed)
                .unwrap_or_else(|| panic!("unknown fault plan {plan:?}")),
        );
    }
    if spec.reliable {
        cfg = cfg.with_reliability().with_watchdog(SimTime::from_millis(20));
    }
    if let Some((rank, commit)) = spec.crash_at {
        // A crash must sever real internode traffic, so placement follows
        // the fault-plan rule: one rank per node.
        cfg.cores_per_node = 1;
        // The recovery stack rides on the reliability sublayer (the
        // outage is bridged by retransmission) and needs a watchdog
        // budget comfortably above the restart outage.
        cfg = cfg.with_reliability().with_watchdog(SimTime::from_millis(50));
        cfg.recovery = Some(RecoveryCfg {
            // Healthy mode checkpoints at every commit. The bad-recovery
            // self-test keeps only the win_allocate baseline, so the redo
            // log at crash time is maximal and skipping its replay
            // guarantees a stale window.
            ckpt_every: if spec.bad_recovery { u64::MAX } else { 1 },
            plant_stale: spec.bad_recovery,
            ..RecoveryCfg::default()
        });
        cfg.net
            .faults
            .get_or_insert_with(|| mpisim_net::FaultPlan::none(spec.sim_seed))
            .crash_at_commit
            .push((mpisim_net::Rank(rank), commit));
    }
    cfg
}

fn issue(
    env: &mpisim_core::RankEnv,
    win: mpisim_core::WinId,
    ops: &[Op],
    gets: &mut Vec<mpisim_core::Req>,
) -> RmaResult<()> {
    for op in ops {
        match op {
            Op::Put { target, disp, val, len } => {
                env.put(win, Rank(*target), *disp, &vec![*val; *len])?;
            }
            Op::AccSum { target, slot, operand } => {
                env.accumulate(
                    win,
                    Rank(*target),
                    slot * 8,
                    Datatype::U64,
                    ReduceOp::Sum,
                    &operand.to_le_bytes(),
                )?;
            }
            Op::Get { target, disp, len } => {
                gets.push(env.get(win, Rank(*target), *disp, *len)?);
            }
        }
    }
    Ok(())
}

fn execute_single_origin(
    n_ranks: usize,
    reorder: bool,
    epochs: Arc<Vec<Epoch>>,
    spec: &RunSpec,
    trace: bool,
    eo: ExecOpts,
) -> Result<RunOutcome, RunFailure> {
    let nonblocking = spec.nonblocking;
    let mems = Arc::new(Mutex::new(vec![Vec::new(); n_ranks]));
    let gets = Arc::new(Mutex::new(Vec::new()));
    let (m2, g2) = (mems.clone(), gets.clone());
    let info = if reorder { WinInfo::all_reorder() } else { WinInfo::default() };

    let report = run_guarded(job_config(n_ranks, spec, trace, eo), move |env| {
        let me = env.rank().idx();
        let win = env.win_allocate_with(WIN_BYTES, info).unwrap();
        env.barrier().unwrap();
        if me == 0 {
            let mut pending = Vec::new();
            let mut get_reqs = Vec::new();
            for e in epochs.iter() {
                match e {
                    Epoch::Fence(ops) => {
                        env.fence(win).unwrap();
                        issue(env, win, ops, &mut get_reqs).unwrap();
                        if nonblocking {
                            pending.push(env.ifence(win).unwrap());
                        } else {
                            env.fence(win).unwrap();
                        }
                    }
                    Epoch::Gats(ops) => {
                        env.start(win, Group::new(1..n_ranks)).unwrap();
                        issue(env, win, ops, &mut get_reqs).unwrap();
                        if nonblocking {
                            pending.push(env.icomplete(win).unwrap());
                        } else {
                            env.complete(win).unwrap();
                        }
                    }
                    Epoch::Lock { target, ops } => {
                        env.lock(win, Rank(*target), LockKind::Exclusive).unwrap();
                        issue(env, win, ops, &mut get_reqs).unwrap();
                        if nonblocking {
                            pending.push(env.iunlock(win, Rank(*target)).unwrap());
                        } else {
                            env.unlock(win, Rank(*target)).unwrap();
                        }
                    }
                    Epoch::LockAll(ops) => {
                        env.lock_all(win).unwrap();
                        issue(env, win, ops, &mut get_reqs).unwrap();
                        if nonblocking {
                            pending.push(env.iunlock_all(win).unwrap());
                        } else {
                            env.unlock_all(win).unwrap();
                        }
                    }
                }
            }
            env.wait_all(pending).unwrap();
            let mut out = Vec::new();
            for r in get_reqs {
                out.push(env.wait_data(r).unwrap().to_vec());
            }
            *g2.lock().unwrap() = out;
        } else {
            // Targets: join every fence phase, expose for every GATS epoch.
            for e in epochs.iter() {
                match e {
                    Epoch::Fence(_) => {
                        env.fence(win).unwrap();
                        env.fence(win).unwrap();
                    }
                    Epoch::Gats(_) => {
                        env.post(win, Group::single(Rank(0))).unwrap();
                        env.wait_epoch(win).unwrap();
                    }
                    _ => {}
                }
            }
        }
        env.barrier().unwrap();
        m2.lock().unwrap()[me] = env.read_local(win, 0, WIN_BYTES).unwrap();
        env.win_free(win).unwrap();
    })?;
    let mems = mems.lock().unwrap().clone();
    let gets = gets.lock().unwrap().clone();
    Ok(RunOutcome { mems, gets, report })
}

fn execute_multi_origin(
    n_ranks: usize,
    plan: Arc<Vec<Vec<(usize, usize, u64)>>>,
    spec: &RunSpec,
    trace: bool,
    eo: ExecOpts,
) -> Result<RunOutcome, RunFailure> {
    let nonblocking = spec.nonblocking;
    let mems = Arc::new(Mutex::new(vec![Vec::new(); n_ranks]));
    let m2 = mems.clone();

    let report = run_guarded(job_config(n_ranks, spec, trace, eo), move |env| {
        let me = env.rank().idx();
        let win = env.win_allocate_with(MULTI_WIN_BYTES, WinInfo::aaar()).unwrap();
        env.barrier().unwrap();
        let mut pend = Vec::new();
        for (target, slot, v) in &plan[me] {
            if nonblocking {
                // The dummy epoch-open request completes at creation but
                // must still be consumed via test/wait (§VII.C).
                pend.push(env.ilock(win, Rank(*target), LockKind::Exclusive).unwrap());
            } else {
                env.lock(win, Rank(*target), LockKind::Exclusive).unwrap();
            }
            env.accumulate(
                win,
                Rank(*target),
                slot * 8,
                Datatype::U64,
                ReduceOp::Sum,
                &v.to_le_bytes(),
            )
            .unwrap();
            if nonblocking {
                pend.push(env.iunlock(win, Rank(*target)).unwrap());
            } else {
                env.unlock(win, Rank(*target)).unwrap();
            }
            env.compute(SimTime::from_nanos(((me as u64) * 97 + 13) % 500));
        }
        env.wait_all(pend).unwrap();
        env.barrier().unwrap();
        m2.lock().unwrap()[me] = env.read_local(win, 0, MULTI_WIN_BYTES).unwrap();
        env.win_free(win).unwrap();
    })?;
    let mems = mems.lock().unwrap().clone();
    Ok(RunOutcome { mems, gets: Vec::new(), report })
}

fn execute_lock_all_storm(
    n_ranks: usize,
    rounds: Arc<StormRounds>,
    spec: &RunSpec,
    trace: bool,
    eo: ExecOpts,
) -> Result<RunOutcome, RunFailure> {
    let nonblocking = spec.nonblocking;
    let mems = Arc::new(Mutex::new(vec![Vec::new(); n_ranks]));
    let m2 = mems.clone();

    let report = run_guarded(job_config(n_ranks, spec, trace, eo), move |env| {
        let me = env.rank().idx();
        let win = env.win_allocate_with(MULTI_WIN_BYTES, WinInfo::default()).unwrap();
        env.barrier().unwrap();
        let mut pend = Vec::new();
        for accs in &rounds[me] {
            if nonblocking {
                pend.push(env.ilock_all(win).unwrap());
            } else {
                env.lock_all(win).unwrap();
            }
            for (target, slot, v) in accs {
                env.accumulate(
                    win,
                    Rank(*target),
                    slot * 8,
                    Datatype::U64,
                    ReduceOp::Sum,
                    &v.to_le_bytes(),
                )
                .unwrap();
            }
            if nonblocking {
                pend.push(env.iunlock_all(win).unwrap());
            } else {
                env.unlock_all(win).unwrap();
            }
            env.compute(SimTime::from_nanos(((me as u64) * 131 + 29) % 400));
        }
        env.wait_all(pend).unwrap();
        env.barrier().unwrap();
        m2.lock().unwrap()[me] = env.read_local(win, 0, MULTI_WIN_BYTES).unwrap();
        env.win_free(win).unwrap();
    })?;
    let mems = mems.lock().unwrap().clone();
    Ok(RunOutcome { mems, gets: Vec::new(), report })
}

fn execute_multi_window(
    n_ranks: usize,
    n_wins: usize,
    epochs: Arc<Vec<(usize, Epoch)>>,
    spec: &RunSpec,
    trace: bool,
    eo: ExecOpts,
) -> Result<RunOutcome, RunFailure> {
    let nonblocking = spec.nonblocking;
    let mems = Arc::new(Mutex::new(vec![Vec::new(); n_ranks]));
    let gets = Arc::new(Mutex::new(Vec::new()));
    let (m2, g2) = (mems.clone(), gets.clone());

    let report = run_guarded(job_config(n_ranks, spec, trace, eo), move |env| {
        let me = env.rank().idx();
        // `win_allocate_with` is collective, so sequential allocation
        // yields the same window ids on every rank.
        let wins: Vec<_> = (0..n_wins)
            .map(|_| env.win_allocate_with(WIN_BYTES, WinInfo::default()).unwrap())
            .collect();
        env.barrier().unwrap();
        if me == 0 {
            let mut pending = Vec::new();
            let mut get_reqs = Vec::new();
            for (w, e) in epochs.iter() {
                let win = wins[*w];
                match e {
                    Epoch::Fence(ops) => {
                        env.fence(win).unwrap();
                        issue(env, win, ops, &mut get_reqs).unwrap();
                        if nonblocking {
                            pending.push(env.ifence(win).unwrap());
                        } else {
                            env.fence(win).unwrap();
                        }
                    }
                    Epoch::Gats(ops) => {
                        env.start(win, Group::new(1..n_ranks)).unwrap();
                        issue(env, win, ops, &mut get_reqs).unwrap();
                        if nonblocking {
                            pending.push(env.icomplete(win).unwrap());
                        } else {
                            env.complete(win).unwrap();
                        }
                    }
                    Epoch::Lock { target, ops } => {
                        env.lock(win, Rank(*target), LockKind::Exclusive).unwrap();
                        issue(env, win, ops, &mut get_reqs).unwrap();
                        // The family's distinguishing feature: remote
                        // completion forced mid-epoch.
                        env.flush(win, Rank(*target)).unwrap();
                        if nonblocking {
                            pending.push(env.iunlock(win, Rank(*target)).unwrap());
                        } else {
                            env.unlock(win, Rank(*target)).unwrap();
                        }
                    }
                    Epoch::LockAll(ops) => {
                        env.lock_all(win).unwrap();
                        issue(env, win, ops, &mut get_reqs).unwrap();
                        if nonblocking {
                            pending.push(env.iunlock_all(win).unwrap());
                        } else {
                            env.unlock_all(win).unwrap();
                        }
                    }
                }
            }
            env.wait_all(pending).unwrap();
            let mut out = Vec::new();
            for r in get_reqs {
                out.push(env.wait_data(r).unwrap().to_vec());
            }
            *g2.lock().unwrap() = out;
        } else {
            for (w, e) in epochs.iter() {
                let win = wins[*w];
                match e {
                    Epoch::Fence(_) => {
                        env.fence(win).unwrap();
                        env.fence(win).unwrap();
                    }
                    Epoch::Gats(_) => {
                        env.post(win, Group::single(Rank(0))).unwrap();
                        env.wait_epoch(win).unwrap();
                    }
                    _ => {}
                }
            }
        }
        env.barrier().unwrap();
        let mut all = Vec::new();
        for w in &wins {
            all.extend(env.read_local(*w, 0, WIN_BYTES).unwrap());
        }
        m2.lock().unwrap()[me] = all;
        for w in wins {
            env.win_free(w).unwrap();
        }
    })?;
    let mems = mems.lock().unwrap().clone();
    let gets = gets.lock().unwrap().clone();
    Ok(RunOutcome { mems, gets, report })
}

/// `run_job` with both failure modes mapped into [`RunFailure`]: a
/// simulated deadlock surfaces as `Err(SimError)`, an engine/rank panic
/// unwinds through `sim.run()`.
fn run_guarded<F>(cfg: JobConfig, f: F) -> Result<JobReport, RunFailure>
where
    F: Fn(&mut mpisim_core::RankEnv) + Send + Sync + 'static,
{
    match catch_unwind(AssertUnwindSafe(|| run_job(cfg, f))) {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(e)) => Err(RunFailure::Deadlock(e.to_string())),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Err(RunFailure::Panic(msg))
        }
    }
}

/// Execute `program` under `spec` with the trace recorder attached.
pub fn execute(program: &Program, spec: &RunSpec) -> Result<RunOutcome, RunFailure> {
    execute_with_trace(program, spec, true)
}

/// Execute `program` under `spec`, choosing whether the trace recorder
/// is attached. `trace: false` is the lean production-shaped path: the
/// engine's tracing hooks must stay behind their branch-free guard and
/// the run must be observably identical (verdict, memories, counters)
/// to the full-trace run — see `tests/lean_trace.rs`.
pub fn execute_with_trace(
    program: &Program,
    spec: &RunSpec,
    trace: bool,
) -> Result<RunOutcome, RunFailure> {
    execute_exec(program, spec, trace, ExecOpts::default())
}

/// Execute `program` under `spec` with an explicit kernel execution mode.
/// The determinism cross-check replays the same (program, spec) point
/// under thread-per-rank and both pooled variants and requires the runs
/// to be byte-identical in everything observable.
pub fn execute_exec(
    program: &Program,
    spec: &RunSpec,
    trace: bool,
    eo: ExecOpts,
) -> Result<RunOutcome, RunFailure> {
    match program {
        Program::SingleOrigin { n_ranks, reorder, epochs } => {
            execute_single_origin(*n_ranks, *reorder, Arc::new(epochs.clone()), spec, trace, eo)
        }
        Program::MultiOrigin { n_ranks, plan } => {
            execute_multi_origin(*n_ranks, Arc::new(plan.clone()), spec, trace, eo)
        }
        Program::LockAllStorm { n_ranks, rounds } => {
            execute_lock_all_storm(*n_ranks, Arc::new(rounds.clone()), spec, trace, eo)
        }
        Program::MultiWindow { n_ranks, n_wins, epochs } => {
            execute_multi_window(*n_ranks, *n_wins, Arc::new(epochs.clone()), spec, trace, eo)
        }
    }
}

/// Execute an analyzer [`IrProgram`] directly against the runtime: every
/// rank walks its statement list, allocating the program's windows up
/// front and collecting nonblocking-close requests until the next
/// `WaitAll`. With `watchdog` set the stall watchdog is armed, so even a
/// deadlocking program terminates — degraded, with one
/// [`mpisim_core::StallReport`] per cancelled epoch — which is exactly
/// the property the deadlock cross-validation measures. Call results are
/// deliberately not unwrapped: statements after a cancelled epoch may
/// return protocol errors, and the interpreter's job is to keep walking.
pub fn exec_ir(
    p: &mpisim_analyze::IrProgram,
    watchdog: bool,
    sim_seed: u64,
) -> Result<mpisim_core::JobReport, RunFailure> {
    exec_ir_inner(p, watchdog, sim_seed, None, None)
}

/// [`exec_ir`] for the rewrite-equivalence validator: runs under an
/// explicit engine `strategy` and additionally captures every rank's
/// final window bytes (via a trailing barrier + local read, so all
/// in-flight operations have landed). The memory capture is what makes
/// the original-vs-rewritten differential comparison possible for IR
/// programs.
pub fn exec_ir_with(
    p: &mpisim_analyze::IrProgram,
    watchdog: bool,
    sim_seed: u64,
    strategy: SyncStrategy,
) -> Result<(Vec<Vec<u8>>, mpisim_core::JobReport), RunFailure> {
    let mems = Arc::new(Mutex::new(vec![Vec::new(); p.n_ranks]));
    let report = exec_ir_inner(p, watchdog, sim_seed, Some(strategy), Some(mems.clone()))?;
    let mems = mems.lock().unwrap().clone();
    Ok((mems, report))
}

fn exec_ir_inner(
    p: &mpisim_analyze::IrProgram,
    watchdog: bool,
    sim_seed: u64,
    strategy: Option<SyncStrategy>,
    capture: Option<Arc<Mutex<Vec<Vec<u8>>>>>,
) -> Result<mpisim_core::JobReport, RunFailure> {
    let n_ranks = p.n_ranks;
    let mut cfg = JobConfig::new(n_ranks).with_seed(sim_seed);
    cfg.trace = true;
    cfg.fault = Some(String::new());
    if let Some(s) = strategy {
        cfg = cfg.with_strategy(s);
    }
    if watchdog {
        cfg = cfg.with_watchdog(SimTime::from_millis(20));
    }
    let prog = Arc::new(p.clone());
    run_guarded(cfg, move |env| {
        use mpisim_analyze::{Close, Stmt};
        /// Issue one value-producing read and block for its 8-byte result.
        fn fetch_value(
            env: &mpisim_core::RankEnv,
            w: mpisim_core::WinId,
            target: usize,
            disp: usize,
            kind: mpisim_analyze::FetchKind,
        ) -> Option<u64> {
            use mpisim_analyze::FetchKind as F;
            let req = match kind {
                F::Get => env.get(w, Rank(target), disp, 8),
                F::GetAcc(op) => {
                    env.get_accumulate(w, Rank(target), disp, Datatype::U64, op, &1u64.to_le_bytes())
                }
                F::FetchOp(op) => {
                    env.fetch_and_op(w, Rank(target), disp, Datatype::U64, op, &1u64.to_le_bytes())
                }
            }
            .ok()?;
            let bytes = env.wait_data(req).ok()?;
            let mut buf = [0u8; 8];
            let n = bytes.len().min(8);
            buf[..n].copy_from_slice(&bytes[..n]);
            Some(u64::from_le_bytes(buf))
        }
        let me = env.rank().idx();
        let info = if prog.reorder { WinInfo::all_reorder() } else { WinInfo::default() };
        let wins: Vec<_> = prog
            .windows
            .iter()
            .map(|bytes| env.win_allocate_with(*bytes, info).unwrap())
            .collect();
        let mut pending: Vec<mpisim_core::Req> = Vec::new();
        // Value locals: binding provenance (win, target, disp, kind) plus
        // the last value fetched into the local.
        let mut locals: std::collections::BTreeMap<
            usize,
            (usize, usize, usize, mpisim_analyze::FetchKind, u64),
        > = std::collections::BTreeMap::new();
        let nb = |res: RmaResult<mpisim_core::Req>, pending: &mut Vec<mpisim_core::Req>| {
            if let Ok(r) = res {
                pending.push(r);
            }
        };
        for stmt in &prog.ranks[me] {
            match stmt {
                Stmt::Fence { win, close } => match close {
                    Close::Blocking => {
                        let _ = env.fence(wins[*win]);
                    }
                    Close::Nonblocking => nb(env.ifence(wins[*win]), &mut pending),
                },
                Stmt::Start { win, group } => {
                    let _ = env.start(wins[*win], Group::new(group.iter().copied()));
                }
                Stmt::Complete { win, close } => match close {
                    Close::Blocking => {
                        let _ = env.complete(wins[*win]);
                    }
                    Close::Nonblocking => nb(env.icomplete(wins[*win]), &mut pending),
                },
                Stmt::Post { win, group } => {
                    let _ = env.post(wins[*win], Group::new(group.iter().copied()));
                }
                Stmt::WaitEpoch { win, close } => match close {
                    Close::Blocking => {
                        let _ = env.wait_epoch(wins[*win]);
                    }
                    Close::Nonblocking => nb(env.iwait(wins[*win]), &mut pending),
                },
                Stmt::Lock { win, target, exclusive, nonblocking } => {
                    let kind = if *exclusive { LockKind::Exclusive } else { LockKind::Shared };
                    if *nonblocking {
                        nb(env.ilock(wins[*win], Rank(*target), kind), &mut pending);
                    } else {
                        let _ = env.lock(wins[*win], Rank(*target), kind);
                    }
                }
                Stmt::Unlock { win, target, close } => match close {
                    Close::Blocking => {
                        let _ = env.unlock(wins[*win], Rank(*target));
                    }
                    Close::Nonblocking => nb(env.iunlock(wins[*win], Rank(*target)), &mut pending),
                },
                Stmt::LockAll { win } => {
                    let _ = env.lock_all(wins[*win]);
                }
                Stmt::UnlockAll { win, close } => match close {
                    Close::Blocking => {
                        let _ = env.unlock_all(wins[*win]);
                    }
                    Close::Nonblocking => nb(env.iunlock_all(wins[*win]), &mut pending),
                },
                Stmt::Flush { win, target, local_only, close } => {
                    let w = wins[*win];
                    match (close, target, local_only) {
                        (Close::Blocking, Some(t), false) => {
                            let _ = env.flush(w, Rank(*t));
                        }
                        (Close::Blocking, Some(t), true) => {
                            let _ = env.flush_local(w, Rank(*t));
                        }
                        (Close::Blocking, None, false) => {
                            let _ = env.flush_all(w);
                        }
                        (Close::Blocking, None, true) => {
                            let _ = env.flush_local_all(w);
                        }
                        (Close::Nonblocking, Some(t), false) => {
                            nb(env.iflush(w, Rank(*t)), &mut pending);
                        }
                        (Close::Nonblocking, Some(t), true) => {
                            nb(env.iflush_local(w, Rank(*t)), &mut pending);
                        }
                        (Close::Nonblocking, None, false) => {
                            nb(env.iflush_all(w), &mut pending);
                        }
                        (Close::Nonblocking, None, true) => {
                            nb(env.iflush_local_all(w), &mut pending);
                        }
                    }
                }
                Stmt::Put { win, target, disp, len } => {
                    let _ = env.put(wins[*win], Rank(*target), *disp, &vec![0xabu8; *len]);
                }
                Stmt::Get { win, target, disp, len } => {
                    // The data request is intentionally dropped: the IR
                    // interpreter checks liveness, not values.
                    let _ = env.get(wins[*win], Rank(*target), *disp, *len);
                }
                Stmt::Acc { win, target, disp, len: _, op } => {
                    let _ = env.accumulate(
                        wins[*win],
                        Rank(*target),
                        *disp,
                        Datatype::U64,
                        *op,
                        &1u64.to_le_bytes(),
                    );
                }
                Stmt::ReadValue { win, target, disp, kind, local } => {
                    let v = fetch_value(env, wins[*win], *target, *disp, *kind).unwrap_or(0);
                    locals.insert(*local, (*win, *target, *disp, *kind, v));
                }
                Stmt::AccVal { win, target, disp, op, val } => {
                    let _ = env.accumulate(
                        wins[*win],
                        Rank(*target),
                        *disp,
                        Datatype::U64,
                        *op,
                        &val.to_le_bytes(),
                    );
                }
                Stmt::SpinUntil { local, expect } => {
                    // Bounded spin: re-fetch the bound slot until the
                    // expected value appears or the budget runs out. The
                    // budget (800 × 100µs = 80ms virtual) sits comfortably
                    // past twice the 20ms watchdog window, so a doomed
                    // spin stalls its peers hard enough for the watchdog
                    // to act while the run itself still terminates.
                    if let Some((win, target, disp, kind, mut v)) = locals.get(local).copied() {
                        let mut spins = 0u32;
                        while v != *expect && spins < 800 {
                            env.compute(SimTime::from_micros(100));
                            v = fetch_value(env, wins[win], target, disp, kind).unwrap_or(v);
                            spins += 1;
                        }
                        if let Some(slot) = locals.get_mut(local) {
                            slot.4 = v;
                        }
                    }
                }
                Stmt::WaitAll => {
                    let _ = env.wait_all(pending.drain(..));
                }
                Stmt::Barrier => {
                    let _ = env.barrier();
                }
            }
        }
        let _ = env.wait_all(pending.drain(..));
        if let Some(mems) = &capture {
            let _ = env.barrier();
            let mut all = Vec::new();
            for (i, w) in wins.iter().enumerate() {
                all.extend(env.read_local(*w, 0, prog.windows[i]).unwrap_or_default());
            }
            mems.lock().unwrap()[me] = all;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{generate, oracle, Family};

    #[test]
    fn baseline_run_matches_oracle() {
        let p = generate(Family::MixedSerial, 0);
        let exp = oracle(&p);
        let out = execute(&p, &RunSpec::baseline(SyncStrategy::Redesigned, false)).unwrap();
        assert_eq!(out.mems[1..], exp.mems[1..]);
        assert_eq!(out.gets, exp.gets);
        assert!(!out.report.trace.is_empty(), "tracing must be on");
        assert!(out.report.live_requests == 0);
    }

    #[test]
    fn lock_all_storm_matches_oracle() {
        let p = generate(Family::LockAllStorm, 0);
        let exp = oracle(&p);
        for nb in [false, true] {
            let out = execute(&p, &RunSpec::baseline(SyncStrategy::Redesigned, nb)).unwrap();
            assert_eq!(out.mems, exp.mems, "nb={nb}");
            assert_eq!(out.report.live_requests, 0);
        }
    }

    #[test]
    fn spec_to_rust_mentions_every_field() {
        let s = RunSpec {
            strategy: SyncStrategy::LazyBaseline,
            nonblocking: true,
            net_profile: 5,
            tiebreak_seed: Some(3),
            sim_seed: 11,
            fault: Some("skip-grant".into()),
            fault_plan: Some("light-loss".into()),
            reliable: true,
            crash_at: Some((2, 4)),
            bad_recovery: true,
        };
        let src = s.to_rust();
        for needle in [
            "LazyBaseline",
            "nonblocking: true",
            "net_profile: 5",
            "Some(3)",
            "skip-grant",
            "light-loss",
            "reliable: true",
            "crash_at: Some((2, 4))",
            "bad_recovery: true",
        ] {
            assert!(src.contains(needle), "missing {needle} in {src}");
        }
    }
}
