//! Closed-loop cross-validation of the static deadlock analyzer against
//! the dynamic stall watchdog.
//!
//! The two layers claim opposite halves of the same property:
//!
//! * **Flagged side** — every program from the deadlock corpus
//!   ([`mpisim_analyze::NegFamily::DEADLOCKS`]) must (a) be rejected by
//!   the analyzer with its family's expected code, and (b) actually
//!   *stall* when executed: the run terminates only because the watchdog
//!   cancels at least one epoch, leaving ≥ 1
//!   [`mpisim_core::StallReport`] on the degradation list. An
//!   analyzer-flagged program that runs to completion cleanly would be a
//!   false positive of the whole-job passes.
//! * **Clean side** — every generated conformance program, lowered to IR,
//!   must be analyzer-clean and execute under the armed watchdog with
//!   **zero** stall degradations. An analyzer-clean program that stalls
//!   would be a false negative.
//!
//! Together the sweeps pin the analyzer's deadlock verdict to ground
//! truth the runtime itself produces, closing the loop the static layer
//! alone cannot: its wait-for graph is an abstraction, the watchdog's
//! cancellation is an observation.

use mpisim_analyze::{
    analyze, generate_negative, generate_value_clean, has_code, rewrite_with, NegFamily,
    RewriteMode,
};
use mpisim_core::{Degradation, ExecMode, SyncStrategy};

use crate::lower::lower;
use crate::program::{generate, Family};
use crate::run::{exec_ir, exec_ir_with, execute_exec, ExecOpts, RunFailure, RunOutcome, RunSpec};

/// Outcome of one cross-validation sweep.
#[derive(Clone, Debug, Default)]
pub struct CrossValReport {
    /// Deadlock-corpus programs checked (analyzer + watchdog).
    pub flagged_runs: u64,
    /// Clean conformance programs checked (analyzer + watchdog).
    pub clean_runs: u64,
    /// Human-readable description of every disagreement found.
    pub failures: Vec<String>,
}

fn stall_count(report: &mpisim_core::JobReport) -> usize {
    report
        .degradations
        .iter()
        .filter(|d| matches!(d, Degradation::EpochStall(_)))
        .count()
}

/// Flagged side: `seeds` generated programs per deadlock family must be
/// analyzer-rejected AND watchdog-cancelled at runtime.
pub fn crossval_flagged(seeds: u64, failures: &mut Vec<String>) -> u64 {
    let mut runs = 0;
    for family in NegFamily::DEADLOCKS {
        for seed in 0..seeds {
            runs += 1;
            let case = generate_negative(family, seed);
            let diags = analyze(&case.program);
            if !has_code(&diags, case.expect) {
                failures.push(format!(
                    "{family:?} seed {seed}: analyzer missed {} (got {diags:?})",
                    case.expect
                ));
                continue;
            }
            match exec_ir(&case.program, true, 7 + seed) {
                Ok(report) => {
                    if stall_count(&report) == 0 {
                        failures.push(format!(
                            "{family:?} seed {seed}: analyzer flagged {} but the run \
                             completed with zero stalls (static false positive?)",
                            case.expect
                        ));
                    }
                }
                Err(f) => failures.push(format!(
                    "{family:?} seed {seed}: watchdog failed to terminate the run: {f}"
                )),
            }
        }
    }
    runs
}

/// Clean side: `programs` generated programs per conformance family,
/// lowered under both close modes, must be analyzer-clean and run under
/// the armed watchdog without a single stall. The satisfiable twin of
/// the value-deadlock family (same spin shape, expectation matching the
/// published flag) rides along: the value domain must pass it statically
/// AND the bounded exec-side spin must observe the published value in
/// time, so the run finishes stall-free.
pub fn crossval_clean(programs: u64, failures: &mut Vec<String>) -> u64 {
    let mut runs = 0;
    for idx in 0..programs {
        runs += 1;
        let ir = generate_value_clean(idx);
        let diags = analyze(&ir);
        if !diags.is_empty() {
            failures.push(format!("value-clean #{idx}: satisfiable spin flagged: {diags:?}"));
            continue;
        }
        match exec_ir(&ir, true, 7 + idx) {
            Ok(report) => {
                let stalls = stall_count(&report);
                if stalls > 0 {
                    failures.push(format!(
                        "value-clean #{idx}: satisfiable spin stalled {stalls} time(s) \
                         (spin never saw the published flag?)"
                    ));
                }
            }
            Err(f) => failures.push(format!("value-clean #{idx}: IR run failed: {f}")),
        }
    }
    for family in Family::ALL {
        for idx in 0..programs {
            let program = generate(family, idx);
            for nonblocking in [false, true] {
                runs += 1;
                let ir = lower(&program, nonblocking);
                let diags = analyze(&ir);
                if !diags.is_empty() {
                    failures.push(format!(
                        "{family:?} #{idx} nb={nonblocking}: clean program flagged: {diags:?}"
                    ));
                    continue;
                }
                match exec_ir(&ir, true, 7 + idx) {
                    Ok(report) => {
                        let stalls = stall_count(&report);
                        if stalls > 0 {
                            failures.push(format!(
                                "{family:?} #{idx} nb={nonblocking}: analyzer-clean program \
                                 stalled {stalls} time(s) (static false negative?)"
                            ));
                        }
                    }
                    Err(f) => failures.push(format!(
                        "{family:?} #{idx} nb={nonblocking}: IR run failed: {f}"
                    )),
                }
            }
        }
    }
    runs
}

/// Run both sides: `seeds` programs per deadlock family on the flagged
/// side, and `max(1, seeds / 8)` programs per conformance family on the
/// clean side (the clean programs are bigger and already swept by the
/// main matrix; here they only feed the watchdog oracle).
pub fn crossval_deadlocks(seeds: u64) -> CrossValReport {
    let mut failures = Vec::new();
    let flagged_runs = crossval_flagged(seeds, &mut failures);
    let clean_runs = crossval_clean((seeds / 8).max(1), &mut failures);
    CrossValReport { flagged_runs, clean_runs, failures }
}

/// Outcome of one rewrite-equivalence sweep ([`crossval_rewrites`]).
#[derive(Clone, Debug, Default)]
pub struct RewriteValReport {
    /// Conformance programs examined (blocking-mode lowering).
    pub programs: u64,
    /// Programs where the rewriter fired (changed at least one call).
    pub fired: u64,
    /// Differential (strategy × seed) points compared.
    pub points: u64,
    /// Total `sync_blocked_steps` removed by the rewrites, over all
    /// compared points.
    pub blocked_steps_saved: u64,
    /// Total `sync_blocked_ns` removed, over all compared points.
    pub blocked_ns_saved: u64,
    /// `PlantUnsound` mode: planted rewrites the differential check
    /// caught (must equal the number planted).
    pub planted_detected: u64,
    /// `PlantUnsound` mode: rewrites planted.
    pub planted: u64,
    /// Human-readable description of every violation found.
    pub failures: Vec<String>,
}

/// The differential points every rewritten program is compared at.
const REWRITE_STRATEGIES: [SyncStrategy; 2] =
    [SyncStrategy::LazyBaseline, SyncStrategy::Redesigned];
const REWRITE_SEEDS: [u64; 2] = [7, 23];

/// The closed loop for the slack pass: for `programs` generated
/// conformance programs per family (lowered with blocking closes — the
/// shape that has slack), run the rewriter and require, on every program
/// where it fired:
///
/// * the rewritten program stays **analyzer-clean** (E001–E017);
/// * it is **differentially equivalent**: same final window bytes as the
///   original at every strategy × seed point, with zero watchdog stalls;
/// * it does **strictly less host-blocking work**: per point
///   `sync_blocked_steps` never increases, and summed over the points the
///   rewrite strictly reduces blocked steps (or, on a tie, strictly
///   reduces blocked virtual nanoseconds);
/// * it **never regresses virtual completion time**: per point the
///   rewritten run's `final_time` must not exceed the original's — the
///   end-to-end bound the cost model prices rewrites against.
///
/// With [`RewriteMode::PlantUnsound`] the rewriter additionally deletes
/// one synchronization statement after the sound rewrite; the sweep then
/// *requires* the differential check to catch every planted program (via
/// run failure, watchdog stall, or memory divergence) and reports the
/// catch rate — the exit-inverted self-test that proves the validator has
/// teeth. Static E-checks are deliberately skipped for planted programs:
/// detection must come from the differential side alone.
pub fn crossval_rewrites(programs: u64, mode: RewriteMode) -> RewriteValReport {
    let mut r = RewriteValReport::default();
    for family in Family::ALL {
        for idx in 0..programs {
            let program = generate(family, idx);
            let ir = lower(&program, false);
            if !analyze(&ir).is_empty() {
                r.failures.push(format!(
                    "{family:?} #{idx}: lowered conformance program is not analyzer-clean"
                ));
                continue;
            }
            r.programs += 1;
            let (rw, rep) = rewrite_with(&ir, mode);
            if !rep.changed() {
                continue;
            }
            r.fired += 1;
            let planted = rep.planted.is_some();
            if planted {
                r.planted += 1;
            }
            if !planted {
                let diags = analyze(&rw);
                if !diags.is_empty() {
                    r.failures.push(format!(
                        "{family:?} #{idx}: rewritten program lost E-cleanliness: {diags:?}"
                    ));
                    continue;
                }
            }
            let mut steps_orig = 0u64;
            let mut steps_rw = 0u64;
            let mut ns_orig = 0u64;
            let mut ns_rw = 0u64;
            let mut caught = false;
            let mut point_failure = false;
            for strategy in REWRITE_STRATEGIES {
                for seed in REWRITE_SEEDS {
                    r.points += 1;
                    let (m0, r0) = match exec_ir_with(&ir, true, seed, strategy) {
                        Ok(v) => v,
                        Err(f) => {
                            r.failures.push(format!(
                                "{family:?} #{idx} {strategy:?} seed {seed}: original program \
                                 failed to run: {f}"
                            ));
                            point_failure = true;
                            continue;
                        }
                    };
                    if stall_count(&r0) > 0 {
                        r.failures.push(format!(
                            "{family:?} #{idx} {strategy:?} seed {seed}: original program \
                             stalled"
                        ));
                        point_failure = true;
                        continue;
                    }
                    let (m1, r1) = match exec_ir_with(&rw, true, seed, strategy) {
                        Ok(v) => v,
                        Err(f) => {
                            if planted {
                                caught = true;
                                continue;
                            }
                            r.failures.push(format!(
                                "{family:?} #{idx} {strategy:?} seed {seed}: rewritten \
                                 program failed to run: {f}"
                            ));
                            point_failure = true;
                            continue;
                        }
                    };
                    if stall_count(&r1) > 0 || m0 != m1 {
                        if planted {
                            caught = true;
                            continue;
                        }
                        r.failures.push(format!(
                            "{family:?} #{idx} {strategy:?} seed {seed}: rewritten program \
                             diverged (stalls={}, mems_equal={})",
                            stall_count(&r1),
                            m0 == m1
                        ));
                        point_failure = true;
                        continue;
                    }
                    if planted {
                        continue;
                    }
                    let (s0, s1) =
                        (r0.engine.sync_blocked_steps, r1.engine.sync_blocked_steps);
                    let (n0, n1) = (r0.engine.sync_blocked_ns, r1.engine.sync_blocked_ns);
                    if s1 > s0 {
                        r.failures.push(format!(
                            "{family:?} #{idx} {strategy:?} seed {seed}: rewrite INCREASED \
                             sync_blocked_steps ({s0} -> {s1})"
                        ));
                        point_failure = true;
                        continue;
                    }
                    let (t0, t1) = (r0.final_time, r1.final_time);
                    if t1 > t0 {
                        r.failures.push(format!(
                            "{family:?} #{idx} {strategy:?} seed {seed}: rewrite REGRESSED \
                             virtual completion time ({t0:?} -> {t1:?})"
                        ));
                        point_failure = true;
                        continue;
                    }
                    steps_orig += s0;
                    steps_rw += s1;
                    ns_orig += n0;
                    ns_rw += n1;
                }
            }
            if planted {
                if caught {
                    r.planted_detected += 1;
                } else {
                    r.failures.push(format!(
                        "{family:?} #{idx}: planted unsound rewrite at {:?} was NOT caught \
                         by the differential check",
                        rep.planted
                    ));
                }
                continue;
            }
            if point_failure {
                continue;
            }
            let strictly_less =
                steps_rw < steps_orig || (steps_rw == steps_orig && ns_rw < ns_orig);
            if !strictly_less {
                r.failures.push(format!(
                    "{family:?} #{idx}: rewrite fired ({} relaxed, {} elided, {} localized) \
                     but saved no blocked work (steps {steps_orig} -> {steps_rw}, \
                     ns {ns_orig} -> {ns_rw})",
                    rep.relaxed, rep.elided, rep.localized
                ));
                continue;
            }
            r.blocked_steps_saved += steps_orig - steps_rw;
            r.blocked_ns_saved += ns_orig.saturating_sub(ns_rw);
        }
    }
    r
}

/// Outcome of one execution-mode determinism sweep ([`crossval_exec`]).
#[derive(Clone, Debug, Default)]
pub struct ExecValReport {
    /// (program, close-mode) points swept.
    pub programs: u64,
    /// Total executions (every point runs once per execution mode).
    pub runs: u64,
    /// Mode comparisons that diverged from the thread-per-rank baseline
    /// in any observable (verdict, memories, gets, stats, traces).
    pub diverged: u64,
    /// Points with at least one divergence. In plant mode this is the
    /// detection count the exit-inverted self-test keys on; in clean mode
    /// it must be zero.
    pub detected: u64,
    /// Human-readable description of every clean-mode divergence or
    /// run-level error.
    pub failures: Vec<String>,
}

/// The pooled variants compared against the thread-per-rank baseline:
/// inline fiber resume on the driver thread, and a 2-worker pool (the
/// smallest pool where fiber-to-worker assignment could matter).
const EXEC_VARIANTS: [ExecMode; 2] =
    [ExecMode::Pooled { workers: 0 }, ExecMode::Pooled { workers: 2 }];

/// Everything two same-seed runs may legally differ in: nothing. Returns
/// the names of the observables that diverged. Stats structs compare via
/// `Eq`; traces and per-rank timings compare via their `Debug` rendering,
/// which covers every field byte for byte.
fn exec_divergences(a: &RunOutcome, b: &RunOutcome) -> Vec<&'static str> {
    let mut d = Vec::new();
    if a.mems != b.mems {
        d.push("mems");
    }
    if a.gets != b.gets {
        d.push("gets");
    }
    if a.report.final_time != b.report.final_time {
        d.push("final-time");
    }
    if a.report.sim != b.report.sim {
        d.push("sim-stats");
    }
    if a.report.engine != b.report.engine {
        d.push("engine-stats");
    }
    if a.report.live_requests != b.report.live_requests {
        d.push("live-requests");
    }
    if format!("{:?}", a.report.ranks) != format!("{:?}", b.report.ranks) {
        d.push("rank-stats");
    }
    if format!("{:?}", a.report.trace) != format!("{:?}", b.report.trace) {
        d.push("trace");
    }
    if format!("{:?}", a.report.sync_trace) != format!("{:?}", b.report.sync_trace) {
        d.push("sync-trace");
    }
    if format!("{:?}", a.report.req_events) != format!("{:?}", b.report.req_events) {
        d.push("req-events");
    }
    d
}

/// Execution-mode determinism cross-check: `programs` conformance
/// programs per family, under both close modes, are executed under
/// thread-per-rank and both pooled variants ([`EXEC_VARIANTS`]), and the
/// three runs must be indistinguishable — same verdict, final memories,
/// get results, `SimStats`, `EngineStats`, per-rank timings, and all
/// three trace streams, byte for byte.
///
/// With `plant` set, every run additionally enables the kernel's
/// deliberately nondeterministic tie-break
/// (`Sim::set_nondet_tiebreak`), so same-seed runs genuinely diverge;
/// the sweep then *must* observe divergences (`detected > 0`) — the
/// exit-inverted self-test proving the cross-check would catch a
/// nondeterministic kernel rather than vacuously passing.
pub fn crossval_exec(programs: u64, plant: bool) -> ExecValReport {
    let mut r = ExecValReport::default();
    let fail = |res: &Result<RunOutcome, RunFailure>| match res {
        Ok(_) => None,
        Err(f) => Some(f.to_string()),
    };
    for family in Family::ALL {
        for idx in 0..programs {
            let program = generate(family, idx);
            for nonblocking in [false, true] {
                r.programs += 1;
                let spec = RunSpec {
                    sim_seed: 7 + idx,
                    ..RunSpec::baseline(SyncStrategy::Redesigned, nonblocking)
                };
                let base_eo =
                    ExecOpts { exec: ExecMode::ThreadPerRank, nondet_tiebreak: plant };
                r.runs += 1;
                let base = execute_exec(&program, &spec, true, base_eo);
                if let (Some(msg), false) = (fail(&base), plant) {
                    r.failures.push(format!(
                        "{family:?} #{idx} nb={nonblocking}: thread-per-rank run failed: {msg}"
                    ));
                    continue;
                }
                let mut point_diverged = false;
                for exec in EXEC_VARIANTS {
                    r.runs += 1;
                    let out = execute_exec(&program, &spec, true, ExecOpts {
                        exec,
                        nondet_tiebreak: plant,
                    });
                    let diverged: Vec<&str> = match (&base, &out) {
                        (Ok(a), Ok(b)) => exec_divergences(a, b),
                        (Err(a), Err(b)) if a.to_string() == b.to_string() => Vec::new(),
                        _ => vec!["verdict"],
                    };
                    if diverged.is_empty() {
                        continue;
                    }
                    r.diverged += 1;
                    point_diverged = true;
                    if !plant {
                        r.failures.push(format!(
                            "{family:?} #{idx} nb={nonblocking}: {exec:?} diverged from \
                             thread-per-rank in [{}]",
                            diverged.join(", ")
                        ));
                    }
                }
                if point_diverged {
                    r.detected += 1;
                }
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_crossval_sweep_agrees() {
        let r = crossval_deadlocks(3);
        assert_eq!(r.flagged_runs, 18, "6 deadlock families x 3 seeds");
        assert!(r.clean_runs >= 10, "5 families x >=1 program x 2 close modes");
        assert!(r.failures.is_empty(), "{:#?}", r.failures);
    }

    #[test]
    fn flagged_programs_stall_without_exception() {
        // Directly: a PSCW cycle must leave stall reports when executed.
        let case = generate_negative(NegFamily::PscwCycle, 0);
        let report = exec_ir(&case.program, true, 7).expect("watchdog must terminate the run");
        assert!(stall_count(&report) >= 1, "degradations: {:?}", report.degradations);
    }

    #[test]
    fn value_deadlock_stalls_and_satisfiable_twin_does_not() {
        // The doomed spin (expectation no write can produce) must stall
        // its peers hard enough for the watchdog to cancel; the
        // satisfiable twin must finish without a single stall.
        let case = generate_negative(NegFamily::ValueDeadlock, 0);
        let report = exec_ir(&case.program, true, 7).expect("watchdog must terminate the run");
        assert!(stall_count(&report) >= 1, "degradations: {:?}", report.degradations);

        let clean = generate_value_clean(0);
        assert!(analyze(&clean).is_empty());
        let report = exec_ir(&clean, true, 7).expect("satisfiable spin must finish");
        assert_eq!(stall_count(&report), 0, "degradations: {:?}", report.degradations);
    }

    #[test]
    fn rewrite_sweep_is_equivalent_and_cheaper() {
        let r = crossval_rewrites(2, RewriteMode::Sound);
        assert!(r.failures.is_empty(), "{:#?}", r.failures);
        assert!(r.fired >= 1, "rewriter never fired on {} programs", r.programs);
        assert!(
            r.blocked_steps_saved > 0,
            "equivalent rewrites must remove blocked parks (saved {} over {} points)",
            r.blocked_steps_saved,
            r.points
        );
    }

    #[test]
    fn exec_modes_are_indistinguishable_on_a_conformance_slice() {
        let r = crossval_exec(1, false);
        assert_eq!(r.programs, 10, "5 families x 1 program x 2 close modes");
        assert_eq!(r.runs, 30, "each point runs under 3 execution modes");
        assert!(r.failures.is_empty(), "{:#?}", r.failures);
        assert_eq!(r.diverged, 0);
    }

    #[test]
    fn planted_nondeterminism_is_caught_across_exec_modes() {
        // With the nondet tie-break planted, same-seed runs genuinely
        // diverge, and the cross-check must see it — otherwise a clean
        // sweep proves nothing.
        let r = crossval_exec(2, true);
        assert!(
            r.detected > 0,
            "nondet plant produced no observable divergence over {} points",
            r.programs
        );
        assert!(r.failures.is_empty(), "plant mode records no failures: {:#?}", r.failures);
    }

    #[test]
    fn planted_bad_rewrite_is_caught() {
        let r = crossval_rewrites(1, RewriteMode::PlantUnsound);
        assert!(r.failures.is_empty(), "{:#?}", r.failures);
        assert!(r.planted >= 1, "no program accepted a plant");
        assert_eq!(
            r.planted_detected, r.planted,
            "every planted unsound rewrite must be caught differentially"
        );
    }
}
