//! Closed-loop cross-validation of the static deadlock analyzer against
//! the dynamic stall watchdog.
//!
//! The two layers claim opposite halves of the same property:
//!
//! * **Flagged side** — every program from the deadlock corpus
//!   ([`mpisim_analyze::NegFamily::DEADLOCKS`]) must (a) be rejected by
//!   the analyzer with its family's expected code, and (b) actually
//!   *stall* when executed: the run terminates only because the watchdog
//!   cancels at least one epoch, leaving ≥ 1
//!   [`mpisim_core::StallReport`] on the degradation list. An
//!   analyzer-flagged program that runs to completion cleanly would be a
//!   false positive of the whole-job passes.
//! * **Clean side** — every generated conformance program, lowered to IR,
//!   must be analyzer-clean and execute under the armed watchdog with
//!   **zero** stall degradations. An analyzer-clean program that stalls
//!   would be a false negative.
//!
//! Together the sweeps pin the analyzer's deadlock verdict to ground
//! truth the runtime itself produces, closing the loop the static layer
//! alone cannot: its wait-for graph is an abstraction, the watchdog's
//! cancellation is an observation.

use mpisim_analyze::{analyze, generate_negative, has_code, NegFamily};
use mpisim_core::Degradation;

use crate::lower::lower;
use crate::program::{generate, Family};
use crate::run::exec_ir;

/// Outcome of one cross-validation sweep.
#[derive(Clone, Debug, Default)]
pub struct CrossValReport {
    /// Deadlock-corpus programs checked (analyzer + watchdog).
    pub flagged_runs: u64,
    /// Clean conformance programs checked (analyzer + watchdog).
    pub clean_runs: u64,
    /// Human-readable description of every disagreement found.
    pub failures: Vec<String>,
}

fn stall_count(report: &mpisim_core::JobReport) -> usize {
    report
        .degradations
        .iter()
        .filter(|d| matches!(d, Degradation::EpochStall(_)))
        .count()
}

/// Flagged side: `seeds` generated programs per deadlock family must be
/// analyzer-rejected AND watchdog-cancelled at runtime.
pub fn crossval_flagged(seeds: u64, failures: &mut Vec<String>) -> u64 {
    let mut runs = 0;
    for family in NegFamily::DEADLOCKS {
        for seed in 0..seeds {
            runs += 1;
            let case = generate_negative(family, seed);
            let diags = analyze(&case.program);
            if !has_code(&diags, case.expect) {
                failures.push(format!(
                    "{family:?} seed {seed}: analyzer missed {} (got {diags:?})",
                    case.expect
                ));
                continue;
            }
            match exec_ir(&case.program, true, 7 + seed) {
                Ok(report) => {
                    if stall_count(&report) == 0 {
                        failures.push(format!(
                            "{family:?} seed {seed}: analyzer flagged {} but the run \
                             completed with zero stalls (static false positive?)",
                            case.expect
                        ));
                    }
                }
                Err(f) => failures.push(format!(
                    "{family:?} seed {seed}: watchdog failed to terminate the run: {f}"
                )),
            }
        }
    }
    runs
}

/// Clean side: `programs` generated programs per conformance family,
/// lowered under both close modes, must be analyzer-clean and run under
/// the armed watchdog without a single stall.
pub fn crossval_clean(programs: u64, failures: &mut Vec<String>) -> u64 {
    let mut runs = 0;
    for family in Family::ALL {
        for idx in 0..programs {
            let program = generate(family, idx);
            for nonblocking in [false, true] {
                runs += 1;
                let ir = lower(&program, nonblocking);
                let diags = analyze(&ir);
                if !diags.is_empty() {
                    failures.push(format!(
                        "{family:?} #{idx} nb={nonblocking}: clean program flagged: {diags:?}"
                    ));
                    continue;
                }
                match exec_ir(&ir, true, 7 + idx) {
                    Ok(report) => {
                        let stalls = stall_count(&report);
                        if stalls > 0 {
                            failures.push(format!(
                                "{family:?} #{idx} nb={nonblocking}: analyzer-clean program \
                                 stalled {stalls} time(s) (static false negative?)"
                            ));
                        }
                    }
                    Err(f) => failures.push(format!(
                        "{family:?} #{idx} nb={nonblocking}: IR run failed: {f}"
                    )),
                }
            }
        }
    }
    runs
}

/// Run both sides: `seeds` programs per deadlock family on the flagged
/// side, and `max(1, seeds / 8)` programs per conformance family on the
/// clean side (the clean programs are bigger and already swept by the
/// main matrix; here they only feed the watchdog oracle).
pub fn crossval_deadlocks(seeds: u64) -> CrossValReport {
    let mut failures = Vec::new();
    let flagged_runs = crossval_flagged(seeds, &mut failures);
    let clean_runs = crossval_clean((seeds / 8).max(1), &mut failures);
    CrossValReport { flagged_runs, clean_runs, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_crossval_sweep_agrees() {
        let r = crossval_deadlocks(3);
        assert_eq!(r.flagged_runs, 15, "5 deadlock families x 3 seeds");
        assert!(r.clean_runs >= 10, "5 families x >=1 program x 2 close modes");
        assert!(r.failures.is_empty(), "{:#?}", r.failures);
    }

    #[test]
    fn flagged_programs_stall_without_exception() {
        // Directly: a PSCW cycle must leave stall reports when executed.
        let case = generate_negative(NegFamily::PscwCycle, 0);
        let report = exec_ir(&case.program, true, 7).expect("watchdog must terminate the run");
        assert!(stall_count(&report) >= 1, "degradations: {:?}", report.degradations);
    }
}
