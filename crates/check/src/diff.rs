//! Differential checking: every generated program is executed across the
//! full strategy × API matrix under a sweep of schedule perturbations, and
//! each run must (a) be clean under the static analyzer on the lowered
//! call sequence, (b) reproduce the sequential oracle byte for byte,
//! (c) pass the trace-invariant audit, and (d) be free of happens-before
//! races under the vector-clock detector.

use mpisim_analyze::{analyze, detect_races, Diagnostic, Race};
use mpisim_core::SyncStrategy;

use crate::audit::{audit, Violation};
use crate::lower::lower;
use crate::program::{generate, oracle, Family, Program};
use crate::run::{execute, RunFailure, RunSpec};

/// Why one run failed.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// The static analyzer rejected the lowered program before execution.
    Static(Vec<Diagnostic>),
    /// Final memory or get results differ from the sequential oracle.
    Divergence(String),
    /// The trace auditor found protocol violations.
    Violations(Vec<Violation>),
    /// The happens-before race detector found unordered conflicting
    /// accesses in the run's sync trace.
    Races(Vec<Race>),
    /// The simulation deadlocked.
    Deadlock(String),
    /// A rank or the engine panicked.
    Panic(String),
    /// The run terminated but only degraded — the reliability sublayer or
    /// the stall watchdog had to give up on something (a fault-sweep run
    /// must recover *cleanly*, not merely terminate).
    Degraded(Vec<String>),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Static(ds) => {
                write!(f, "{} static diagnostic(s):", ds.len())?;
                for d in ds {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            FailureKind::Divergence(d) => write!(f, "divergence: {d}"),
            FailureKind::Violations(vs) => {
                write!(f, "{} invariant violation(s):", vs.len())?;
                for v in vs {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
            FailureKind::Races(rs) => {
                write!(f, "{} happens-before race(s):", rs.len())?;
                for r in rs {
                    write!(f, "\n  {r}")?;
                }
                Ok(())
            }
            FailureKind::Deadlock(d) => write!(f, "{d}"),
            FailureKind::Panic(d) => write!(f, "panic: {d}"),
            FailureKind::Degraded(ds) => {
                write!(f, "{} degradation(s):", ds.len())?;
                for d in ds {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

/// Which checking layers [`verify_with`] applies around the run.
#[derive(Copy, Clone, Debug)]
pub struct VerifyOpts {
    /// Run the static analyzer on the lowered program before executing.
    pub static_analysis: bool,
    /// Run the happens-before race detector on the run's sync trace.
    pub races: bool,
    /// Named network fault plan applied to every run of the sweep
    /// (see [`mpisim_net::FaultPlan::by_name`]).
    pub fault_plan: Option<&'static str>,
    /// Arm the reliability sublayer + stall watchdog in every run.
    pub reliable: bool,
}

impl Default for VerifyOpts {
    fn default() -> Self {
        VerifyOpts { static_analysis: true, races: true, fault_plan: None, reliable: false }
    }
}

/// A failing (program, spec) pair.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Why it failed.
    pub kind: FailureKind,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.kind.fmt(f)
    }
}

/// [`verify_with`] under the default options (every layer on).
pub fn verify(program: &Program, spec: &RunSpec) -> Result<(), Failure> {
    verify_with(program, spec, VerifyOpts::default())
}

/// Execute `program` under `spec` and check it end to end: static
/// analysis of the lowered call sequence, oracle comparison, trace audit,
/// and happens-before race detection. `Ok(())` means the run is
/// conformant under every enabled layer.
pub fn verify_with(program: &Program, spec: &RunSpec, opts: VerifyOpts) -> Result<(), Failure> {
    if opts.static_analysis {
        let diags = analyze(&lower(program, spec.nonblocking));
        if !diags.is_empty() {
            return Err(Failure { kind: FailureKind::Static(diags) });
        }
    }
    let expected = oracle(program);
    let out = match execute(program, spec) {
        Ok(out) => out,
        Err(RunFailure::Deadlock(d)) => {
            return Err(Failure { kind: FailureKind::Deadlock(d) });
        }
        Err(RunFailure::Panic(p)) => return Err(Failure { kind: FailureKind::Panic(p) }),
    };
    // Under a fault plan, terminating is not enough: the sublayer must
    // have repaired every injected fault with zero residual degradations.
    if !out.report.is_clean() {
        return Err(Failure {
            kind: FailureKind::Degraded(
                out.report.degradations.iter().map(|d| d.to_string()).collect(),
            ),
        });
    }
    // Rank 0 is the origin in single-origin programs and its window is
    // never a target, so comparing every rank is valid for both shapes.
    for (r, (got, want)) in out.mems.iter().zip(expected.mems.iter()).enumerate() {
        if got != want {
            return Err(Failure {
                kind: FailureKind::Divergence(format!(
                    "rank {r} window: got {got:?}, oracle {want:?}"
                )),
            });
        }
    }
    if out.gets != expected.gets {
        return Err(Failure {
            kind: FailureKind::Divergence(format!(
                "get results: got {:?}, oracle {:?}",
                out.gets, expected.gets
            )),
        });
    }
    let violations = audit(&out.report);
    if !violations.is_empty() {
        return Err(Failure { kind: FailureKind::Violations(violations) });
    }
    if opts.races {
        let races = detect_races(&out.report);
        if !races.is_empty() {
            return Err(Failure { kind: FailureKind::Races(races) });
        }
    }
    Ok(())
}

/// One recorded failure of a sweep.
#[derive(Clone, Debug)]
pub struct FoundFailure {
    /// The failing program.
    pub program: Program,
    /// The failing matrix point.
    pub spec: RunSpec,
    /// What went wrong.
    pub failure: Failure,
}

/// Outcome of sweeping one family.
#[derive(Clone, Debug, Default)]
pub struct SweepReport {
    /// Programs generated.
    pub programs: u64,
    /// Total runs executed.
    pub runs: u64,
    /// Distinct perturbed schedules explored per program (seeds).
    pub schedules: u64,
    /// Every failure found (first per matrix point; the sweep continues).
    pub failures: Vec<FoundFailure>,
}

/// The strategy × API matrix every program is pushed through.
pub const MATRIX: [(SyncStrategy, bool); 4] = [
    (SyncStrategy::Redesigned, false),
    (SyncStrategy::Redesigned, true),
    (SyncStrategy::LazyBaseline, false),
    (SyncStrategy::LazyBaseline, true),
];

/// The spec for perturbation seed `s` of one matrix point. Seed 0 is the
/// unperturbed FIFO schedule on the baseline network; later seeds walk the
/// jitter × credit grid and the kernel tie-break space simultaneously.
pub fn spec_for_seed(
    strategy: SyncStrategy,
    nonblocking: bool,
    s: u64,
    fault: &Option<String>,
) -> RunSpec {
    RunSpec {
        strategy,
        nonblocking,
        net_profile: s % 16,
        tiebreak_seed: if s == 0 { None } else { Some(s) },
        sim_seed: 7 + s,
        fault: fault.clone(),
        fault_plan: None,
        reliable: false,
        crash_at: None,
        bad_recovery: false,
    }
}

/// [`sweep_family_with`] under the default options (every layer on).
pub fn sweep_family(
    family: Family,
    programs: u64,
    seeds: u64,
    fault: &Option<String>,
) -> SweepReport {
    sweep_family_with(family, programs, seeds, fault, VerifyOpts::default())
}

/// Sweep one family: `programs` generated programs, each run under
/// `seeds` perturbed schedules for all four matrix points. `fault`
/// injects an engine bug into every run (the harness's self-test);
/// `opts` selects the checking layers applied to every run.
pub fn sweep_family_with(
    family: Family,
    programs: u64,
    seeds: u64,
    fault: &Option<String>,
    opts: VerifyOpts,
) -> SweepReport {
    let mut report = SweepReport { programs, schedules: seeds, ..SweepReport::default() };
    for idx in 0..programs {
        let program = generate(family, idx);
        for (strategy, nonblocking) in MATRIX {
            for s in 0..seeds {
                let mut spec = spec_for_seed(strategy, nonblocking, s, fault);
                spec.fault_plan = opts.fault_plan.map(String::from);
                spec.reliable = opts.reliable;
                report.runs += 1;
                if let Err(failure) = verify_with(&program, &spec, opts) {
                    report.failures.push(FoundFailure {
                        program: program.clone(),
                        spec,
                        failure,
                    });
                    // One failure per (program, matrix point) is enough;
                    // move to the next point rather than repeat it 16×.
                    break;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sweep_is_green() {
        // One program per family, a few seeds, full matrix: no failures.
        for family in Family::ALL {
            let r = sweep_family(family, 1, 3, &None);
            assert_eq!(r.runs, 12, "{family:?}");
            assert!(
                r.failures.is_empty(),
                "{family:?}: {}",
                r.failures.iter().map(|f| f.failure.to_string()).collect::<Vec<_>>().join("; ")
            );
        }
    }

    #[test]
    fn drop_storm_without_sublayer_is_detected() {
        // 35% frame loss with the reliability sublayer OFF must produce a
        // detectable failure (deadlocked blocking sync, a panic from
        // out-of-order grants, or outright divergence) — this is the
        // harness's proof that the fault plans have teeth.
        let program = generate(Family::MixedSerial, 0);
        let mut spec = RunSpec::baseline(SyncStrategy::Redesigned, false);
        spec.fault_plan = Some("drop-storm".into());
        let err = verify(&program, &spec).expect_err("an unprotected storm must be caught");
        assert!(
            matches!(
                err.kind,
                FailureKind::Deadlock(_)
                    | FailureKind::Panic(_)
                    | FailureKind::Divergence(_)
                    | FailureKind::Violations(_)
            ),
            "got {err}"
        );
    }

    #[test]
    fn faulty_sweep_with_sublayer_is_green() {
        // The same machinery with the sublayer on: a lossy sweep must be
        // not just terminating but conformant and degradation-free.
        let opts = VerifyOpts { fault_plan: Some("light-loss"), reliable: true, ..VerifyOpts::default() };
        let r = sweep_family_with(Family::MixedSerial, 1, 2, &None, opts);
        assert_eq!(r.runs, 8);
        assert!(
            r.failures.is_empty(),
            "{}",
            r.failures.iter().map(|f| f.failure.to_string()).collect::<Vec<_>>().join("; ")
        );
    }

    #[test]
    fn double_acc_fault_diverges() {
        // A program with at least one accumulate must diverge when every
        // eager accumulate is applied twice.
        let program = Program::SingleOrigin {
            n_ranks: 3,
            reorder: false,
            epochs: vec![crate::program::Epoch::Lock {
                target: 1,
                ops: vec![crate::program::Op::AccSum { target: 1, slot: 0, operand: 5 }],
            }],
        };
        let mut spec = RunSpec::baseline(SyncStrategy::Redesigned, false);
        spec.fault = Some("double-acc".into());
        let err = verify(&program, &spec).expect_err("injected bug must be caught");
        assert!(matches!(err.kind, FailureKind::Divergence(_)), "got {err}");
    }
}
