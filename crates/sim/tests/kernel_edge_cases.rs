//! Edge-case integration tests for the simulation kernel.

use std::sync::{Arc, Mutex};

use mpisim_sim::{seeded_rng, Sim, SimError, SimTime, Signal};
use rand::Rng;

#[test]
fn schedule_at_in_the_past_is_clamped_to_now() {
    let sim = Sim::new(0);
    let h = sim.handle();
    let log = Arc::new(Mutex::new(Vec::new()));
    let (h2, l2) = (h.clone(), log.clone());
    h.schedule(SimTime::from_micros(10), move || {
        // Now is 10 µs; ask for 3 µs — must fire at 10 µs, not travel back.
        let l3 = l2.clone();
        let h3 = h2.clone();
        h2.schedule_at(SimTime::from_micros(3), move || {
            l3.lock().unwrap().push(h3.now().as_nanos());
        });
    });
    sim.run().unwrap();
    assert_eq!(*log.lock().unwrap(), vec![10_000]);
}

#[test]
fn cancel_from_within_an_event() {
    let sim = Sim::new(0);
    let h = sim.handle();
    let fired = Arc::new(Mutex::new(false));
    let f2 = fired.clone();
    let victim = h.schedule(SimTime::from_micros(5), move || *f2.lock().unwrap() = true);
    let h2 = h.clone();
    h.schedule(SimTime::from_micros(1), move || {
        assert!(h2.cancel(victim));
    });
    sim.run().unwrap();
    assert!(!*fired.lock().unwrap());
}

#[test]
fn events_executed_counter_is_visible_during_run() {
    let sim = Sim::new(0);
    let h = sim.handle();
    let h2 = h.clone();
    let seen = Arc::new(Mutex::new(0u64));
    let s2 = seen.clone();
    h.schedule(SimTime::from_micros(1), || {});
    h.schedule(SimTime::from_micros(2), move || {
        *s2.lock().unwrap() = h2.events_executed();
    });
    let stats = sim.run().unwrap();
    assert_eq!(*seen.lock().unwrap(), 2); // includes the running event
    assert_eq!(stats.events_executed, 2);
}

#[test]
fn process_spawned_order_runs_first_at_time_zero() {
    let mut sim = Sim::new(0);
    let order = Arc::new(Mutex::new(Vec::new()));
    for i in 0..5 {
        let o = order.clone();
        sim.spawn(format!("p{i}"), move |_| o.lock().unwrap().push(i));
    }
    sim.run().unwrap();
    assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn signal_fired_by_one_process_wakes_another_same_instant() {
    let mut sim = Sim::new(0);
    let sig = Signal::new();
    let s2 = sig.clone();
    let woke_at = Arc::new(Mutex::new(SimTime::MAX));
    let w2 = woke_at.clone();
    sim.spawn("waiter", move |ctx| {
        ctx.wait(&s2);
        *w2.lock().unwrap() = ctx.now();
    });
    sim.spawn("firer", move |_| {
        sig.fire(); // at virtual time zero, no advance
    });
    sim.run().unwrap();
    assert_eq!(*woke_at.lock().unwrap(), SimTime::ZERO);
}

#[test]
fn deadlock_error_lists_only_unfinished_processes() {
    let mut sim = Sim::new(0);
    sim.spawn("finishes", |ctx| ctx.advance(SimTime::from_micros(1)));
    sim.spawn("hangs", |ctx| {
        let s = Signal::new();
        ctx.wait(&s);
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked, now }) => {
            assert_eq!(blocked, vec!["hangs".to_string()]);
            assert_eq!(now, SimTime::from_micros(1));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn heavy_fanout_of_processes_and_events_is_deterministic() {
    fn run(seed: u64) -> (u64, u64) {
        let mut sim = Sim::new(seed);
        for p in 0..64 {
            sim.spawn(format!("p{p}"), move |ctx| {
                let mut rng = seeded_rng(ctx.handle().seed(), p);
                for _ in 0..50 {
                    ctx.advance(SimTime::from_nanos(rng.gen_range(1..1000)));
                }
            });
        }
        let stats = sim.run().unwrap();
        (stats.final_time.as_nanos(), stats.context_switches)
    }
    assert_eq!(run(3), run(3));
    assert_ne!(run(3).0, run(4).0);
}

#[test]
fn stack_size_override_supports_many_processes() {
    let mut sim = Sim::new(0);
    sim.set_stack_size(128 * 1024);
    let count = Arc::new(Mutex::new(0usize));
    for i in 0..512 {
        let c = count.clone();
        sim.spawn(format!("tiny{i}"), move |ctx| {
            ctx.advance(SimTime::from_nanos(i as u64 % 7 + 1));
            *c.lock().unwrap() += 1;
        });
    }
    sim.run().unwrap();
    assert_eq!(*count.lock().unwrap(), 512);
}

#[test]
fn wait_any_mixes_fired_and_pending() {
    let mut sim = Sim::new(0);
    let sigs: Vec<Signal> = (0..4).map(|_| Signal::new()).collect();
    sigs[2].fire(); // already fired before anyone waits
    let sv = sigs.clone();
    sim.spawn("w", move |ctx| {
        assert_eq!(ctx.wait_any(&sv), 2);
    });
    sim.run().unwrap();
}
