//! Edge-case integration tests for the simulation kernel.

use std::sync::{Arc, Mutex};

use mpisim_sim::{seeded_rng, ExecMode, Sim, SimError, SimTime, Signal};
use rand::Rng;

#[test]
fn schedule_at_in_the_past_is_clamped_to_now() {
    let sim = Sim::new(0);
    let h = sim.handle();
    let log = Arc::new(Mutex::new(Vec::new()));
    let (h2, l2) = (h.clone(), log.clone());
    h.schedule(SimTime::from_micros(10), move || {
        // Now is 10 µs; ask for 3 µs — must fire at 10 µs, not travel back.
        let l3 = l2.clone();
        let h3 = h2.clone();
        h2.schedule_at(SimTime::from_micros(3), move || {
            l3.lock().unwrap().push(h3.now().as_nanos());
        });
    });
    sim.run().unwrap();
    assert_eq!(*log.lock().unwrap(), vec![10_000]);
}

#[test]
fn cancel_from_within_an_event() {
    let sim = Sim::new(0);
    let h = sim.handle();
    let fired = Arc::new(Mutex::new(false));
    let f2 = fired.clone();
    let victim = h.schedule(SimTime::from_micros(5), move || *f2.lock().unwrap() = true);
    let h2 = h.clone();
    h.schedule(SimTime::from_micros(1), move || {
        assert!(h2.cancel(victim));
    });
    sim.run().unwrap();
    assert!(!*fired.lock().unwrap());
}

#[test]
fn events_executed_counter_is_visible_during_run() {
    let sim = Sim::new(0);
    let h = sim.handle();
    let h2 = h.clone();
    let seen = Arc::new(Mutex::new(0u64));
    let s2 = seen.clone();
    h.schedule(SimTime::from_micros(1), || {});
    h.schedule(SimTime::from_micros(2), move || {
        *s2.lock().unwrap() = h2.events_executed();
    });
    let stats = sim.run().unwrap();
    assert_eq!(*seen.lock().unwrap(), 2); // includes the running event
    assert_eq!(stats.events_executed, 2);
}

#[test]
fn process_spawned_order_runs_first_at_time_zero() {
    let mut sim = Sim::new(0);
    let order = Arc::new(Mutex::new(Vec::new()));
    for i in 0..5 {
        let o = order.clone();
        sim.spawn(format!("p{i}"), move |_| o.lock().unwrap().push(i));
    }
    sim.run().unwrap();
    assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn signal_fired_by_one_process_wakes_another_same_instant() {
    let mut sim = Sim::new(0);
    let sig = Signal::new();
    let s2 = sig.clone();
    let woke_at = Arc::new(Mutex::new(SimTime::MAX));
    let w2 = woke_at.clone();
    sim.spawn("waiter", move |ctx| {
        ctx.wait(&s2);
        *w2.lock().unwrap() = ctx.now();
    });
    sim.spawn("firer", move |_| {
        sig.fire(); // at virtual time zero, no advance
    });
    sim.run().unwrap();
    assert_eq!(*woke_at.lock().unwrap(), SimTime::ZERO);
}

#[test]
fn deadlock_error_lists_only_unfinished_processes() {
    let mut sim = Sim::new(0);
    sim.spawn("finishes", |ctx| ctx.advance(SimTime::from_micros(1)));
    sim.spawn("hangs", |ctx| {
        let s = Signal::new();
        ctx.wait(&s);
    });
    match sim.run() {
        Err(SimError::Deadlock { blocked, now }) => {
            assert_eq!(blocked, vec!["hangs".to_string()]);
            assert_eq!(now, SimTime::from_micros(1));
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn heavy_fanout_of_processes_and_events_is_deterministic() {
    fn run(seed: u64) -> (u64, u64) {
        let mut sim = Sim::new(seed);
        for p in 0..64 {
            sim.spawn(format!("p{p}"), move |ctx| {
                let mut rng = seeded_rng(ctx.handle().seed(), p);
                for _ in 0..50 {
                    ctx.advance(SimTime::from_nanos(rng.gen_range(1..1000)));
                }
            });
        }
        let stats = sim.run().unwrap();
        (stats.final_time.as_nanos(), stats.context_switches)
    }
    assert_eq!(run(3), run(3));
    assert_ne!(run(3).0, run(4).0);
}

#[test]
fn stack_size_override_supports_many_processes() {
    let mut sim = Sim::new(0);
    sim.set_stack_size(128 * 1024);
    let count = Arc::new(Mutex::new(0usize));
    for i in 0..512 {
        let c = count.clone();
        sim.spawn(format!("tiny{i}"), move |ctx| {
            ctx.advance(SimTime::from_nanos(i as u64 % 7 + 1));
            *c.lock().unwrap() += 1;
        });
    }
    sim.run().unwrap();
    assert_eq!(*count.lock().unwrap(), 512);
}

#[test]
fn wait_any_mixes_fired_and_pending() {
    let mut sim = Sim::new(0);
    let sigs: Vec<Signal> = (0..4).map(|_| Signal::new()).collect();
    sigs[2].fire(); // already fired before anyone waits
    let sv = sigs.clone();
    sim.spawn("w", move |ctx| {
        assert_eq!(ctx.wait_any(&sv), 2);
    });
    sim.run().unwrap();
}

// ---------------------------------------------------------------------------
// Pooled-execution edge cases at scale.
// ---------------------------------------------------------------------------

/// Counts drops so tests can assert that aborted continuations were
/// actually unwound (destructors on fiber/thread stacks ran).
struct DropProbe(Arc<Mutex<usize>>);

impl Drop for DropProbe {
    fn drop(&mut self) {
        *self.0.lock().unwrap() += 1;
    }
}

fn modes_under_test() -> Vec<ExecMode> {
    // ThreadPerRank everywhere; the pooled variants only where supported
    // (set_exec_mode would silently downgrade them to ThreadPerRank, which
    // would just re-test the baseline).
    let mut m = vec![ExecMode::ThreadPerRank];
    if ExecMode::default() != ExecMode::ThreadPerRank {
        m.push(ExecMode::Pooled { workers: 0 });
        m.push(ExecMode::Pooled { workers: 3 });
    }
    m
}

#[test]
fn worker_pool_shuts_down_with_parked_continuations() {
    // A deadlocked run leaves continuations suspended mid-wait and pool
    // workers parked. `run` must still return (no hung worker threads), the
    // deadlock must name every stuck process, and the suspended
    // continuations must be unwound (their stack-held values dropped).
    for mode in modes_under_test() {
        let drops = Arc::new(Mutex::new(0usize));
        let mut sim = Sim::new(0);
        sim.set_exec_mode(mode);
        for i in 0..16 {
            let probe = DropProbe(drops.clone());
            sim.spawn(format!("stuck{i}"), move |ctx| {
                let _held = probe; // lives on this continuation's stack
                let s = Signal::new();
                ctx.wait(&s); // never fired
            });
        }
        match sim.run() {
            Err(SimError::Deadlock { blocked, .. }) => {
                assert_eq!(blocked.len(), 16, "mode {mode:?}")
            }
            other => panic!("expected deadlock in {mode:?}, got {other:?}"),
        }
        assert_eq!(*drops.lock().unwrap(), 16, "mode {mode:?}: continuations not unwound");
    }
}

#[test]
fn abort_unwinds_a_pooled_rank_mid_epoch() {
    // One rank panics mid-run; another is suspended deep in a wait with
    // live stack state (modeling an open epoch). The panic must propagate
    // and the suspended rank's stack must be unwound, not leaked.
    for mode in modes_under_test() {
        let drops = Arc::new(Mutex::new(0usize));
        let probe = DropProbe(drops.clone());
        let mut sim = Sim::new(0);
        sim.set_exec_mode(mode);
        sim.spawn("mid-epoch", move |ctx| {
            let _epoch_state = probe; // held across the blocking call
            ctx.advance(SimTime::from_micros(1));
            let s = Signal::new();
            ctx.wait(&s); // suspended here when the abort lands
        });
        sim.spawn("bomb", |ctx| {
            ctx.advance(SimTime::from_micros(2));
            panic!("mid-run-boom");
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("mid-run-boom"), "mode {mode:?}");
        assert_eq!(*drops.lock().unwrap(), 1, "mode {mode:?}: epoch state not dropped");
    }
}

#[test]
fn zero_runnable_rank_steps_advance_on_events_alone() {
    // Ranks finish at t=0; from then on every step has zero runnable ranks
    // and the wheel advances on events alone. The scheduler must not touch
    // (or count switches for) the finished ranks again.
    for mode in modes_under_test() {
        let mut sim = Sim::new(0);
        sim.set_exec_mode(mode);
        for i in 0..8 {
            sim.spawn(format!("instant{i}"), |_| {});
        }
        let h = sim.handle();
        let ticks = Arc::new(Mutex::new(0u64));
        fn tick(h: mpisim_sim::SimHandle, ticks: Arc<Mutex<u64>>, left: u32) {
            if left == 0 {
                return;
            }
            let h2 = h.clone();
            h.schedule(SimTime::from_micros(1), move || {
                *ticks.lock().unwrap() += 1;
                tick(h2, ticks, left - 1);
            });
        }
        tick(h, ticks.clone(), 100);
        let stats = sim.run().unwrap();
        assert_eq!(*ticks.lock().unwrap(), 100, "mode {mode:?}");
        assert_eq!(stats.events_executed, 100, "mode {mode:?}");
        // Exactly one switch per rank (its only slice); idle steps add none.
        assert_eq!(stats.context_switches, 8, "mode {mode:?}");
        assert_eq!(stats.final_time, SimTime::from_micros(100), "mode {mode:?}");
    }
}

#[test]
fn four_thousand_ranks_run_pooled() {
    // The headline scale point: 4096 ranks in one process. Thread-per-rank
    // is deliberately excluded — that mode would need 4096 OS threads,
    // which is exactly what pooled execution exists to avoid.
    if ExecMode::default() == ExecMode::ThreadPerRank {
        return; // fibers unsupported on this target
    }
    let mut sim = Sim::new(9);
    sim.set_exec_mode(ExecMode::Pooled { workers: 0 });
    sim.set_stack_size(64 * 1024);
    let done = Arc::new(Mutex::new(0usize));
    let gate = Signal::new();
    for i in 0..4096usize {
        let d = done.clone();
        let g = gate.clone();
        sim.spawn(format!("r{i}"), move |ctx| {
            ctx.advance(SimTime::from_nanos(i as u64 % 97 + 1));
            if i == 0 {
                // Rank 0 makes every other rank block once, then releases.
                ctx.advance(SimTime::from_micros(10));
                g.fire();
            } else {
                ctx.wait(&g);
            }
            *d.lock().unwrap() += 1;
        });
    }
    let stats = sim.run().unwrap();
    assert_eq!(*done.lock().unwrap(), 4096);
    assert!(stats.context_switches >= 2 * 4096, "every rank needs at least two slices");
}

#[test]
fn cross_mode_stats_identity_with_blocking_traffic() {
    // Byte-identical SimStats across execution modes on a workload that
    // mixes signals, events, and re-blocking — the kernel-level half of the
    // determinism cross-check in crates/check.
    fn run_in(mode: ExecMode) -> (u64, u64, u64) {
        let mut sim = Sim::new(5);
        sim.set_exec_mode(mode);
        let sigs: Vec<Signal> = (0..32).map(|_| Signal::new()).collect();
        for i in 0..32usize {
            let mine = sigs[i].clone();
            let next = sigs[(i + 1) % 32].clone();
            sim.spawn(format!("ring{i}"), move |ctx| {
                if i == 0 {
                    ctx.advance(SimTime::from_nanos(3));
                    next.fire();
                } else {
                    ctx.wait(&mine);
                    ctx.advance(SimTime::from_nanos((i as u64 * 5) % 17 + 1));
                    next.fire();
                }
            });
        }
        let stats = sim.run().unwrap();
        (stats.events_executed, stats.context_switches, stats.final_time.as_nanos())
    }
    let base = run_in(ExecMode::ThreadPerRank);
    for mode in modes_under_test() {
        assert_eq!(run_in(mode), base, "SimStats diverged in {mode:?}");
    }
}
