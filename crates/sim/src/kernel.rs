//! The discrete-event kernel: virtual clock, event queue, and the
//! cooperative scheduler that interleaves simulated processes
//! deterministically.
//!
//! # Execution model
//!
//! Exactly one entity runs at any instant: either the scheduler (executing
//! an event callback) or one process. Determinism follows from three rules:
//!
//! 1. events are ordered by `(time, sequence-number)`;
//! 2. ready processes run in FIFO order, and all ready processes run before
//!    the next event is popped;
//! 3. process code itself only observes virtual time through the kernel.
//!
//! *How* a process slice executes is an [`ExecMode`] detail invisible to
//! the rules above, so every mode produces byte-identical schedules:
//!
//! - [`ExecMode::Pooled`] (default where supported): each process is a
//!   stackful [fiber](crate::fiber) — a parked *continuation*, not a parked
//!   thread. With `workers: 0` the driver resumes fibers inline (a context
//!   switch is ~20 instructions, no syscalls); with `workers: n` slices are
//!   dispatched to a small pool of worker threads, deterministically
//!   assigned by process id.
//! - [`ExecMode::ThreadPerRank`]: one OS thread per process, handed a baton
//!   through per-entity [`Parker`](crate::parker::Parker)s. Kept as the
//!   differential baseline the determinism cross-check compares against.
//!
//! The scheduler is work-aware by construction: only processes somebody
//! made ready (a fired signal, an event callback) ever enter the ready
//! queue, so a step never sweeps idle ranks — cost scales with runnable
//! work, not with the rank count.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::fiber::{self, Fiber};
use crate::parker::Parker;
use crate::process::ProcCtx;
use crate::time::SimTime;

/// Identifier of a simulated process (dense, assigned in spawn order).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub usize);

/// Identifier of a scheduled event, usable with [`SimHandle::cancel`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

/// How simulated processes execute. Purely a mechanism choice: every mode
/// yields byte-identical schedules, statistics, and traces for a given
/// seed (see the module docs).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// One OS thread per process. O(ranks) OS threads and two condvar
    /// handoffs per slice; kept as the differential baseline for the
    /// determinism cross-check.
    ThreadPerRank,
    /// Stackful fibers multiplexed onto a pool of `workers` OS threads.
    /// `workers: 0` resumes fibers inline on the driver thread — the
    /// fastest mode and the default. Falls back to [`ExecMode::ThreadPerRank`]
    /// on targets without fiber support (non-x86_64 / non-Linux).
    Pooled {
        /// Number of extra pool worker threads (0 = run slices inline on
        /// the driver thread).
        workers: usize,
    },
}

impl Default for ExecMode {
    fn default() -> Self {
        if fiber::SUPPORTED {
            ExecMode::Pooled { workers: 0 }
        } else {
            ExecMode::ThreadPerRank
        }
    }
}

/// Why a simulation run ended unsuccessfully.
#[derive(Debug)]
pub enum SimError {
    /// No process can run and no event is pending, but some processes have
    /// not finished: the simulated program deadlocked.
    Deadlock {
        /// Virtual time at which the deadlock was detected.
        now: SimTime,
        /// Labels of the processes that are still blocked.
        blocked: Vec<String>,
    },
    /// The configured event cap was exceeded (runaway-simulation backstop).
    EventCapExceeded {
        /// The cap that was exceeded.
        cap: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { now, blocked } => {
                write!(f, "simulation deadlock at {now}: blocked processes: ")?;
                for (i, b) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                Ok(())
            }
            SimError::EventCapExceeded { cap } => {
                write!(f, "simulation exceeded event cap of {cap} events")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Summary statistics returned by a successful [`Sim::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Number of event callbacks executed.
    pub events_executed: u64,
    /// Number of scheduler-to-process context switches performed.
    pub context_switches: u64,
    /// Virtual time when the last process finished.
    pub final_time: SimTime,
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum ProcState {
    Ready,
    Running,
    Blocked,
    Finished,
}

pub(crate) struct ProcRec {
    pub(crate) label: String,
    pub(crate) state: ProcState,
    pub(crate) parker: Arc<Parker>,
    pub(crate) panic_payload: Option<Box<dyn std::any::Any + Send>>,
}

type EventFn = Box<dyn FnOnce() + Send>;
type SpawnFn = Box<dyn FnOnce(&ProcCtx) + Send>;

pub(crate) struct Inner {
    pub(crate) now: SimTime,
    next_seq: u64,
    // Heap entries are `(time, key, seq)`: `key == seq` by default (FIFO
    // among same-time events), or a seeded hash of `seq` when a tie-break
    // perturbation is installed. `seq` stays in the tuple so ordering is
    // total even if two keys collide.
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    actions: HashMap<u64, EventFn>,
    tiebreak_seed: Option<u64>,
    nondet_tiebreak: bool,
    pub(crate) ready: VecDeque<ProcId>,
    pub(crate) procs: Vec<ProcRec>,
    pub(crate) aborting: bool,
    // Processes spawned mid-run via [`SimHandle::spawn`]: their ProcRec
    // (and ProcId) already exist, but their execution vehicle (fiber or
    // thread) is created by the driver, which drains this queue before
    // running anything from the ready queue.
    pending_spawns: VecDeque<(ProcId, SpawnFn)>,
    handoff_spin: Option<u32>,
    events_executed: u64,
    context_switches: u64,
    event_cap: u64,
}

impl Inner {
    /// Tie-break key for a freshly assigned sequence number.
    fn tiebreak_key(&self, seq: u64) -> u64 {
        if self.nondet_tiebreak {
            // Validation backdoor (see [`Sim::set_nondet_tiebreak`]): mix a
            // process-global counter that never resets, so two runs of the
            // same seeded program order their same-time events differently.
            static CLOCK: AtomicU64 = AtomicU64::new(0);
            return crate::rng::mix64(CLOCK.fetch_add(1, Ordering::Relaxed), seq);
        }
        match self.tiebreak_seed {
            None => seq,
            Some(seed) => crate::rng::mix64(seed, seq),
        }
    }
}

/// Shared kernel state: the event queue plus per-process scheduling records.
pub struct SimCore {
    pub(crate) inner: Mutex<Inner>,
    pub(crate) sched: Parker,
    seed: u64,
}

impl SimCore {
    /// Move a blocked process to the ready queue. Idempotent for processes
    /// that are already ready, running, or finished.
    pub(crate) fn make_ready(&self, pid: ProcId) {
        let mut inner = self.inner.lock();
        let rec = &mut inner.procs[pid.0];
        if rec.state == ProcState::Blocked {
            rec.state = ProcState::Ready;
            inner.ready.push_back(pid);
        }
    }

    pub(crate) fn is_aborting(&self) -> bool {
        self.inner.lock().aborting
    }
}

/// A cloneable, thread-safe handle for reading the clock and scheduling
/// events. Event callbacks run on the scheduler thread while no process
/// runs, so they may freely mutate state shared with processes (behind a
/// mutex that is, by construction, uncontended).
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) core: Arc<SimCore>,
}

impl SimHandle {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.core.inner.lock().now
    }

    /// The seed this simulation was built with.
    pub fn seed(&self) -> u64 {
        self.core.seed
    }

    /// Schedule `f` to run `delay` after the current virtual time.
    pub fn schedule<F: FnOnce() + Send + 'static>(&self, delay: SimTime, f: F) -> EventId {
        let mut inner = self.core.inner.lock();
        let at = inner.now + delay;
        Self::push_event(&mut inner, at, Box::new(f))
    }

    /// Schedule `f` at absolute virtual time `at` (clamped to now if in the
    /// past).
    pub fn schedule_at<F: FnOnce() + Send + 'static>(&self, at: SimTime, f: F) -> EventId {
        let mut inner = self.core.inner.lock();
        let at = at.max(inner.now);
        Self::push_event(&mut inner, at, Box::new(f))
    }

    fn push_event(inner: &mut Inner, at: SimTime, f: EventFn) -> EventId {
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let key = inner.tiebreak_key(seq);
        inner.heap.push(Reverse((at, key, seq)));
        inner.actions.insert(seq, f);
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns true if the event had
    /// not yet run (or been cancelled).
    pub fn cancel(&self, id: EventId) -> bool {
        self.core.inner.lock().actions.remove(&id.0).is_some()
    }

    /// Number of events executed so far (useful for instrumentation).
    pub fn events_executed(&self) -> u64 {
        self.core.inner.lock().events_executed
    }

    /// Spawn a simulated process **mid-run** — from an event callback or
    /// from another process. The new process starts ready at the current
    /// virtual time; its execution vehicle (fiber or thread, per the
    /// simulation's [`ExecMode`]) is created by the driver before the next
    /// process slice runs, so scheduling order stays deterministic: the
    /// process runs in the ready-queue position its spawn claimed.
    ///
    /// This is what rank-restart paths are built on: a crashed rank's
    /// replacement process can be spawned while the simulation is live.
    pub fn spawn<F>(&self, label: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&ProcCtx) + Send + 'static,
    {
        let label = label.into();
        let parker = Arc::new(Parker::new());
        let mut inner = self.core.inner.lock();
        if let Some(iters) = inner.handoff_spin {
            parker.set_spin(iters);
        }
        let pid = ProcId(inner.procs.len());
        inner.procs.push(ProcRec {
            label,
            state: ProcState::Ready,
            parker,
            panic_payload: None,
        });
        inner.ready.push_back(pid);
        inner.pending_spawns.push_back((pid, Box::new(f)));
        pid
    }
}

/// A work slot handed to a pool worker: a fiber to resume (as a raw
/// address — exclusive access is guaranteed because the driver parks until
/// the slice ends) or the shutdown order.
enum WorkerJob {
    Idle,
    Run(usize),
    Shutdown,
}

struct PoolWorker {
    parker: Arc<Parker>,
    job: Arc<Mutex<WorkerJob>>,
    handle: Option<JoinHandle<()>>,
}

/// The simulation builder and driver.
///
/// ```
/// use mpisim_sim::{Sim, SimTime};
///
/// let mut sim = Sim::new(42);
/// sim.spawn("worker", |ctx| {
///     ctx.advance(SimTime::from_micros(10));
///     assert_eq!(ctx.now(), SimTime::from_micros(10));
/// });
/// let stats = sim.run().unwrap();
/// assert_eq!(stats.final_time, SimTime::from_micros(10));
/// ```
pub struct Sim {
    core: Arc<SimCore>,
    threads: Vec<JoinHandle<()>>,
    fibers: Vec<Fiber>,
    pool: Vec<PoolWorker>,
    mode: ExecMode,
    stack_size: usize,
    handoff_spin: Option<u32>,
}

/// Default per-process stack size. Simulated ranks mostly park, so a small
/// stack lets thousands of ranks coexist (in pooled mode untouched stack
/// pages are never even committed).
pub const DEFAULT_STACK_SIZE: usize = 512 * 1024;

/// Default runaway-simulation backstop.
pub const DEFAULT_EVENT_CAP: u64 = 2_000_000_000;

impl Sim {
    /// Create a simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            core: Arc::new(SimCore {
                inner: Mutex::new(Inner {
                    now: SimTime::ZERO,
                    next_seq: 0,
                    heap: BinaryHeap::new(),
                    actions: HashMap::new(),
                    ready: VecDeque::new(),
                    procs: Vec::new(),
                    aborting: false,
                    pending_spawns: VecDeque::new(),
                    handoff_spin: None,
                    tiebreak_seed: None,
                    nondet_tiebreak: false,
                    events_executed: 0,
                    context_switches: 0,
                    event_cap: DEFAULT_EVENT_CAP,
                }),
                sched: Parker::new(),
                seed,
            }),
            threads: Vec::new(),
            fibers: Vec::new(),
            pool: Vec::new(),
            mode: ExecMode::default(),
            stack_size: DEFAULT_STACK_SIZE,
            handoff_spin: None,
        }
    }

    /// Select how processes execute. Must be called before the first
    /// [`Sim::spawn`]. On targets without fiber support a pooled request
    /// silently downgrades to [`ExecMode::ThreadPerRank`].
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        assert!(
            self.core.inner.lock().procs.is_empty(),
            "exec mode must be selected before any process is spawned"
        );
        self.mode = if fiber::SUPPORTED { mode } else { ExecMode::ThreadPerRank };
    }

    /// The execution mode in effect (after any platform downgrade).
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// Override the per-process stack size (bytes) for subsequently spawned
    /// processes.
    pub fn set_stack_size(&mut self, bytes: usize) {
        self.stack_size = bytes;
    }

    /// Override the event cap.
    pub fn set_event_cap(&mut self, cap: u64) {
        self.core.inner.lock().event_cap = cap;
    }

    /// Override the bounded spin performed before a baton handoff parks on
    /// its condvar (see [`Parker`]). Applies to the scheduler baton, every
    /// already-spawned process, and everything spawned afterwards. `0`
    /// disables spinning; the default is auto-detected from the machine's
    /// parallelism.
    pub fn set_handoff_spin(&mut self, iters: u32) {
        self.handoff_spin = Some(iters);
        self.core.sched.set_spin(iters);
        let mut inner = self.core.inner.lock();
        inner.handoff_spin = Some(iters);
        for p in inner.procs.iter() {
            p.parker.set_spin(iters);
        }
    }

    /// Install a seeded tie-break perturbation for same-time events.
    ///
    /// By default, events scheduled for the same virtual time run in
    /// scheduling (FIFO) order. With a tie-break seed, same-time events run
    /// in the order of a seeded hash of their sequence numbers instead — a
    /// deterministic, seed-keyed permutation of every tie. Each seed is one
    /// legal alternative schedule: the kernel never promises an order among
    /// same-time events, only that *some* total order is picked
    /// deterministically. The conformance harness sweeps seeds to explore
    /// the schedule space; `None` restores FIFO order.
    ///
    /// Must be set before the first event is scheduled to be meaningful
    /// (events already in the heap keep the key assigned at push time).
    pub fn set_tiebreak_seed(&mut self, seed: Option<u64>) {
        let mut inner = self.core.inner.lock();
        debug_assert!(
            inner.heap.is_empty(),
            "tie-break seed changed after events were scheduled"
        );
        inner.tiebreak_seed = seed;
    }

    /// Deliberately break tie-break determinism (validation backdoor).
    ///
    /// With this set, same-time events are ordered by a process-global
    /// counter that never resets, so two runs of the very same seeded
    /// program produce different schedules. Exists solely so the
    /// determinism cross-check harness can prove it would catch a
    /// nondeterministic kernel; never set it in real simulations.
    pub fn set_nondet_tiebreak(&mut self, on: bool) {
        self.core.inner.lock().nondet_tiebreak = on;
    }

    /// A handle for scheduling events and reading the clock.
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            core: self.core.clone(),
        }
    }

    /// Spawn a simulated process. The closure starts at virtual time zero,
    /// in spawn order, and is cooperatively scheduled — as a stackful fiber
    /// in pooled mode, or on a dedicated OS thread in thread-per-rank mode.
    pub fn spawn<F>(&mut self, label: impl Into<String>, f: F) -> ProcId
    where
        F: FnOnce(&ProcCtx) + Send + 'static,
    {
        let pid = self.handle().spawn(label, f);
        self.admit_pending();
        pid
    }

    /// Create the execution vehicle (fiber or thread) for every process
    /// registered but not yet attached — builder-time spawns and mid-run
    /// [`SimHandle::spawn`]s alike. Called by the driver before each process
    /// slice so a freshly spawned ProcId is always runnable by the time the
    /// ready queue reaches it.
    fn admit_pending(&mut self) {
        loop {
            let (pid, f) = {
                let mut inner = self.core.inner.lock();
                match inner.pending_spawns.pop_front() {
                    Some(s) => s,
                    None => return,
                }
            };
            self.attach(pid, f);
        }
    }

    /// Attach the execution vehicle for a registered process.
    fn attach(&mut self, pid: ProcId, f: SpawnFn) {
        let (label, parker) = {
            let inner = self.core.inner.lock();
            let rec = &inner.procs[pid.0];
            (rec.label.clone(), rec.parker.clone())
        };
        let core = self.core.clone();
        let ctx = ProcCtx::new(core.clone(), pid, parker.clone(), label.clone());
        // Shared process body: run `f`, then record completion and any real
        // panic payload (the AbortToken unwind is pure control flow).
        let record_exit = move |result: Result<(), Box<dyn std::any::Any + Send>>| {
            let mut inner = core.inner.lock();
            let rec = &mut inner.procs[pid.0];
            rec.state = ProcState::Finished;
            if let Err(payload) = result {
                if !payload.is::<crate::process::AbortToken>() {
                    rec.panic_payload = Some(payload);
                }
            }
        };
        match self.mode {
            ExecMode::Pooled { .. } => {
                let body = move || {
                    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                    record_exit(result);
                    // Control returns to the resumer via the fiber's final
                    // switch; no baton to hand back.
                };
                self.fibers.push(Fiber::new(self.stack_size, Box::new(body)));
                debug_assert_eq!(self.fibers.len(), pid.0 + 1);
            }
            ExecMode::ThreadPerRank => {
                let core = self.core.clone();
                let builder = std::thread::Builder::new()
                    .name(format!("sim-{label}"))
                    .stack_size(self.stack_size);
                let jh = builder
                    .spawn(move || {
                        // Wait for the first baton before touching anything.
                        parker.park();
                        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
                        record_exit(result);
                        core.sched.unpark();
                    })
                    .expect("failed to spawn simulation process thread");
                self.threads.push(jh);
            }
        }
    }

    /// Drive the simulation to completion: run ready processes, then pop
    /// events, until every process finishes (Ok) or nothing can make
    /// progress (deadlock error). Panics raised inside processes are
    /// propagated to the caller.
    pub fn run(mut self) -> Result<SimStats, SimError> {
        let outcome = self.drive();
        match outcome {
            Drive::Done(stats) => {
                self.join_all();
                Ok(stats)
            }
            Drive::Err(e) => {
                self.abort_all();
                self.join_all();
                Err(e)
            }
            Drive::Panicked(payload) => {
                self.abort_all();
                self.join_all();
                panic::resume_unwind(payload);
            }
        }
    }

    /// Run one slice of process `pid` — until it blocks, finishes, or
    /// yields — using the configured execution mechanism. The caller must
    /// have moved `pid` to `Running`.
    fn run_slice(&mut self, pid: ProcId) {
        match self.mode {
            ExecMode::ThreadPerRank => {
                let proc_parker = {
                    let inner = self.core.inner.lock();
                    inner.procs[pid.0].parker.clone()
                };
                proc_parker.unpark();
                self.core.sched.park();
            }
            ExecMode::Pooled { workers: 0 } => {
                // Inline: the driver becomes the process for one slice. No
                // parking, no syscalls — just a stack switch each way.
                self.fibers[pid.0].resume();
            }
            ExecMode::Pooled { workers } => {
                // Deterministic worker assignment by pid. Which OS thread
                // runs the slice cannot affect results (execution is still
                // serialized); the pool exists to bound thread count, not
                // to parallelize.
                self.ensure_pool(workers);
                let fiber_ptr: *mut Fiber = &mut self.fibers[pid.0];
                let w = &self.pool[pid.0 % workers];
                *w.job.lock() = WorkerJob::Run(fiber_ptr as usize);
                w.parker.unpark();
                self.core.sched.park();
            }
        }
    }

    fn drive(&mut self) -> Drive {
        loop {
            // Phase 1: drain ready processes (FIFO). Only processes with
            // pending work ever appear here, so idle ranks cost nothing.
            loop {
                // Mid-run spawns first: a process registered by
                // SimHandle::spawn (from the slice or event that just ran)
                // needs its fiber/thread before its ready-queue turn.
                self.admit_pending();
                let pid = {
                    let mut inner = self.core.inner.lock();
                    match inner.ready.pop_front() {
                        Some(p) => {
                            inner.procs[p.0].state = ProcState::Running;
                            inner.context_switches += 1;
                            p
                        }
                        None => break,
                    }
                };
                self.run_slice(pid);
                // The process yielded back: it is now Blocked, Ready again,
                // or Finished (possibly with a panic to propagate).
                let payload = {
                    let mut inner = self.core.inner.lock();
                    inner.procs[pid.0].panic_payload.take()
                };
                if let Some(p) = payload {
                    return Drive::Panicked(p);
                }
            }

            // Phase 2: execute the next event.
            let action = {
                let mut inner = self.core.inner.lock();
                loop {
                    match inner.heap.pop() {
                        Some(Reverse((t, _key, seq))) => {
                            if let Some(f) = inner.actions.remove(&seq) {
                                debug_assert!(t >= inner.now, "event in the past");
                                inner.now = t;
                                inner.events_executed += 1;
                                if inner.events_executed > inner.event_cap {
                                    return Drive::Err(SimError::EventCapExceeded {
                                        cap: inner.event_cap,
                                    });
                                }
                                break Some(f);
                            }
                            // cancelled event: skip
                        }
                        None => break None,
                    }
                }
            };
            match action {
                Some(f) => f(),
                None => {
                    // No events, no ready processes: either everyone is done
                    // or we are deadlocked.
                    let inner = self.core.inner.lock();
                    let blocked: Vec<String> = inner
                        .procs
                        .iter()
                        .filter(|p| p.state != ProcState::Finished)
                        .map(|p| p.label.clone())
                        .collect();
                    if blocked.is_empty() {
                        return Drive::Done(SimStats {
                            events_executed: inner.events_executed,
                            context_switches: inner.context_switches,
                            final_time: inner.now,
                        });
                    }
                    return Drive::Err(SimError::Deadlock {
                        now: inner.now,
                        blocked,
                    });
                }
            }
        }
    }

    /// Lazily start the worker pool for `Pooled { workers: n > 0 }`.
    fn ensure_pool(&mut self, workers: usize) {
        if !self.pool.is_empty() {
            return;
        }
        for i in 0..workers {
            let parker = Arc::new(Parker::new());
            if let Some(iters) = self.handoff_spin {
                parker.set_spin(iters);
            }
            let job = Arc::new(Mutex::new(WorkerJob::Idle));
            let core = self.core.clone();
            let (wp, wj) = (parker.clone(), job.clone());
            let handle = std::thread::Builder::new()
                .name(format!("sim-worker-{i}"))
                .spawn(move || loop {
                    wp.park();
                    let job = std::mem::replace(&mut *wj.lock(), WorkerJob::Idle);
                    match job {
                        WorkerJob::Run(addr) => {
                            // SAFETY: the driver parked right after posting
                            // this job and stays parked until we hand the
                            // baton back, so the fiber (and the Vec holding
                            // it) is untouched elsewhere for the whole
                            // slice.
                            let fiber = unsafe { &mut *(addr as *mut Fiber) };
                            fiber.resume();
                            core.sched.unpark();
                        }
                        WorkerJob::Shutdown => break,
                        WorkerJob::Idle => {}
                    }
                })
                .expect("failed to spawn simulation pool worker");
            self.pool.push(PoolWorker { parker, job, handle: Some(handle) });
        }
    }

    /// Unwind every unfinished process so the run can terminate; used on
    /// deadlock or propagated panic.
    fn abort_all(&mut self) {
        // The unwind is driven by `panic_any(AbortToken)` in each blocked
        // process — pure control flow, not an error. Silence the default
        // panic hook for that payload type (once, process-wide) so a
        // deadlocked simulation doesn't spray one backtrace per rank.
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let prev = panic::take_hook();
            panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<crate::process::AbortToken>().is_none() {
                    prev(info);
                }
            }));
        });
        self.core.inner.lock().aborting = true;
        match self.mode {
            ExecMode::ThreadPerRank => {
                // Wake every unfinished thread; its next (or current) park
                // returns, the aborting flag is observed, and the thread
                // unwinds.
                let parkers: Vec<Arc<Parker>> = {
                    let inner = self.core.inner.lock();
                    inner
                        .procs
                        .iter()
                        .filter(|p| p.state != ProcState::Finished)
                        .map(|p| p.parker.clone())
                        .collect()
                };
                for p in parkers {
                    p.unpark();
                }
            }
            ExecMode::Pooled { .. } => {
                // Resume every unfinished fiber on the driver thread until
                // it unwinds: a suspended fiber aborts at the yield it
                // returns into, a never-started one aborts at its first
                // blocking call (both checks live in yield_to_scheduler).
                // The loop guards against slices that block again without
                // observing the flag; each resume strictly advances the
                // fiber toward its AbortToken unwind.
                for f in self.fibers.iter_mut() {
                    while !f.is_finished() {
                        f.resume();
                    }
                }
            }
        }
    }

    fn join_all(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        for w in self.pool.iter() {
            *w.job.lock() = WorkerJob::Shutdown;
            w.parker.unpark();
        }
        for w in self.pool.iter_mut() {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
        self.pool.clear();
    }
}

enum Drive {
    Done(SimStats),
    Err(SimError),
    Panicked(Box<dyn std::any::Any + Send>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sim_finishes_at_zero() {
        let sim = Sim::new(0);
        let stats = sim.run().unwrap();
        assert_eq!(stats.final_time, SimTime::ZERO);
        assert_eq!(stats.events_executed, 0);
    }

    #[test]
    fn events_run_in_time_then_seq_order() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, d) in [30u64, 10, 20, 10].iter().enumerate() {
            let log = log.clone();
            h.schedule(SimTime::from_nanos(*d), move || log.lock().push(i));
        }
        sim.run().unwrap();
        // delays 10(i=1), 10(i=3) tie-broken by insertion, then 20, then 30
        assert_eq!(*log.lock(), vec![1, 3, 2, 0]);
    }

    fn tie_order(seed: Option<u64>) -> Vec<usize> {
        let mut sim = Sim::new(0);
        sim.set_tiebreak_seed(seed);
        let h = sim.handle();
        let log = Arc::new(Mutex::new(Vec::new()));
        // Eight events tied at t=10ns, one late straggler at t=20ns.
        for i in 0..8 {
            let log = log.clone();
            h.schedule(SimTime::from_nanos(10), move || log.lock().push(i));
        }
        let log2 = log.clone();
        h.schedule(SimTime::from_nanos(20), move || log2.lock().push(99));
        sim.run().unwrap();
        let v = log.lock().clone();
        v
    }

    #[test]
    fn tiebreak_default_is_fifo() {
        assert_eq!(tie_order(None), vec![0, 1, 2, 3, 4, 5, 6, 7, 99]);
    }

    #[test]
    fn tiebreak_seed_permutes_only_ties() {
        let base = tie_order(None);
        let mut saw_reorder = false;
        for seed in 0..8u64 {
            let p = tie_order(Some(seed));
            // Same event set, straggler still strictly last.
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5, 6, 7, 99]);
            assert_eq!(*p.last().unwrap(), 99);
            // Same seed, same schedule.
            assert_eq!(p, tie_order(Some(seed)));
            saw_reorder |= p != base;
        }
        assert!(saw_reorder, "no seed in 0..8 permuted an 8-way tie");
    }

    #[test]
    fn nondet_tiebreak_diverges_across_runs() {
        // The validation backdoor must actually produce different schedules
        // for identical runs (this is what the determinism cross-check's
        // exit-inverted self-test relies on).
        fn nondet_order() -> Vec<usize> {
            let mut sim = Sim::new(0);
            sim.set_nondet_tiebreak(true);
            let h = sim.handle();
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..16 {
                let log = log.clone();
                h.schedule(SimTime::from_nanos(10), move || log.lock().push(i));
            }
            sim.run().unwrap();
            let v = log.lock().clone();
            v
        }
        let runs: Vec<Vec<usize>> = (0..4).map(|_| nondet_order()).collect();
        assert!(
            runs.windows(2).any(|w| w[0] != w[1]),
            "nondet tie-break produced identical schedules across 4 runs"
        );
    }

    #[test]
    fn cancelled_events_do_not_run() {
        let sim = Sim::new(0);
        let h = sim.handle();
        let hit = Arc::new(Mutex::new(false));
        let hit2 = hit.clone();
        let id = h.schedule(SimTime::from_nanos(5), move || *hit2.lock() = true);
        assert!(h.cancel(id));
        assert!(!h.cancel(id)); // double-cancel reports false
        let stats = sim.run().unwrap();
        assert!(!*hit.lock());
        assert_eq!(stats.events_executed, 0);
    }

    #[test]
    fn event_cap_is_enforced() {
        let mut sim = Sim::new(0);
        sim.set_event_cap(10);
        let h = sim.handle();
        fn reschedule(h: SimHandle) {
            let h2 = h.clone();
            h.schedule(SimTime::from_nanos(1), move || reschedule(h2));
        }
        reschedule(h);
        match sim.run() {
            Err(SimError::EventCapExceeded { cap: 10 }) => {}
            other => panic!("expected cap error, got {other:?}"),
        }
    }

    fn all_modes() -> Vec<ExecMode> {
        let mut m = vec![ExecMode::ThreadPerRank];
        if fiber::SUPPORTED {
            m.push(ExecMode::Pooled { workers: 0 });
            m.push(ExecMode::Pooled { workers: 2 });
        }
        m
    }

    #[test]
    fn process_panic_propagates_in_every_mode() {
        for mode in all_modes() {
            let mut sim = Sim::new(0);
            sim.set_exec_mode(mode);
            sim.spawn("bad", |_| panic!("boom-xyz"));
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| sim.run())).unwrap_err();
            let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
            assert!(msg.contains("boom-xyz"), "mode {mode:?}");
        }
    }

    #[test]
    fn deadlock_reports_blocked_labels_in_every_mode() {
        for mode in all_modes() {
            let mut sim = Sim::new(0);
            sim.set_exec_mode(mode);
            sim.spawn("stuck-rank", |ctx| {
                let sig = crate::process::Signal::new();
                ctx.wait(&sig); // never fired
            });
            match sim.run() {
                Err(SimError::Deadlock { blocked, .. }) => {
                    assert_eq!(blocked, vec!["stuck-rank".to_string()], "mode {mode:?}");
                }
                other => panic!("expected deadlock in {mode:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn modes_produce_identical_stats_and_schedules() {
        fn run_in(mode: ExecMode) -> (SimStats, Vec<(u64, usize)>) {
            let mut sim = Sim::new(11);
            sim.set_exec_mode(mode);
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..12usize {
                let log = log.clone();
                sim.spawn(format!("p{i}"), move |ctx| {
                    for step in 0..6u64 {
                        ctx.advance(SimTime::from_nanos((i as u64 * 7 + step * 3) % 13 + 1));
                        log.lock().push((ctx.now().as_nanos(), i));
                    }
                });
            }
            let stats = sim.run().unwrap();
            let v = log.lock().clone();
            (stats, v)
        }
        let (base_stats, base_log) = run_in(ExecMode::ThreadPerRank);
        for mode in all_modes() {
            let (stats, log) = run_in(mode);
            assert_eq!(stats, base_stats, "stats diverged in {mode:?}");
            assert_eq!(log, base_log, "schedule diverged in {mode:?}");
        }
    }

    #[test]
    fn midrun_spawn_runs_in_every_mode() {
        // A process spawned from an event callback and one spawned from a
        // running process must both execute, at the virtual time of their
        // spawn, with identical schedules across exec modes.
        fn run_in(mode: ExecMode) -> Vec<(u64, &'static str)> {
            let mut sim = Sim::new(3);
            sim.set_exec_mode(mode);
            let log = Arc::new(Mutex::new(Vec::new()));
            let h = sim.handle();
            let (l1, h1) = (log.clone(), h.clone());
            h.schedule(SimTime::from_nanos(50), move || {
                let l = l1.clone();
                h1.spawn("from-event", move |ctx| {
                    ctx.advance(SimTime::from_nanos(5));
                    l.lock().push((ctx.now().as_nanos(), "from-event"));
                });
            });
            let (l2, h2) = (log.clone(), h.clone());
            sim.spawn("root", move |ctx| {
                ctx.advance(SimTime::from_nanos(20));
                let l = l2.clone();
                h2.spawn("from-proc", move |ctx2| {
                    ctx2.advance(SimTime::from_nanos(1));
                    l.lock().push((ctx2.now().as_nanos(), "from-proc"));
                });
                ctx.advance(SimTime::from_nanos(100));
                l2.lock().push((ctx.now().as_nanos(), "root"));
            });
            sim.run().unwrap();
            let v = log.lock().clone();
            v
        }
        let base = run_in(ExecMode::ThreadPerRank);
        assert_eq!(
            base,
            vec![(21, "from-proc"), (55, "from-event"), (120, "root")]
        );
        for mode in all_modes() {
            assert_eq!(run_in(mode), base, "mid-run spawn diverged in {mode:?}");
        }
    }

    #[test]
    fn immediate_panic_with_unstarted_peer_terminates() {
        // Regression: a process panicking during the very first ready-drain
        // used to strand peers that had never started — abort_all woke
        // them, they ran to their first wait, and join_all hung. The
        // pre-park aborting check in yield_to_scheduler unwinds them now.
        for mode in all_modes() {
            let mut sim = Sim::new(0);
            sim.set_exec_mode(mode);
            sim.spawn("bomb", |_| panic!("early-boom"));
            sim.spawn("late-starter", |ctx| {
                let sig = crate::process::Signal::new();
                ctx.wait(&sig); // would block forever
            });
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| sim.run())).unwrap_err();
            let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
            assert!(msg.contains("early-boom"), "mode {mode:?}");
        }
    }
}
