//! Virtual time for the discrete-event simulation.
//!
//! [`SimTime`] is used both as an *instant* (nanoseconds since simulation
//! start) and as a *duration* (a span of nanoseconds). This mirrors how MPI
//! tracing tools treat `MPI_Wtime` deltas and keeps arithmetic trivial and
//! overflow-checked in debug builds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, with nanosecond resolution.
///
/// The simulation clock starts at [`SimTime::ZERO`]. All network and
/// middleware costs are expressed as `SimTime` spans.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    nanos: u64,
}

impl SimTime {
    /// The origin of the simulation clock (and the zero-length span).
    pub const ZERO: SimTime = SimTime { nanos: 0 };
    /// The largest representable time; useful as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime { nanos: u64::MAX };

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime { nanos }
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        SimTime {
            nanos: micros * 1_000,
        }
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime {
            nanos: millis * 1_000_000,
        }
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Construct from fractional microseconds (rounded to nearest ns).
    ///
    /// Negative inputs saturate to zero, which is convenient when a latency
    /// model subtracts an overlap term.
    #[inline]
    pub fn from_micros_f64(micros: f64) -> Self {
        let ns = (micros * 1_000.0).round();
        SimTime {
            nanos: if ns <= 0.0 { 0 } else { ns as u64 },
        }
    }

    /// Construct from fractional seconds (rounded to nearest ns).
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        let ns = (secs * 1e9).round();
        SimTime {
            nanos: if ns <= 0.0 { 0 } else { ns as u64 },
        }
    }

    /// Whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.nanos as f64 / 1_000.0
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 / 1_000_000.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime {
            nanos: self.nanos.saturating_sub(other.nanos),
        }
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.nanos.checked_add(other.nanos).map(SimTime::from_nanos)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True if this is the zero time/span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.nanos == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime {
            nanos: self
                .nanos
                .checked_add(rhs.nanos)
                .expect("SimTime overflow in add"),
        }
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime {
            nanos: self
                .nanos
                .checked_sub(rhs.nanos)
                .expect("SimTime underflow in sub"),
        }
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime {
            nanos: self
                .nanos
                .checked_mul(rhs)
                .expect("SimTime overflow in mul"),
        }
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime {
            nanos: self.nanos / rhs,
        }
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos >= 1_000_000_000 && self.nanos.is_multiple_of(1_000_000) {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.nanos >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimTime::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    fn negative_float_saturates_to_zero() {
        assert_eq!(SimTime::from_micros_f64(-4.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(-0.1), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!((a + b).as_micros_f64(), 14.0);
        assert_eq!((a - b).as_micros_f64(), 6.0);
        assert_eq!((a * 3).as_micros_f64(), 30.0);
        assert_eq!((a / 2).as_micros_f64(), 5.0);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn ordering_and_sum() {
        let mut v = vec![
            SimTime::from_nanos(5),
            SimTime::from_nanos(1),
            SimTime::from_nanos(3),
        ];
        v.sort();
        assert_eq!(v[0].as_nanos(), 1);
        let total: SimTime = v.into_iter().sum();
        assert_eq!(total.as_nanos(), 9);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimTime::from_micros(340)), "340.000us");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000s");
    }
}
