//! A one-permit baton used to hand execution between the scheduler thread
//! and process threads.
//!
//! Exactly one entity (the scheduler or one process) runs at any moment.
//! Handing the baton to a thread is `unpark`; giving it up is `park`. Each
//! entity has its own `Parker`, so a switch costs one `notify_one` plus one
//! condvar wait — O(1) regardless of how many processes exist.

use parking_lot::{Condvar, Mutex};

/// A single-permit synchronization cell.
#[derive(Default)]
pub(crate) struct Parker {
    permit: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    pub(crate) fn new() -> Self {
        Parker {
            permit: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Grant the permit, waking the owner if it is parked.
    pub(crate) fn unpark(&self) {
        let mut p = self.permit.lock();
        *p = true;
        self.cv.notify_one();
    }

    /// Block until the permit is granted, then consume it.
    pub(crate) fn park(&self) {
        let mut p = self.permit.lock();
        while !*p {
            self.cv.wait(&mut p);
        }
        *p = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn permit_granted_before_park_is_consumed() {
        let p = Parker::new();
        p.unpark();
        p.park(); // must not block
    }

    #[test]
    fn cross_thread_handoff() {
        let a = Arc::new(Parker::new());
        let b = a.clone();
        let t = std::thread::spawn(move || {
            b.park();
            42
        });
        a.unpark();
        assert_eq!(t.join().unwrap(), 42);
    }

    #[test]
    fn repeated_handoffs() {
        let ping = Arc::new(Parker::new());
        let pong = Arc::new(Parker::new());
        let (ping2, pong2) = (ping.clone(), pong.clone());
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                ping2.park();
                pong2.unpark();
            }
        });
        for _ in 0..100 {
            ping.unpark();
            pong.park();
        }
        t.join().unwrap();
    }
}
